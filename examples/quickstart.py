"""Quickstart: define a search space, run RL-based NAS, inspect results.

This is the laptop-scale path: architectures are *really trained* (no
simulation) through the SerialEvaluator backend, exactly as the paper's
evaluator API allows a single search code to scale from "toy models on a
laptop to large DNNs running across leadership-class HPC resources".

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.evaluator import SerialEvaluator
from repro.nas import Block, Cell, DenseOp, DropoutOp, IdentityOp, Structure, VariableNode
from repro.problems import combo_problem
from repro.rewards import TrainingReward
from repro.rl import LSTMPolicy, PPOConfig, PPOUpdater


def main() -> None:
    # 1. A benchmark problem: synthetic Combo data + the combo-small
    #    search space at working scale (Dense(1000) -> Dense(40)).
    problem = combo_problem(n_train=512, n_val=160, scale=0.04)
    space = problem.space
    print(f"search space: {space.name}, |S| = {space.size:.4g}, "
          f"{space.num_actions} decisions")

    # 2. Reward estimation: train 1 epoch on half the data (low fidelity).
    reward = TrainingReward(problem, epochs=1, train_fraction=0.5)
    evaluator = SerialEvaluator(reward)

    # 3. The RL agent: LSTM(32) controller + PPO (clip=0.2, epochs=4).
    policy = LSTMPolicy(space.action_dims, seed=0)
    updater = PPOUpdater(policy, PPOConfig(lr=5e-3))
    rng = np.random.default_rng(0)

    best_reward, best_arch = -np.inf, None
    for iteration in range(8):
        rollout = policy.sample(6, rng)
        archs = [space.decode(a) for a in rollout.actions]
        evaluator.add_eval_batch(archs)
        records = evaluator.get_finished_evals()

        by_key: dict = {}
        for rec in records:
            by_key.setdefault(rec.arch.key, []).append(rec.reward)
        rewards = np.array([by_key[a.key].pop(0) for a in archs])
        updater.update(rollout, rewards)

        it_best = rewards.max()
        if it_best > best_reward:
            best_reward = it_best
            best_arch = archs[int(rewards.argmax())]
        print(f"iter {iteration}: mean reward {rewards.mean():+.3f}, "
              f"best so far {best_reward:+.3f}")

    # 4. Inspect the winner.
    print(f"\nbest architecture ({best_arch}):")
    for line in space.describe(best_arch.choices):
        print("  " + line)
    print(f"trainable parameters: {problem.count_params(best_arch.choices)}"
          f" (baseline: {problem.baseline_params()})")


if __name__ == "__main__":
    main()
