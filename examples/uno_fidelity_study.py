"""Fidelity study (§5.4): how the reward-estimation training fraction
shapes what the search finds.

Runs A3C on the Combo large space at 10/20/30/40% training data on the
simulated cluster.  Higher fractions make big architectures exceed the
10-minute timeout, depressing early rewards and steering the agents
toward smaller, faster-training networks — the paper's Figs. 11/12.

Run:  python examples/uno_fidelity_study.py
"""

import numpy as np

from repro.analytics import binned_mean_trajectory, top_k_architectures
from repro.hpc import NodeAllocation, TrainingCostModel
from repro.nas.spaces import combo_large
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search import SearchConfig, run_search


def main() -> None:
    space = combo_large()
    minutes = 120.0
    print(f"A3C on {space.name} at four reward-estimation fidelities\n")

    rows = {}
    for fraction in (0.1, 0.2, 0.3, 0.4):
        reward = SurrogateReward(
            space, COMBO_PAPER_SHAPES, combo_head(),
            TrainingCostModel.combo_paper(),
            epochs=1, train_fraction=fraction, timeout=600.0,
            log_params_opt=6.5, seed=7)
        cfg = SearchConfig(method="a3c", allocation=NodeAllocation(64, 7, 4),
                           wall_time=minutes * 60.0, seed=2)
        res = run_search(space, reward, cfg)
        top = top_k_architectures(res.records, 10)
        rows[fraction] = {
            "timeout_frac": float(np.mean([r.timed_out
                                           for r in res.records])),
            "early_mean": float(np.mean(
                [r.reward for r in sorted(res.records,
                                          key=lambda r: r.time)[:200]])),
            "best": res.best().reward,
            "median_top_params": float(np.median([t.params for t in top])),
        }
        traj = binned_mean_trajectory(res.records, 30.0, minutes)
        series = "  ".join(f"{v:+.2f}" if np.isfinite(v) else "   - "
                           for _, v in traj)
        print(f"{fraction:4.0%}: reward per 30-min bin: {series}")

    print(f"\n{'fraction':>8} {'timeouts':>9} {'early mean':>11} "
          f"{'best':>6} {'median top-10 params':>21}")
    for f, row in rows.items():
        print(f"{f:8.0%} {row['timeout_frac']:9.2f} "
              f"{row['early_mean']:11.3f} {row['best']:6.3f} "
              f"{row['median_top_params']:21.3e}")
    print("\nhigher fidelity -> more timeouts early, and the search "
          "shifts toward smaller architectures (paper Figs. 11/12).")


if __name__ == "__main__":
    main()
