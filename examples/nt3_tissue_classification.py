"""NT3 tumor/normal classification: NAS over 1-D convolutional stacks.

Searches the NT3 space (Conv/Act/Pool cells followed by Dense/Act/Drop
cells) with real training on synthetic gene-expression profiles, then
compares the best discovered network against the manually designed CNN —
the paper's headline NT3 result is a network with 800× fewer parameters
at the same accuracy.

Run:  python examples/nt3_tissue_classification.py
"""

import numpy as np

from repro.evaluator import SerialEvaluator
from repro.posttrain import post_train
from repro.problems import nt3_problem
from repro.rewards import TrainingReward
from repro.rl import LSTMPolicy, PPOConfig, PPOUpdater


def main() -> None:
    problem = nt3_problem(n_train=200, n_val=80, length=120, scale=0.05)
    space = problem.space
    print(f"search space: {space.name}, |S| = {space.size:.4g}")

    reward = TrainingReward(problem, epochs=2)
    evaluator = SerialEvaluator(reward)
    policy = LSTMPolicy(space.action_dims, seed=1)
    updater = PPOUpdater(policy, PPOConfig(lr=5e-3))
    rng = np.random.default_rng(1)

    seen: dict = {}
    for iteration in range(6):
        rollout = policy.sample(6, rng)
        archs = [space.decode(a) for a in rollout.actions]
        evaluator.add_eval_batch(archs)
        records = evaluator.get_finished_evals()
        by_key: dict = {}
        for rec in records:
            by_key.setdefault(rec.arch.key, []).append(rec)
        rewards = []
        for arch in archs:
            rec = by_key[arch.key].pop(0)
            rewards.append(rec.reward)
            cur = seen.get(arch.key)
            if cur is None or rec.reward > cur.reward:
                seen[arch.key] = rec
        updater.update(rollout, np.array(rewards))
        print(f"iter {iteration}: accuracy rewards "
              f"{np.round(rewards, 2).tolist()}")

    top = sorted(seen.values(), key=lambda r: -r.reward)[:3]
    report = post_train(problem, [t.arch for t in top], epochs=8)
    print(f"\nbaseline CNN: acc={report.baseline_metric:.3f}, "
          f"params={report.baseline_params}")
    for e in report.entries:
        print(f"NAS: acc={e.metric:.3f} params={e.params} "
              f"(acc ratio {e.accuracy_ratio:.2f}, "
              f"{e.params_ratio:.1f}x fewer params)")
    print("\nbest architecture:")
    for line in problem.space.describe(report.best().arch.choices):
        print("  " + line)


if __name__ == "__main__":
    main()
