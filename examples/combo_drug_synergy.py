"""Combo drug-pair synergy: an at-scale NAS run on the simulated cluster.

Reproduces the paper's reference experiment end to end: a 256-node
(21 agents × 11 workers) A3C search over the Combo small space with the
surrogate reward (1 epoch, 10% data, 10-minute timeout), followed by
real post-training of the top architectures against the manually
designed 13.77M-parameter network.

Run:  python examples/combo_drug_synergy.py
"""

import numpy as np

from repro.analytics import (best_so_far_trajectory, time_to_reward,
                             top_k_architectures)
from repro.hpc import NodeAllocation, TrainingCostModel
from repro.nas.spaces import combo_small
from repro.posttrain import post_train
from repro.problems import combo_problem
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search import SearchConfig, run_search


def main() -> None:
    space = combo_small()
    reward = SurrogateReward(
        space, COMBO_PAPER_SHAPES, combo_head(),
        TrainingCostModel.combo_paper(),
        epochs=1, train_fraction=0.1, timeout=600.0,
        log_params_opt=6.5, seed=7)

    config = SearchConfig(
        method="a3c",
        allocation=NodeAllocation(64, 7, 4),  # shrink of the 256-node run
        wall_time=120 * 60.0,                 # 120 simulated minutes
        seed=1)
    print(f"searching {space.name} (|S| = {space.size:.4g}) with "
          f"{config.allocation.num_agents} agents x "
          f"{config.allocation.workers_per_agent} workers ...")
    result = run_search(space, reward, config)

    traj = best_so_far_trajectory(result.records)
    t50 = time_to_reward(result.records, 0.5)
    print(f"evaluations: {result.num_evaluations} "
          f"({result.unique_architectures} unique)")
    print(f"best estimated reward: {result.best().reward:.3f}; "
          f"reward 0.5 reached at "
          f"{'%.0f simulated min' % t50 if t50 else 'n/a'}")
    print(f"mean worker utilization: "
          f"{result.cluster.mean_utilization(result.end_time):.2f}")

    # post-train top architectures with real numpy training
    top = top_k_architectures(result.records, 8)
    problem = combo_problem(n_train=512, n_val=160, scale=0.03)
    report = post_train(problem, [t.arch for t in top], epochs=10,
                        time_model=TrainingCostModel.combo_paper())
    print(f"\npost-training vs manually designed network "
          f"(R2_b={report.baseline_metric:.3f}):")
    print(f"{'R2/R2_b':>8} {'Pb/P':>8} {'Tb/T':>8}")
    for e in report.entries:
        print(f"{e.accuracy_ratio:8.3f} {e.params_ratio:8.2f} "
              f"{e.time_ratio:8.2f}")
    best = report.best()
    print(f"\nbest NAS architecture: R2={best.metric:.3f} with "
          f"{best.params} parameters "
          f"({report.baseline_params / best.params:.1f}x fewer than the "
          f"baseline)")


if __name__ == "__main__":
    main()
