"""Analytics walkthrough: logs, monitoring, and replication statistics.

Runs a small simulated search, persists its log, and demonstrates every
analytics surface: trajectory extraction, top-k, cache statistics,
Balsam-style job-table monitoring, and replication quantile bands.

Run:  python examples/analytics_walkthrough.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analytics import (best_so_far_trajectory, cache_hit_fraction,
                             load_records, quantile_bands,
                             rolling_mean_trajectory, save_records,
                             time_to_reward, top_k_architectures,
                             unique_architectures)
from repro.hpc import (NodeAllocation, TrainingCostModel, job_table_stats,
                       throughput_trace, utilization_from_jobs)
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search import NasSearch, SearchConfig


def make_reward(seed=7):
    return SurrogateReward(combo_small(), COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(),
                           epochs=1, train_fraction=0.1, timeout=600.0,
                           seed=seed)


def main() -> None:
    space = combo_small()
    cfg = SearchConfig(method="a3c", allocation=NodeAllocation(48, 5, 4),
                       wall_time=90 * 60.0, seed=11)
    search = NasSearch(space, make_reward(), cfg)
    result = search.run()

    # --- trajectory analytics -----------------------------------------
    best = best_so_far_trajectory(result.records)
    rolling = rolling_mean_trajectory(result.records, window=50)
    t4 = time_to_reward(result.records, 0.4)
    print(f"{result.num_evaluations} evaluations, "
          f"{unique_architectures(result.records)} unique, "
          f"cache hits {cache_hit_fraction(result.records):.0%}")
    print(f"best-so-far ends at {best[-1, 1]:.3f}; rolling mean ends at "
          f"{rolling[-1, 1]:.3f}; reward 0.4 reached at "
          f"{'%.0f min' % t4 if t4 else 'n/a'}")
    print("top 3 architectures:")
    for rec in top_k_architectures(result.records, 3):
        print(f"  {rec.reward:+.3f}  {rec.params:>10,} params  {rec.arch}")

    # --- Balsam-style monitoring (from the job table) -------------------
    stats = job_table_stats(search.service)
    print(f"\njob table: {stats.num_finished}/{stats.num_jobs} finished, "
          f"mean queue wait {stats.mean_queue_wait:.1f}s, "
          f"mean run {stats.mean_run_time:.0f}s, "
          f"{stats.total_node_seconds / 3600:.1f} node-hours")
    trace = utilization_from_jobs(search.service, result.end_time,
                                  bin_width=15 * 60.0)
    print("utilization per 15 min:",
          " ".join(f"{u:.2f}" for _, u in trace))
    tput = throughput_trace(search.service, result.end_time,
                            bin_width=15 * 60.0)
    print("throughput (evals/min):",
          " ".join(f"{r * 60:.1f}" for _, r in tput))

    # --- persistence -----------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        log = Path(tmp) / "run.jsonl"
        save_records(result.records, log, metadata={"example": True})
        loaded, meta = load_records(log)
        print(f"\nlog round-trip: {len(loaded)} records, metadata={meta}")

    # --- replication quantiles (Fig 13 style) -----------------------------
    reps = []
    for seed in range(3):
        cfg = SearchConfig(method="a3c", allocation=NodeAllocation(48, 5, 4),
                           wall_time=90 * 60.0, seed=200 + seed)
        reps.append(NasSearch(space, make_reward(), cfg).run().records)
    grid = np.array([30.0, 60.0, 85.0])
    bands = quantile_bands(reps, grid, quantiles=(0.1, 0.5, 0.9), window=50)
    print("\nreplication quantiles (minutes: q10/q50/q90):")
    for t, row in zip(grid, bands):
        print(f"  {t:3.0f}: {row[0]:.3f} / {row[1]:.3f} / {row[2]:.3f}")


if __name__ == "__main__":
    main()
