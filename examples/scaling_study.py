"""Scaling study (§5.3): agent scaling vs worker scaling.

Runs A3C on the Combo large space at (shrunken replicas of) the paper's
256-, 512- and 1,024-node configurations, comparing the two scaling
strategies.  Agent scaling keeps utilization near the 256-node
reference; worker scaling idles nodes because each agent's evaluation
batch is synchronous.

Run:  python examples/scaling_study.py
"""

import numpy as np

from repro.analytics import unique_architectures
from repro.hpc import NodeAllocation, TrainingCostModel
from repro.nas.spaces import combo_large
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search import SearchConfig, run_search

# shrunken replicas of the paper's table (footnote 2 arithmetic)
CONFIGS = {
    "256 ": NodeAllocation(48, 6, 6),
    "512-w": NodeAllocation(84, 6, 12),
    "1024-w": NodeAllocation(156, 6, 24),
    "512-a": NodeAllocation(90, 12, 6),
    "1024-a": NodeAllocation(172, 24, 6),
}


def main() -> None:
    space = combo_large()

    def reward():
        return SurrogateReward(
            space, COMBO_PAPER_SHAPES, combo_head(),
            TrainingCostModel.combo_paper(),
            epochs=1, train_fraction=0.1, timeout=600.0,
            log_params_opt=6.5, seed=7)

    print(f"{'config':<8} {'agentsxworkers':>15} {'evals':>7} "
          f"{'unique':>7} {'best':>6} {'util':>6}")
    results = {}
    for name, alloc in CONFIGS.items():
        cfg = SearchConfig(method="a3c", allocation=alloc,
                           wall_time=120 * 60.0, seed=3)
        res = run_search(space, reward(), cfg)
        results[name] = res
        util = res.cluster.mean_utilization(max(res.end_time, 1e-9))
        print(f"{name:<8} {alloc.num_agents:>7}x{alloc.workers_per_agent:<7}"
              f" {res.num_evaluations:>7} "
              f"{unique_architectures(res.records):>7} "
              f"{res.best().reward:>6.3f} {util:>6.2f}")

    u = {k: results[k].cluster.mean_utilization(
        max(results[k].end_time, 1e-9)) for k in CONFIGS}
    print(f"\nagent scaling holds utilization "
          f"({u['512-a']:.2f} / {u['1024-a']:.2f}) "
          f"better than worker scaling ({u['512-w']:.2f} / "
          f"{u['1024-w']:.2f}) — paper Fig. 9.")


if __name__ == "__main__":
    main()
