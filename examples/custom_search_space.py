"""Extensibility: defining a NAS search space for a *new* tabular problem.

§3.1's formalism is "not specific to a single template": users define
cell-specific blocks with variable, constant, and mirror nodes.  This
example builds a space for a two-modality synthetic problem — paired
'omics' measurements whose two channels should share an encoder (mirror
nodes), a constant normalization stage, and learnable skip connections —
then searches it with multi-objective rewards (accuracy + model size).

Run:  python examples/custom_search_space.py
"""

import numpy as np

from repro.evaluator import SerialEvaluator
from repro.nas import (Block, Cell, ConnectOp, DenseOp, DropoutOp,
                       IdentityOp, MirrorNode, Structure, VariableNode)
from repro.nas.visualize import render_plan, render_space
from repro.nas.builder import compile_architecture
from repro.problems.base import Problem
from repro.problems.datasets import Dataset
from repro.rewards import CompositeReward, TrainingReward
from repro.rl import LSTMPolicy, PPOConfig, PPOUpdater


def build_space() -> Structure:
    """Two shared-encoder inputs + a clinical vector + skip connections."""
    encoder_ops = [IdentityOp(), DenseOp(24, "relu"), DenseOp(24, "tanh"),
                   DenseOp(48, "relu"), DropoutOp(0.1)]
    s = Structure("paired-omics", ["omics_a", "omics_b", "clinical"],
                  output_sources="all_cells")

    c0 = Cell("C0")
    b0 = Block("B0", inputs=["omics_a"])
    shared = [VariableNode(f"N{i}", encoder_ops) for i in range(2)]
    for node in shared:
        b0.add_node(node)
    c0.add_block(b0)
    b1 = Block("B1", inputs=["omics_b"])     # second modality mirrors the
    for i, target in enumerate(shared):      # first modality's encoder
        b1.add_node(MirrorNode(f"N{i}", target))
    c0.add_block(b1)
    b2 = Block("B2", inputs=["clinical"])
    b2.add_node(VariableNode("N0", encoder_ops))
    c0.add_block(b2)
    s.add_cell(c0)

    c1 = Cell("C1")
    b0 = Block("B0", inputs=["C0"])
    for i in range(2):
        b0.add_node(VariableNode(f"N{i}", encoder_ops))
    c1.add_block(b0)
    b1 = Block("B1", inputs=["C0"])
    b1.add_node(VariableNode("N0", [
        ConnectOp(),                          # Null
        ConnectOp("omics_a"),
        ConnectOp("clinical"),
        ConnectOp("omics_a", "omics_b", "clinical")]))
    c1.add_block(b1)
    s.add_cell(c1)
    s.validate()
    return s


def make_data(n=500, d=30, seed=0) -> Dataset:
    rng = np.random.default_rng(seed)
    z = rng.standard_normal((n, 5))
    w = rng.standard_normal((5, d)) / np.sqrt(5)
    a = np.tanh(z @ w) + 0.05 * rng.standard_normal((n, d))
    b = np.tanh(z @ w) + 0.05 * rng.standard_normal((n, d))  # same map!
    clin = rng.standard_normal((n, 6))
    y = (np.tanh(z[:, 0] * z[:, 1]) + 0.5 * clin[:, 0]
         + 0.05 * rng.standard_normal(n))[:, None]
    y = (y - y.mean()) / y.std()
    cut = int(0.8 * n)
    x = {"omics_a": a, "omics_b": b, "clinical": clin}
    return Dataset({k: v[:cut] for k, v in x.items()}, y[:cut],
                   {k: v[cut:] for k, v in x.items()}, y[cut:])


def main() -> None:
    space = build_space()
    print(render_space(space))

    data = make_data()
    problem = Problem(name="paired-omics", dataset=data, space=space,
                      baseline=space, head_ops=[DenseOp(1, "linear")],
                      loss="mse", metric="r2", batch_size=32)

    # multi-objective: validation R2 minus a size penalty above 3k params
    reward = CompositeReward(
        TrainingReward(problem, epochs=3),
        params_weight=0.15, params_target=3000, accuracy_floor=0.2)
    evaluator = SerialEvaluator(reward)
    policy = LSTMPolicy(space.action_dims, seed=0)
    updater = PPOUpdater(policy, PPOConfig(lr=5e-3))
    rng = np.random.default_rng(0)

    best = None
    for it in range(6):
        rollout = policy.sample(6, rng)
        archs = [space.decode(a) for a in rollout.actions]
        evaluator.add_eval_batch(archs)
        recs = evaluator.get_finished_evals()
        by_key = {}
        for r in recs:
            by_key.setdefault(r.arch.key, []).append(r)
        rewards = []
        for arch in archs:
            r = by_key[arch.key].pop(0)
            rewards.append(r.reward)
            if best is None or r.reward > best.reward:
                best = r
        updater.update(rollout, np.array(rewards))
        print(f"iter {it}: mean composite reward {np.mean(rewards):+.3f}")

    print(f"\nbest composite reward {best.reward:+.3f} "
          f"({best.result.params} params)\n")
    plan = compile_architecture(space, best.arch.choices,
                                problem.input_shapes, problem.head_ops)
    print(render_plan(plan))


if __name__ == "__main__":
    main()
