"""Search-level backend parity: the full RL search driven through the
serial, thread, and process evaluation backends lands on bit-identical
trajectory fingerprints.

This is the acceptance check for the supervised process pool: in
deterministic mode (no injected faults) nothing observable may change
across the process boundary — worker scheduling and completion order
can differ, but actions, rewards, and policy updates cannot.  The
process legs are ``proc``-marked; serial vs. thread runs in the fast
tier.
"""

import pytest

from repro.evaluator import ProcConfig
from repro.hpc import NodeAllocation, TrainingCostModel
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search import NasSearch, SearchConfig

METHODS = ("a3c", "a2c", "rdm", "ambs", "evolution")


@pytest.fixture(scope="module")
def space():
    return combo_small()


def make_surrogate(space):
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(), epochs=1,
                           train_fraction=0.1, timeout=600.0, seed=7)


def run_search(space, method, backend, workers=1):
    cfg = SearchConfig(
        method=method, allocation=NodeAllocation(10, 2, 3),
        wall_time=3600.0, seed=1, backend=backend, max_iterations=3,
        proc=ProcConfig(workers=workers) if backend == "process" else None)
    return NasSearch(space, make_surrogate(space), cfg).run()


@pytest.fixture(scope="module")
def serial_runs(space):
    return {m: run_search(space, m, "serial") for m in METHODS}


class TestInlineBackendParity:
    @pytest.mark.parametrize("method", METHODS)
    def test_thread_matches_serial(self, space, serial_runs, method):
        res = run_search(space, method, "thread")
        assert res.num_evaluations > 0
        assert res.fingerprint() == serial_runs[method].fingerprint()

    def test_serial_backend_runs_all_agents(self, serial_runs):
        for method, res in serial_runs.items():
            assert res.num_evaluations > 0, method
            assert not res.preempted


@pytest.mark.proc
class TestProcessBackendSearchParity:
    @pytest.mark.parametrize("method", METHODS)
    def test_process_matches_serial(self, space, serial_runs, method):
        res = run_search(space, method, "process")
        assert res.num_evaluations > 0
        assert res.fingerprint() == serial_runs[method].fingerprint()

    def test_worker_stats_surface_in_result(self, space):
        res = run_search(space, "a3c", "process", workers=2)
        stats = res.worker_stats
        assert stats["worker_spawns"] >= 2
        assert stats["worker_crashes"] == 0
        assert stats["worker_timeouts"] == 0
        assert stats["quarantined"] == 0
