"""Unit tests for model weight save/load."""

import numpy as np
import pytest

from repro.nn import Concatenate, Dense, GraphModel
from repro.nn.serialization import load_weights, save_weights


def _model(seed=0):
    rng = np.random.default_rng(seed)
    m = GraphModel()
    m.add_input("x", (4,))
    m.add_input("y", (4,))
    a = Dense(3, "tanh", name="enc")
    m.add("a", a, ["x"])
    m.add("b", Dense(3, "tanh", name="enc_mirror", share_from=a), ["y"])
    m.add("cat", Concatenate(), ["a", "b"])
    m.add("out", Dense(1, name="head"), ["cat"])
    m.set_output("out")
    return m.build(rng)


class TestRoundtrip:
    def test_save_load_restores_outputs(self, tmp_path, rng):
        m1 = _model(seed=1)
        path = tmp_path / "w.npz"
        save_weights(m1, path)
        m2 = _model(seed=2)  # different init
        x = {"x": rng.standard_normal((3, 4)),
             "y": rng.standard_normal((3, 4))}
        assert not np.allclose(m1.forward(x), m2.forward(x))
        load_weights(m2, path)
        np.testing.assert_allclose(m1.forward(x), m2.forward(x))

    def test_shared_params_saved_once(self, tmp_path):
        m = _model()
        path = tmp_path / "w.npz"
        save_weights(m, path)
        with np.load(path) as data:
            # embedding shared between a and b: 2 params + head's 2
            assert len(data.files) == 4

    def test_unbuilt_model_rejected(self, tmp_path):
        m = GraphModel()
        m.add_input("x", (4,))
        m.add("a", Dense(3), ["x"])
        m.set_output("a")
        with pytest.raises(ValueError):
            save_weights(m, tmp_path / "w.npz")
        with pytest.raises(ValueError):
            load_weights(m, tmp_path / "w.npz")

    def test_shape_mismatch_rejected(self, tmp_path):
        m1 = _model()
        path = tmp_path / "w.npz"
        save_weights(m1, path)
        rng = np.random.default_rng(0)
        m2 = GraphModel()
        m2.add_input("x", (4,))
        m2.add("a", Dense(5, name="enc"), ["x"])
        m2.set_output("a")
        m2.build(rng)
        with pytest.raises((ValueError, KeyError)):
            load_weights(m2, path)

    def test_missing_param_rejected(self, tmp_path):
        m = _model()
        path = tmp_path / "w.npz"
        save_weights(m, path)
        rng = np.random.default_rng(0)
        m2 = GraphModel()
        m2.add_input("x", (4,))
        m2.add("a", Dense(3, name="other"), ["x"])
        m2.set_output("a")
        m2.build(rng)
        with pytest.raises(KeyError):
            load_weights(m2, path)

    def test_nas_model_roundtrip(self, tmp_path, small_combo, rng):
        arch = small_combo.space.random_architecture(rng)
        m1 = small_combo.build_model(arch.choices,
                                     np.random.default_rng(1))
        path = tmp_path / "nas.npz"
        save_weights(m1, path)
        m2 = small_combo.build_model(arch.choices,
                                     np.random.default_rng(2))
        load_weights(m2, path)
        x = {k: v[:3] for k, v in small_combo.dataset.x_train.items()}
        np.testing.assert_allclose(m1.forward(x), m2.forward(x))
