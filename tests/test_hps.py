"""Tests for the hyperparameter-search module."""

import numpy as np
import pytest

from repro.hps import HyperparameterSpace, random_search, successive_halving


class TestSpace:
    def test_sample_in_bounds(self, rng):
        space = HyperparameterSpace(lr_range=(1e-4, 1e-2),
                                    batch_sizes=(16, 32))
        for _ in range(50):
            cfg = space.sample(rng)
            assert 1e-4 <= cfg["lr"] <= 1e-2
            assert cfg["batch_size"] in (16, 32)

    def test_log_uniform_spread(self, rng):
        space = HyperparameterSpace(lr_range=(1e-5, 1e-1))
        lrs = np.array([space.sample(rng)["lr"] for _ in range(500)])
        # roughly half the draws below the geometric mid-point
        mid = np.sqrt(1e-5 * 1e-1)
        assert 0.3 < np.mean(lrs < mid) < 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            HyperparameterSpace(lr_range=(1e-2, 1e-4))
        with pytest.raises(ValueError):
            HyperparameterSpace(batch_sizes=())
        with pytest.raises(ValueError):
            HyperparameterSpace(max_epochs=0)


class TestRandomSearch:
    def test_finds_reasonable_config(self, small_combo):
        space = HyperparameterSpace(lr_range=(1e-4, 1e-2),
                                    batch_sizes=(16, 32), max_epochs=4)
        result = random_search(small_combo, space, num_trials=4, seed=0)
        assert result.num_trials == 4
        assert result.best_metric == max(m for _, m in result.trials)
        assert "lr" in result.best_config

    def test_invalid_trials(self, small_combo):
        space = HyperparameterSpace()
        with pytest.raises(ValueError):
            random_search(small_combo, space, num_trials=0)

    def test_deterministic(self, small_combo):
        space = HyperparameterSpace(max_epochs=2)
        r1 = random_search(small_combo, space, num_trials=3, seed=4)
        r2 = random_search(small_combo, space, num_trials=3, seed=4)
        assert r1.trials == r2.trials

    def test_arch_target(self, small_combo, rng):
        arch = small_combo.space.random_architecture(rng)
        space = HyperparameterSpace(max_epochs=2)
        result = random_search(small_combo, space, num_trials=2, arch=arch,
                               seed=1)
        assert result.num_trials == 2


class TestSuccessiveHalving:
    def test_halving_schedule(self, small_combo):
        space = HyperparameterSpace(max_epochs=4)
        result = successive_halving(small_combo, space, num_configs=8,
                                    eta=2, min_epochs=1, seed=0)
        # rungs: 8 @1, 4 @2, 2 @4 -> 14 total evaluations
        assert result.num_trials == 14
        assert np.isfinite(result.best_metric)

    def test_single_survivor_stops(self, small_combo):
        space = HyperparameterSpace(max_epochs=32)
        result = successive_halving(small_combo, space, num_configs=2,
                                    eta=2, min_epochs=1, seed=0)
        # 2 @1, then 1 survivor @2 -> stops with one config
        assert result.num_trials == 3

    def test_validation(self, small_combo):
        space = HyperparameterSpace()
        with pytest.raises(ValueError):
            successive_halving(small_combo, space, num_configs=1)
        with pytest.raises(ValueError):
            successive_halving(small_combo, space, num_configs=4, eta=1)

    def test_budget_capped_at_max_epochs(self, small_combo):
        space = HyperparameterSpace(max_epochs=2)
        result = successive_halving(small_combo, space, num_configs=4,
                                    eta=2, min_epochs=2, seed=0)
        # first rung already at max budget: stops immediately
        assert result.num_trials == 4
