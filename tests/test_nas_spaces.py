"""Tests for the Combo/Uno/NT3 search-space definitions (§3.1).

The small-space cardinality assertions reproduce the paper's numbers
*exactly* — they pin the structural fidelity of the reconstruction.
"""

import numpy as np
import pytest

from repro.nas.builder import build_model, count_parameters
from repro.nas.nodes import ConstantNode, MirrorNode, VariableNode
from repro.nas.ops import ConnectOp, DenseOp
from repro.nas.spaces import (combo_large, combo_small, get_space,
                              nt3_small, uno_large, uno_small)
from repro.nas.spaces.combo import mlp_ops

HEAD = [DenseOp(1, "linear")]
HEAD2 = [DenseOp(2, "softmax")]

COMBO_SHAPES = {"cell_expression": (20,), "drug1_descriptors": (24,),
                "drug2_descriptors": (24,)}
UNO_SHAPES = {"cell_rnaseq": (20,), "dose": (1,), "drug_descriptors": (24,),
              "drug_fingerprints": (12,)}
NT3_SHAPES = {"rnaseq_expression": (100, 1)}


class TestPaperCardinalities:
    """§3.1's search-space sizes."""

    def test_combo_small_exact(self):
        # 13^12 * 9 ≈ 2.0968e14
        assert combo_small().size == 13**12 * 9 == 209_682_766_102_329

    def test_uno_small_exact(self):
        # 13^12 ≈ 2.3298e13
        assert uno_small().size == 13**12 == 23_298_085_122_481

    def test_nt3_small_exact(self):
        # (5*4*5)^2 * (9*4*7)^2 = 6.3504e8
        assert nt3_small().size == 635_040_000

    def test_combo_large_construction(self):
        # 33 MLP nodes (13 options) and connect nodes with 9..16 options;
        # the paper's "≈2.987e44" has the same mantissa — see
        # EXPERIMENTS.md for the documented exponent discrepancy.
        s = combo_large()
        expected = 13**33
        for i in range(1, 9):
            expected *= 8 + i
        assert s.size == expected
        assert f"{s.size:.4g}" == "2.987e+45"

    def test_uno_large_construction(self):
        # 17 MLP nodes and connect nodes with 15+2i options (i=1..8)
        s = uno_large()
        expected = 13**17
        for i in range(1, 9):
            expected *= 15 + 2 * i
        assert s.size == expected

    def test_mlp_node_has_13_options(self):
        assert len(mlp_ops()) == 13


class TestComboStructure:
    def test_action_counts(self):
        assert combo_small().num_actions == 13  # 12 MLP + 1 connect
        assert combo_large().num_actions == 41  # 33 MLP + 8 connects

    def test_connect_option_growth(self):
        s = combo_large()
        conn_dims = [n.num_ops for n in s.variable_nodes
                     if isinstance(n.ops[0], ConnectOp)]
        assert conn_dims == [9, 10, 11, 12, 13, 14, 15, 16]

    def test_drug2_mirrors_drug1(self):
        s = combo_small()
        c0 = s.cells[0]
        b1_nodes = c0.blocks[1].nodes
        b2_nodes = c0.blocks[2].nodes
        for mirror, target in zip(b2_nodes, b1_nodes):
            assert isinstance(mirror, MirrorNode)
            assert mirror.target is target

    def test_mirror_shares_weights_in_model(self, rng):
        s = combo_small(scale=0.02)
        choices = [9] * 6 + [9] * 3 + [0] + [9] * 3  # all Dense, Null skip
        m = build_model(s, choices, COMBO_SHAPES, HEAD, rng)
        drug_dense = [l for n, l in m.layers.items()
                      if "B1" in n or "B2" in n]
        denses = [l for l in drug_dense if hasattr(l, "w")]
        assert len(denses) == 6
        for a, b in zip(denses[:3], denses[3:]):
            pass  # ordering within dict insertion: B1 nodes then B2 nodes
        shared_pairs = sum(
            1 for a in denses for b in denses if a is not b and a.w is b.w)
        assert shared_pairs == 6  # 3 pairs, counted both ways

    def test_random_archs_build_and_run(self, rng):
        s = combo_small(scale=0.02)
        for _ in range(10):
            arch = s.random_architecture(rng)
            m = build_model(s, arch.choices, COMBO_SHAPES, HEAD, rng)
            x = {k: rng.standard_normal((3,) + v)
                 for k, v in COMBO_SHAPES.items()}
            assert m.forward(x).shape == (3, 1)

    def test_large_random_archs_build(self, rng):
        s = combo_large(scale=0.02)
        for _ in range(5):
            arch = s.random_architecture(rng)
            m = build_model(s, arch.choices, COMBO_SHAPES, HEAD, rng)
            x = {k: rng.standard_normal((2,) + v)
                 for k, v in COMBO_SHAPES.items()}
            assert m.forward(x).shape == (2, 1)

    def test_scale_shrinks_units(self):
        ops = mlp_ops(scale=0.01)
        dense_units = sorted({op.units for op in ops
                              if isinstance(op, DenseOp)})
        assert dense_units == [1, 5, 10]

    def test_replicas_parameter(self):
        assert combo_large(replicas=3).num_actions == 6 + 3 * 4 + 3
        with pytest.raises(ValueError):
            combo_large(replicas=0)


class TestUnoStructure:
    def test_dose_block_is_constant(self):
        s = uno_small()
        dose_block = s.cells[0].blocks[1]
        assert dose_block.inputs == ["dose"]
        assert all(isinstance(n, ConstantNode) for n in dose_block.nodes)

    def test_residual_adds_present(self):
        s = uno_small()
        b = s.cells[1].blocks[0]
        assert [type(n).__name__ for n in b.nodes] == [
            "VariableNode", "VariableNode", "ConstantNode", "VariableNode",
            "ConstantNode"]
        assert b.extra_inputs == {2: [0], 4: [2]}

    def test_random_archs_build_and_run(self, rng):
        s = uno_small(scale=0.02)
        for _ in range(10):
            arch = s.random_architecture(rng)
            m = build_model(s, arch.choices, UNO_SHAPES, HEAD, rng)
            x = {k: rng.standard_normal((3,) + v)
                 for k, v in UNO_SHAPES.items()}
            assert m.forward(x).shape == (3, 1)

    def test_large_connect_options(self):
        s = uno_large()
        conn_dims = [d for d in s.action_dims if d != 13]
        assert conn_dims == [17, 19, 21, 23, 25, 27, 29, 31]

    def test_large_node_refs_resolve(self, rng):
        s = uno_large(scale=0.02)
        # pick the last connect option of the last cell (a previous-N0 ref)
        choices = []
        for node in s.variable_nodes:
            choices.append(node.num_ops - 1)
        m = build_model(s, choices, UNO_SHAPES, HEAD, rng)
        x = {k: rng.standard_normal((2,) + v) for k, v in UNO_SHAPES.items()}
        assert m.forward(x).shape == (2, 1)


class TestNT3Structure:
    def test_node_option_counts(self):
        s = nt3_small()
        assert s.action_dims == [5, 4, 5, 5, 4, 5, 9, 4, 7, 9, 4, 7]

    def test_random_archs_build_and_run(self, rng):
        s = nt3_small(scale=0.05)
        for _ in range(10):
            arch = s.random_architecture(rng)
            m = build_model(s, arch.choices, NT3_SHAPES, HEAD2, rng)
            x = {"rnaseq_expression": rng.standard_normal((3, 100, 1))}
            out = m.forward(x)
            assert out.shape == (3, 2)
            np.testing.assert_allclose(out.sum(axis=1), 1.0)

    def test_worst_case_choices_on_min_length(self, rng):
        # two kernel-6 convs + two pool-6 pools on the documented minimum
        s = nt3_small()
        choices = [4, 0, 4, 4, 0, 4, 0, 0, 0, 0, 0, 0]
        n = count_parameters(s, choices, {"rnaseq_expression": (71, 1)},
                             HEAD2)
        assert n > 0
        # one sample shorter fails shape inference
        with pytest.raises(ValueError):
            count_parameters(s, choices, {"rnaseq_expression": (70, 1)},
                             HEAD2)

    def test_all_identity_still_builds(self, rng):
        s = nt3_small()
        m = build_model(s, [0] * 12, NT3_SHAPES, HEAD2, rng)
        x = {"rnaseq_expression": rng.standard_normal((2, 100, 1))}
        assert m.forward(x).shape == (2, 2)


class TestRegistry:
    def test_get_space(self):
        assert get_space("combo-small").name == "combo-small"
        assert get_space("uno-large", scale=0.5).name == "uno-large"

    def test_unknown_space(self):
        with pytest.raises(ValueError):
            get_space("cifar")
