"""Unit tests for losses and metrics."""

import numpy as np
import pytest

from repro.nn.losses import (CategoricalCrossentropy, MeanSquaredError,
                             get_loss)
from repro.nn.metrics import accuracy, get_metric, r2_score


class TestMSE:
    def test_value(self):
        loss = MeanSquaredError()
        assert loss.value(np.array([1.0, 2.0]), np.array([1.0, 4.0])) == 2.0

    def test_zero_at_perfect(self):
        loss = MeanSquaredError()
        y = np.arange(5.0)
        assert loss.value(y, y) == 0.0

    def test_grad_matches_numeric(self, rng):
        loss = MeanSquaredError()
        p = rng.standard_normal((4, 2))
        t = rng.standard_normal((4, 2))
        g = loss.grad(p, t)
        eps = 1e-6
        pp, pm = p.copy(), p.copy()
        pp[1, 0] += eps
        pm[1, 0] -= eps
        num = (loss.value(pp, t) - loss.value(pm, t)) / (2 * eps)
        assert abs(num - g[1, 0]) < 1e-8


class TestCrossentropy:
    def test_perfect_prediction_near_zero(self):
        loss = CategoricalCrossentropy()
        t = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert loss.value(t, t) < 1e-9

    def test_uniform_prediction(self):
        loss = CategoricalCrossentropy()
        p = np.full((4, 2), 0.5)
        t = np.eye(2)[[0, 1, 0, 1]]
        assert abs(loss.value(p, t) - np.log(2)) < 1e-12

    def test_grad_matches_numeric(self, rng):
        loss = CategoricalCrossentropy()
        p = rng.random((3, 4)) + 0.1
        p /= p.sum(axis=1, keepdims=True)
        t = np.eye(4)[[0, 2, 3]]
        g = loss.grad(p, t)
        eps = 1e-7
        pp, pm = p.copy(), p.copy()
        pp[1, 2] += eps
        pm[1, 2] -= eps
        num = (loss.value(pp, t) - loss.value(pm, t)) / (2 * eps)
        assert abs(num - g[1, 2]) < 1e-5

    def test_clipping_avoids_infinities(self):
        loss = CategoricalCrossentropy()
        p = np.array([[0.0, 1.0]])
        t = np.array([[1.0, 0.0]])
        assert np.isfinite(loss.value(p, t))
        assert np.isfinite(loss.grad(p, t)).all()


class TestGetLoss:
    def test_lookup(self):
        assert isinstance(get_loss("mse"), MeanSquaredError)
        assert isinstance(get_loss("categorical_crossentropy"),
                          CategoricalCrossentropy)

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_loss("hinge")


class TestR2:
    def test_perfect(self):
        y = np.arange(10.0)
        assert r2_score(y, y) == 1.0

    def test_mean_predictor_zero(self):
        t = np.array([1.0, 2.0, 3.0])
        p = np.full(3, 2.0)
        assert abs(r2_score(p, t)) < 1e-12

    def test_unbounded_below(self):
        t = np.array([1.0, 2.0, 3.0])
        p = np.array([100.0, -50.0, 7.0])
        assert r2_score(p, t) < -1.0

    def test_constant_target_returns_zero(self):
        assert r2_score(np.array([1.0, 2.0]), np.array([3.0, 3.0])) == 0.0

    def test_shape_agnostic(self):
        t = np.arange(4.0)
        assert r2_score(t[:, None], t) == 1.0


class TestAccuracy:
    def test_probability_input(self):
        p = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        t = np.array([[1, 0], [0, 1], [0, 1]])
        assert accuracy(p, t) == pytest.approx(2 / 3)

    def test_label_input(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == \
            pytest.approx(2 / 3)

    def test_perfect(self):
        t = np.eye(3)
        assert accuracy(t, t) == 1.0


class TestGetMetric:
    def test_lookup(self):
        assert get_metric("r2") is r2_score
        assert get_metric("accuracy") is accuracy

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_metric("f1")
