"""Shared builders for the tabular-benchmark tests (not collected:
``python_files`` only matches ``test_*.py`` / ``bench_*.py``)."""

from repro.bench import SweepConfig, capped_space, sweep_space
from repro.hpc import TrainingCostModel
from repro.nas.spaces import get_space
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward

#: the metadata shape the CLI records — tests reuse it so resume
#: compatibility is exercised with realistic manifests
CLI_METADATA = {"problem": "combo", "size": "small", "scale": 0.05,
                "cap_ops": 2, "cap": None, "seed": 0,
                "reward": {"kind": "surrogate", "landscape_seed": 7,
                           "fraction": 1.0}}


def capped_combo(cap_ops: int = 2):
    """The standard test sub-space: combo-small with 2 options per
    decision (2^13 = 8192 architectures, exactly enumerable)."""
    return capped_space(get_space("combo-small", scale=0.05), cap_ops)


def combo_surrogate(space, seed: int = 7) -> SurrogateReward:
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(), epochs=1,
                           train_fraction=1.0, timeout=600.0, seed=seed)


def sweep_combo_table(out_dir, cap: int | None = 80, **cfg_kwargs):
    """Sweep a capped-combo table into ``out_dir``; returns
    (space, report)."""
    space = capped_combo()
    metadata = dict(CLI_METADATA, cap=cap)
    report = sweep_space(space, combo_surrogate(space), out_dir,
                         SweepConfig(cap=cap, **cfg_kwargs),
                         metadata=metadata)
    return space, report
