"""Unit tests for search-log persistence."""

import json

import pytest

from repro.analytics.io import (load_records, save_records,
                                save_result_summary)
from repro.nas.arch import Architecture
from repro.search.base import RewardRecord


def R(t, reward, arch_id=0, cached=False):
    return RewardRecord(time=t, agent_id=0,
                        arch=Architecture("s", (arch_id, 1)), reward=reward,
                        params=123, duration=4.5, cached=cached,
                        timed_out=False)


class TestRecordsRoundtrip:
    def test_roundtrip(self, tmp_path):
        records = [R(1.0, 0.5), R(2.0, -0.3, arch_id=2, cached=True)]
        path = tmp_path / "log.jsonl"
        save_records(records, path, metadata={"problem": "combo"})
        loaded, meta = load_records(path)
        assert loaded == records
        assert meta == {"problem": "combo"}

    def test_empty_log(self, tmp_path):
        path = tmp_path / "log.jsonl"
        save_records([], path)
        loaded, meta = load_records(path)
        assert loaded == [] and meta == {}

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"hello": 1}\n')
        with pytest.raises(ValueError):
            load_records(path)

    def test_rejects_truncated(self, tmp_path):
        path = tmp_path / "log.jsonl"
        save_records([R(1.0, 0.5), R(2.0, 0.6, arch_id=1)], path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError):
            load_records(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "log.jsonl"
        save_records([], path)
        header = json.loads(path.read_text().splitlines()[0])
        header["version"] = 99
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ValueError):
            load_records(path)


class TestSummary:
    def test_summary_fields(self, tmp_path):
        from repro.hpc import NodeAllocation, TrainingCostModel
        from repro.nas.spaces import combo_small
        from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
        from repro.rewards import SurrogateReward
        from repro.search import SearchConfig, run_search

        space = combo_small()
        rm = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                             TrainingCostModel.combo_paper(),
                             train_fraction=0.1, timeout=600.0, seed=1)
        cfg = SearchConfig(method="rdm", allocation=NodeAllocation(16, 2, 2),
                           wall_time=30 * 60, seed=1)
        result = run_search(space, rm, cfg)
        path = tmp_path / "summary.json"
        save_result_summary(result, path)
        summary = json.loads(path.read_text())
        assert summary["method"] == "rdm"
        assert summary["num_evaluations"] == result.num_evaluations
        assert summary["best"]["reward"] == result.best().reward
        assert len(summary["top"]) <= 50
        assert all(0.0 <= u <= 1.0 for _, u in summary["utilization"])
