"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hpc.cluster import Cluster
from repro.hpc.costmodel import TrainingCostModel
from repro.hpc.sim import Simulator, Timeout
from repro.nas.arch import Architecture
from repro.nas.builder import compile_architecture
from repro.nas.ops import DenseOp
from repro.nas.spaces import combo_small, nt3_small, uno_small
from repro.nn.layers import Dense
from repro.nn.merge import Add, Concatenate
from repro.nn.metrics import accuracy, r2_score

COMBO = combo_small(scale=0.02)
UNO = uno_small(scale=0.02)
NT3 = nt3_small(scale=0.05)
COMBO_SHAPES = {"cell_expression": (12,), "drug1_descriptors": (14,),
                "drug2_descriptors": (14,)}
UNO_SHAPES = {"cell_rnaseq": (12,), "dose": (1,), "drug_descriptors": (14,),
              "drug_fingerprints": (8,)}
NT3_SHAPES = {"rnaseq_expression": (80, 1)}
HEAD = [DenseOp(1, "linear")]


def choices_strategy(space):
    return st.tuples(*[st.integers(0, n.num_ops - 1)
                       for n in space.variable_nodes])


class TestSpaceProperties:
    @given(choices_strategy(COMBO))
    @settings(max_examples=40, deadline=None)
    def test_combo_decode_roundtrip(self, choices):
        arch = COMBO.decode(choices)
        assert arch.choices == tuple(choices)
        assert COMBO.decode(arch.choices) == arch

    @given(choices_strategy(COMBO))
    @settings(max_examples=25, deadline=None)
    def test_combo_plan_invariants(self, choices):
        plan = compile_architecture(COMBO, choices, COMBO_SHAPES, HEAD)
        assert plan.total_params > 0           # the head always has params
        assert plan.output_shape == (1,)
        assert plan.depth >= 1
        names = [n.name for n in plan.nodes]
        assert len(names) == len(set(names))   # unique plan-node names

    @given(choices_strategy(UNO))
    @settings(max_examples=25, deadline=None)
    def test_uno_plan_invariants(self, choices):
        plan = compile_architecture(UNO, choices, UNO_SHAPES, HEAD)
        assert plan.total_params > 0
        assert plan.output_shape == (1,)

    @given(choices_strategy(NT3))
    @settings(max_examples=25, deadline=None)
    def test_nt3_every_arch_compiles_at_sufficient_length(self, choices):
        plan = compile_architecture(
            NT3, choices, NT3_SHAPES, [DenseOp(2, "softmax")])
        assert plan.output_shape == (2,)

    @given(choices_strategy(COMBO))
    @settings(max_examples=25, deadline=None)
    def test_plan_matches_materialized_model(self, choices):
        plan = compile_architecture(COMBO, choices, COMBO_SHAPES, HEAD)
        model = plan.materialize(np.random.default_rng(0))
        assert model.num_params == plan.total_params
        x = {k: np.zeros((2,) + s) for k, s in COMBO_SHAPES.items()}
        assert model.forward(x).shape == (2, 1)

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_architecture_hash_consistency(self, choices):
        a = Architecture("s", tuple(choices))
        b = Architecture("s", tuple(choices))
        assert a == b and hash(a) == hash(b) and a.key == b.key


class TestMetricProperties:
    @given(st.lists(st.floats(-10, 10), min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_r2_of_exact_prediction_is_one_or_zero(self, ys):
        y = np.array(ys)
        r = r2_score(y, y)
        assert r == 1.0 or (r == 0.0 and np.allclose(y, y[0]))

    @given(st.lists(st.floats(-5, 5), min_size=3, max_size=40),
           st.floats(-5, 5))
    @settings(max_examples=50, deadline=None)
    def test_r2_constant_predictor_at_most_zero(self, ys, c):
        y = np.array(ys)
        if np.allclose(y, y[0]):
            return
        assert r2_score(np.full_like(y, c), y) <= 1e-12

    @given(st.integers(2, 6), st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_accuracy_bounds(self, classes, n):
        rng = np.random.default_rng(n)
        pred = rng.random((n, classes))
        target = np.eye(classes)[rng.integers(classes, size=n)]
        assert 0.0 <= accuracy(pred, target) <= 1.0


class TestMergeProperties:
    @given(st.lists(st.integers(1, 12), min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_concat_width_is_sum(self, widths):
        c = Concatenate()
        out = c.build_multi([(w,) for w in widths],
                            np.random.default_rng(0))
        assert out == (sum(widths),)
        xs = [np.ones((2, w)) for w in widths]
        assert c.forward_multi(xs).shape == (2, sum(widths))
        grads = c.backward_multi(np.ones((2, sum(widths))))
        assert [g.shape[1] for g in grads] == widths

    @given(st.lists(st.integers(1, 12), min_size=1, max_size=5))
    @settings(max_examples=30, deadline=None)
    def test_add_width_is_max(self, widths):
        a = Add()
        out = a.build_multi([(w,) for w in widths],
                            np.random.default_rng(0))
        assert out == (max(widths),)


class TestSimProperties:
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_clock_monotonic(self, delays):
        sim = Simulator()
        seen = []

        def proc(d):
            yield Timeout(d)
            seen.append(sim.now)

        for d in delays:
            sim.process(proc(d))
        sim.run()
        assert seen == sorted(seen)
        assert sim.now == max(delays)

    @given(st.integers(1, 6), st.lists(
        st.tuples(st.floats(0, 10), st.floats(0.1, 20)),
        min_size=1, max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_cluster_utilization_in_unit_interval(self, nodes, jobs):
        sim = Simulator()
        c = Cluster(sim, nodes)

        def job(start, hold):
            yield Timeout(start)
            yield c.acquire()
            yield Timeout(hold)
            c.release()

        for start, hold in jobs:
            sim.process(job(start, hold))
        sim.run()
        end = max(sim.now, 1e-9)
        assert 0.0 <= c.mean_utilization(end) <= 1.0 + 1e-12
        assert c.busy == 0  # every job released its node

    @given(st.integers(0, 10_000_000), st.integers(1, 20),
           st.floats(0.01, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_cost_model_monotone(self, params, epochs, fraction):
        cm = TrainingCostModel(samples_per_epoch=1000)
        d = cm.duration(params, epochs, fraction)
        assert d >= cm.startup
        assert cm.duration(params + 1000, epochs, fraction) >= d


class TestDenseProperties:
    @given(st.integers(1, 16), st.integers(1, 16), st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_param_count_formula(self, d_in, units, batch):
        rng = np.random.default_rng(0)
        layer = Dense(units)
        layer.build((d_in,), rng)
        assert layer.num_params == (d_in + 1) * units
        out = layer.forward(np.zeros((batch, d_in)))
        assert out.shape == (batch, units)
