"""Unit tests for core layers: Dense, Activation, Dropout, Identity."""

import numpy as np
import pytest

from repro.nn.layers import (ACTIVATIONS, Activation, Dense, Dropout,
                             Identity)
from repro.nn.tensor import Parameter

from helpers import assert_grad_matches


def _built(layer, shape, rng):
    layer.build(shape, rng)
    return layer


class TestDense:
    def test_output_shape(self, rng):
        d = _built(Dense(7, "relu"), (5,), rng)
        assert d.output_shape == (7,)
        out = d.forward(rng.standard_normal((3, 5)))
        assert out.shape == (3, 7)

    def test_param_count(self, rng):
        d = _built(Dense(10, "relu"), (4,), rng)
        assert d.num_params == (4 + 1) * 10

    @pytest.mark.parametrize("act", ["relu", "tanh", "sigmoid", "linear",
                                     "softmax"])
    def test_gradcheck(self, act, rng):
        d = _built(Dense(6, act), (4,), rng)
        x = rng.standard_normal((5, 4))
        w = rng.standard_normal((5, 6))  # random projection to scalar

        def f():
            return float(np.sum(d.forward(x) * w))

        d.forward(x)
        for p in d.parameters():
            p.zero_grad()
        d.backward(w)
        assert_grad_matches(f, d.parameters(), rng)

    def test_gradcheck_input(self, rng):
        d = _built(Dense(6, "tanh"), (4,), rng)
        x = rng.standard_normal((3, 4))
        d.forward(x)
        grad_in = d.backward(np.ones((3, 6)))
        eps = 1e-6
        xp = x.copy()
        xp[1, 2] += eps
        xm = x.copy()
        xm[1, 2] -= eps
        num = (d.forward(xp).sum() - d.forward(xm).sum()) / (2 * eps)
        assert abs(num - grad_in[1, 2]) < 1e-6

    def test_share_from_shares_arrays(self, rng):
        a = _built(Dense(6, "relu"), (4,), rng)
        b = Dense(6, "relu", share_from=a)
        b.build((4,), rng)
        assert b.w is a.w and b.b is a.b

    def test_share_from_shape_mismatch(self, rng):
        a = _built(Dense(6, "relu"), (4,), rng)
        b = Dense(6, "relu", share_from=a)
        with pytest.raises(ValueError):
            b.build((5,), rng)

    def test_share_from_unbuilt_raises(self, rng):
        a = Dense(6, "relu")
        b = Dense(6, "relu", share_from=a)
        with pytest.raises(RuntimeError):
            b.build((4,), rng)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Dense(0)
        with pytest.raises(ValueError):
            Dense(5, "swish")

    def test_rejects_rank2_input(self, rng):
        with pytest.raises(ValueError):
            Dense(3).build((4, 2), rng)

    def test_softmax_rows_sum_to_one(self, rng):
        d = _built(Dense(5, "softmax"), (4,), rng)
        out = d.forward(rng.standard_normal((6, 4)))
        np.testing.assert_allclose(out.sum(axis=1), 1.0)
        assert (out >= 0).all()


class TestActivation:
    @pytest.mark.parametrize("act", ["relu", "tanh", "sigmoid", "linear"])
    def test_matches_reference(self, act, rng):
        a = _built(Activation(act), (4,), rng)
        x = rng.standard_normal((3, 4))
        fn, _ = ACTIVATIONS[act]
        np.testing.assert_allclose(a.forward(x), fn(x))

    @pytest.mark.parametrize("act", ["relu", "tanh", "sigmoid", "softmax"])
    def test_backward_matches_numeric(self, act, rng):
        a = _built(Activation(act), (4,), rng)
        x = rng.standard_normal((3, 4)) + 0.1  # avoid relu kink
        a.forward(x)
        g = a.backward(np.ones((3, 4)))
        eps = 1e-6
        xp, xm = x.copy(), x.copy()
        xp[0, 1] += eps
        xm[0, 1] -= eps
        num = (a.forward(xp).sum() - a.forward(xm).sum()) / (2 * eps)
        assert abs(num - g[0, 1]) < 1e-6

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            Activation("gelu")


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        d = _built(Dropout(0.5), (8,), rng)
        x = rng.standard_normal((4, 8))
        np.testing.assert_array_equal(d.forward(x, training=False), x)

    def test_training_zeroes_and_scales(self, rng):
        d = _built(Dropout(0.5), (1000,), rng)
        x = np.ones((2, 1000))
        out = d.forward(x, training=True)
        dropped = (out == 0).mean()
        assert 0.35 < dropped < 0.65
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted scaling

    def test_backward_uses_same_mask(self, rng):
        d = _built(Dropout(0.3), (50,), rng)
        x = np.ones((3, 50))
        out = d.forward(x, training=True)
        g = d.backward(np.ones_like(out))
        np.testing.assert_array_equal((g == 0), (out == 0))

    def test_zero_rate_passthrough(self, rng):
        d = _built(Dropout(0.0), (5,), rng)
        x = rng.standard_normal((2, 5))
        np.testing.assert_array_equal(d.forward(x, training=True), x)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_mask_reproducible_from_build_rng(self):
        x = np.ones((2, 100))
        outs = []
        for _ in range(2):
            d = Dropout(0.5)
            d.build((100,), np.random.default_rng(7))
            outs.append(d.forward(x, training=True))
        np.testing.assert_array_equal(outs[0], outs[1])


class TestIdentity:
    def test_passthrough_both_ways(self, rng):
        layer = _built(Identity(), (4,), rng)
        x = rng.standard_normal((3, 4))
        np.testing.assert_array_equal(layer.forward(x), x)
        np.testing.assert_array_equal(layer.backward(x), x)
        assert layer.num_params == 0


class TestParameter:
    def test_zero_grad(self):
        p = Parameter(np.ones((2, 3)))
        p.grad += 5.0
        p.zero_grad()
        np.testing.assert_array_equal(p.grad, 0.0)

    def test_size_and_shape(self):
        p = Parameter(np.ones((2, 3)))
        assert p.size == 6
        assert p.shape == (2, 3)
