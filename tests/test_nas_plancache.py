"""Tests for the isomorphism-keyed compile cache (repro.nas.plancache).

Covers the ISSUE 6 acceptance points: isomorphic architectures share one
plan object, non-isomorphic ones do not, cached and fresh compilation
are interchangeable (bit-identical search fingerprints), and cache state
survives checkpoint/resume.
"""

import numpy as np
import pytest

from repro.hpc import NodeAllocation, TrainingCostModel
from repro.nas.builder import compile_architecture
from repro.nas.nodes import VariableNode
from repro.nas.plancache import PlanCache, plan_signature
from repro.nas.space import Block, Cell, Structure
from repro.nas.spaces import combo_small
from repro.nas.ops import DenseOp, DropoutOp
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search import NasSearch, SearchConfig, resume_search, run_search

SHAPES = {"x": (8,)}


def dup_space():
    """One variable node whose option list repeats an operation, so
    choices 0 and 1 decode to structurally identical networks while
    choice 2 does not."""
    s = Structure("dup", ["x"], output_sources="last_cell")
    node = VariableNode("N0", [DenseOp(16), DenseOp(16), DenseOp(32)])
    s.add_cell(Cell("C0").add_block(Block("B0", ["x"]).add_node(node)))
    s.validate()
    return s


def make_surrogate(space, seed=7):
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(), epochs=1,
                           train_fraction=0.1, timeout=600.0, seed=seed)


def small_config(minutes=20, **kwargs):
    defaults = dict(method="a3c", allocation=NodeAllocation(32, 4, 3),
                    wall_time=minutes * 60.0, seed=1)
    defaults.update(kwargs)
    return SearchConfig(**defaults)


class TestPlanSignature:
    def test_isomorphic_choices_same_signature(self):
        s = dup_space()
        p0 = compile_architecture(s, (0,), SHAPES)
        p1 = compile_architecture(s, (1,), SHAPES)
        assert p0 is not p1
        assert plan_signature(p0) == plan_signature(p1)

    def test_different_ops_different_signature(self):
        s = dup_space()
        p0 = compile_architecture(s, (0,), SHAPES)
        p2 = compile_architecture(s, (2,), SHAPES)
        assert plan_signature(p0) != plan_signature(p2)

    def test_signature_deterministic(self):
        space = combo_small()
        rng = np.random.default_rng(3)
        for _ in range(5):
            arch = space.random_architecture(rng)
            plans = [compile_architecture(space, arch.choices,
                                          COMBO_PAPER_SHAPES, combo_head())
                     for _ in range(2)]
            assert plan_signature(plans[0]) == plan_signature(plans[1])

    def test_op_params_distinguish(self):
        # same op type, different constructor state -> different plan
        s1 = Structure("d1", ["x"])
        s1.add_cell(Cell("C0").add_block(
            Block("B0", ["x"]).add_node(VariableNode("N0", [DropoutOp(0.1)]))))
        s2 = Structure("d1", ["x"])
        s2.add_cell(Cell("C0").add_block(
            Block("B0", ["x"]).add_node(VariableNode("N0", [DropoutOp(0.5)]))))
        p1 = compile_architecture(s1, (0,), SHAPES)
        p2 = compile_architecture(s2, (0,), SHAPES)
        assert plan_signature(p1) != plan_signature(p2)


class TestPlanCache:
    def test_exact_hit_returns_same_object(self):
        cache = PlanCache()
        s = dup_space()
        p = cache.get_or_compile(s, (0,), SHAPES)
        assert cache.get_or_compile(s, (0,), SHAPES) is p
        assert cache.stats() == {"entries": 1, "unique_plans": 1,
                                 "hits": 1, "misses": 1, "iso_hits": 0}

    def test_isomorphic_architectures_share_one_plan(self):
        cache = PlanCache()
        s = dup_space()
        p0 = cache.get_or_compile(s, (0,), SHAPES)
        p1 = cache.get_or_compile(s, (1,), SHAPES)
        assert p1 is p0                      # aliased to the first compile
        assert cache.iso_hits == 1
        assert len(cache) == 2               # two exact keys, one plan
        assert cache.stats()["unique_plans"] == 1

    def test_non_isomorphic_architectures_do_not_share(self):
        cache = PlanCache()
        s = dup_space()
        p0 = cache.get_or_compile(s, (0,), SHAPES)
        p2 = cache.get_or_compile(s, (2,), SHAPES)
        assert p2 is not p0
        assert cache.iso_hits == 0
        assert cache.stats()["unique_plans"] == 2

    def test_numpy_choices_normalized(self):
        cache = PlanCache()
        s = dup_space()
        p = cache.get_or_compile(s, (np.int64(0),), SHAPES)
        assert cache.get_or_compile(s, (0,), SHAPES) is p

    def test_compile_error_propagates_and_not_cached(self):
        cache = PlanCache()
        s = dup_space()
        with pytest.raises(KeyError):
            cache.get_or_compile(s, (0,), {"wrong_input": (8,)})
        assert len(cache) == 0
        with pytest.raises(KeyError):   # still re-attemptable, still raises
            cache.get_or_compile(s, (0,), {"wrong_input": (8,)})

    def test_max_entries_bounds_memory(self):
        cache = PlanCache(max_entries=2)
        s = dup_space()
        for choice in (0, 1, 2):
            cache.get_or_compile(s, (choice,), SHAPES)
        assert len(cache) <= 2

    def test_snapshot_restore_roundtrip(self):
        cache = PlanCache()
        s = dup_space()
        originals = {c: cache.get_or_compile(s, (c,), SHAPES)
                     for c in (0, 1, 2)}
        snap = cache.snapshot()

        restored = PlanCache()
        restored.restore(snap, s, SHAPES)
        assert restored.stats() == cache.stats()
        for c, original in originals.items():
            again = restored.get_or_compile(s, (c,), SHAPES)
            assert plan_signature(again) == plan_signature(original)
        # aliasing preserved: choices 0 and 1 still share one object
        assert restored.get_or_compile(s, (0,), SHAPES) \
            is restored.get_or_compile(s, (1,), SHAPES)

    def test_restore_skips_foreign_structures(self):
        cache = PlanCache()
        s = dup_space()
        cache.get_or_compile(s, (0,), SHAPES)
        snap = cache.snapshot()
        other = combo_small()
        restored = PlanCache()
        restored.restore(snap, other, COMBO_PAPER_SHAPES, combo_head())
        assert len(restored) == 0           # key belongs to "dup", skipped
        assert restored.hits == cache.hits  # counters still authoritative


class TestSearchIntegration:
    @pytest.fixture(scope="class")
    def space(self):
        return combo_small()

    def test_cached_matches_fresh_compile_fingerprint(self, space):
        """The plan cache must be invisible to the trajectory: cached and
        fresh compilation give bit-identical search fingerprints."""
        cfg_on = small_config(plan_cache=True)
        cfg_off = small_config(plan_cache=False)
        fp_on = run_search(space, make_surrogate(space), cfg_on).fingerprint()
        fp_off = run_search(space, make_surrogate(space),
                            cfg_off).fingerprint()
        assert fp_on == fp_off

    def test_runner_attaches_shared_cache(self, space):
        surrogate = make_surrogate(space)
        assert surrogate.plan_cache is None
        run_search(space, surrogate, small_config())
        cache = surrogate.plan_cache
        assert cache is not None
        assert len(cache) > 0
        assert cache.hits > 0               # resubmissions were amortized

    def test_plan_cache_off_leaves_model_untouched(self, space):
        surrogate = make_surrogate(space)
        run_search(space, surrogate, small_config(plan_cache=False))
        assert surrogate.plan_cache is None

    def test_cache_survives_checkpoint_resume(self, space):
        """Resuming keeps the reward model's warm cache (the runner must
        not replace an attached cache) and reproduces the fingerprint."""
        surrogate = make_surrogate(space)
        cfg = small_config(minutes=30, checkpoint_interval=600.0)
        search = NasSearch(space, surrogate, cfg)
        full = search.run()
        cache = surrogate.plan_cache
        assert cache is not None and len(cache) > 0
        warm_entries = len(cache)

        mid = search.checkpoints[len(search.checkpoints) // 2]
        resumed = resume_search(space, surrogate, mid.round_trip(),
                                small_config(minutes=30))
        assert surrogate.plan_cache is cache       # same warm cache
        assert len(cache) >= warm_entries
        assert resumed.fingerprint() == full.fingerprint()
