"""Golden-file test pinning the checkpoint v1 JSON wire format.

The schema (recursive key -> type-name mapping, values elided) of a
deterministic checkpoint is pinned in ``tests/golden/``.  Renaming,
removing, or re-typing a field changes the schema and fails this test —
which is the point: v1 checkpoints on disk must stay loadable, so any
wire-format change requires bumping ``FORMAT_VERSION`` and updating the
golden file deliberately.

Regenerate (after an intentional format bump) with::

    PYTHONPATH=src python tests/test_search_checkpoint_golden.py
"""

import json
from pathlib import Path

from repro.hpc import NodeAllocation, TrainingCostModel
from repro.nas.spaces import get_space
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search import SearchConfig
from repro.search.checkpoint import FORMAT_VERSION, SearchCheckpoint
from repro.search.runner import NasSearch

GOLDEN = Path(__file__).parent / "golden" / "checkpoint_v1_schema.json"


def schema_of(obj):
    """Recursive key -> type-name schema; lists collapse to their first
    element's schema (the formats here are homogeneous)."""
    if isinstance(obj, dict):
        return {key: schema_of(value) for key, value in sorted(obj.items())}
    if isinstance(obj, list):
        return ["empty"] if not obj else [schema_of(obj[0])]
    if obj is None:
        return "null"
    if isinstance(obj, bool):
        return "bool"
    if isinstance(obj, int):
        return "int"
    if isinstance(obj, float):
        return "float"
    if isinstance(obj, str):
        return "str"
    return type(obj).__name__


def make_checkpoint() -> SearchCheckpoint:
    """A deterministic mid-run checkpoint exercising every field:
    populated records, live boundaries, cache entries."""
    space = get_space("combo-small", scale=0.05)
    surrogate = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                                TrainingCostModel.combo_paper(),
                                epochs=1, train_fraction=0.1,
                                timeout=600.0, seed=7)
    cfg = SearchConfig(method="a3c", allocation=NodeAllocation(32, 4, 3),
                       wall_time=30 * 60.0, seed=1,
                       checkpoint_interval=300.0)
    search = NasSearch(space, surrogate, cfg)
    search.run()
    # a mid-run capture: agents in flight, boundaries + caches populated
    return search.checkpoints[len(search.checkpoints) // 2]


def test_checkpoint_v1_schema_is_pinned():
    ckpt = make_checkpoint()
    wire = json.loads(json.dumps(ckpt.to_json()))
    assert wire["version"] == FORMAT_VERSION == 1
    golden = json.loads(GOLDEN.read_text())
    assert schema_of(wire) == golden, (
        "checkpoint wire format changed; if intentional, bump "
        "FORMAT_VERSION and regenerate tests/golden/ (see module "
        "docstring)")


def test_checkpoint_schema_exercises_all_sections():
    """The pinned snapshot must actually cover the interesting parts —
    a vacuous golden (empty records/agents) would pin nothing."""
    ckpt = make_checkpoint()
    wire = ckpt.to_json()
    assert wire["records"], "no records captured"
    assert wire["agents"], "no agents captured"
    boundaries = [a["boundary"] for a in wire["agents"]
                  if a["boundary"] is not None]
    assert boundaries, "no live agent boundary captured"
    assert boundaries[0]["policy_flat"], "no policy parameters captured"
    assert any(a["cache"] for a in wire["agents"]), "no cache entries"


def test_golden_round_trips_through_loader():
    """What the golden pins is exactly what from_json accepts."""
    ckpt = make_checkpoint()
    restored = SearchCheckpoint.from_json(
        json.loads(json.dumps(ckpt.to_json())))
    assert restored.fingerprint() == ckpt.fingerprint()
    assert len(restored.records) == len(ckpt.records)
    assert len(restored.agents) == len(ckpt.agents)


if __name__ == "__main__":  # regenerate the golden file
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    wire = json.loads(json.dumps(make_checkpoint().to_json()))
    GOLDEN.write_text(json.dumps(schema_of(wire), indent=2) + "\n")
    print(f"wrote {GOLDEN}")
