"""Unit tests for the multi-objective composite reward."""

import pytest

from repro.nas.arch import Architecture
from repro.rewards import CompositeReward
from repro.rewards.base import EvalResult, RewardModel


class Stub(RewardModel):
    def __init__(self, reward=0.8, params=10_000_000, duration=600.0):
        self._res = EvalResult(reward, duration, params)

    def evaluate(self, arch, agent_seed=0):
        return self._res


ARCH = Architecture("s", (0,))


class TestCompositeReward:
    def test_no_weights_is_identity(self):
        base = Stub()
        cr = CompositeReward(base)
        assert cr.evaluate(ARCH) == base.evaluate(ARCH)

    def test_params_penalty_above_target(self):
        cr = CompositeReward(Stub(params=10_000_000),
                             params_weight=0.1, params_target=1_000_000)
        # one decade over target: penalty 0.1
        assert cr.evaluate(ARCH).reward == pytest.approx(0.7)

    def test_no_penalty_below_target(self):
        cr = CompositeReward(Stub(params=500_000),
                             params_weight=0.1, params_target=1_000_000)
        assert cr.evaluate(ARCH).reward == pytest.approx(0.8)

    def test_time_penalty(self):
        cr = CompositeReward(Stub(duration=600.0),
                             time_weight=0.2, time_target=60.0)
        assert cr.evaluate(ARCH).reward == pytest.approx(0.8 - 0.2)

    def test_combined_penalties(self):
        cr = CompositeReward(Stub(params=10_000_000, duration=600.0),
                             params_weight=0.1, params_target=1_000_000,
                             time_weight=0.2, time_target=60.0)
        assert cr.evaluate(ARCH).reward == pytest.approx(0.8 - 0.1 - 0.2)

    def test_accuracy_floor_bypasses_penalties(self):
        cr = CompositeReward(Stub(reward=0.1, params=10_000_000),
                             params_weight=1.0, params_target=1.0,
                             accuracy_floor=0.5)
        assert cr.evaluate(ARCH).reward == pytest.approx(0.1)

    def test_metadata_passthrough(self):
        base = Stub(params=123, duration=4.5)
        cr = CompositeReward(base, params_weight=0.1)
        res = cr.evaluate(ARCH)
        assert res.params == 123 and res.duration == 4.5

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            CompositeReward(Stub(), params_weight=-1.0)
        with pytest.raises(ValueError):
            CompositeReward(Stub(), params_target=0.0)

    def test_steers_ranking_toward_small(self):
        """Two equal-accuracy architectures: the smaller one wins under a
        parameter penalty — the paper's fixed-accuracy size objective."""
        big = Stub(reward=0.8, params=20_000_000)
        small = Stub(reward=0.8, params=1_000_000)
        kwargs = dict(params_weight=0.2, params_target=1_000_000)
        assert CompositeReward(small, **kwargs).evaluate(ARCH).reward > \
            CompositeReward(big, **kwargs).evaluate(ARCH).reward
