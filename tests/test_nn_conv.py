"""Unit tests for Conv1D, MaxPooling1D, Flatten."""

import numpy as np
import pytest

from repro.nn.conv import Conv1D, Flatten, MaxPooling1D

from helpers import assert_grad_matches


class TestConv1D:
    def test_valid_padding_shape(self, rng):
        c = Conv1D(8, 5)
        assert c.build((20, 3), rng) == (16, 8)

    def test_stride_shape(self, rng):
        c = Conv1D(4, 3, strides=2)
        assert c.build((11, 2), rng) == (5, 4)

    def test_param_count(self, rng):
        c = Conv1D(8, 5)
        c.build((20, 3), rng)
        assert c.num_params == (5 * 3 + 1) * 8

    def test_matches_naive_convolution(self, rng):
        c = Conv1D(2, 3)
        c.build((7, 2), rng)
        x = rng.standard_normal((1, 7, 2))
        out = c.forward(x)
        for l in range(5):
            for f in range(2):
                ref = np.sum(x[0, l:l + 3] * c.w.value[:, :, f]) + c.b.value[f]
                assert abs(out[0, l, f] - ref) < 1e-12

    @pytest.mark.parametrize("strides", [1, 2, 3])
    def test_gradcheck(self, strides, rng):
        c = Conv1D(3, 4, strides=strides, activation="tanh")
        c.build((13, 2), rng)
        x = rng.standard_normal((2, 13, 2))

        def f():
            return float(np.sum(c.forward(x)))

        c.forward(x)
        for p in c.parameters():
            p.zero_grad()
        grad_in = c.backward(np.ones(c.forward(x).shape))
        assert_grad_matches(f, c.parameters(), rng)
        # input gradient
        eps = 1e-6
        i = (1, 5, 0)
        xp, xm = x.copy(), x.copy()
        xp[i] += eps
        xm[i] -= eps
        num = (c.forward(xp).sum() - c.forward(xm).sum()) / (2 * eps)
        assert abs(num - grad_in[i]) < 1e-6

    def test_too_short_input_raises(self, rng):
        with pytest.raises(ValueError):
            Conv1D(2, 10).build((5, 1), rng)

    def test_rank1_input_raises(self, rng):
        with pytest.raises(ValueError):
            Conv1D(2, 3).build((5,), rng)

    def test_invalid_ctor(self):
        with pytest.raises(ValueError):
            Conv1D(0, 3)
        with pytest.raises(ValueError):
            Conv1D(2, 3, strides=0)


class TestMaxPooling1D:
    def test_shape_floor(self, rng):
        p = MaxPooling1D(3)
        assert p.build((10, 4), rng) == (3, 4)

    def test_pool_size_one_is_identity(self, rng):
        p = MaxPooling1D(1)
        p.build((6, 2), rng)
        x = rng.standard_normal((3, 6, 2))
        np.testing.assert_array_equal(p.forward(x), x)

    def test_forward_matches_naive(self, rng):
        p = MaxPooling1D(2)
        p.build((6, 2), rng)
        x = rng.standard_normal((2, 6, 2))
        out = p.forward(x)
        ref = np.maximum(x[:, 0::2], x[:, 1::2])
        np.testing.assert_allclose(out, ref)

    def test_backward_routes_to_argmax(self, rng):
        p = MaxPooling1D(2)
        p.build((4, 1), rng)
        x = np.array([[[1.0], [5.0], [2.0], [0.5]]])
        p.forward(x)
        g = p.backward(np.array([[[10.0], [20.0]]]))
        np.testing.assert_array_equal(
            g, np.array([[[0.0], [10.0], [20.0], [0.0]]]))

    def test_backward_drops_remainder(self, rng):
        p = MaxPooling1D(2)
        p.build((5, 1), rng)
        x = rng.standard_normal((1, 5, 1))
        p.forward(x)
        g = p.backward(np.ones((1, 2, 1)))
        assert g[0, 4, 0] == 0.0  # truncated tail receives no gradient

    def test_exhausted_length_raises(self, rng):
        with pytest.raises(ValueError):
            MaxPooling1D(10).build((5, 1), rng)


class TestFlatten:
    def test_roundtrip(self, rng):
        f = Flatten()
        assert f.build((4, 3), rng) == (12,)
        x = rng.standard_normal((2, 4, 3))
        out = f.forward(x)
        assert out.shape == (2, 12)
        back = f.backward(out)
        np.testing.assert_array_equal(back, x)
