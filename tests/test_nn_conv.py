"""Unit tests for Conv1D, MaxPooling1D, Flatten."""

import numpy as np
import pytest

from repro.nn.conv import Conv1D, Flatten, MaxPooling1D

from helpers import assert_grad_matches


class TestConv1D:
    def test_valid_padding_shape(self, rng):
        c = Conv1D(8, 5)
        assert c.build((20, 3), rng) == (16, 8)

    def test_stride_shape(self, rng):
        c = Conv1D(4, 3, strides=2)
        assert c.build((11, 2), rng) == (5, 4)

    def test_param_count(self, rng):
        c = Conv1D(8, 5)
        c.build((20, 3), rng)
        assert c.num_params == (5 * 3 + 1) * 8

    def test_matches_naive_convolution(self, rng):
        c = Conv1D(2, 3)
        c.build((7, 2), rng)
        x = rng.standard_normal((1, 7, 2))
        out = c.forward(x)
        for l in range(5):
            for f in range(2):
                ref = np.sum(x[0, l:l + 3] * c.w.value[:, :, f]) + c.b.value[f]
                assert abs(out[0, l, f] - ref) < 1e-12

    @pytest.mark.parametrize("strides", [1, 2, 3])
    def test_gradcheck(self, strides, rng):
        c = Conv1D(3, 4, strides=strides, activation="tanh")
        c.build((13, 2), rng)
        x = rng.standard_normal((2, 13, 2))

        def f():
            return float(np.sum(c.forward(x)))

        c.forward(x)
        for p in c.parameters():
            p.zero_grad()
        grad_in = c.backward(np.ones(c.forward(x).shape))
        assert_grad_matches(f, c.parameters(), rng)
        # input gradient
        eps = 1e-6
        i = (1, 5, 0)
        xp, xm = x.copy(), x.copy()
        xp[i] += eps
        xm[i] -= eps
        num = (c.forward(xp).sum() - c.forward(xm).sum()) / (2 * eps)
        assert abs(num - grad_in[i]) < 1e-6

    def test_too_short_input_raises(self, rng):
        with pytest.raises(ValueError):
            Conv1D(2, 10).build((5, 1), rng)

    def test_rank1_input_raises(self, rng):
        with pytest.raises(ValueError):
            Conv1D(2, 3).build((5,), rng)

    def test_invalid_ctor(self):
        with pytest.raises(ValueError):
            Conv1D(0, 3)
        with pytest.raises(ValueError):
            Conv1D(2, 3, strides=0)


class TestMaxPooling1D:
    def test_shape_floor(self, rng):
        p = MaxPooling1D(3)
        assert p.build((10, 4), rng) == (3, 4)

    def test_pool_size_one_is_identity(self, rng):
        p = MaxPooling1D(1)
        p.build((6, 2), rng)
        x = rng.standard_normal((3, 6, 2))
        np.testing.assert_array_equal(p.forward(x), x)

    def test_forward_matches_naive(self, rng):
        p = MaxPooling1D(2)
        p.build((6, 2), rng)
        x = rng.standard_normal((2, 6, 2))
        out = p.forward(x)
        ref = np.maximum(x[:, 0::2], x[:, 1::2])
        np.testing.assert_allclose(out, ref)

    def test_backward_routes_to_argmax(self, rng):
        p = MaxPooling1D(2)
        p.build((4, 1), rng)
        x = np.array([[[1.0], [5.0], [2.0], [0.5]]])
        p.forward(x)
        g = p.backward(np.array([[[10.0], [20.0]]]))
        np.testing.assert_array_equal(
            g, np.array([[[0.0], [10.0], [20.0], [0.0]]]))

    def test_backward_drops_remainder(self, rng):
        p = MaxPooling1D(2)
        p.build((5, 1), rng)
        x = rng.standard_normal((1, 5, 1))
        p.forward(x)
        g = p.backward(np.ones((1, 2, 1)))
        assert g[0, 4, 0] == 0.0  # truncated tail receives no gradient

    def test_exhausted_length_raises(self, rng):
        with pytest.raises(ValueError):
            MaxPooling1D(10).build((5, 1), rng)


class TestFlatten:
    def test_roundtrip(self, rng):
        f = Flatten()
        assert f.build((4, 3), rng) == (12,)
        x = rng.standard_normal((2, 4, 3))
        out = f.forward(x)
        assert out.shape == (2, 12)
        back = f.backward(out)
        np.testing.assert_array_equal(back, x)


class TestPooledScratchBatchTail:
    """Regression: the conv/pool scratch pool keys on the full buffer
    shape, so a smaller final batch (an uneven dataset tail) must get its
    own buffers and leave the steady-state ones untouched."""

    def _conv_model(self):
        from repro.nn import Conv1D as C, Dense, GraphModel
        from repro.nn import Flatten as F, MaxPooling1D as P

        m = GraphModel()
        m.add_input("x", (64, 1))
        m.add("c1", C(4, 7, activation="relu"), ["x"])
        m.add("p1", P(2), ["c1"])
        m.add("c2", C(4, 5, activation="relu"), ["p1"])
        m.add("p2", P(2), ["c2"])
        m.add("f", F(), ["p2"])
        m.add("y", Dense(1), ["f"])
        m.set_output("y")
        m.build(np.random.default_rng(0))
        return m

    def _step(self, m, batch, seed):
        rng = np.random.default_rng(seed)
        x = {"x": rng.standard_normal((batch, 64, 1)).astype(m.dtype)}
        out = m.forward(x, training=True).copy()
        m.zero_grad()
        m.backward(np.ones((batch, 1), dtype=m.dtype) / batch)
        grads = {p.name: p.grad.copy() for p in m.parameters()}
        return out, grads

    def test_uneven_tail_batch_matches_fresh_model(self):
        """Full batches, then a short tail, then full again — each pass
        must match a fresh model that only ever saw that batch."""
        warm = self._conv_model()
        for batch, seed in [(16, 0), (16, 1), (5, 2), (16, 3)]:
            fresh = self._conv_model()
            out_w, grads_w = self._step(warm, batch, seed)
            out_f, grads_f = self._step(fresh, batch, seed)
            np.testing.assert_array_equal(out_w, out_f)
            assert grads_w.keys() == grads_f.keys()
            for name in grads_w:
                np.testing.assert_array_equal(grads_w[name], grads_f[name],
                                              err_msg=name)

    def test_alternating_batches_keep_separate_buffers(self):
        """Interleaved batch sizes reuse pooled buffers per shape; the
        large batch's results must be identical before and after a small
        batch ran through the same layers."""
        m = self._conv_model()
        out_a, grads_a = self._step(m, 16, 0)
        self._step(m, 3, 1)
        out_b, grads_b = self._step(m, 16, 0)
        np.testing.assert_array_equal(out_a, out_b)
        for name in grads_a:
            np.testing.assert_array_equal(grads_a[name], grads_b[name],
                                          err_msg=name)
