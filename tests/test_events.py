"""Tests for the structured search-event stream (repro.events).

The ordering test is the acceptance check for the runtime refactor: it
asserts the submit → eval-done → push → barrier sequence of one a2c
round purely from the event stream, never touching private runner
state.
"""

import json

import pytest

from repro.events import (AGENT_DONE, BARRIER, BATCH_STATS, CACHE_HIT,
                          EVAL_DONE, PUSH,
                          RESTART, ROLLBACK, SUBMIT, CallbackSink, JsonlSink,
                          NullSink, RecordingSink, SearchEvent, TeeSink,
                          emit, read_events)
from repro.health import GuardConfig
from repro.hpc import NodeAllocation, TrainingCostModel
from repro.hpc.faults import FaultConfig
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search import NasSearch, SearchConfig


@pytest.fixture(scope="module")
def space():
    return combo_small()


def make_surrogate(space, seed=7):
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(), epochs=1,
                           train_fraction=0.1, timeout=600.0, seed=seed)


def small_config(method, minutes=40, **kwargs):
    defaults = dict(method=method, allocation=NodeAllocation(32, 4, 3),
                    wall_time=minutes * 60.0, seed=1)
    defaults.update(kwargs)
    return SearchConfig(**defaults)


class TestSinks:
    def test_emit_none_sink_is_noop(self):
        emit(None, SUBMIT, 0.0, 1, count=4)     # must not raise

    def test_null_sink_discards(self):
        sink = NullSink()
        emit(sink, SUBMIT, 0.0, 1)

    def test_recording_sink_accumulates_in_order(self):
        sink = RecordingSink()
        emit(sink, SUBMIT, 0.0, 1, count=4)
        emit(sink, EVAL_DONE, 1.0, 1, reward=0.5, failed=False)
        assert sink.kinds() == [SUBMIT, EVAL_DONE]
        assert len(sink) == 2
        assert sink.of_kind(EVAL_DONE)[0].payload["reward"] == 0.5

    def test_callback_and_tee(self):
        seen = []
        rec = RecordingSink()
        tee = TeeSink(CallbackSink(seen.append), rec, None)
        emit(tee, PUSH, 2.0, 0, 3, mode="a3c")
        assert len(seen) == 1 and len(rec) == 1
        assert seen[0].iteration == 3

    def test_event_serializes(self):
        ev = SearchEvent(BARRIER, 12.5, agent_id=2, iteration=1,
                         payload={"round": 4})
        assert json.loads(json.dumps(ev.to_dict()))["payload"]["round"] == 4


class TestJsonlSink:
    def test_streams_one_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            emit(sink, SUBMIT, 0.0, 1, count=4)
            # flushed per event: readable while the sink is still open
            assert len(path.read_text().splitlines()) == 1
            emit(sink, EVAL_DONE, 1.0, 1, reward=0.5, failed=False)
            assert sink.num_written == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == SUBMIT

    def test_read_events_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sent = [SearchEvent(SUBMIT, 0.0, agent_id=1, payload={"count": 2}),
                SearchEvent(PUSH, 2.0, agent_id=0, iteration=3,
                            payload={"mode": "a3c"})]
        with JsonlSink(path) as sink:
            for ev in sent:
                sink.emit(ev)
        back = read_events(path)
        assert [e.to_dict() for e in back] == [e.to_dict() for e in sent]

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        """A crash mid-write leaves a truncated last line; the reader
        recovers every complete event and drops only the torn tail."""
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            emit(sink, SUBMIT, 0.0, 1, count=1)
            emit(sink, EVAL_DONE, 1.0, 1, reward=0.5)
        with open(path, "a") as fh:
            fh.write('{"kind": "push", "time": 2.0, "agent')   # no newline
        events = read_events(path)
        assert [e.kind for e in events] == [SUBMIT, EVAL_DONE]

    def test_malformed_mid_file_line_is_skipped(self, tmp_path, caplog):
        """Interior corruption (bit rot, a torn concurrent append) costs
        the one record, not the stream: the reader skips it with a
        logged warning and counts it in ``num_skipped``."""
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            emit(sink, SUBMIT, 0.0, 1)
        with open(path, "a") as fh:
            fh.write("not json\n")
            fh.write('{"kind": "push", "time": 2.0, "agent_id": 0, '
                     '"iteration": null, "payload": {}}\n')
        with caplog.at_level("WARNING", logger="repro.events"):
            events = read_events(path)
        assert [e.kind for e in events] == [SUBMIT, PUSH]
        assert events.num_skipped == 1
        assert any("line 2" in rec.message for rec in caplog.records)

    def test_torn_tail_not_counted_as_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlSink(path) as sink:
            emit(sink, SUBMIT, 0.0, 1)
        with open(path, "a") as fh:
            fh.write('{"kind": "push"')               # crash mid-write
        events = read_events(path)
        assert [e.kind for e in events] == [SUBMIT]
        assert events.num_skipped == 0

    def test_fsync_every_policy(self, tmp_path):
        """``fsync_every=N`` syncs every Nth record; ``fsync=True`` is
        the legacy every-record spelling of the same policy."""
        sink = JsonlSink(tmp_path / "a.jsonl", fsync_every=2)
        assert not sink.fsync
        assert sink._policy.every == 2
        for i in range(4):
            emit(sink, SUBMIT, float(i), 1)
        sink.close()
        assert len(read_events(tmp_path / "a.jsonl")) == 4
        legacy = JsonlSink(tmp_path / "b.jsonl", fsync=True)
        assert legacy.fsync and legacy._policy.every == 1
        legacy.close()

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl")
        emit(sink, SUBMIT, 0.0, 1)
        sink.close()
        sink.close()
        assert sink.num_written == 1


class TestSearchStream:
    def test_a2c_round_ordering(self, space):
        """One a2c round, observed only through the event stream:
        submit → eval-done → push → barrier, for every agent."""
        sink = RecordingSink()
        search = NasSearch(space, make_surrogate(space),
                           small_config("a2c"), event_sink=sink)
        search.run()
        for agent_id in range(4):    # NodeAllocation(32, 4, 3)
            kinds = [e.kind for e in sink.events if e.agent_id == agent_id]
            for kind in (SUBMIT, EVAL_DONE, PUSH, BARRIER):
                assert kind in kinds, f"agent {agent_id} missing {kind}"
            first = {k: kinds.index(k)
                     for k in (SUBMIT, EVAL_DONE, PUSH, BARRIER)}
            assert (first[SUBMIT] < first[EVAL_DONE] < first[PUSH]
                    < first[BARRIER])

    def test_submit_times_non_decreasing_per_agent(self, space):
        # submit events are emitted at submission instants, so each
        # agent's stream of them is time-ordered (eval-done events
        # instead carry the job's own end time, delivered at the batch
        # barrier, and are not globally sorted by design)
        sink = RecordingSink()
        NasSearch(space, make_surrogate(space), small_config("a2c"),
                  event_sink=sink).run()
        for agent_id in range(4):
            times = [e.time for e in sink.of_kind(SUBMIT)
                     if e.agent_id == agent_id]
            assert times == sorted(times)

    def test_barrier_rounds_increase(self, space):
        sink = RecordingSink()
        NasSearch(space, make_surrogate(space), small_config("a2c"),
                  event_sink=sink).run()
        rounds = [e.payload["round"] for e in sink.of_kind(BARRIER)]
        assert rounds == sorted(rounds)

    def test_a3c_emits_push_no_barrier(self, space):
        sink = RecordingSink()
        NasSearch(space, make_surrogate(space), small_config("a3c"),
                  event_sink=sink).run()
        assert sink.of_kind(PUSH)
        assert not sink.of_kind(BARRIER)

    def test_converged_search_emits_cache_hits_and_done(self, space):
        sink = RecordingSink()
        res = NasSearch(space, make_surrogate(space),
                        small_config("a3c", minutes=360),
                        event_sink=sink).run()
        assert res.converged
        assert sink.of_kind(CACHE_HIT)
        assert len(sink.of_kind(AGENT_DONE)) == 4
        assert all(e.payload["converged"] for e in sink.of_kind(AGENT_DONE))

    def test_sink_does_not_perturb_fingerprint(self, space):
        cfg = small_config("a2c")
        bare = NasSearch(space, make_surrogate(space), cfg).run()
        observed = NasSearch(space, make_surrogate(space), cfg,
                             event_sink=RecordingSink()).run()
        assert bare.fingerprint() == observed.fingerprint()

    @pytest.mark.health
    def test_restart_events_under_numeric_chaos(self, space):
        faults = FaultConfig(nan_grad_prob=0.05, seed=1)
        cfg = small_config("a3c", faults=faults, max_restarts=2,
                           guard=GuardConfig(mode="check"))
        sink = RecordingSink()
        search = NasSearch(space, make_surrogate(space), cfg,
                           event_sink=sink)
        res = search.run()
        total_restarts = sum(res.agent_restarts.values())
        assert len(sink.of_kind(RESTART)) == total_restarts
        assert total_restarts > 0

    @pytest.mark.health
    def test_rollback_events_in_recover_mode(self, space):
        faults = FaultConfig(nan_grad_prob=0.05, seed=1)
        cfg = small_config("a3c", faults=faults,
                           guard=GuardConfig(mode="recover"))
        sink = RecordingSink()
        search = NasSearch(space, make_surrogate(space), cfg,
                           event_sink=sink)
        res = search.run()
        total_rollbacks = sum(res.agent_rollbacks.values())
        assert len(sink.of_kind(ROLLBACK)) == total_rollbacks
        assert total_rollbacks > 0


class TestBatchStatsStream:
    def test_batch_stats_emitted_per_submission(self, space):
        # long enough to converge, so architectures get resubmitted and
        # the warm cache must answer some gathers outright
        sink = RecordingSink()
        res = NasSearch(space, make_surrogate(space),
                        small_config("a3c", minutes=360),
                        event_sink=sink).run()
        assert res.converged
        submits = sink.of_kind(SUBMIT)
        stats = sink.of_kind(BATCH_STATS)
        # one gather per non-empty submission
        assert len(stats) == len([e for e in submits
                                  if e.payload["count"] > 0])
        for event in stats:
            p = event.payload
            assert p["distinct"] <= p["batch"]
            assert p["plan_hits"] + p["plan_misses"] == p["distinct"]
        assert any(e.payload["plan_hits"] > 0 for e in stats)

    def test_no_batch_stats_with_plan_cache_off(self, space):
        sink = RecordingSink()
        NasSearch(space, make_surrogate(space),
                  small_config("a3c", plan_cache=False),
                  event_sink=sink).run()
        assert sink.of_kind(BATCH_STATS) == []
