"""Unit tests for the PPO updater."""

import numpy as np
import pytest

from repro.rl.policy import LSTMPolicy
from repro.rl.ppo import PPOConfig, PPOUpdater

DIMS = [4, 4, 4]


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = PPOConfig()
        assert cfg.clip == 0.2
        assert cfg.epochs == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            PPOConfig(clip=0.0)
        with pytest.raises(ValueError):
            PPOConfig(epochs=0)


class TestUpdate:
    def test_improves_action_zero_reward(self, rng):
        pol = LSTMPolicy(DIMS, seed=0)
        upd = PPOUpdater(pol, PPOConfig(lr=5e-3))
        first, last = None, None
        for it in range(50):
            ro = pol.sample(16, rng)
            rewards = (ro.actions == 0).mean(axis=1)
            upd.update(ro, rewards)
            if it < 5:
                first = rewards.mean() if first is None else first
            last = rewards.mean()
        assert last > first + 0.3

    def test_reward_length_validated(self, rng):
        pol = LSTMPolicy(DIMS, seed=0)
        upd = PPOUpdater(pol)
        ro = pol.sample(4, rng)
        with pytest.raises(ValueError):
            upd.update(ro, np.zeros(3))

    def test_stats_populated(self, rng):
        pol = LSTMPolicy(DIMS, seed=0)
        upd = PPOUpdater(pol)
        ro = pol.sample(8, rng)
        stats = upd.update(ro, rng.random(8))
        assert np.isfinite(stats.policy_loss)
        assert stats.value_loss >= 0
        assert stats.entropy > 0
        assert 0.0 <= stats.clip_fraction <= 1.0
        assert stats.grad_norm >= 0

    def test_params_change(self, rng):
        pol = LSTMPolicy(DIMS, seed=0)
        upd = PPOUpdater(pol)
        before = pol.get_flat().copy()
        ro = pol.sample(8, rng)
        upd.update(ro, rng.random(8))
        assert not np.allclose(pol.get_flat(), before)

    def test_uniform_rewards_small_movement(self, rng):
        """With identical rewards, normalized advantages are ~0 and the
        update should barely move the policy."""
        pol = LSTMPolicy(DIMS, seed=0)
        upd = PPOUpdater(pol, PPOConfig(entropy_coef=0.0))
        before = pol.get_flat().copy()
        ro = pol.sample(8, rng)
        upd.update(ro, np.full(8, 0.5))
        drift = np.abs(pol.get_flat() - before).max()
        assert drift < 0.05

    def test_update_delta_matches_param_change(self, rng):
        pol = LSTMPolicy(DIMS, seed=0)
        upd = PPOUpdater(pol)
        before = pol.get_flat().copy()
        ro = pol.sample(8, rng)
        delta, _ = upd.update_delta(ro, rng.random(8))
        np.testing.assert_allclose(pol.get_flat(), before + delta)


class TestGAE:
    def test_default_equals_terminal_return_baseline(self, rng):
        pol = LSTMPolicy(DIMS, seed=0)
        upd = PPOUpdater(pol)  # gamma = lambda = 1
        ro = pol.sample(5, rng)
        rewards = rng.random(5)
        adv = upd._gae(rewards, ro.values)
        np.testing.assert_allclose(adv, rewards[:, None] - ro.values)

    def test_discounting_decays_early_credit(self, rng):
        pol = LSTMPolicy(DIMS, seed=0)
        upd = PPOUpdater(pol, PPOConfig(gamma=0.5, gae_lambda=1.0))
        values = np.zeros((1, 3))
        adv = upd._gae(np.array([1.0]), values)
        # terminal reward of 1 discounted back: 0.25, 0.5, 1.0
        np.testing.assert_allclose(adv[0], [0.25, 0.5, 1.0])

    def test_lambda_shortens_credit_horizon(self, rng):
        pol = LSTMPolicy(DIMS, seed=0)
        upd = PPOUpdater(pol, PPOConfig(gamma=1.0, gae_lambda=0.5))
        values = np.ones((1, 3)) * 0.5
        adv = upd._gae(np.array([1.0]), values)
        # delta_t = (V_{t+1} - V_t) = 0 for t<2; delta_2 = 1 - 0.5
        np.testing.assert_allclose(adv[0], [0.125, 0.25, 0.5])

    def test_learning_still_works_with_gae(self, rng):
        pol = LSTMPolicy(DIMS, seed=0)
        upd = PPOUpdater(pol, PPOConfig(lr=5e-3, gamma=0.99,
                                        gae_lambda=0.95))
        first, last = None, None
        for it in range(40):
            ro = pol.sample(16, rng)
            rewards = (ro.actions == 0).mean(axis=1)
            upd.update(ro, rewards)
            if first is None:
                first = rewards.mean()
            last = rewards.mean()
        assert last > first + 0.2

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ValueError):
            PPOConfig(gamma=0.0)
        with pytest.raises(ValueError):
            PPOConfig(gae_lambda=1.5)


class TestClipMath:
    def test_clip_limits_ratio_influence(self, rng):
        """After the first epoch moves the policy, later epochs see
        clipped ratios; clip_fraction should become nonzero under large
        advantage signals."""
        pol = LSTMPolicy(DIMS, seed=0)
        upd = PPOUpdater(pol, PPOConfig(lr=5e-2, epochs=8))
        ro = pol.sample(16, rng)
        rewards = (ro.actions == 0).mean(axis=1) * 10
        stats = upd.update(ro, rewards)
        assert stats.clip_fraction > 0.0
