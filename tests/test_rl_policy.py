"""Unit tests for the LSTM policy: sampling, masking, BPTT gradients."""

import numpy as np
import pytest

from repro.rl.policy import LSTMPolicy

from helpers import assert_grad_matches

DIMS = [5, 3, 7, 2]


class TestSampling:
    def test_actions_respect_dims(self, rng):
        pol = LSTMPolicy(DIMS, seed=0)
        ro = pol.sample(64, rng)
        assert ro.actions.shape == (64, 4)
        for t, d in enumerate(DIMS):
            assert ro.actions[:, t].max() < d
            assert ro.actions[:, t].min() >= 0

    def test_logprobs_negative_and_consistent(self, rng):
        pol = LSTMPolicy(DIMS, seed=0)
        ro = pol.sample(16, rng)
        assert (ro.logprobs <= 0).all()
        lp, v, ent, _ = pol.forward_train(ro.actions)
        np.testing.assert_allclose(lp, ro.logprobs, atol=1e-12)
        np.testing.assert_allclose(v, ro.values, atol=1e-12)

    def test_masked_actions_have_zero_probability(self, rng):
        pol = LSTMPolicy([2, 2], seed=1)
        ro = pol.sample(1, rng)
        lp, _, _, caches = pol.forward_train(ro.actions)
        # probabilities beyond dim 2 are exactly zero
        for cache in caches:
            np.testing.assert_array_equal(cache.probs[:, 2:], 0.0)
            np.testing.assert_allclose(cache.probs.sum(axis=-1), 1.0)

    def test_greedy_deterministic(self):
        pol = LSTMPolicy(DIMS, seed=3)
        a1 = pol.greedy()
        a2 = pol.greedy()
        np.testing.assert_array_equal(a1, a2)
        assert all(a1[t] < d for t, d in enumerate(DIMS))

    def test_same_seed_same_policy(self, rng):
        a = LSTMPolicy(DIMS, seed=9)
        b = LSTMPolicy(DIMS, seed=9)
        np.testing.assert_array_equal(a.get_flat(), b.get_flat())

    def test_entropy_positive(self, rng):
        pol = LSTMPolicy(DIMS, seed=0)
        ro = pol.sample(4, rng)
        _, _, ent, _ = pol.forward_train(ro.actions)
        assert (ent > 0).all()
        assert (ent <= np.log(max(DIMS)) + 1e-9).all()

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            LSTMPolicy([])
        with pytest.raises(ValueError):
            LSTMPolicy([3, 0])

    def test_wrong_horizon_raises(self, rng):
        pol = LSTMPolicy(DIMS, seed=0)
        with pytest.raises(ValueError):
            pol.forward_train(np.zeros((2, 3), dtype=int))


class TestFlatParams:
    def test_roundtrip(self):
        pol = LSTMPolicy(DIMS, seed=0)
        flat = pol.get_flat()
        assert flat.shape == (pol.num_params,)
        pol.set_flat(flat * 2)
        np.testing.assert_allclose(pol.get_flat(), flat * 2)

    def test_add_flat(self):
        pol = LSTMPolicy(DIMS, seed=0)
        flat = pol.get_flat()
        pol.add_flat(np.ones_like(flat))
        np.testing.assert_allclose(pol.get_flat(), flat + 1.0)

    def test_wrong_length_rejected(self):
        pol = LSTMPolicy(DIMS, seed=0)
        with pytest.raises(ValueError):
            pol.set_flat(np.zeros(3))


class TestGradients:
    def test_full_bptt_gradcheck(self, rng):
        pol = LSTMPolicy([4, 3, 5], hidden=6, embed_dim=4, seed=2)
        ro = pol.sample(3, rng)
        w_lp = rng.standard_normal(ro.logprobs.shape)
        w_v = rng.standard_normal(ro.values.shape)
        w_e = rng.standard_normal(ro.values.shape)

        def obj():
            lp, v, ent, _ = pol.forward_train(ro.actions)
            return float((w_lp * lp).sum() + (w_v * v).sum()
                         + (w_e * ent).sum())

        _, _, _, caches = pol.forward_train(ro.actions)
        pol.zero_grad()
        pol.backward_train(caches, w_lp, w_v, w_e)
        assert_grad_matches(obj, pol.parameters(), rng, n_checks=2)

    def test_zero_grad(self):
        pol = LSTMPolicy(DIMS, seed=0)
        for p in pol.parameters():
            p.grad += 1.0
        pol.zero_grad()
        assert all(not p.grad.any() for p in pol.parameters())
