"""Unit tests for the weight initializers."""

import numpy as np
import pytest

from repro.nn.initializers import glorot_uniform, he_uniform, orthogonal, zeros


class TestGlorot:
    def test_bounds(self, rng):
        w = glorot_uniform((50, 30), rng)
        limit = np.sqrt(6.0 / (50 + 30))
        assert np.abs(w).max() <= limit
        assert w.shape == (50, 30)

    def test_vector_shape(self, rng):
        w = glorot_uniform((100,), rng)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= limit

    def test_conv_kernel_fans(self, rng):
        # (kernel, in_channels, out_channels): receptive field scales fans
        w = glorot_uniform((5, 3, 8), rng)
        limit = np.sqrt(6.0 / (5 * 3 + 5 * 8))
        assert np.abs(w).max() <= limit

    def test_deterministic_per_rng(self):
        a = glorot_uniform((4, 4), np.random.default_rng(1))
        b = glorot_uniform((4, 4), np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)


class TestHe:
    def test_bounds(self, rng):
        w = he_uniform((64, 10), rng)
        limit = np.sqrt(6.0 / 64)
        assert np.abs(w).max() <= limit

    def test_wider_than_glorot_for_wide_outputs(self, rng):
        # he ignores fan_out, so its limit exceeds glorot's when out >> in
        g = np.abs(glorot_uniform((10, 1000), rng)).max()
        h_limit = np.sqrt(6.0 / 10)
        assert g < h_limit


class TestOrthogonal:
    @pytest.mark.parametrize("shape", [(8, 8), (12, 6), (6, 12)])
    def test_orthonormal_columns_or_rows(self, shape, rng):
        w = orthogonal(shape, rng)
        assert w.shape == shape
        rows, cols = shape
        if rows >= cols:
            np.testing.assert_allclose(w.T @ w, np.eye(cols), atol=1e-10)
        else:
            np.testing.assert_allclose(w @ w.T, np.eye(rows), atol=1e-10)

    def test_preserves_norms(self, rng):
        w = orthogonal((16, 16), rng)
        x = rng.standard_normal(16)
        assert abs(np.linalg.norm(w @ x) - np.linalg.norm(x)) < 1e-10


class TestZeros:
    def test_zeros(self):
        w = zeros((3, 4))
        assert w.shape == (3, 4)
        assert not w.any()
