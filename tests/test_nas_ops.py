"""Unit tests for search-space operations."""

import numpy as np
import pytest

from repro.nas.ops import (ActivationOp, AddOp, ConnectOp, Conv1DOp,
                           DenseOp, DropoutOp, IdentityOp, MaxPooling1DOp)
from repro.nn.conv import Conv1D, MaxPooling1D
from repro.nn.layers import Activation, Dense, Dropout, Identity
from repro.nn.merge import Add, Concatenate


class TestNames:
    """Display names match the paper's notation."""

    def test_dense(self):
        assert DenseOp(100, "relu").name == "Dense(100, relu)"

    def test_dropout(self):
        assert DropoutOp(0.05).name == "Dropout(0.05)"

    def test_identity(self):
        assert IdentityOp().name == "Identity"

    def test_conv(self):
        assert Conv1DOp(3).name == "Conv1D(3)"

    def test_pool(self):
        assert MaxPooling1DOp(4).name == "MaxPooling1D(4)"

    def test_activation(self):
        assert ActivationOp("relu").name == "Activation(relu)"

    def test_connect_null(self):
        assert ConnectOp().name == "Connect(Null)"

    def test_connect_refs(self):
        assert ConnectOp("a", "b").name == "Connect(a, b)"


class TestShapeInference:
    def test_dense(self):
        op = DenseOp(10, "tanh")
        assert op.out_shape((7,)) == (10,)
        assert op.param_count((7,)) == 80
        assert op.requires_flat()

    def test_conv(self):
        op = Conv1DOp(5, filters=8)
        assert op.out_shape((20, 3)) == (16, 8)
        assert op.param_count((20, 3)) == (5 * 3 + 1) * 8

    def test_conv_too_short(self):
        with pytest.raises(ValueError):
            Conv1DOp(10).out_shape((5, 1))

    def test_pool(self):
        op = MaxPooling1DOp(3)
        assert op.out_shape((10, 2)) == (3, 2)
        assert op.param_count((10, 2)) == 0

    def test_pool_exhausted(self):
        with pytest.raises(ValueError):
            MaxPooling1DOp(6).out_shape((5, 1))

    def test_passthrough_ops(self):
        for op in (IdentityOp(), DropoutOp(0.2), ActivationOp("relu")):
            assert op.out_shape((9,)) == (9,)
            assert op.param_count((9,)) == 0


class TestMakeLayer:
    def test_layer_types(self, rng):
        pairs = [
            (IdentityOp(), Identity),
            (DenseOp(5), Dense),
            (DropoutOp(0.1), Dropout),
            (ActivationOp("tanh"), Activation),
            (Conv1DOp(3), Conv1D),
            (MaxPooling1DOp(2), MaxPooling1D),
            (AddOp(), Add),
            (ConnectOp("x"), Concatenate),
        ]
        for op, cls in pairs:
            assert isinstance(op.make_layer("n"), cls), op.name

    def test_dense_share(self, rng):
        a = Dense(5)
        a.build((3,), rng)
        layer = DenseOp(5).make_layer("b", share_from=a)
        layer.build((3,), rng)
        assert layer.w is a.w


class TestEqualityHash:
    def test_equal_ops(self):
        assert DenseOp(10, "relu") == DenseOp(10, "relu")
        assert hash(DenseOp(10, "relu")) == hash(DenseOp(10, "relu"))

    def test_unequal_ops(self):
        assert DenseOp(10, "relu") != DenseOp(10, "tanh")
        assert DenseOp(10) != DropoutOp(0.1)

    def test_connect_refs_matter(self):
        assert ConnectOp("a") != ConnectOp("b")
        assert ConnectOp() == ConnectOp()


class TestValidation:
    def test_dense_invalid(self):
        with pytest.raises(ValueError):
            DenseOp(0)
        with pytest.raises(ValueError):
            DenseOp(5, "selu")

    def test_dropout_invalid(self):
        with pytest.raises(ValueError):
            DropoutOp(1.0)

    def test_conv_invalid(self):
        with pytest.raises(ValueError):
            Conv1DOp(0)

    def test_merge_flags(self):
        assert AddOp().is_merge and ConnectOp().is_merge
        assert not DenseOp(3).is_merge
        assert DenseOp(3).shareable and Conv1DOp(3).shareable
        assert not DropoutOp(0.1).shareable
