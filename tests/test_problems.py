"""Tests for synthetic datasets, baselines, and problem definitions."""

import numpy as np
import pytest

from repro.nn import Trainer
from repro.problems import (combo_problem, get_problem, make_combo_data,
                            make_nt3_data, make_uno_data, nt3_problem,
                            one_hot, uno_problem)


class TestDatasets:
    def test_combo_shapes(self):
        ds = make_combo_data(n_train=100, n_val=30, cell_dim=10, drug_dim=12)
        assert ds.x_train["cell_expression"].shape == (100, 10)
        assert ds.x_train["drug1_descriptors"].shape == (100, 12)
        assert ds.x_val["drug2_descriptors"].shape == (30, 12)
        assert ds.y_train.shape == (100, 1)
        assert ds.n_train == 100 and ds.n_val == 30

    def test_combo_deterministic(self):
        a = make_combo_data(n_train=50, n_val=10, seed=3)
        b = make_combo_data(n_train=50, n_val=10, seed=3)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_combo_seed_changes_data(self):
        a = make_combo_data(n_train=50, n_val=10, seed=3)
        b = make_combo_data(n_train=50, n_val=10, seed=4)
        assert not np.array_equal(a.y_train, b.y_train)

    def test_combo_target_standardized(self):
        ds = make_combo_data(n_train=400, n_val=100)
        y = np.concatenate([ds.y_train, ds.y_val])
        assert abs(y.mean()) < 1e-9
        assert abs(y.std() - 1.0) < 1e-9

    def test_uno_shapes(self):
        ds = make_uno_data(n_train=80, n_val=20, rna_dim=10, desc_dim=14,
                           fp_dim=6)
        assert ds.x_train["dose"].shape == (80, 1)
        assert ds.x_train["drug_fingerprints"].shape == (80, 6)
        assert set(ds.x_train["drug_fingerprints"].ravel()) <= {0.0, 1.0}

    def test_uno_dose_matters(self):
        # shuffling the dose column must hurt an oracle trained on it;
        # cheap proxy: dose correlates with the target
        ds = make_uno_data(n_train=2000, n_val=10, seed=1)
        corr = np.corrcoef(ds.x_train["dose"][:, 0],
                           ds.y_train[:, 0])[0, 1]
        assert abs(corr) > 0.1

    def test_nt3_shapes_and_onehot(self):
        ds = make_nt3_data(n_train=60, n_val=20, length=80)
        assert ds.x_train["rnaseq_expression"].shape == (60, 80, 1)
        assert ds.y_train.shape == (60, 2)
        np.testing.assert_array_equal(ds.y_train.sum(axis=1), 1.0)

    def test_nt3_min_length(self):
        with pytest.raises(ValueError):
            make_nt3_data(length=50)

    def test_nt3_classes_separable(self, small_nt3):
        # the baseline CNN reaches high accuracy quickly
        p = small_nt3
        tr = Trainer(loss=p.loss, metric=p.metric, batch_size=20, epochs=6)
        model = p.build_baseline(np.random.default_rng(0))
        hist = tr.fit(model, p.dataset.x_train, p.dataset.y_train,
                      p.dataset.x_val, p.dataset.y_val)
        assert hist.val_metric > 0.8

    def test_one_hot(self):
        np.testing.assert_array_equal(
            one_hot(np.array([0, 2, 1]), 3),
            [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_mismatched_rows_rejected(self):
        from repro.problems.datasets import Dataset
        with pytest.raises(ValueError):
            Dataset({"a": np.zeros((5, 2)), "b": np.zeros((4, 2))},
                    np.zeros((5, 1)), {"a": np.zeros((1, 2)),
                                       "b": np.zeros((1, 2))},
                    np.zeros((1, 1)))


class TestBaselineParameterCounts:
    """Table 1's manually-designed-network parameter counts."""

    def test_combo_paper_exact(self, small_combo):
        assert small_combo.baseline_params(paper_scale=True) == 13_772_001

    def test_uno_paper_exact(self, small_uno):
        assert small_uno.baseline_params(paper_scale=True) == 19_274_001

    def test_nt3_paper_documented_value(self, small_nt3):
        # the §2.3 topology at d=60,483 with valid padding; the paper's
        # Table 1 value (96,777,878) is inconsistent with its own §2.3
        # description — see EXPERIMENTS.md
        assert small_nt3.baseline_params(paper_scale=True) == 154_922_918

    def test_working_scale_counts_positive(self, small_combo, small_uno,
                                           small_nt3):
        for p in (small_combo, small_uno, small_nt3):
            assert 0 < p.baseline_params() < 10_000_000


class TestProblems:
    def test_get_problem(self):
        assert get_problem("combo", n_train=64, n_val=16).name == "combo"
        with pytest.raises(ValueError):
            get_problem("cifar")

    def test_combo_baseline_trains(self, small_combo):
        p = small_combo
        tr = Trainer(loss=p.loss, metric=p.metric, batch_size=32, epochs=20)
        model = p.build_baseline(np.random.default_rng(0))
        hist = tr.fit(model, p.dataset.x_train, p.dataset.y_train,
                      p.dataset.x_val, p.dataset.y_val)
        assert hist.val_metric > 0.4

    def test_uno_baseline_trains(self, small_uno):
        p = small_uno
        tr = Trainer(loss=p.loss, metric=p.metric, batch_size=32, epochs=15)
        model = p.build_baseline(np.random.default_rng(0))
        hist = tr.fit(model, p.dataset.x_train, p.dataset.y_train,
                      p.dataset.x_val, p.dataset.y_val)
        assert hist.val_metric > 0.25

    def test_build_model_from_space(self, small_combo, rng):
        arch = small_combo.space.random_architecture(rng)
        m = small_combo.build_model(arch.choices, rng)
        x = {k: v[:4] for k, v in small_combo.dataset.x_train.items()}
        assert m.forward(x).shape == (4, 1)

    def test_count_params_matches_model(self, small_combo, rng):
        arch = small_combo.space.random_architecture(rng)
        m = small_combo.build_model(arch.choices, rng)
        assert small_combo.count_params(arch.choices) == m.num_params

    def test_problem_validates_inputs_cover_space(self):
        from repro.problems.base import Problem
        from repro.problems.datasets import make_combo_data
        from repro.nas.spaces import uno_small
        from repro.problems.combo import combo_baseline, combo_head
        with pytest.raises(ValueError):
            Problem(name="bad", dataset=make_combo_data(32, 8),
                    space=uno_small(0.02), baseline=combo_baseline(10),
                    head_ops=combo_head(), loss="mse", metric="r2",
                    batch_size=32)

    def test_batch_sizes_match_paper(self, small_combo, small_uno,
                                     small_nt3):
        assert small_combo.batch_size == 256
        assert small_uno.batch_size == 32
        assert small_nt3.batch_size == 20

    def test_metrics_match_paper(self, small_combo, small_uno, small_nt3):
        assert small_combo.metric == "r2"
        assert small_uno.metric == "r2"
        assert small_nt3.metric == "accuracy"
