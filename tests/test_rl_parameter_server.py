"""Unit tests for the synchronous/asynchronous parameter server."""

import numpy as np
import pytest

from repro.hpc.sim import Simulator, Timeout
from repro.rl.parameter_server import ParameterServer


class TestAsync:
    def test_returns_average_of_recent(self):
        ps = ParameterServer(Simulator(), num_agents=4, mode="async",
                             staleness_window=2)
        np.testing.assert_allclose(ps.push_async(np.array([1.0])), [1.0])
        np.testing.assert_allclose(ps.push_async(np.array([3.0])), [2.0])
        # window of 2: the first push falls out
        np.testing.assert_allclose(ps.push_async(np.array([5.0])), [4.0])

    def test_default_window_half_agents(self):
        ps = ParameterServer(Simulator(), num_agents=8, mode="async")
        assert ps._recent.maxlen == 4

    def test_sync_call_rejected(self):
        ps = ParameterServer(Simulator(), num_agents=2, mode="async")
        with pytest.raises(RuntimeError):
            ps.push_sync(np.zeros(1))


class TestSync:
    def test_barrier_releases_with_average(self):
        sim = Simulator()
        ps = ParameterServer(sim, num_agents=3, mode="sync", latency=0.0)
        got = []

        def agent(value):
            avg = yield ps.push_sync(np.array([value]))
            got.append(float(avg[0]))

        for v in (1.0, 2.0, 6.0):
            sim.process(agent(v))
        sim.run()
        assert got == [3.0, 3.0, 3.0]
        assert ps.num_rounds == 1

    def test_barrier_waits_for_slowest(self):
        sim = Simulator()
        ps = ParameterServer(sim, num_agents=2, mode="sync", latency=0.0)
        release_times = []

        def agent(delay, value):
            yield Timeout(delay)
            yield ps.push_sync(np.array([value]))
            release_times.append(sim.now)

        sim.process(agent(1.0, 1.0))
        sim.process(agent(10.0, 2.0))
        sim.run()
        assert release_times == [10.0, 10.0]

    def test_multiple_rounds(self):
        sim = Simulator()
        ps = ParameterServer(sim, num_agents=2, mode="sync", latency=0.0)
        got = []

        def agent(value):
            for i in range(3):
                avg = yield ps.push_sync(np.array([value + i]))
                got.append(float(avg[0]))

        sim.process(agent(0.0))
        sim.process(agent(10.0))
        sim.run()
        assert ps.num_rounds == 3
        assert got.count(5.0) == 2 and got.count(6.0) == 2

    def test_deregister_shrinks_barrier(self):
        sim = Simulator()
        ps = ParameterServer(sim, num_agents=2, mode="sync", latency=0.0)
        got = []

        def leaver():
            yield Timeout(1.0)
            ps.deregister()

        def stayer():
            yield Timeout(2.0)
            avg = yield ps.push_sync(np.array([7.0]))
            got.append(float(avg[0]))

        sim.process(leaver())
        sim.process(stayer())
        sim.run()
        assert got == [7.0]  # barrier of one

    def test_deregister_releases_pending_waiters(self):
        sim = Simulator()
        ps = ParameterServer(sim, num_agents=2, mode="sync", latency=0.0)
        got = []

        def pusher():
            avg = yield ps.push_sync(np.array([4.0]))
            got.append(float(avg[0]))

        def leaver():
            yield Timeout(5.0)
            ps.deregister()

        sim.process(pusher())
        sim.process(leaver())
        sim.run()
        assert got == [4.0]

    def test_async_call_rejected(self):
        ps = ParameterServer(Simulator(), num_agents=2, mode="sync")
        with pytest.raises(RuntimeError):
            ps.push_async(np.zeros(1))

    def test_over_deregister_rejected(self):
        ps = ParameterServer(Simulator(), num_agents=1, mode="sync")
        ps.deregister()
        with pytest.raises(RuntimeError):
            ps.deregister()


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError):
            ParameterServer(Simulator(), 2, mode="semi")

    def test_bad_agents(self):
        with pytest.raises(ValueError):
            ParameterServer(Simulator(), 0)


class TestBarrierSafety:
    def test_death_after_push_does_not_deadlock(self):
        """An agent that pushes, then dies mid-round: deregister shrinks
        the barrier and immediately releases the stale round, with the
        dead agent's pending push averaged in — survivors never hang."""
        sim = Simulator()
        ps = ParameterServer(sim, num_agents=3, mode="sync", latency=0.0)
        got = []

        def doomed():
            yield ps.push_sync(np.array([9.0]), agent_id=0)

        def survivor():
            avg = yield ps.push_sync(np.array([1.0]), agent_id=1)
            got.append(float(avg[0]))

        def crash_reporter():
            yield Timeout(2.0)
            ps.deregister(failed=True)   # the runner's wrapper does this

        sim.process(doomed())
        sim.process(survivor())
        sim.process(crash_reporter())
        sim.run(until=100.0)
        assert got == [5.0]              # (9 + 1) / 2
        assert ps.num_failed_agents == 1
        assert ps.num_rounds == 1

    def test_death_before_push_releases_waiters(self):
        sim = Simulator()
        ps = ParameterServer(sim, num_agents=2, mode="sync", latency=0.0)
        got = []

        def pusher():
            avg = yield ps.push_sync(np.array([6.0]), agent_id=0)
            got.append(float(avg[0]))

        def crasher():
            yield Timeout(5.0)
            ps.deregister(failed=True)

        sim.process(pusher())
        sim.process(crasher())
        sim.run(until=100.0)
        assert got == [6.0]


class TestResurrectionBarrier:
    """Regression: a crash (``deregister(failed=True)``) during a sync
    barrier followed by a resurrection (``register(agent_id)``) must
    never double-release a round (events fire at most once; a second
    release of the same waiters would crash the kernel)."""

    def test_register_withdraws_stale_push(self):
        sim = Simulator()
        ps = ParameterServer(sim, num_agents=3, mode="sync", latency=0.0)
        # the doomed agent pushed, then crashed while parked: its waiter
        # is abandoned and its push is stale
        ps.push_sync(np.array([100.0]), agent_id=0)
        ps.deregister(failed=True)       # 1 pending < 2 active: no release
        assert ps.num_rounds == 0
        ps.register(agent_id=0)          # resurrection withdraws the push
        assert ps._pending == [] and ps._waiters == []

        got = []

        def agent(value, agent_id):
            avg = yield ps.push_sync(np.array([value]), agent_id=agent_id)
            got.append(float(avg[0]))

        for aid, v in enumerate((3.0, 6.0, 9.0)):
            sim.process(agent(v, aid))
        sim.run(until=100.0)
        # the replayed push is averaged, the stale 100.0 is not
        assert got == [6.0, 6.0, 6.0]
        assert ps.num_rounds == 1
        assert ps.num_resurrections == 1

    def test_crash_release_then_register_cannot_release_again(self):
        sim = Simulator()
        ps = ParameterServer(sim, num_agents=3, mode="sync", latency=0.0)
        got = []

        def agent(value, agent_id, rounds=1):
            for i in range(rounds):
                avg = yield ps.push_sync(np.array([value + i]),
                                         agent_id=agent_id)
                got.append(float(avg[0]))
                yield Timeout(5.0)   # next round starts after the rebirth

        sim.process(agent(1.0, 0, rounds=2))
        sim.process(agent(3.0, 1, rounds=2))

        def crash_and_resurrect():
            # agent 2 dies before pushing: deregister shrinks the
            # barrier to 2 and releases the round (1, 3) -> 2.0 ...
            yield Timeout(1.0)
            ps.deregister(failed=True)
            yield Timeout(1.0)
            # ... and the resurrection must not release anything itself
            rounds_before = ps.num_rounds
            ps.register(agent_id=2)
            assert ps.num_rounds == rounds_before
            avg = yield ps.push_sync(np.array([8.0]), agent_id=2)
            got.append(float(avg[0]))

        sim.process(crash_and_resurrect())
        sim.run(until=100.0)
        # round 1: (1+3)/2 = 2; round 2: (2+4+8)/3 with all three back
        assert got.count(2.0) == 2
        assert got.count(14.0 / 3.0) == 3
        assert ps.num_rounds == 2

    def test_over_register_rejected(self):
        ps = ParameterServer(Simulator(), num_agents=2, mode="sync")
        with pytest.raises(RuntimeError):
            ps.register()


class TestExportRestore:
    def test_async_round_trip(self):
        ps = ParameterServer(Simulator(), num_agents=4, mode="async",
                             staleness_window=2)
        ps.push_async(np.array([1.0, 2.0]))
        ps.push_async(np.array([3.0, 4.0]))
        state = ps.export_state()

        fresh = ParameterServer(Simulator(), num_agents=4, mode="async",
                                staleness_window=2)
        fresh.restore_state(state)
        assert fresh.num_pushes == 2
        # restored window produces the same averages: the new push
        # evicts [1, 2] and averages with [3, 4]
        np.testing.assert_allclose(fresh.push_async(np.array([5.0, 6.0])),
                                   [4.0, 5.0])

    def test_sync_export_excludes_pending_round(self):
        sim = Simulator()
        ps = ParameterServer(sim, num_agents=2, mode="sync")

        def half_round():
            yield ps.push_sync(np.array([1.0]), agent_id=0)

        sim.process(half_round())
        sim.run(until=1.0)
        state = ps.export_state()
        # the in-flight push is excluded: its iteration replays on resume
        assert state["num_pushes"] == 0
        assert state["num_rounds"] == 0

    def test_mode_mismatch_rejected(self):
        a = ParameterServer(Simulator(), num_agents=2, mode="async")
        b = ParameterServer(Simulator(), num_agents=2, mode="sync")
        with pytest.raises(ValueError):
            b.restore_state(a.export_state())

    def test_restore_clears_transients(self):
        sim = Simulator()
        ps = ParameterServer(sim, num_agents=2, mode="sync")

        def half_round():
            yield ps.push_sync(np.array([1.0]), agent_id=0)

        sim.process(half_round())
        sim.run(until=1.0)
        ps.restore_state(ParameterServer(Simulator(), num_agents=2,
                                         mode="sync").export_state())
        assert ps._pending == [] and ps._waiters == []
