"""Tests for the timed and sharded parameter servers (§7 extension)."""

import numpy as np
import pytest

from repro.hpc.sim import Simulator, Timeout
from repro.rl import ParameterServer, ShardedParameterServer


class TestTimedPush:
    def test_service_time_delays_response(self):
        sim = Simulator()
        ps = ParameterServer(sim, num_agents=2, mode="async",
                             service_time=5.0)
        got = []

        def agent():
            avg = yield ps.push_async_timed(np.array([2.0]))
            got.append((sim.now, float(avg[0])))

        sim.process(agent())
        sim.run()
        assert got == [(5.0, 2.0)]

    def test_pushes_queue_fifo(self):
        sim = Simulator()
        ps = ParameterServer(sim, num_agents=3, mode="async",
                             service_time=10.0, staleness_window=3)
        done = []

        def agent(value):
            avg = yield ps.push_async_timed(np.array([value]))
            done.append((sim.now, float(avg[0])))

        for v in (1.0, 2.0, 3.0):
            sim.process(agent(v))
        sim.run()
        # serialized: completions at 10, 20, 30 with running averages
        assert done == [(10.0, 1.0), (20.0, 1.5), (30.0, 2.0)]

    def test_queue_delay_reflects_backlog(self):
        sim = Simulator()
        ps = ParameterServer(sim, num_agents=2, mode="async",
                             service_time=10.0)

        def agent():
            ps.push_async_timed(np.array([1.0]))
            ps.push_async_timed(np.array([1.0]))
            assert ps.queue_delay == 20.0
            yield Timeout(0.0)

        sim.process(agent())
        sim.run()

    def test_sync_mode_rejects_timed_push(self):
        ps = ParameterServer(Simulator(), 2, mode="sync")
        with pytest.raises(RuntimeError):
            ps.push_async_timed(np.zeros(1))

    def test_negative_service_time_rejected(self):
        with pytest.raises(ValueError):
            ParameterServer(Simulator(), 2, service_time=-1.0)


class TestShardedServer:
    def test_zero_cost_push_matches_single_server(self):
        sim = Simulator()
        single = ParameterServer(sim, 4, mode="async", staleness_window=2)
        sharded = ShardedParameterServer(sim, 4, vector_size=6,
                                         num_shards=3, staleness_window=2)
        rng = np.random.default_rng(0)
        for _ in range(5):
            delta = rng.standard_normal(6)
            np.testing.assert_allclose(single.push_async(delta),
                                       sharded.push_async(delta))

    def test_shard_boundaries_cover_vector(self):
        ps = ShardedParameterServer(Simulator(), 2, vector_size=10,
                                    num_shards=3)
        assert ps.boundaries[0] == 0 and ps.boundaries[-1] == 10
        assert len(ps.boundaries) == 4

    def test_wrong_vector_size_rejected(self):
        ps = ShardedParameterServer(Simulator(), 2, vector_size=10,
                                    num_shards=2)
        with pytest.raises(ValueError):
            ps.push_async(np.zeros(9))

    def test_sharding_parallelizes_service(self):
        """One full-vector push: k shards finish in service_time/k."""
        sim = Simulator()
        ps = ShardedParameterServer(sim, 2, vector_size=8, num_shards=4,
                                    service_time=20.0)
        done = []

        def agent():
            avg = yield ps.push_async_timed(np.ones(8))
            done.append((sim.now, avg.shape))

        sim.process(agent())
        sim.run()
        assert done == [(5.0, (8,))]

    def test_invalid_ctor(self):
        with pytest.raises(ValueError):
            ShardedParameterServer(Simulator(), 2, vector_size=2,
                                   num_shards=4)
        with pytest.raises(ValueError):
            ShardedParameterServer(Simulator(), 2, vector_size=4,
                                   num_shards=0)


class TestSearchIntegration:
    def test_ps_contention_reduces_throughput(self):
        from repro.hpc import NodeAllocation, TrainingCostModel
        from repro.nas.spaces import combo_small
        from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
        from repro.rewards import SurrogateReward
        from repro.search import SearchConfig, run_search

        space = combo_small()

        def rm():
            return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                                   TrainingCostModel.combo_paper(),
                                   train_fraction=0.1, timeout=600.0, seed=7)

        alloc = NodeAllocation(64, 8, 4)
        results = {}
        for label, st, shards in (("free", 0.0, 1), ("busy", 60.0, 1),
                                  ("sharded", 60.0, 4)):
            cfg = SearchConfig(method="a3c", allocation=alloc,
                               wall_time=60 * 60, seed=1,
                               ps_service_time=st, ps_shards=shards)
            results[label] = run_search(space, rm(), cfg)
        assert results["busy"].num_evaluations < \
            results["free"].num_evaluations
        assert results["sharded"].num_evaluations > \
            results["busy"].num_evaluations
