"""Tests for the search ablation knobs and failure handling."""

import numpy as np
import pytest

from repro.hpc import NodeAllocation, TrainingCostModel
from repro.nas.spaces import combo_small, nt3_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.problems.nt3 import nt3_head
from repro.rewards import SurrogateReward
from repro.search import SearchConfig, run_search


@pytest.fixture(scope="module")
def space():
    return combo_small()


def make_reward(space):
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(),
                           epochs=1, train_fraction=0.1, timeout=600.0,
                           seed=7)


class TestCacheKnob:
    def test_cache_disabled_has_no_hits(self, space):
        cfg = SearchConfig(method="a3c", allocation=NodeAllocation(32, 4, 3),
                           wall_time=60 * 60, seed=1, use_cache=False)
        res = run_search(space, make_reward(space), cfg)
        assert all(not r.cached for r in res.records)
        assert not res.converged  # convergence detection needs the cache


class TestStalenessKnob:
    @pytest.mark.parametrize("window", [1, 4])
    def test_window_reaches_parameter_server(self, space, window):
        from repro.search.runner import NasSearch
        cfg = SearchConfig(method="a3c", allocation=NodeAllocation(32, 4, 3),
                           wall_time=30 * 60, seed=1,
                           staleness_window=window)
        search = NasSearch(space, make_reward(space), cfg)
        assert search.ps._recent.maxlen == window

    def test_default_window(self, space):
        from repro.search.runner import NasSearch
        cfg = SearchConfig(method="a3c", allocation=NodeAllocation(64, 6, 4),
                           wall_time=30 * 60, seed=1)
        search = NasSearch(space, make_reward(space), cfg)
        assert search.ps._recent.maxlen == 3  # num_agents // 2


class TestFailureInjection:
    def test_invalid_architectures_get_failure_reward(self):
        """NT3 architectures whose pooling exhausts a short input compile
        to an error; the surrogate returns the failure reward instead of
        crashing the search."""
        space = nt3_small()
        rm = SurrogateReward(space, {"rnaseq_expression": (72, 1)},
                             nt3_head(), TrainingCostModel.nt3_paper(),
                             timeout=600.0, seed=3)
        # aggressive pooling: kernel-6 convs and pool-6 pools everywhere
        bad = space.decode([4, 0, 4, 4, 0, 4, 0, 0, 0, 0, 0, 0])
        rng = np.random.default_rng(0)
        # length 72 survives (min is 71) but a shorter input must fail
        res = rm.evaluate(bad, agent_seed=0)
        assert res.reward >= -1.0
        rm_short = SurrogateReward(space, {"rnaseq_expression": (60, 1)},
                                   nt3_head(), TrainingCostModel.nt3_paper(),
                                   timeout=600.0, seed=3)
        res_bad = rm_short.evaluate(bad, agent_seed=0)
        assert res_bad.reward == rm_short.FAILURE_REWARD
        assert res_bad.params == 0

    def test_search_survives_failing_architectures(self):
        """A full search over a space where many architectures are
        invalid still completes and logs failure rewards."""
        space = nt3_small()
        # length 60 < the worst-case-safe 71: aggressive pool/conv chains
        # exhaust the sequence and fail to compile
        rm = SurrogateReward(space, {"rnaseq_expression": (60, 1)},
                             nt3_head(), TrainingCostModel.nt3_paper(),
                             timeout=600.0, seed=3)
        cfg = SearchConfig(method="rdm", allocation=NodeAllocation(32, 4, 3),
                           wall_time=45 * 60, seed=2)
        res = run_search(space, rm, cfg)
        assert res.num_evaluations > 0
        failures = [r for r in res.records if r.reward == -1.0
                    and r.params == 0]
        assert failures, "short input must make some architectures fail"
        # and some architectures still succeed
        assert any(r.reward > -1.0 for r in res.records)
