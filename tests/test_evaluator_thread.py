"""Unit tests for the thread-pool evaluator backend."""

import threading
import time

from repro.evaluator import ThreadEvaluator
from repro.nas.arch import Architecture
from repro.rewards.base import EvalResult, RewardModel


class SlowReward(RewardModel):
    def __init__(self, delay=0.01):
        self.delay = delay
        self.calls = 0
        self.threads = set()
        self._lock = threading.Lock()

    def evaluate(self, arch, agent_seed=0):
        with self._lock:
            self.calls += 1
            self.threads.add(threading.get_ident())
        time.sleep(self.delay)
        return EvalResult(float(sum(arch.choices)), self.delay, 10)


def A(*choices):
    return Architecture("t", tuple(choices))


class TestThreadEvaluator:
    def test_nonblocking_then_complete(self):
        with ThreadEvaluator(SlowReward(0.05), max_workers=2) as ev:
            ev.add_eval_batch([A(1), A(2)])
            # non-blocking: results may not be ready instantly
            ev.wait_all()
            recs = ev.get_finished_evals()
            assert sorted(r.reward for r in recs) == [1.0, 2.0]

    def test_parallel_execution(self):
        rm = SlowReward(0.05)
        with ThreadEvaluator(rm, max_workers=4) as ev:
            start = time.monotonic()
            ev.add_eval_batch([A(i) for i in range(4)])
            ev.wait_all()
            elapsed = time.monotonic() - start
            assert elapsed < 4 * 0.05 * 0.9  # genuinely overlapped
            assert len(ev.get_finished_evals()) == 4

    def test_cache_hits_skip_pool(self):
        rm = SlowReward(0.0)
        with ThreadEvaluator(rm, max_workers=2) as ev:
            ev.add_eval_batch([A(5)])
            ev.wait_all()
            ev.get_finished_evals()
            ev.add_eval_batch([A(5)])
            recs = ev.get_finished_evals()
            assert rm.calls == 1
            assert recs[0].cached

    def test_drain_is_incremental(self):
        rm = SlowReward(0.0)
        with ThreadEvaluator(rm, max_workers=2) as ev:
            ev.add_eval_batch([A(1)])
            ev.wait_all()
            first = ev.get_finished_evals()
            assert len(first) == 1
            assert ev.get_finished_evals() == []

    def test_agent_seed_forwarded(self):
        class SeedEcho(RewardModel):
            def evaluate(self, arch, agent_seed=0):
                return EvalResult(float(agent_seed), 0.0, 1)

        with ThreadEvaluator(SeedEcho(), agent_id=7, max_workers=1) as ev:
            ev.add_eval_batch([A(0)])
            ev.wait_all()
            assert ev.get_finished_evals()[0].reward == 7.0


class ExplodingReward(RewardModel):
    """Raises for archs whose first choice is odd."""

    def evaluate(self, arch, agent_seed=0):
        if arch.choices[0] % 2 == 1:
            raise FloatingPointError("overflow in fake training")
        return EvalResult(float(sum(arch.choices)), 0.01, 10)


class TestWorkerFailures:
    def test_worker_exception_becomes_failure_reward(self):
        ev = ThreadEvaluator(ExplodingReward(), max_workers=2)
        try:
            ev.add_eval_batch([A(1, 5), A(2, 3)])
            ev.wait_all()
            recs = ev.get_finished_evals()
        finally:
            ev.shutdown()
        by_arch = {r.arch.choices: r for r in recs}
        assert by_arch[(1, 5)].reward == RewardModel.FAILURE_REWARD
        assert by_arch[(2, 3)].reward == 5.0
        assert ev.num_failed == 1

    def test_failures_not_cached(self):
        ev = ThreadEvaluator(ExplodingReward(), max_workers=1)
        try:
            ev.add_eval_batch([A(1, 1)])
            ev.wait_all()
            ev.get_finished_evals()
            # the same arch is re-attempted, not served from the cache
            ev.add_eval_batch([A(1, 1)])
            ev.wait_all()
            recs = ev.get_finished_evals()
        finally:
            ev.shutdown()
        assert not recs[0].cached
        assert ev.num_failed == 2
        assert ev.num_cache_hits == 0

    def test_mixed_batch_keeps_successes(self):
        ev = ThreadEvaluator(ExplodingReward(), max_workers=4)
        try:
            archs = [A(i, 0) for i in range(6)]
            ev.add_eval_batch(archs)
            ev.wait_all()
            recs = ev.get_finished_evals()
        finally:
            ev.shutdown()
        assert len(recs) == 6
        failed = [r for r in recs if r.reward == RewardModel.FAILURE_REWARD]
        assert len(failed) == 3 == ev.num_failed
