"""Tests for the surrogate's trainability priors and fraction override."""

import numpy as np
import pytest

from repro.hpc import TrainingCostModel
from repro.nas.ops import (ActivationOp, AddOp, ConnectOp, Conv1DOp,
                           DenseOp, DropoutOp, IdentityOp, MaxPooling1DOp)
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.rewards.surrogate import op_prior


class TestOpPrior:
    def test_relu_beats_sigmoid(self):
        assert op_prior(DenseOp(100, "relu")) > op_prior(
            DenseOp(100, "sigmoid"))
        assert op_prior(ActivationOp("relu")) > op_prior(
            ActivationOp("sigmoid"))

    def test_light_dropout_beats_heavy(self):
        assert op_prior(DropoutOp(0.05)) > op_prior(DropoutOp(0.2)) > \
            op_prior(DropoutOp(0.5))

    def test_conv_and_pool_positive(self):
        assert op_prior(Conv1DOp(3)) > 0
        assert op_prior(MaxPooling1DOp(3)) > 0

    def test_identity_and_add_neutral(self):
        assert op_prior(IdentityOp()) == 0.0
        assert op_prior(AddOp()) == 0.0

    def test_connect_null_neutral_refs_positive(self):
        assert op_prior(ConnectOp()) == 0.0
        assert op_prior(ConnectOp("x")) > 0.0

    def test_priors_shift_affinity_means(self):
        """Across landscape seeds, the relu-Dense option should average a
        higher affinity than the sigmoid-Dense option at the same node."""
        space = combo_small()
        cm = TrainingCostModel.combo_paper()
        relu_idx, sig_idx = 1, 3  # Dense(100, relu) / Dense(100, sigmoid)
        relu_vals, sig_vals = [], []
        for seed in range(20):
            rm = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                                 cm, seed=seed)
            relu_vals.append(rm._affinity[0][relu_idx])
            sig_vals.append(rm._affinity[0][sig_idx])
        assert np.mean(relu_vals) > np.mean(sig_vals)


class TestFractionOverride:
    @pytest.fixture(scope="class")
    def rm(self):
        return SurrogateReward(combo_small(), COMBO_PAPER_SHAPES,
                               combo_head(), TrainingCostModel.combo_paper(),
                               train_fraction=0.1, timeout=None, seed=3)

    def test_override_changes_duration(self, rm):
        arch = rm.space.decode([1] * 9 + [0] + [1] * 3)
        d_small = rm.evaluate(arch, train_fraction=0.1).duration
        d_big = rm.evaluate(arch, train_fraction=0.8).duration
        assert d_big > d_small

    def test_override_changes_fidelity_bonus(self, rm):
        arch = rm.space.decode([1] * 9 + [0] + [1] * 3)
        r_small = rm.evaluate(arch, train_fraction=0.1).reward
        r_big = rm.evaluate(arch, train_fraction=0.8).reward
        assert r_big > r_small  # same noise key, higher fidelity bonus

    def test_none_uses_configured_fraction(self, rm):
        arch = rm.space.decode([1] * 9 + [0] + [1] * 3)
        assert rm.evaluate(arch) == rm.evaluate(arch, train_fraction=0.1)
