"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_defaults(self):
        args = build_parser().parse_args(["search"])
        assert args.problem == "combo"
        assert args.method == "a3c"
        assert args.nodes == 256

    def test_invalid_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--method", "dqn"])


class TestCommands:
    def test_spaces(self, capsys):
        assert main(["spaces"]) == 0
        out = capsys.readouterr().out
        assert "combo-small" in out and "2.0968e+14" in out

    def test_baselines(self, capsys):
        assert main(["baselines"]) == 0
        out = capsys.readouterr().out
        assert "13,772,001" in out and "19,274,001" in out

    def test_search_analyze_posttrain_pipeline(self, tmp_path, capsys):
        log = tmp_path / "run.jsonl"
        assert main(["search", "--problem", "combo", "--method", "rdm",
                     "--minutes", "15", "--output", str(log)]) == 0
        assert log.exists()
        assert main(["analyze", str(log), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "unique architectures" in out
        assert main(["posttrain", str(log), "--top", "2",
                     "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert "acc_ratio" in out

    def test_nt3_large_rejected(self):
        with pytest.raises(SystemExit):
            main(["search", "--problem", "nt3", "--size", "large",
                  "--minutes", "5"])

    def test_figure_command_validates_choice(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_figure_parser_accepts_known_figures(self):
        args = build_parser().parse_args(["figure", "fig4", "--problem",
                                          "nt3"])
        assert args.figure == "fig4" and args.problem == "nt3"
