"""Differential tester: eager GraphModel walk vs. compiled ExecutionPlan.

Fast tests exercise one architecture per space plus the training-mode
and shrinker paths; the ``verify``-marked acceptance test samples 50
architectures per space in both dtypes (ISSUE 3 acceptance criterion:
zero disagreements).
"""

import numpy as np
import pytest

from repro.nas.builder import compile_architecture
from repro.nas.spaces import get_space
from repro.nn.layers import Dense
from repro.verify.diff import (SMALL_SHAPES, SPACE_NAMES, _head_ops,
                               _SPACE_SCALE, diff_plan, run_space_diffs,
                               verify_report)

PROBLEMS = sorted(SPACE_NAMES)


def _sample_plan(problem, arch_seed=3):
    space = get_space(SPACE_NAMES[problem], scale=_SPACE_SCALE)
    arch = space.random_architecture(np.random.default_rng(arch_seed))
    return compile_architecture(space, arch.choices, SMALL_SHAPES[problem],
                                _head_ops(problem))


class TestEagerPath:
    """The interpreted walk is a faithful oracle for the compiled plan."""

    @pytest.mark.parametrize("problem", PROBLEMS)
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_one_architecture_agrees(self, problem, dtype):
        report = diff_plan(_sample_plan(problem), dtype=dtype)
        assert report.agreed, report.summary()

    @pytest.mark.parametrize("problem", PROBLEMS)
    def test_training_mode_agrees(self, problem):
        """Same-seed materialization gives identically seeded Dropout
        RNGs, so even training-mode (live dropout) passes must agree."""
        report = diff_plan(_sample_plan(problem), dtype="float64",
                           training=True)
        assert report.agreed, report.summary()

    def test_eager_values_cover_every_plan_node(self):
        plan = _sample_plan("combo")
        model = plan.materialize(np.random.default_rng(0))
        rng = np.random.default_rng(1)
        inputs = {name: rng.standard_normal((2,) + shape)
                  for name, shape in plan.input_shapes.items()}
        out = model.forward_eager(inputs)
        assert set(model.eager_values) == ({n.name for n in plan.nodes}
                                           | set(plan.input_shapes))
        np.testing.assert_array_equal(
            out, model.eager_values[plan.output])

    def test_eager_backward_matches_helper_gradients(self):
        """backward_eager against the compiled backward on a plain
        dense model — exact same parameter order, close gradients."""
        plan = _sample_plan("uno")
        compiled = plan.materialize(np.random.default_rng(5))
        eager = plan.materialize(np.random.default_rng(5))
        rng = np.random.default_rng(6)
        inputs = {name: rng.standard_normal((3,) + shape)
                  for name, shape in plan.input_shapes.items()}
        g = rng.standard_normal(plan.output_shape)[None].repeat(3, axis=0)

        compiled.forward(inputs)
        compiled.zero_grad()
        gc = compiled.backward(g)
        eager.forward_eager(inputs)
        eager.zero_grad()
        ge = eager.backward_eager(g)
        for name in plan.input_shapes:
            np.testing.assert_allclose(ge[name], gc[name],
                                       rtol=1e-9, atol=1e-12)
        for pc, pe in zip(compiled.parameters(), eager.parameters()):
            assert pc.name == pe.name
            np.testing.assert_allclose(pe.grad, pc.grad,
                                       rtol=1e-9, atol=1e-12)


class TestShrinker:
    def test_shrinker_localizes_corrupted_node(self, monkeypatch):
        """Corrupt one compiled-path Dense mid-plan; the shrinker must
        bisect down to exactly that node's ancestor closure."""
        plan = _sample_plan("combo")
        probe = plan.materialize(np.random.default_rng(0))
        dense_nodes = [pn.name for pn in plan.nodes
                       if isinstance(probe.layers[pn.name], Dense)]
        target = dense_nodes[len(dense_nodes) // 2]

        orig = Dense.forward

        def corrupted(self, x, training=False):
            out = orig(self, x, training)
            # the eager oracle runs with the pool detached, so only the
            # compiled path sees the perturbation
            if self.name == target and self._pool is not None:
                out = out + 1e-2
            return out

        monkeypatch.setattr(Dense, "forward", corrupted)
        report = diff_plan(plan, dtype="float64", shrink=True)
        assert not report.agreed
        assert any(m.section == "forward" for m in report.mismatches)
        assert report.shrunk is not None
        assert report.shrunk.output == target
        assert report.shrunk.num_nodes < report.shrunk.total_nodes
        assert {n.name for n in report.shrunk.plan.nodes} <= \
            {n.name for n in plan.nodes}

    def test_shrunk_subplan_is_runnable(self):
        """subplan() closures stay materializable and runnable."""
        plan = _sample_plan("nt3")
        mid = plan.nodes[len(plan.nodes) // 2].name
        sub = plan.subplan(mid)
        assert sub.output == mid
        model = sub.materialize(np.random.default_rng(0))
        rng = np.random.default_rng(1)
        inputs = {name: rng.standard_normal((2,) + shape)
                  for name, shape in sub.input_shapes.items()}
        out = model.forward(inputs)
        assert out.shape == (2,) + sub.output_shape


@pytest.mark.verify
class TestAcceptance:
    """ISSUE 3: >= 50 sampled architectures per space, both dtypes,
    zero disagreements."""

    @pytest.mark.parametrize("problem", PROBLEMS)
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_fifty_architectures_agree(self, problem, dtype):
        reports = run_space_diffs(problem, 50, dtype=dtype, seed=0)
        failures = [r.summary() for r in reports if not r.agreed]
        assert len(reports) == 50
        assert not failures, "\n".join(failures)

    def test_verify_report_matrix_is_ok(self):
        report = verify_report(per_space=8, seed=1)
        assert report["ok"], report
        for problem in PROBLEMS:
            for dtype in ("float32", "float64"):
                row = report["spaces"][problem][dtype]
                assert row["sampled"] == 8
                assert row["disagreements"] == 0
