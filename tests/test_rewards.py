"""Unit tests for reward models: real-training and surrogate."""

import numpy as np
import pytest

from repro.hpc.costmodel import TrainingCostModel
from repro.nas.arch import Architecture
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward, TrainingReward, arch_seed
from repro.nas.spaces import combo_small


@pytest.fixture(scope="module")
def space():
    return combo_small()


@pytest.fixture(scope="module")
def surrogate(space):
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(),
                           epochs=1, train_fraction=0.1, timeout=600.0,
                           seed=11)


class TestArchSeed:
    def test_deterministic(self):
        a = Architecture("s", (1, 2))
        assert arch_seed(0, 1, a) == arch_seed(0, 1, a)

    def test_varies_with_agent(self):
        a = Architecture("s", (1, 2))
        assert arch_seed(0, 1, a) != arch_seed(0, 2, a)

    def test_varies_with_arch(self):
        assert arch_seed(0, 1, Architecture("s", (1, 2))) != \
            arch_seed(0, 1, Architecture("s", (2, 1)))


class TestTrainingReward:
    def test_reward_is_validation_metric(self, small_combo):
        rm = TrainingReward(small_combo, epochs=2)
        arch = small_combo.space.decode([1] * 9 + [0] + [1] * 3)
        res = rm.evaluate(arch)
        assert -1.0 <= res.reward <= 1.0
        assert res.params == small_combo.count_params(arch.choices)
        assert res.duration > 0

    def test_deterministic_per_agent(self, small_combo):
        rm = TrainingReward(small_combo, epochs=1)
        arch = small_combo.space.decode([1] * 9 + [0] + [1] * 3)
        r1 = rm.evaluate(arch, agent_seed=1).reward
        r2 = rm.evaluate(arch, agent_seed=1).reward
        assert r1 == r2

    def test_agent_specific_initialization_changes_reward(self, small_combo):
        """§5: the same architecture evaluated by different agents gets
        different rewards (agent-specific random weight init)."""
        rm = TrainingReward(small_combo, epochs=1)
        arch = small_combo.space.decode([1] * 9 + [0] + [1] * 3)
        r1 = rm.evaluate(arch, agent_seed=1).reward
        r2 = rm.evaluate(arch, agent_seed=2).reward
        assert r1 != r2

    def test_reward_floored_at_failure(self, small_combo):
        rm = TrainingReward(small_combo, epochs=1)
        # an arch that trains terribly still reports >= -1
        for choices in ([12] * 9 + [0] + [12] * 3, [3] * 9 + [0] + [3] * 3):
            res = rm.evaluate(small_combo.space.decode(choices))
            assert res.reward >= -1.0


class TestSurrogateReward:
    def test_deterministic(self, space, surrogate):
        arch = space.decode([9] * 9 + [0] + [9] * 3)
        r1 = surrogate.evaluate(arch, agent_seed=3)
        r2 = surrogate.evaluate(arch, agent_seed=3)
        assert r1 == r2

    def test_agent_noise(self, space, surrogate):
        arch = space.decode([9] * 9 + [0] + [9] * 3)
        rewards = {surrogate.evaluate(arch, agent_seed=i).reward
                   for i in range(5)}
        assert len(rewards) == 5

    def test_reward_bounded(self, space, surrogate, rng):
        for _ in range(50):
            arch = space.random_architecture(rng)
            r = surrogate.evaluate(arch, agent_seed=0)
            assert -1.0 <= r.reward <= 1.0

    def test_params_exact(self, space, surrogate):
        from repro.nas.builder import count_parameters
        arch = space.decode([9] * 9 + [0] + [9] * 3)
        assert surrogate.params_of(arch) == count_parameters(
            space, arch.choices, COMBO_PAPER_SHAPES, combo_head())

    def test_timeout_truncates_duration_and_penalizes(self, space):
        cm = TrainingCostModel.combo_paper()
        slow = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(), cm,
                               train_fraction=1.0, timeout=600.0, seed=11)
        fast = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(), cm,
                               train_fraction=0.05, timeout=600.0, seed=11)
        big = space.decode([9] * 9 + [0] + [9] * 3)  # Dense(1000) chain, ~17M
        r_slow = slow.evaluate(big, agent_seed=0)
        r_fast = fast.evaluate(big, agent_seed=0)
        assert r_slow.timed_out and not r_fast.timed_out
        assert r_slow.duration == 600.0
        assert r_slow.reward < r_fast.reward

    def test_no_timeout_when_disabled(self, space):
        cm = TrainingCostModel.combo_paper()
        rm = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(), cm,
                             train_fraction=1.0, timeout=None, seed=11)
        big = space.decode([9] * 9 + [5] + [9] * 3)
        res = rm.evaluate(big, agent_seed=0)
        assert not res.timed_out
        assert res.duration > 600.0

    def test_fidelity_raises_noiseless_reward(self, space, surrogate):
        arch = space.decode([1] * 9 + [0] + [1] * 3)
        assert surrogate.noiseless_reward(arch, train_fraction=0.4) > \
            surrogate.noiseless_reward(arch, train_fraction=0.1)

    def test_same_seed_same_landscape(self, space):
        cm = TrainingCostModel.combo_paper()
        a = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(), cm,
                            seed=5)
        b = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(), cm,
                            seed=5)
        arch = space.decode([4] * 9 + [2] + [4] * 3)
        assert a.quality(arch) == b.quality(arch)

    def test_different_seed_different_landscape(self, space):
        cm = TrainingCostModel.combo_paper()
        a = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(), cm,
                            seed=5)
        b = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(), cm,
                            seed=6)
        arch = space.decode([4] * 9 + [2] + [4] * 3)
        assert a.quality(arch) != b.quality(arch)

    def test_capacity_prior_prefers_target_size(self, space):
        cm = TrainingCostModel.combo_paper()
        rm = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(), cm,
                             capacity_weight=5.0, seed=0)
        small = space.decode([0] * 13)       # all Identity
        target = space.decode([1] * 9 + [0] + [1] * 3)      # Dense(100) chain
        assert np.log10(max(rm.params_of(small), 1)) < rm.log_params_opt
        # the capacity bonus moves quality toward the optimum band
        q_gap = rm.quality(target) - rm.quality(small)
        assert np.isfinite(q_gap)

    def test_invalid_fraction(self, space):
        cm = TrainingCostModel.combo_paper()
        with pytest.raises(ValueError):
            SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(), cm,
                            train_fraction=0.0)


class TestTrainingRewardRobustness:
    def test_fit_blowup_becomes_failure_reward(self, small_combo,
                                               monkeypatch):
        """Numerical explosion mid-training surfaces FAILURE_REWARD
        instead of crashing the evaluating agent."""
        import repro.rewards.training as training_mod

        class ExplodingTrainer:
            def __init__(self, **kwargs):
                pass

            def fit(self, *args, **kwargs):
                raise FloatingPointError("overflow encountered in matmul")

        monkeypatch.setattr(training_mod, "Trainer", ExplodingTrainer)
        rm = TrainingReward(small_combo, epochs=1)
        arch = small_combo.space.decode([1] * 9 + [0] + [1] * 3)
        res = rm.evaluate(arch)
        assert res.reward == rm.FAILURE_REWARD
        assert res.params > 0            # build succeeded; fit blew up
        assert res.duration >= 0.0

    def test_overflow_during_fit_also_caught(self, small_combo,
                                             monkeypatch):
        import repro.rewards.training as training_mod

        class OverflowingTrainer:
            def __init__(self, **kwargs):
                pass

            def fit(self, *args, **kwargs):
                raise OverflowError("inf in loss")

        monkeypatch.setattr(training_mod, "Trainer", OverflowingTrainer)
        rm = TrainingReward(small_combo, epochs=1)
        arch = small_combo.space.decode([1] * 9 + [0] + [1] * 3)
        assert rm.evaluate(arch).reward == rm.FAILURE_REWARD

    def test_build_floating_point_error_caught(self, small_combo,
                                               monkeypatch):
        import repro.rewards.training as training_mod

        def exploding_compile(*args, **kwargs):
            raise FloatingPointError("degenerate initialization")

        monkeypatch.setattr(training_mod, "compile_architecture",
                            exploding_compile)
        rm = TrainingReward(small_combo, epochs=1)
        arch = small_combo.space.decode([1] * 9 + [0] + [1] * 3)
        res = rm.evaluate(arch)
        assert res.reward == rm.FAILURE_REWARD
        assert res.params == 0           # never got past the build
