"""Unit tests for Concatenate and Add merge layers."""

import numpy as np
import pytest

from repro.nn.merge import Add, Concatenate


class TestConcatenate:
    def test_widths_and_forward(self, rng):
        c = Concatenate()
        assert c.build_multi([(3,), (5,)], rng) == (8,)
        a = rng.standard_normal((2, 3))
        b = rng.standard_normal((2, 5))
        out = c.forward_multi([a, b])
        np.testing.assert_array_equal(out[:, :3], a)
        np.testing.assert_array_equal(out[:, 3:], b)

    def test_backward_splits(self, rng):
        c = Concatenate()
        c.build_multi([(3,), (5,)], rng)
        g = rng.standard_normal((2, 8))
        ga, gb = c.backward_multi(g)
        np.testing.assert_array_equal(ga, g[:, :3])
        np.testing.assert_array_equal(gb, g[:, 3:])

    def test_single_input_passthrough(self, rng):
        c = Concatenate()
        c.build_multi([(4,)], rng)
        x = rng.standard_normal((2, 4))
        np.testing.assert_array_equal(c.forward_multi([x]), x)
        [g] = c.backward_multi(x)
        np.testing.assert_array_equal(g, x)

    def test_rejects_rank2(self, rng):
        with pytest.raises(ValueError):
            Concatenate().build_multi([(3, 2)], rng)

    def test_single_input_protocol(self, rng):
        # merge layers degrade gracefully to the single-input Layer API
        c = Concatenate()
        c.build((4,), rng)
        x = rng.standard_normal((2, 4))
        np.testing.assert_array_equal(c.forward(x), x)
        np.testing.assert_array_equal(c.backward(x), x)


class TestAdd:
    def test_equal_widths(self, rng):
        m = Add()
        assert m.build_multi([(4,), (4,)], rng) == (4,)
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((3, 4))
        np.testing.assert_allclose(m.forward_multi([a, b]), a + b)

    def test_zero_padding_alignment(self, rng):
        m = Add()
        assert m.build_multi([(2,), (5,)], rng) == (5,)
        a = np.ones((1, 2))
        b = np.ones((1, 5))
        out = m.forward_multi([a, b])
        np.testing.assert_array_equal(out, [[2, 2, 1, 1, 1]])

    def test_backward_truncates_to_operand_width(self, rng):
        m = Add()
        m.build_multi([(2,), (5,)], rng)
        m.forward_multi([np.ones((1, 2)), np.ones((1, 5))])
        ga, gb = m.backward_multi(np.arange(5.0)[None, :])
        np.testing.assert_array_equal(ga, [[0, 1]])
        np.testing.assert_array_equal(gb, [[0, 1, 2, 3, 4]])

    def test_three_operands(self, rng):
        m = Add()
        m.build_multi([(3,), (3,), (3,)], rng)
        xs = [rng.standard_normal((2, 3)) for _ in range(3)]
        np.testing.assert_allclose(m.forward_multi(xs), sum(xs))

    def test_rejects_rank2(self, rng):
        with pytest.raises(ValueError):
            Add().build_multi([(3, 2)], rng)
