"""Crash-consistency of the space sweeper: SIGKILL and resume.

The scenario the table format is designed for: a sweep subprocess is
SIGKILLed mid-flight (after at least one shard boundary has been
published), then the sweep is rerun over the same directory.  The
resumed table must be bit-identical to an uninterrupted sweep's —
same fingerprint, same rows — and nothing already recorded may be
evaluated a second time.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.bench import ArchTable, SpaceSweeper, SweepConfig
from repro.rewards.base import EvalResult

from _bench_common import CLI_METADATA, combo_surrogate, sweep_combo_table

pytestmark = pytest.mark.bench

_CAP = 120
_SHARD = 16

_CHILD = """
import sys
sys.path.insert(0, {tests_dir!r})
from _bench_common import sweep_combo_table
# throttled so the parent can catch the sweep between shard seals
sweep_combo_table({out!r}, cap={cap}, shard_size={shard},
                  batch_size=8, throttle=0.05)
"""


def _metadata():
    return dict(CLI_METADATA, cap=_CAP)


def _sealed_rows(table_dir: Path) -> int:
    manifest = table_dir / "manifest.json"
    if not manifest.exists():
        return 0
    try:
        return json.loads(manifest.read_text())["total_rows"]
    except (json.JSONDecodeError, KeyError):
        return 0


class _CountingSurrogate:
    """Wraps the surrogate, counting real evaluations — the proof that
    a resume re-evaluates nothing already in the table."""

    def __init__(self, space):
        self._inner = combo_surrogate(space)
        self.input_shapes = self._inner.input_shapes
        self.head_ops = self._inner.head_ops
        self.calls = 0

    @property
    def plan_cache(self):
        return self._inner.plan_cache

    def set_plan_cache(self, cache):
        self._inner.set_plan_cache(cache)

    def prefetch_plan(self, arch):
        self._inner.prefetch_plan(arch)

    def evaluate(self, arch, agent_seed=0) -> EvalResult:
        self.calls += 1
        return self._inner.evaluate(arch, agent_seed=agent_seed)


def test_sigkill_mid_sweep_resumes_bit_identically(tmp_path):
    killed_dir = tmp_path / "killed"
    clean_dir = tmp_path / "clean"

    # reference: the uninterrupted sweep
    space, clean_report = sweep_combo_table(clean_dir, cap=_CAP,
                                            shard_size=_SHARD)
    assert clean_report.total_rows > 2 * _SHARD

    # run the same sweep in a subprocess and SIGKILL it once the first
    # shard boundary has been published (but before it finishes)
    child = subprocess.Popen(
        [sys.executable, "-c",
         _CHILD.format(tests_dir=str(Path(__file__).parent),
                       out=str(killed_dir), cap=_CAP, shard=_SHARD)],
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=Path(__file__).parent.parent)
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if _sealed_rows(killed_dir) >= _SHARD:
                break
            if child.poll() is not None:
                pytest.fail("sweep subprocess finished before the kill "
                            "point — raise throttle or cap")
            time.sleep(0.01)
        else:
            pytest.fail("no shard boundary published within 120s")
        os.kill(child.pid, signal.SIGKILL)
    finally:
        child.wait(timeout=30)

    rows_at_kill = _sealed_rows(killed_dir)
    assert _SHARD <= rows_at_kill < clean_report.total_rows

    # resume over the killed directory with an evaluation counter
    counting = _CountingSurrogate(space)
    resume_report = SpaceSweeper(
        space, counting, killed_dir,
        SweepConfig(cap=_CAP, shard_size=_SHARD),
        metadata=_metadata()).run()

    # everything already in the table (sealed shards + the recovered
    # unsealed tail) was skipped, never re-evaluated
    assert resume_report.resumed >= rows_at_kill
    assert counting.calls == resume_report.evaluated \
        == clean_report.total_rows - resume_report.resumed

    # the resumed table is bit-identical to the uninterrupted one
    assert resume_report.fingerprint == clean_report.fingerprint
    resumed, clean = ArchTable.load(killed_dir), ArchTable.load(clean_dir)
    assert resumed.rows == clean.rows
    assert resumed.optimum() == clean.optimum()


def test_rerun_of_finished_sweep_evaluates_nothing(tmp_path):
    space, first = sweep_combo_table(tmp_path, cap=40, shard_size=16)
    counting = _CountingSurrogate(space)
    again = SpaceSweeper(space, counting, tmp_path,
                         SweepConfig(cap=40, shard_size=16),
                         metadata=dict(CLI_METADATA, cap=40)).run()
    assert counting.calls == 0
    assert again.evaluated == 0
    assert again.resumed == first.total_rows
    assert again.fingerprint == first.fingerprint


@pytest.mark.proc
def test_process_backend_sweep_matches_serial(tmp_path):
    serial_dir, proc_dir = tmp_path / "serial", tmp_path / "proc"
    _, serial_report = sweep_combo_table(serial_dir, cap=60,
                                         shard_size=32)
    _, proc_report = sweep_combo_table(proc_dir, cap=60, shard_size=32,
                                       backend="process", workers=2)
    assert proc_report.evaluated == serial_report.evaluated
    assert proc_report.failed == serial_report.failed == 0
    # completion order differs; the table must not
    assert proc_report.fingerprint == serial_report.fingerprint
