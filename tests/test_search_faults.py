"""Fault-tolerant search: injection, barrier safety, checkpoint/resume."""

import numpy as np
import pytest

from repro.hpc import FaultConfig, NodeAllocation, TrainingCostModel
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.rewards.base import RewardModel
from repro.search import (NasSearch, SearchCheckpoint, SearchConfig,
                          resume_search, run_search)


@pytest.fixture(scope="module")
def space():
    return combo_small()


def make_surrogate(space, seed=7):
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(),
                           epochs=1, train_fraction=0.1, timeout=600.0,
                           log_params_opt=6.5, seed=seed)


def small_config(method="a3c", minutes=60, **kwargs):
    defaults = dict(method=method, allocation=NodeAllocation(32, 4, 3),
                    wall_time=minutes * 60.0, seed=1)
    defaults.update(kwargs)
    return SearchConfig(**defaults)


def signature(result):
    """Order-independent trajectory fingerprint."""
    return sorted((round(r.time, 9), r.agent_id, r.arch.key,
                   round(r.reward, 12)) for r in result.records)


class TestZeroFaultInert:
    def test_inert_fault_config_is_bit_identical(self, space):
        """An all-zero FaultConfig must not change a single record."""
        plain = run_search(space, make_surrogate(space), small_config())
        gated = run_search(space, make_surrogate(space),
                           small_config(faults=FaultConfig()))
        assert signature(plain) == signature(gated)
        assert plain.end_time == gated.end_time

    def test_inert_config_spawns_no_injector(self, space):
        s = NasSearch(space, make_surrogate(space),
                      small_config(faults=FaultConfig()))
        assert s.injector is None


class TestFaultedSearch:
    def test_completes_with_failures_accounted(self, space):
        faults = FaultConfig(node_mtbf=4 * 3600.0, node_repair_time=300.0,
                             job_crash_prob=0.05, seed=9)
        res = run_search(space, make_surrogate(space),
                         small_config(faults=faults,
                                      batch_deadline=900.0))
        assert res.num_evaluations > 0
        assert not res.failed_agents          # nobody deadlocked or died
        assert res.end_time <= 3600.0

    def test_exhausted_retries_surface_failure_reward(self, space):
        # crash probability 1: every attempt dies, retries exhaust, and
        # each job surfaces the paper's failure reward instead of hanging
        faults = FaultConfig(job_crash_prob=1.0, seed=0)
        res = run_search(space, make_surrogate(space),
                         small_config(minutes=20, faults=faults,
                                      max_eval_retries=1,
                                      retry_backoff=1.0))
        assert res.num_evaluations > 0
        assert res.num_failed_evals == res.num_evaluations
        assert all(r.reward == RewardModel.FAILURE_REWARD
                   for r in res.records)

    def test_outage_stalls_submissions(self, space):
        outage = ((600.0, 1200.0),)
        res = run_search(space, make_surrogate(space),
                         small_config(minutes=40,
                                      faults=FaultConfig(outages=outage)))
        # no non-cached evaluation can finish inside the outage window
        # (every pilot dispatched before 600 finishes before 600+dur,
        # and anything submitted during the window waits it out)
        started_in_window = [r for r in res.records
                             if not r.cached
                             and 600.0 < r.time - r.duration < 1200.0]
        assert started_in_window == []
        assert res.num_evaluations > 0

    def test_deterministic_under_faults(self, space):
        faults = FaultConfig(node_mtbf=2 * 3600.0, job_crash_prob=0.05,
                             seed=4)
        cfg = small_config(faults=faults, batch_deadline=900.0)
        a = run_search(space, make_surrogate(space), cfg)
        b = run_search(space, make_surrogate(space), cfg)
        assert signature(a) == signature(b)


class TestCheckpointResume:
    @pytest.mark.parametrize("method", ["a3c", "a2c", "rdm"])
    def test_resume_reproduces_trajectory(self, space, method):
        cfg = small_config(method, checkpoint_interval=600.0)
        search = NasSearch(space, make_surrogate(space), cfg)
        full = search.run()
        assert len(search.checkpoints) >= 3
        ref = signature(full)
        mid = search.checkpoints[len(search.checkpoints) // 2]
        resumed = resume_search(space, make_surrogate(space),
                                mid.round_trip(), small_config(method))
        assert signature(resumed) == ref
        assert resumed.end_time == full.end_time

    def test_resume_from_saved_file(self, space, tmp_path):
        path = tmp_path / "search.ckpt.json"
        cfg = small_config(minutes=30, checkpoint_interval=600.0,
                           checkpoint_path=str(path))
        search = NasSearch(space, make_surrogate(space), cfg)
        full = search.run()
        assert path.exists()
        loaded = SearchCheckpoint.load(path)
        assert loaded.time == search.checkpoints[-1].time
        resumed = resume_search(space, make_surrogate(space), loaded,
                                small_config(minutes=30))
        assert signature(resumed) == signature(full)

    def test_checkpoint_counters_restored(self, space):
        cfg = small_config(minutes=30, checkpoint_interval=600.0)
        search = NasSearch(space, make_surrogate(space), cfg)
        full = search.run()
        resumed = resume_search(space, make_surrogate(space),
                                search.checkpoints[0], small_config(minutes=30))
        assert resumed.num_evaluations == full.num_evaluations
        assert resumed.unique_architectures == full.unique_architectures

    def test_mismatched_config_rejected(self, space):
        search = NasSearch(space, make_surrogate(space),
                           small_config(minutes=20,
                                        checkpoint_interval=300.0))
        search.run()
        ckpt = search.checkpoints[0]
        with pytest.raises(ValueError):
            NasSearch(space, make_surrogate(space),
                      small_config("a2c", minutes=20), resume_from=ckpt)
        with pytest.raises(ValueError):
            NasSearch(space, make_surrogate(space),
                      small_config(minutes=20, seed=99), resume_from=ckpt)

    def test_unsupported_version_rejected(self, space):
        search = NasSearch(space, make_surrogate(space),
                           small_config(minutes=20,
                                        checkpoint_interval=300.0))
        search.run()
        data = search.checkpoints[0].to_json()
        data["version"] = 999
        with pytest.raises(ValueError):
            SearchCheckpoint.from_json(data)

    def test_no_checkpointing_without_interval(self, space):
        search = NasSearch(space, make_surrogate(space),
                           small_config(minutes=20))
        search.run()
        assert search.checkpoints == []


@pytest.mark.chaos
class TestChaosAcceptance:
    """The issue's acceptance scenario: paper-scale agents, node MTBF,
    job crashes and a mid-run outage — the search completes, loses no
    agent, and the best reward stays within 5% of the fault-free run."""

    def test_paper_scale_faulted_run(self, space):
        wall = 90 * 60.0
        alloc = NodeAllocation.paper_256()  # 21 agents x 11 workers
        # ~5% chance each node fails during the run + 2% job crashes +
        # a service outage through the middle of the run
        faults = FaultConfig(node_mtbf=20.0 * wall,
                             node_repair_time=wall / 20.0,
                             job_crash_prob=0.02,
                             outages=((0.5 * wall, 0.55 * wall),),
                             seed=13)
        base_cfg = SearchConfig(method="a3c", allocation=alloc,
                                wall_time=wall, seed=2)
        fault_cfg = SearchConfig(method="a3c", allocation=alloc,
                                 wall_time=wall, seed=2, faults=faults,
                                 batch_deadline=wall / 4)

        base = NasSearch(space, make_surrogate(space), base_cfg)
        clean = base.run()
        chaos = NasSearch(space, make_surrogate(space), fault_cfg)
        faulted = chaos.run()

        assert chaos.injector.num_node_failures > 0
        assert chaos.service.num_restarts > 0
        assert faulted.end_time <= wall
        assert not faulted.failed_agents      # no agent lost to deadlock
        assert faulted.num_evaluations > 0
        drop = clean.best().reward - faulted.best().reward
        assert drop <= 0.05 * abs(clean.best().reward)

    def test_kill_and_resume_matches_uninterrupted(self, space):
        """Kill-at-T emulation: a checkpoint taken mid-run, resumed in a
        fresh process (JSON round trip), reproduces the uninterrupted
        fault-free remaining trajectory exactly."""
        cfg = small_config(minutes=90, checkpoint_interval=900.0)
        search = NasSearch(space, make_surrogate(space), cfg)
        full = search.run()
        for ckpt in search.checkpoints:
            resumed = resume_search(space, make_surrogate(space),
                                    ckpt.round_trip(),
                                    small_config(minutes=90))
            assert signature(resumed) == signature(full)
