"""End-to-end tests for the multi-agent NAS search runner."""

import numpy as np
import pytest

from repro.hpc import NodeAllocation, TrainingCostModel
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.rewards.base import EvalResult, RewardModel
from repro.search import NasSearch, SearchConfig, run_search


@pytest.fixture(scope="module")
def space():
    return combo_small()


def make_surrogate(space, seed=7, **kwargs):
    defaults = dict(epochs=1, train_fraction=0.1, timeout=600.0,
                    log_params_opt=6.5, seed=seed)
    defaults.update(kwargs)
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(), **defaults)


def small_config(method, minutes=60, **kwargs):
    defaults = dict(method=method,
                    allocation=NodeAllocation(32, 4, 3),
                    wall_time=minutes * 60.0, seed=1)
    defaults.update(kwargs)
    return SearchConfig(**defaults)


class TestConfig:
    def test_method_validated(self):
        with pytest.raises(ValueError):
            SearchConfig(method="dqn")

    def test_wall_time_validated(self):
        with pytest.raises(ValueError):
            SearchConfig(wall_time=0.0)

    def test_defaults_match_paper(self):
        cfg = SearchConfig()
        assert cfg.allocation == NodeAllocation.paper_256()
        assert cfg.wall_time == 360 * 60
        assert cfg.hidden == 32
        assert cfg.ppo_epochs == 4
        assert cfg.ppo_clip == 0.2


class TestRuns:
    @pytest.mark.parametrize("method", ["a3c", "a2c", "rdm"])
    def test_run_produces_records(self, space, method):
        res = run_search(space, make_surrogate(space),
                         small_config(method, minutes=40))
        assert res.num_evaluations > 0
        assert res.end_time <= 40 * 60
        for rec in res.records:
            assert -1.0 <= rec.reward <= 1.0
            assert 0 <= rec.time <= res.end_time + 1e-9
            assert rec.agent_id in range(4)

    def test_deterministic_given_seed(self, space):
        results = []
        for _ in range(2):
            res = run_search(space, make_surrogate(space),
                             small_config("a3c", minutes=30))
            results.append([(r.time, r.arch.key, r.reward)
                            for r in res.records])
        assert results[0] == results[1]

    def test_seed_changes_run(self, space):
        r1 = run_search(space, make_surrogate(space),
                        small_config("a3c", minutes=30, seed=1))
        r2 = run_search(space, make_surrogate(space),
                        small_config("a3c", minutes=30, seed=2))
        k1 = [r.arch.key for r in r1.records]
        k2 = [r.arch.key for r in r2.records]
        assert k1 != k2

    def test_rdm_does_not_learn(self, space):
        res = run_search(space, make_surrogate(space),
                         small_config("rdm", minutes=120))
        recs = sorted(res.records, key=lambda r: r.time)
        half = len(recs) // 2
        first = np.mean([r.reward for r in recs[:half]])
        second = np.mean([r.reward for r in recs[half:]])
        assert abs(second - first) < 0.1

    def test_a3c_learns_beyond_rdm(self, space):
        """§5.1's headline: A3C shows learning capability, RDM does not.
        Compare late-run mean rewards under identical settings."""
        cfg_kwargs = dict(minutes=240)
        a3c = run_search(space, make_surrogate(space),
                         small_config("a3c", **cfg_kwargs))
        rdm = run_search(space, make_surrogate(space),
                         small_config("rdm", **cfg_kwargs))

        def late_mean(res):
            recs = sorted(res.records, key=lambda r: r.time)
            tail = recs[int(0.7 * len(recs)):]
            return float(np.mean([r.reward for r in tail]))

        assert late_mean(a3c) > late_mean(rdm) + 0.05

    def test_a3c_more_iterations_than_a2c(self, space):
        """A3C avoids the synchronous barrier and completes more
        evaluations in the same wall time (§5.1)."""
        a3c = run_search(space, make_surrogate(space),
                         small_config("a3c", minutes=120))
        a2c = run_search(space, make_surrogate(space),
                         small_config("a2c", minutes=120))
        assert a3c.num_evaluations >= a2c.num_evaluations

    def test_utilization_bounded(self, space):
        res = run_search(space, make_surrogate(space),
                         small_config("a3c", minutes=60))
        u = res.cluster.mean_utilization(res.end_time)
        assert 0.0 < u <= 1.0
        for _, ub in res.utilization_trace(bin_minutes=10):
            assert 0.0 <= ub <= 1.0


class TestConvergenceStop:
    def test_all_cached_stops_search(self, space):
        """With a deterministic constant-arch policy substitute, the
        cache converges instantly; emulate via a reward model and a
        1-option space."""
        from repro.nas.space import Block, Cell, Structure
        from repro.nas.nodes import VariableNode
        from repro.nas.ops import DenseOp

        s = Structure("one", ["x"], output_sources="last_cell")
        c = Cell("C0")
        b = Block("B0", inputs=["x"])
        b.add_node(VariableNode("N0", [DenseOp(4)]))  # single option
        c.add_block(b)
        s.add_cell(c)
        s.validate()

        class Fixed(RewardModel):
            def evaluate(self, arch, agent_seed=0):
                return EvalResult(0.5, 60.0, 100)

        cfg = SearchConfig(method="rdm", allocation=NodeAllocation(16, 2, 2),
                           wall_time=3600 * 10, convergence_patience=3)
        res = run_search(s, Fixed(), cfg)
        assert res.converged
        assert res.end_time < cfg.wall_time
        assert res.unique_architectures == 1


class TestResultUtilities:
    @pytest.fixture(scope="class")
    def result(self, space):
        return run_search(space, make_surrogate(space),
                          small_config("a3c", minutes=60))

    def test_best_is_max(self, result):
        assert result.best().reward == max(r.reward for r in result.records)

    def test_top_k_distinct_and_sorted(self, result):
        top = result.top_k(10)
        keys = [t.arch.key for t in top]
        assert len(keys) == len(set(keys))
        rewards = [t.reward for t in top]
        assert rewards == sorted(rewards, reverse=True)

    def test_reward_trajectory_monotone(self, result):
        traj = result.reward_trajectory()
        assert (np.diff(traj[:, 1]) >= 0).all()
        assert (np.diff(traj[:, 0]) >= 0).all()

    def test_empty_records_raise(self, space):
        from repro.search.base import SearchResult
        res = SearchResult(SearchConfig(), [], None, 1.0, False, 0)
        with pytest.raises(ValueError):
            res.best()
