"""Unit tests for the fault-injection layer (FaultConfig/FaultInjector)."""

import pytest

from repro.hpc.cluster import Cluster
from repro.hpc.faults import FaultConfig, FaultInjector, JobFault
from repro.hpc.sim import Interrupt, Simulator, Timeout


class TestFaultConfig:
    def test_defaults_inert(self):
        cfg = FaultConfig()
        assert not cfg.enabled

    @pytest.mark.parametrize("kwargs", [
        dict(node_mtbf=3600.0),
        dict(job_crash_prob=0.01),
        dict(straggler_prob=0.1),
        dict(outages=((10.0, 20.0),)),
    ])
    def test_any_knob_enables(self, kwargs):
        assert FaultConfig(**kwargs).enabled

    @pytest.mark.parametrize("kwargs", [
        dict(node_mtbf=-1.0),
        dict(node_repair_time=0.0),
        dict(job_crash_prob=1.5),
        dict(straggler_prob=-0.1),
        dict(straggler_factor=0.5),
        dict(min_worker_nodes=0),
        dict(outages=((20.0, 10.0),)),
        dict(outages=((-5.0, 10.0),)),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)


class TestJobFaults:
    def test_disabled_returns_none(self):
        inj = FaultInjector(Simulator(), FaultConfig(node_mtbf=3600.0))
        assert inj.job_fault(0, 1) is None

    def test_deterministic_per_job_and_attempt(self):
        cfg = FaultConfig(job_crash_prob=0.5, straggler_prob=0.3, seed=42)
        a = FaultInjector(Simulator(), cfg)
        b = FaultInjector(Simulator(), cfg)
        for job_id in range(50):
            fa = a.job_fault(job_id, 1)
            fb = b.job_fault(job_id, 1)
            assert (fa.crashes, fa.crash_frac, fa.slowdown) == \
                   (fb.crashes, fb.crash_frac, fb.slowdown)

    def test_independent_of_query_order(self):
        cfg = FaultConfig(job_crash_prob=0.5, seed=3)
        a = FaultInjector(Simulator(), cfg)
        b = FaultInjector(Simulator(), cfg)
        fwd = [a.job_fault(i, 1).crashes for i in range(20)]
        rev = [b.job_fault(i, 1).crashes for i in reversed(range(20))]
        assert fwd == list(reversed(rev))

    def test_attempts_draw_independently(self):
        cfg = FaultConfig(job_crash_prob=0.5, seed=1)
        inj = FaultInjector(Simulator(), cfg)
        draws = {inj.job_fault(7, attempt).crashes for attempt in range(1, 30)}
        assert draws == {True, False}  # not all attempts crash or succeed

    def test_crash_rate_matches_probability(self):
        cfg = FaultConfig(job_crash_prob=0.2, seed=0)
        inj = FaultInjector(Simulator(), cfg)
        crashes = sum(inj.job_fault(i, 1).crashes for i in range(2000))
        assert 300 < crashes < 500  # ~400 expected

    def test_straggler_slowdown(self):
        cfg = FaultConfig(straggler_prob=1.0, straggler_factor=4.0, seed=0)
        inj = FaultInjector(Simulator(), cfg)
        assert inj.job_fault(0, 1).slowdown == 4.0


class TestOutages:
    def test_outage_delay(self):
        cfg = FaultConfig(outages=((100.0, 150.0), (300.0, 360.0)))
        inj = FaultInjector(Simulator(), cfg)
        assert inj.outage_delay(50.0) == 0.0
        assert inj.outage_delay(100.0) == 50.0
        assert inj.outage_delay(149.0) == 1.0
        assert inj.outage_delay(150.0) == 0.0
        assert inj.outage_delay(330.0) == 30.0


class TestNodeFaults:
    def _run(self, cfg, worker_nodes=8, until=50_000.0):
        sim = Simulator()
        cluster = Cluster(sim, worker_nodes)
        inj = FaultInjector(sim, cfg)
        inj.attach(cluster)
        sim.run(until=until)
        return cluster, inj

    def test_failures_and_repairs_occur(self):
        cfg = FaultConfig(node_mtbf=2000.0, node_repair_time=200.0, seed=5)
        cluster, inj = self._run(cfg)
        assert inj.num_node_failures > 0
        assert cluster.num_failures == inj.num_node_failures
        assert cluster.num_repairs > 0
        # repairs return capacity; at most the in-flight failures are open
        assert cluster.worker_nodes >= cfg.min_worker_nodes
        assert cluster.worker_nodes <= 8

    def test_deterministic_schedule(self):
        cfg = FaultConfig(node_mtbf=2000.0, node_repair_time=200.0, seed=5)
        a, _ = self._run(cfg)
        b, _ = self._run(cfg)
        assert a.fault_events == b.fault_events

    def test_seed_changes_schedule(self):
        a, _ = self._run(FaultConfig(node_mtbf=2000.0, seed=1))
        b, _ = self._run(FaultConfig(node_mtbf=2000.0, seed=2))
        assert a.fault_events != b.fault_events

    def test_respects_min_worker_nodes(self):
        cfg = FaultConfig(node_mtbf=50.0, node_repair_time=100_000.0,
                          min_worker_nodes=3, seed=0)
        cluster, _ = self._run(cfg, worker_nodes=8, until=100_000.0)
        assert cluster.worker_nodes >= 3

    def test_failure_preempts_running_pilot(self):
        sim = Simulator()
        cluster = Cluster(sim, 1)
        interrupted = []

        def pilot():
            proc = holder[0]
            yield cluster.acquire(holder=proc)
            try:
                yield Timeout(1000.0)
                cluster.release(holder=proc)
            except Interrupt as intr:
                interrupted.append(intr.cause)

        holder = [None]
        holder[0] = sim.process(pilot())

        def killer():
            yield Timeout(10.0)
            assert cluster.fail_node(holder[0])

        sim.process(killer())
        sim.run(until=100.0)
        assert interrupted == ["node_failure"]
        assert cluster.busy == 0 and cluster.worker_nodes == 0

    def test_stop_interrupts_processes(self):
        sim = Simulator()
        cluster = Cluster(sim, 4)
        inj = FaultInjector(sim, FaultConfig(node_mtbf=100.0,
                                             node_repair_time=50.0, seed=0))
        inj.attach(cluster)

        def stopper():
            yield Timeout(1000.0)
            inj.stop()

        sim.process(stopper())
        sim.run(until=10_000.0)
        # nothing runs after stop: the sim drains well before `until`
        assert sim.now < 10_000.0
        # stop repairs in-flight failures immediately: capacity restored
        assert cluster.worker_nodes == 4
