"""Numerical-gradient checking utilities shared across test modules."""

import numpy as np


def numeric_grad(f, param, index, eps=1e-6):
    """Central-difference derivative of scalar ``f()`` w.r.t. one entry."""
    old = param.value[index]
    param.value[index] = old + eps
    fp = f()
    param.value[index] = old - eps
    fm = f()
    param.value[index] = old
    return (fp - fm) / (2 * eps)


def assert_grad_matches(f, params, rng, n_checks=3, rtol=1e-5, atol=1e-7):
    """Check analytic grads (already accumulated) against finite
    differences at a few random entries of each parameter."""
    for p in params:
        flat_size = p.value.size
        for _ in range(min(n_checks, flat_size)):
            index = np.unravel_index(rng.integers(flat_size), p.value.shape)
            num = numeric_grad(f, p, index)
            ana = p.grad[index]
            assert abs(num - ana) <= atol + rtol * abs(num), \
                f"{p.name}[{index}]: numeric {num} vs analytic {ana}"
