"""Unit tests for the LSTM cell, including multi-step BPTT gradchecks,
and for the fused sequence driver against the reference cell."""

import numpy as np
import pytest

from repro.nn.recurrent import FusedLSTM, LSTMCell


class TestShapesAndState:
    def test_step_shapes(self, rng):
        cell = LSTMCell(5, 8, rng)
        h0, c0 = cell.initial_state(3)
        h, c, cache = cell.step(rng.standard_normal((3, 5)), h0, c0)
        assert h.shape == (3, 8) and c.shape == (3, 8)

    def test_param_count(self, rng):
        cell = LSTMCell(5, 8, rng)
        assert cell.num_params == 5 * 32 + 8 * 32 + 32

    def test_forget_bias_initialized_to_one(self, rng):
        cell = LSTMCell(3, 4, rng)
        np.testing.assert_array_equal(cell.b.value[4:8], 1.0)
        np.testing.assert_array_equal(cell.b.value[:4], 0.0)

    def test_initial_state_zero(self, rng):
        cell = LSTMCell(3, 4, rng)
        h, c = cell.initial_state(2)
        assert not h.any() and not c.any()
        assert h is not c

    def test_invalid_sizes(self, rng):
        with pytest.raises(ValueError):
            LSTMCell(0, 4, rng)

    def test_state_bounded(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, c = cell.initial_state(2)
        for _ in range(50):
            h, c, _ = cell.step(rng.standard_normal((2, 4)) * 5, h, c)
        assert np.abs(h).max() <= 1.0  # h = o * tanh(c), both bounded


class TestBPTT:
    def _rollout_loss(self, cell, xs):
        h, c = cell.initial_state(xs[0].shape[0])
        total = 0.0
        for x in xs:
            h, c, _ = cell.step(x, h, c)
            total += h.sum()
        return float(total)

    def test_multistep_gradcheck(self, rng):
        cell = LSTMCell(3, 4, rng)
        xs = [rng.standard_normal((2, 3)) for _ in range(4)]

        # analytic: forward with caches, then backward through time
        h, c = cell.initial_state(2)
        caches = []
        for x in xs:
            h, c, cache = cell.step(x, h, c)
            caches.append(cache)
        for p in cell.parameters():
            p.zero_grad()
        dh = np.ones((2, 4))
        dc = np.zeros((2, 4))
        for cache in reversed(caches):
            _, dh_prev, dc_prev = cell.backward_step(dh, dc, cache)
            dh = dh_prev + np.ones((2, 4))  # loss adds h.sum() at every step
            dc = dc_prev

        for p in cell.parameters():
            idx = np.unravel_index(
                int(np.argmax(np.abs(p.grad))), p.grad.shape)
            eps = 1e-6
            old = p.value[idx]
            p.value[idx] = old + eps
            fp = self._rollout_loss(cell, xs)
            p.value[idx] = old - eps
            fm = self._rollout_loss(cell, xs)
            p.value[idx] = old
            num = (fp - fm) / (2 * eps)
            assert abs(num - p.grad[idx]) < 1e-5 * max(1.0, abs(num)), p.name

    def test_input_gradient(self, rng):
        cell = LSTMCell(3, 4, rng)
        x = rng.standard_normal((2, 3))
        h0, c0 = cell.initial_state(2)
        h, c, cache = cell.step(x, h0, c0)
        for p in cell.parameters():
            p.zero_grad()
        dx, _, _ = cell.backward_step(np.ones_like(h), np.zeros_like(c), cache)
        eps = 1e-6
        xp, xm = x.copy(), x.copy()
        xp[0, 1] += eps
        xm[0, 1] -= eps
        hp, _, _ = cell.step(xp, h0, c0)
        hm, _, _ = cell.step(xm, h0, c0)
        num = (hp.sum() - hm.sum()) / (2 * eps)
        assert abs(num - dx[0, 1]) < 1e-6

    def test_carry_gradient(self, rng):
        cell = LSTMCell(3, 4, rng)
        x = rng.standard_normal((1, 3))
        h0 = rng.standard_normal((1, 4)) * 0.1
        c0 = rng.standard_normal((1, 4)) * 0.1
        h, c, cache = cell.step(x, h0, c0)
        _, dh_prev, dc_prev = cell.backward_step(
            np.ones_like(h), np.zeros_like(c), cache)
        eps = 1e-6
        hp = h0.copy()
        hp[0, 2] += eps
        hm = h0.copy()
        hm[0, 2] -= eps
        yp, _, _ = cell.step(x, hp, c0)
        ym, _, _ = cell.step(x, hm, c0)
        num = (yp.sum() - ym.sum()) / (2 * eps)
        assert abs(num - dh_prev[0, 2]) < 1e-6


class TestFusedLSTM:
    """The fused driver is the hot path; the reference cell is ground
    truth.  The stacked-[x,h] GEMM contracts in a different order than
    the reference's two GEMMs, so equality is to rounding, not bits."""

    def _reference_pass(self, cell, xs, dhs):
        """Reference forward + BPTT; returns (hs, param grads, dxs)."""
        h, c = cell.initial_state(xs[0].shape[0])
        hs, caches = [], []
        for x in xs:
            h, c, cache = cell.step(x, h, c)
            hs.append(h)
            caches.append(cache)
        for p in cell.parameters():
            p.zero_grad()
        dh = np.zeros_like(h)
        dc = np.zeros_like(c)
        dxs = [None] * len(xs)
        for t in reversed(range(len(xs))):
            dx, dh, dc = cell.backward_step(dhs[t] + dh, dc, caches[t])
            dxs[t] = dx
        grads = {p.name: p.grad.copy() for p in cell.parameters()}
        return hs, grads, dxs

    def _fused_pass(self, fused, xs, dhs):
        cell = fused.cell
        fused.begin(len(xs), xs[0].shape[0])
        hs = [fused.step(t, x).copy() for t, x in enumerate(xs)]
        for p in cell.parameters():
            p.zero_grad()
        dh_next = None
        dc = np.zeros_like(hs[0])
        for t in reversed(range(len(xs))):
            dh = dhs[t] + dh_next if dh_next is not None else dhs[t]
            dh_next, dc = fused.backward_step(t, dh, dc)
        fused.backward_finish()
        grads = {p.name: p.grad.copy() for p in cell.parameters()}
        return hs, grads, fused.input_grads()

    def _assert_pass_matches(self, cell, fused, rng, horizon, batch):
        xs = [rng.standard_normal((batch, cell.input_size))
              for _ in range(horizon)]
        dhs = [rng.standard_normal((batch, cell.hidden_size))
               for _ in range(horizon)]
        ref_hs, ref_grads, ref_dxs = self._reference_pass(cell, xs, dhs)
        fus_hs, fus_grads, fus_dxs = self._fused_pass(fused, xs, dhs)
        for t in range(horizon):
            np.testing.assert_allclose(fus_hs[t], ref_hs[t], atol=1e-12)
            np.testing.assert_allclose(fus_dxs[t], ref_dxs[t], atol=1e-12)
        for name, ref in ref_grads.items():
            np.testing.assert_allclose(fus_grads[name], ref, atol=1e-11,
                                       err_msg=name)

    def test_matches_reference_cell(self, rng):
        cell = LSTMCell(5, 8, rng)
        self._assert_pass_matches(cell, FusedLSTM(cell), rng,
                                  horizon=6, batch=3)

    def test_buffers_reused_across_batch_sizes(self, rng):
        """Shape-keyed buffer pooling: passes at different (T, B) — and a
        return to an earlier shape — must all match the reference."""
        cell = LSTMCell(4, 6, rng)
        fused = FusedLSTM(cell)
        for horizon, batch in [(5, 8), (5, 3), (2, 8), (5, 8)]:
            self._assert_pass_matches(cell, fused, rng, horizon, batch)

    def test_weight_refresh_on_begin(self, rng):
        """Parameters are flat-pack views mutated externally; begin()
        must pick up the new values."""
        cell = LSTMCell(3, 4, rng)
        fused = FusedLSTM(cell)
        x = rng.standard_normal((2, 3))
        fused.begin(1, 2)
        first = fused.step(0, x).copy()
        cell.wx.value += 0.1     # optimizer-style in-place update
        fused.begin(1, 2)
        second = fused.step(0, x).copy()
        assert not np.allclose(first, second)
        ref, _, _ = cell.step(x, *cell.initial_state(2))
        np.testing.assert_allclose(second, ref, atol=1e-12)
