"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.hpc.sim import AllOf, Event, Interrupt, Simulator, Timeout


class TestTimeouts:
    def test_clock_advances(self):
        sim = Simulator()
        log = []

        def proc():
            yield Timeout(5.0)
            log.append(sim.now)
            yield Timeout(2.5)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [5.0, 7.5]

    def test_zero_delay_ok(self):
        sim = Simulator()
        done = []

        def proc():
            yield Timeout(0.0)
            done.append(True)

        sim.process(proc())
        sim.run()
        assert done == [True]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_same_time_fifo_order(self):
        sim = Simulator()
        order = []

        def proc(tag):
            yield Timeout(1.0)
            order.append(tag)

        for tag in "abc":
            sim.process(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_run_until_stops_clock(self):
        sim = Simulator()

        def proc():
            yield Timeout(100.0)

        sim.process(proc())
        sim.run(until=30.0)
        assert sim.now == 30.0
        sim.run()  # finish the rest
        assert sim.now == 100.0

    def test_run_until_beyond_all_events_keeps_last_event_time(self):
        # SimPy semantics: the clock stays at the last executed event
        sim = Simulator()

        def proc():
            yield Timeout(5.0)

        sim.process(proc())
        sim.run(until=50.0)
        assert sim.now == 5.0


class TestEvents:
    def test_wait_then_succeed(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def waiter():
            value = yield ev
            got.append((sim.now, value))

        def firer():
            yield Timeout(3.0)
            ev.succeed("payload")

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert got == [(3.0, "payload")]

    def test_wait_on_already_fired_event(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(42)
        got = []

        def waiter():
            value = yield ev
            got.append(value)

        sim.process(waiter())
        sim.run()
        assert got == [42]

    def test_double_succeed_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(RuntimeError):
            ev.succeed()

    def test_multiple_waiters(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def waiter(tag):
            value = yield ev
            got.append((tag, value))

        for tag in "ab":
            sim.process(waiter(tag))

        def firer():
            yield Timeout(1.0)
            ev.succeed("x")

        sim.process(firer())
        sim.run()
        assert sorted(got) == [("a", "x"), ("b", "x")]

    def test_timeout_event(self):
        sim = Simulator()
        ev = sim.timeout_event(4.0, "done")
        got = []

        def waiter():
            got.append((yield ev))

        sim.process(waiter())
        sim.run()
        assert got == ["done"] and sim.now == 4.0


class TestProcesses:
    def test_process_is_event_with_return_value(self):
        sim = Simulator()

        def child():
            yield Timeout(2.0)
            return "result"

        def parent():
            value = yield sim.process(child())
            return value

        p = sim.process(parent())
        sim.run()
        assert p.triggered and p.value == "result"

    def test_allof_barrier(self):
        sim = Simulator()

        def child(d):
            yield Timeout(d)
            return d

        def parent():
            kids = [sim.process(child(d)) for d in (3.0, 1.0, 2.0)]
            values = yield AllOf(kids)
            return (sim.now, values)

        p = sim.process(parent())
        sim.run()
        assert p.value == (3.0, [3.0, 1.0, 2.0])  # order preserved

    def test_allof_empty(self):
        sim = Simulator()

        def parent():
            values = yield AllOf([])
            return values

        p = sim.process(parent())
        sim.run()
        assert p.value == []

    def test_interrupt(self):
        sim = Simulator()
        caught = []

        def victim():
            try:
                yield Timeout(100.0)
            except Interrupt as exc:
                caught.append((sim.now, exc.cause))

        v = sim.process(victim())

        def attacker():
            yield Timeout(5.0)
            v.interrupt("preempted")

        sim.process(attacker())
        sim.run(until=10.0)
        assert caught == [(5.0, "preempted")]

    def test_interrupt_cancels_pending_timeout(self):
        # regression: interrupting a process parked on Timeout(100) must
        # cancel that continuation — the old callback firing at t=100
        # must not resume the generator out of its post-interrupt sleep
        sim = Simulator()
        resumed = []

        def victim():
            try:
                yield Timeout(100.0)
            except Interrupt:
                pass
            yield Timeout(500.0)
            resumed.append(sim.now)

        v = sim.process(victim())

        def attacker():
            yield Timeout(10.0)
            v.interrupt("preempted")

        sim.process(attacker())
        sim.run()
        assert resumed == [510.0]

    def test_interrupt_cancels_pending_event_wait(self):
        # a fired event whose waiter was interrupted before resuming must
        # not push the generator past its post-interrupt yield
        sim = Simulator()
        ev = sim.event()
        log = []

        def victim():
            try:
                yield ev
                log.append(("granted", sim.now))
            except Interrupt:
                log.append(("interrupted", sim.now))
            yield Timeout(50.0)
            log.append(("done", sim.now))

        v = sim.process(victim())

        def firer():
            yield Timeout(5.0)
            # same instant: the interrupt lands at the generator first,
            # so the queued grant callback must be dropped as stale
            v.interrupt("preempted")
            ev.succeed("grant")

        sim.process(firer())
        sim.run()
        assert log == [("interrupted", 5.0), ("done", 55.0)]

    def test_bad_yield_type_raises(self):
        sim = Simulator()

        def proc():
            yield 42

        sim.process(proc())
        with pytest.raises(TypeError):
            sim.run()

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() == float("inf")

        def proc():
            yield Timeout(7.0)

        sim.process(proc())
        assert sim.peek() == 0.0  # the process start callback
