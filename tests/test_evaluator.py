"""Unit tests for the evaluator API, cache, and Balsam backend."""

import numpy as np
import pytest

from repro.evaluator import (BalsamEvaluator, BalsamService, EvalCache,
                             SerialEvaluator)
from repro.hpc.cluster import Cluster
from repro.hpc.faults import FaultConfig, FaultInjector
from repro.hpc.sim import Simulator, Timeout
from repro.nas.arch import Architecture
from repro.rewards.base import EvalResult, RewardModel


class StubReward(RewardModel):
    """Deterministic reward: sum of choices; duration = 10 + first choice."""

    def __init__(self):
        self.calls = 0

    def evaluate(self, arch, agent_seed=0):
        self.calls += 1
        return EvalResult(reward=float(sum(arch.choices)) + agent_seed * 100,
                          duration=10.0 + arch.choices[0],
                          params=1000 * (1 + arch.choices[0]))


def A(*choices):
    return Architecture("stub", tuple(choices))


class TestEvalCache:
    def test_miss_then_hit(self):
        cache = EvalCache()
        assert cache.get(A(1)) is None
        cache.put(A(1), EvalResult(0.5, 1.0, 10))
        assert cache.get(A(1)).reward == 0.5
        assert cache.hits == 1 and cache.misses == 1

    def test_contains_and_len(self):
        cache = EvalCache()
        cache.put(A(1), EvalResult(0.5, 1.0, 10))
        assert A(1) in cache and A(2) not in cache
        assert len(cache) == 1 == cache.unique_architectures

    def test_distinct_spaces_distinct_keys(self):
        cache = EvalCache()
        cache.put(Architecture("s1", (1,)), EvalResult(0.1, 1.0, 1))
        assert cache.get(Architecture("s2", (1,))) is None


class TestSerialEvaluator:
    def test_evaluates_and_drains(self):
        ev = SerialEvaluator(StubReward())
        ev.add_eval_batch([A(1, 2), A(3, 4)])
        recs = ev.get_finished_evals()
        assert [r.reward for r in recs] == [3.0, 7.0]
        assert ev.get_finished_evals() == []

    def test_cache_prevents_reevaluation(self):
        rm = StubReward()
        ev = SerialEvaluator(rm)
        ev.add_eval_batch([A(1, 2)])
        ev.add_eval_batch([A(1, 2)])
        recs = ev.get_finished_evals()
        assert rm.calls == 1
        assert recs[1].cached and not recs[0].cached
        assert ev.num_cache_hits == 1

    def test_cache_disabled(self):
        rm = StubReward()
        ev = SerialEvaluator(rm, use_cache=False)
        ev.add_eval_batch([A(1, 2)])
        ev.add_eval_batch([A(1, 2)])
        assert rm.calls == 2

    def test_agent_seed_passed(self):
        ev = SerialEvaluator(StubReward(), agent_id=3)
        ev.add_eval_batch([A(1, 1)])
        assert ev.get_finished_evals()[0].reward == 302.0


class TestBalsamService:
    def _setup(self, nodes=2):
        sim = Simulator()
        cluster = Cluster(sim, nodes)
        service = BalsamService(sim, cluster, submit_latency=1.0)
        return sim, cluster, service

    def test_job_lifecycle(self):
        sim, cluster, service = self._setup()
        job = service.submit(0, A(1), EvalResult(0.5, 10.0, 100))
        assert job.state == "CREATED"
        sim.run()
        assert job.state == "FINISHED"
        assert job.start_time == 1.0        # submit latency
        assert job.end_time == 11.0
        assert service.num_finished == 1

    def test_jobs_queue_on_busy_cluster(self):
        sim, cluster, service = self._setup(nodes=1)
        j1 = service.submit(0, A(1), EvalResult(0.1, 10.0, 1))
        j2 = service.submit(0, A(2), EvalResult(0.2, 10.0, 1))
        sim.run()
        assert j1.end_time == 11.0
        assert j2.start_time == 11.0 and j2.end_time == 21.0

    def test_utilization_reflects_jobs(self):
        sim, cluster, service = self._setup(nodes=2)
        service.submit(0, A(1), EvalResult(0.1, 10.0, 1))
        service.submit(0, A(2), EvalResult(0.2, 10.0, 1))
        sim.run()
        # both nodes busy from t=1 to t=11
        u = cluster.mean_utilization(11.0)
        assert u == pytest.approx(10.0 / 11.0)


class TestBalsamEvaluator:
    def _setup(self, nodes=4):
        sim = Simulator()
        cluster = Cluster(sim, nodes)
        service = BalsamService(sim, cluster, submit_latency=0.0)
        return sim, BalsamEvaluator(service, StubReward(), agent_id=0)

    def test_batch_event_fires_when_all_done(self):
        sim, ev = self._setup()
        done_at = []

        def agent():
            batch = ev.add_eval_batch([A(0, 0), A(5, 0)])
            yield batch
            done_at.append(sim.now)

        sim.process(agent())
        sim.run()
        # durations 10 and 15: the barrier is the slower one
        assert done_at == [15.0]
        recs = ev.get_finished_evals()
        assert sorted(r.reward for r in recs) == [0.0, 5.0]

    def test_cached_batch_completes_instantly(self):
        sim, ev = self._setup()
        times = []

        def agent():
            yield ev.add_eval_batch([A(1, 1)])
            ev.get_finished_evals()
            t0 = sim.now
            yield ev.add_eval_batch([A(1, 1)])
            times.append(sim.now - t0)
            assert ev.last_batch_all_cached

        sim.process(agent())
        sim.run()
        assert times == [0.0]

    def test_duplicates_within_batch_counted(self):
        sim, ev = self._setup()

        def agent():
            yield ev.add_eval_batch([A(2, 2), A(2, 2)])

        sim.process(agent())
        sim.run()
        recs = ev.get_finished_evals()
        assert len(recs) == 2  # one real eval + (potentially) one duplicate

    def test_mixed_batch_not_all_cached(self):
        sim, ev = self._setup()

        def agent():
            yield ev.add_eval_batch([A(1, 1)])
            ev.get_finished_evals()
            yield ev.add_eval_batch([A(1, 1), A(9, 9)])
            assert not ev.last_batch_all_cached

        sim.process(agent())
        sim.run()


class TestBalsamRetries:
    """Balsam job lifecycle under faults: RUN_ERROR -> RESTART_ENABLED
    with capped exponential backoff, then FAILED after max_retries."""

    def _setup(self, faults, nodes=2, **kwargs):
        sim = Simulator()
        cluster = Cluster(sim, nodes)
        service = BalsamService(sim, cluster, submit_latency=1.0,
                                faults=FaultInjector(sim, faults), **kwargs)
        return sim, cluster, service

    def test_crash_restarts_and_finishes(self):
        # crash probability 1 on attempt 1 only is impossible to pin with
        # a seeded rng, so crash every attempt but allow enough retries
        # to observe RESTART_ENABLED bookkeeping deterministically
        sim, cluster, service = self._setup(
            FaultConfig(job_crash_prob=1.0, seed=0),
            max_retries=2, retry_backoff=4.0, retry_backoff_cap=100.0)
        job = service.submit(0, A(1), EvalResult(0.5, 10.0, 100))
        sim.run()
        assert job.state == "FAILED"
        assert job.num_retries == 2
        assert job.attempts == 3
        assert job.failed
        assert job.done.triggered
        assert service.num_restarts == 2
        assert cluster.busy == 0            # every crash released its node

    def test_backoff_is_capped_exponential(self):
        sim, cluster, service = self._setup(
            FaultConfig(job_crash_prob=1.0, seed=0),
            max_retries=3, retry_backoff=4.0, retry_backoff_cap=6.0)
        job = service.submit(0, A(1), EvalResult(0.5, 10.0, 100))
        sim.run()
        # attempt starts: latency 1.0, then each retry waits
        # min(4*2^(k-1), 6) after its partial run
        waits = [s for s, _ in job.run_log]
        gaps = [round(b - a, 6) for a, b in zip(waits, waits[1:])]
        crash_frac = service.faults.job_fault(job.job_id, 1).crash_frac
        # gap = partial run + backoff; backoffs are 4, 6, 6 (capped)
        backoffs = [round(g - 10.0 * service.faults.job_fault(
            job.job_id, k + 1).crash_frac, 6)
            for k, g in enumerate(gaps)]
        assert backoffs == [4.0, 6.0, 6.0]

    def test_zero_faults_identical_lifecycle(self):
        sim = Simulator()
        cluster = Cluster(sim, 2)
        plain = BalsamService(sim, cluster, submit_latency=1.0)
        job = plain.submit(0, A(1), EvalResult(0.5, 10.0, 100))
        sim.run()
        assert (job.state, job.start_time, job.end_time) == \
            ("FINISHED", 1.0, 11.0)
        assert job.attempts == 1 and job.num_retries == 0

    def test_failed_job_surfaces_failure_reward(self):
        sim = Simulator()
        cluster = Cluster(sim, 2)
        service = BalsamService(
            sim, cluster,
            faults=FaultInjector(sim, FaultConfig(job_crash_prob=1.0)),
            max_retries=1, retry_backoff=1.0)
        ev = BalsamEvaluator(service, StubReward(), agent_id=0)
        released = []

        def agent():
            yield ev.add_eval_batch([A(1, 2)])
            released.append(sim.now)

        sim.process(agent())
        sim.run()
        assert released                      # the barrier still released
        recs = ev.get_finished_evals()
        assert [r.reward for r in recs] == [RewardModel.FAILURE_REWARD]
        assert ev.num_failed == 1
        # failures are never cached: the arch may be retried later
        assert ev.cache is not None and len(ev.cache) == 0


class TestBatchDeadline:
    def test_deadline_releases_stuck_barrier(self):
        sim = Simulator()
        cluster = Cluster(sim, 1)
        service = BalsamService(sim, cluster, submit_latency=0.0)
        ev = BalsamEvaluator(service, StubReward(), agent_id=0,
                             batch_deadline=30.0)
        # occupy the only node forever: the batch can never start
        blocker = service.submit(9, A(9, 0), EvalResult(0.0, 1e9, 1))
        released = []

        def agent():
            yield Timeout(1.0)
            yield ev.add_eval_batch([A(1, 1)])
            released.append(sim.now)

        sim.process(agent())
        sim.run(until=100.0)
        assert released == [31.0]            # submit + deadline
        recs = ev.get_finished_evals()
        assert [r.reward for r in recs] == [RewardModel.FAILURE_REWARD]
        assert recs[0].result.reward == RewardModel.FAILURE_REWARD
        assert ev.num_failed == 1

    def test_timed_out_job_releases_node_when_granted(self):
        # the abandoned job eventually reaches the head of the queue: its
        # pilot must hand the node straight back
        sim = Simulator()
        cluster = Cluster(sim, 1)
        service = BalsamService(sim, cluster, submit_latency=0.0)
        ev = BalsamEvaluator(service, StubReward(), agent_id=0,
                             batch_deadline=5.0)
        blocker = service.submit(9, A(9, 9), EvalResult(0.0, 50.0, 1))

        def agent():
            yield ev.add_eval_batch([A(1, 1)])

        sim.process(agent())
        sim.run()
        abandoned = service.jobs[1]
        assert abandoned.state == "RUN_TIMEOUT"
        assert cluster.busy == 0             # node returned after grant

    def test_deadline_validation(self):
        sim = Simulator()
        service = BalsamService(sim, Cluster(sim, 1))
        with pytest.raises(ValueError):
            BalsamEvaluator(service, StubReward(), agent_id=0,
                            batch_deadline=0.0)

    def test_no_deadline_waits_forever(self):
        sim = Simulator()
        cluster = Cluster(sim, 1)
        service = BalsamService(sim, cluster, submit_latency=0.0)
        ev = BalsamEvaluator(service, StubReward(), agent_id=0)
        service.submit(9, A(9, 0), EvalResult(0.0, 1e9, 1))
        released = []

        def agent():
            yield ev.add_eval_batch([A(1, 1)])
            released.append(sim.now)

        sim.process(agent())
        sim.run(until=10_000.0)
        assert released == []


class TestEmptyBatch:
    def test_empty_batch_succeeds_immediately(self):
        sim = Simulator()
        service = BalsamService(sim, Cluster(sim, 1), submit_latency=0.0)
        ev = BalsamEvaluator(service, StubReward(), agent_id=0)
        done = ev.add_eval_batch([])
        assert done.triggered                # no finisher, no AllOf([])
        assert not ev.last_batch_all_cached  # explicitly NOT convergence
        assert ev.get_finished_evals() == []

    def test_all_cached_batch_succeeds_immediately(self):
        sim = Simulator()
        service = BalsamService(sim, Cluster(sim, 1), submit_latency=0.0)
        ev = BalsamEvaluator(service, StubReward(), agent_id=0)

        def agent():
            yield ev.add_eval_batch([A(3, 3)])
            ev.get_finished_evals()
            done = ev.add_eval_batch([A(3, 3)])
            assert done.triggered
            assert ev.last_batch_all_cached

        sim.process(agent())
        sim.run()
        recs = ev.get_finished_evals()
        assert len(recs) == 1 and recs[0].cached


class TestBatchStatsEvent:
    """The broker's batched plan gather: each submission prefetches every
    distinct architecture's plan from the shared cache and reports the
    gather through a BATCH_STATS event."""

    def _surrogate_with_cache(self):
        from repro.hpc import TrainingCostModel
        from repro.nas.plancache import PlanCache
        from repro.nas.spaces import combo_small
        from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
        from repro.rewards import SurrogateReward

        space = combo_small()
        rm = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                             TrainingCostModel.combo_paper(), epochs=1,
                             train_fraction=0.1, timeout=600.0, seed=7)
        rm.set_plan_cache(PlanCache())
        return space, rm

    def test_no_plan_cache_no_event(self):
        from repro.events import BATCH_STATS, RecordingSink

        sink = RecordingSink()
        ev = SerialEvaluator(StubReward(), sink=sink, use_cache=False)
        ev.add_eval_batch([A(1), A(2)])
        assert sink.of_kind(BATCH_STATS) == []

    def test_gather_reports_batch_and_cache_deltas(self):
        from repro.events import BATCH_STATS, RecordingSink

        space, rm = self._surrogate_with_cache()
        sink = RecordingSink()
        ev = SerialEvaluator(rm, sink=sink, use_cache=False)
        rng = np.random.default_rng(0)
        archs = [space.random_architecture(rng) for _ in range(3)]

        ev.add_eval_batch([archs[0], archs[0], archs[1], archs[2]])
        first = sink.of_kind(BATCH_STATS)[0].payload
        assert first["batch"] == 4
        assert first["distinct"] == 3       # duplicate deduplicated
        assert first["plan_misses"] == 3    # cold cache: all compiled
        assert first["plan_hits"] == 0

        # resubmission: every distinct arch answered from the warm cache.
        # the evaluate() calls of batch one also hit the cache, so only
        # the *delta* across this gather is asserted
        ev.add_eval_batch(archs)
        second = sink.of_kind(BATCH_STATS)[1].payload
        assert second["distinct"] == 3
        assert second["plan_hits"] == 3
        assert second["plan_misses"] == 0

    def test_event_payload_serializes(self):
        import json

        from repro.events import BATCH_STATS, RecordingSink

        space, rm = self._surrogate_with_cache()
        sink = RecordingSink()
        ev = SerialEvaluator(rm, sink=sink)
        ev.add_eval_batch([space.random_architecture(np.random.default_rng(1))])
        event = sink.of_kind(BATCH_STATS)[0]
        round_trip = json.loads(json.dumps(event.to_dict()))
        assert round_trip["kind"] == BATCH_STATS
        assert set(round_trip["payload"]) == {"batch", "distinct",
                                              "plan_hits", "plan_misses",
                                              "iso_hits"}
