"""Determinism fingerprints: same seed => same fingerprint, across all
search methods, under fault injection, and across checkpoint/resume."""

import numpy as np
import pytest

from repro.hpc import NodeAllocation, TrainingCostModel
from repro.hpc.faults import FaultConfig
from repro.nas.spaces import get_space
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search import SearchConfig, run_search
from repro.search.runner import NasSearch, resume_search
from repro.verify.fingerprint import (agent_genesis, chain_step,
                                      param_digest, record_digest)


@pytest.fixture(scope="module")
def space():
    return get_space("combo-small", scale=0.05)


@pytest.fixture(scope="module")
def surrogate(space):
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(),
                           epochs=1, train_fraction=0.1, timeout=600.0,
                           seed=7)


def config(method="a3c", minutes=20, **kwargs):
    defaults = dict(method=method, allocation=NodeAllocation(32, 4, 3),
                    wall_time=minutes * 60.0, seed=1)
    defaults.update(kwargs)
    return SearchConfig(**defaults)


class TestPrimitives:
    def test_genesis_is_deterministic_and_distinct(self):
        assert agent_genesis(1, 0) == agent_genesis(1, 0)
        assert agent_genesis(1, 0) != agent_genesis(1, 1)
        assert agent_genesis(1, 0) != agent_genesis(2, 0)

    def test_chain_step_sensitivity(self):
        actions = np.array([[0, 1], [2, 0]])
        rewards = np.array([0.5, -0.25])
        flat = np.linspace(0, 1, 7)
        base = chain_step("aa", actions, rewards, flat)
        assert base == chain_step("aa", actions, rewards, flat.copy())
        assert base != chain_step("bb", actions, rewards, flat)
        assert base != chain_step("aa", actions + 1, rewards, flat)
        assert base != chain_step("aa", actions, rewards + 1e-9, flat)
        assert base != chain_step("aa", actions, rewards, flat + 1e-12)
        assert base != chain_step("aa", actions, rewards, None)

    def test_param_digest(self):
        v = np.arange(5, dtype=np.float64)
        assert param_digest(v) == param_digest(v.astype(np.float32)
                                               .astype(np.float64))
        assert param_digest(None) == ""
        assert param_digest(v) != param_digest(v + 1e-15)

    def test_record_digest_is_order_independent(self, space, surrogate):
        result = run_search(space, surrogate, config(minutes=10))
        records = list(result.records)
        assert len(records) > 4
        shuffled = list(records)
        np.random.default_rng(0).shuffle(shuffled)
        assert record_digest(records) == record_digest(shuffled)
        assert record_digest(records) != record_digest(records[:-1])


class TestSameSeedProperty:
    """ISSUE 3 satellite: two run_search calls with the same seed give
    bit-identical fingerprints across a3c/a2c/rdm."""

    @pytest.mark.verify
    @pytest.mark.parametrize("method", ["a3c", "a2c", "rdm"])
    def test_same_seed_same_fingerprint(self, space, surrogate, method):
        cfg = config(method=method)
        fp1 = run_search(space, surrogate, cfg).fingerprint()
        fp2 = run_search(space, surrogate, cfg).fingerprint()
        assert fp1 == fp2

    def test_different_seeds_differ(self, space, surrogate):
        fp1 = run_search(space, surrogate, config(seed=1)).fingerprint()
        fp2 = run_search(space, surrogate, config(seed=2)).fingerprint()
        assert fp1 != fp2

    def test_different_methods_differ(self, space, surrogate):
        fps = {m: run_search(space, surrogate,
                             config(method=m)).fingerprint()
               for m in ("a3c", "rdm")}
        assert fps["a3c"] != fps["rdm"]

    @pytest.mark.verify
    @pytest.mark.chaos
    @pytest.mark.parametrize("method", ["a3c", "rdm"])
    def test_same_seed_under_light_chaos(self, space, surrogate, method):
        """Seeded fault injection is part of the trajectory: same seed
        must still give bit-identical fingerprints."""
        span = 20 * 60.0
        faults = FaultConfig(node_mtbf=4.0 * span,
                             node_repair_time=span / 10.0,
                             job_crash_prob=0.01, seed=5)
        cfg = config(method=method, faults=faults, batch_deadline=900.0)
        fp1 = run_search(space, surrogate, cfg).fingerprint()
        fp2 = run_search(space, surrogate, cfg).fingerprint()
        assert fp1 == fp2


@pytest.mark.verify
class TestResumeFingerprint:
    """ISSUE 3 acceptance: a checkpoint/resume run fingerprints
    identically to the uninterrupted same-seed run."""

    @pytest.mark.parametrize("method", ["a3c", "a2c", "rdm"])
    def test_resume_matches_uninterrupted(self, space, surrogate, method):
        cfg = config(method=method, minutes=30,
                     checkpoint_interval=300.0)
        search = NasSearch(space, surrogate, cfg)
        full = search.run()
        assert len(search.checkpoints) >= 2

        # resume from a genuine mid-run snapshot (agents in flight)
        mid = search.checkpoints[len(search.checkpoints) // 2]
        assert any(not a.done for a in mid.agents)
        resumed = resume_search(space, surrogate, mid.round_trip(),
                                config(method=method, minutes=30))

        assert full.fingerprint() == resumed.fingerprint()
        assert len(full.records) == len(resumed.records)

    def test_checkpoint_fingerprint_survives_round_trip(self, space,
                                                        surrogate):
        cfg = config(minutes=30, checkpoint_interval=300.0)
        search = NasSearch(space, surrogate, cfg)
        search.run()
        ckpt = search.checkpoints[len(search.checkpoints) // 2]
        assert ckpt.fingerprint() == ckpt.round_trip().fingerprint()
        assert ckpt.fingerprint()  # non-empty hex
