"""Unit tests for SGD/Adam and gradient clipping."""

import numpy as np
import pytest

from repro.nn.optimizers import SGD, Adam, clip_global_norm, get_optimizer
from repro.nn.tensor import Parameter


def _quadratic_descent(opt_factory, steps=200):
    """Minimize ||p - target||^2; returns the final distance."""
    p = Parameter(np.zeros(4))
    target = np.array([1.0, -2.0, 0.5, 3.0])
    opt = opt_factory([p])
    for _ in range(steps):
        p.zero_grad()
        p.grad += 2.0 * (p.value - target)
        opt.step()
    return float(np.abs(p.value - target).max())


class TestSGD:
    def test_converges_on_quadratic(self):
        assert _quadratic_descent(lambda ps: SGD(ps, lr=0.1)) < 1e-6

    def test_momentum_converges(self):
        assert _quadratic_descent(
            lambda ps: SGD(ps, lr=0.05, momentum=0.9)) < 1e-4

    def test_single_step_value(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.5)
        p.grad += np.array([2.0])
        opt.step()
        assert p.value[0] == 0.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        assert _quadratic_descent(lambda ps: Adam(ps, lr=0.1), steps=400) < 1e-4

    def test_first_step_size_is_lr(self):
        # with bias correction, the first Adam step has magnitude ~lr
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.01)
        p.grad += np.array([123.0])
        opt.step()
        assert abs(abs(p.value[0]) - 0.01) < 1e-6

    def test_shared_parameter_updated_once(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p, p], lr=0.01)  # same object twice
        p.grad += np.array([1.0])
        opt.step()
        # moments keyed by identity: exactly one state slot
        assert len(opt._m) == 1

    def test_zero_grad_helper(self):
        p = Parameter(np.ones(3))
        opt = Adam([p])
        p.grad += 2.0
        opt.zero_grad()
        np.testing.assert_array_equal(p.grad, 0.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([], lr=-1.0)


class TestClipGlobalNorm:
    def test_no_clip_below_threshold(self):
        g = [np.array([3.0, 4.0])]  # norm 5
        norm = clip_global_norm(g, 10.0)
        assert norm == 5.0
        np.testing.assert_array_equal(g[0], [3.0, 4.0])

    def test_clips_above_threshold(self):
        g = [np.array([3.0, 4.0])]
        norm = clip_global_norm(g, 1.0)
        assert norm == 5.0
        assert abs(np.linalg.norm(g[0]) - 1.0) < 1e-12

    def test_multiple_arrays_share_scale(self):
        g = [np.array([3.0]), np.array([4.0])]
        clip_global_norm(g, 1.0)
        total = np.sqrt(g[0][0] ** 2 + g[1][0] ** 2)
        assert abs(total - 1.0) < 1e-12

    def test_zero_grads_safe(self):
        g = [np.zeros(3)]
        assert clip_global_norm(g, 1.0) == 0.0


class TestGetOptimizer:
    def test_lookup(self):
        p = Parameter(np.zeros(1))
        assert isinstance(get_optimizer("adam", [p]), Adam)
        assert isinstance(get_optimizer("sgd", [p], lr=0.1), SGD)

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_optimizer("rmsprop", [])
