"""First-class search methods behind the proposer seam.

AMBS and aging evolution are not side-cars: they ride the same runner,
broker, event stream, and durability machinery as the RL methods.
These tests pin that contract — registry coverage, seed determinism on
the balsam backend, checkpoint/resume bit-identity, SIGKILL crash-point
durability (``crashfuzz``-marked), and the tabular-benchmark acceptance
check that AMBS reaches low exact regret in fewer evaluations than
random search on an exhaustively swept space.
"""

import numpy as np
import pytest

from repro.bench import ArchTable, SweepConfig, capped_space, sweep_space
from repro.hpc import NodeAllocation, TrainingCostModel
from repro.nas.plancache import SignatureResolver
from repro.nas.spaces import combo_small, get_space
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.problems.nt3 import NT3_PAPER_SHAPES, nt3_head
from repro.rewards import SurrogateReward, TabularReward
from repro.search import (EXCHANGE_STRATEGIES, SEARCH_METHODS, NasSearch,
                          SearchConfig, run_search)
from repro.search.ambs import AmbsProposer, RidgeEnsemble, encode_rows
from repro.search.evolution import EvolutionProposer
from repro.search.proposer import (HistoryProposer, PolicyProposer,
                                   RandomProposer)
from repro.search.runner import resume_search
from repro.analytics import evaluations_to_regret

NEW_METHODS = ("ambs", "evolution")


@pytest.fixture(scope="module")
def space():
    return combo_small()


def make_surrogate(space, seed=7):
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(), epochs=1,
                           train_fraction=0.1, timeout=600.0, seed=seed)


def small_config(method, minutes=30, **kwargs):
    defaults = dict(method=method, allocation=NodeAllocation(32, 4, 3),
                    wall_time=minutes * 60.0, seed=1,
                    population_size=12, tournament_size=4,
                    ambs_warmup=8, ambs_candidates=32, ambs_ensemble=4)
    defaults.update(kwargs)
    return SearchConfig(**defaults)


class TestRegistry:
    def test_every_method_is_registered(self):
        assert set(SEARCH_METHODS) == {"a3c", "a2c", "rdm",
                                       "ambs", "evolution"}

    def test_exchange_registry_is_still_rl_only(self):
        # the proposer seam did not leak new names into the
        # exchange-level registry
        assert set(EXCHANGE_STRATEGIES) == {"a3c", "a2c", "rdm"}

    def test_method_rows_are_consistent(self):
        for name, m in SEARCH_METHODS.items():
            assert m.name == name
            assert m.summary
            assert m.learns == m.proposer.learns
        assert SEARCH_METHODS["a3c"].proposer is PolicyProposer
        assert SEARCH_METHODS["rdm"].proposer is RandomProposer
        assert SEARCH_METHODS["ambs"].proposer is AmbsProposer
        assert SEARCH_METHODS["evolution"].proposer is EvolutionProposer

    def test_unknown_method_error_lists_the_registry(self):
        with pytest.raises(ValueError, match="ambs.*evolution"):
            SearchConfig(method="bogus")

    def test_cli_list_methods(self, capsys):
        from repro.cli import main
        assert main(["search", "--list-methods"]) == 0
        out = capsys.readouterr().out
        for name in SEARCH_METHODS:
            assert name in out


class TestConfigValidation:
    def test_population_bounds(self):
        with pytest.raises(ValueError):
            SearchConfig(method="evolution", population_size=1)
        with pytest.raises(ValueError):
            SearchConfig(method="evolution", population_size=5,
                         tournament_size=6)

    def test_ambs_bounds(self):
        with pytest.raises(ValueError):
            SearchConfig(method="ambs", ambs_warmup=0)
        with pytest.raises(ValueError):
            SearchConfig(method="ambs", ambs_liar="median")
        with pytest.raises(ValueError):
            SearchConfig(method="ambs", ambs_ensemble=1)
        with pytest.raises(ValueError):
            SearchConfig(method="ambs", ambs_kappa=-0.1)


class TestSurrogate:
    def test_encode_rows_shape_and_intercept(self):
        rows = [(0, 1), (2, 0)]
        x = encode_rows(rows, [3, 2])
        assert x.shape == (2, 6)
        assert np.all(x[:, -1] == 1.0)
        assert np.array_equal(x[0, :5], [1, 0, 0, 0, 1])

    def test_ridge_recovers_a_linear_signal(self):
        rng = np.random.default_rng(0)
        rows = [tuple(rng.integers(0, 3, size=4)) for _ in range(200)]
        y = np.array([r[0] - 0.5 * r[2] for r in rows], dtype=float)
        x = encode_rows(rows, [3, 3, 3, 3])
        ens = RidgeEnsemble(members=6)
        ens.fit(x, y, rng)
        mean, std = ens.predict(x)
        assert np.corrcoef(mean, y)[0, 1] > 0.95
        assert np.all(std >= 0.0)


class TestDeterminism:
    @pytest.mark.parametrize("method", NEW_METHODS)
    def test_balsam_runs_are_bit_identical(self, space, method):
        keys = []
        for _ in range(2):
            res = run_search(space, make_surrogate(space),
                             small_config(method))
            assert res.num_evaluations > 20
            assert all(-1.0 <= r.reward <= 1.0 for r in res.records)
            keys.append((res.fingerprint(),
                         [(r.time, r.arch.key) for r in res.records]))
        assert keys[0] == keys[1]


class TestCheckpointResume:
    @pytest.mark.parametrize("method", NEW_METHODS)
    def test_mid_checkpoint_resume_is_bit_identical(self, space, method):
        surrogate = make_surrogate(space)
        cfg = small_config(method, checkpoint_interval=300.0)
        search = NasSearch(space, surrogate, cfg)
        full = search.run()
        assert len(search.checkpoints) >= 2
        mid = search.checkpoints[len(search.checkpoints) // 2]
        resumed = resume_search(space, surrogate, mid.round_trip(), cfg)
        assert resumed.fingerprint() == full.fingerprint()

    @pytest.mark.parametrize("method", NEW_METHODS)
    def test_boundaries_carry_the_history_watermark(self, space, method):
        surrogate = make_surrogate(space)
        cfg = small_config(method, checkpoint_interval=300.0)
        search = NasSearch(space, surrogate, cfg)
        search.run()
        ckpt = search.checkpoints[-1]
        marks = [a.boundary.proposer_seen for a in ckpt.agents
                 if a.boundary is not None]
        assert marks and all(m is not None for m in marks)
        # at least one agent reached a boundary after observations landed
        assert max(marks) > 0


@pytest.mark.crashfuzz
@pytest.mark.parametrize("method", NEW_METHODS)
def test_crashpoint_cell_zero_reevaluation(method):
    from repro.search.chaos import check_crashpoint_rows, crashpoint_matrix
    rows = crashpoint_matrix(methods=(method,), backends=("serial",),
                             points=1)
    assert rows and rows[0]["kill_points"]
    assert check_crashpoint_rows(rows) == []


# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def nt3_table(tmp_path_factory):
    """An *exhaustively* swept nt3 sub-space (cap_ops=2, 4096 archs):
    every architecture has a true reward, so exact regret is meaningful
    and the table-miss policy never fires."""
    out = tmp_path_factory.mktemp("nt3_table")
    space = capped_space(get_space("nt3-small", scale=0.05), 2)
    reward = SurrogateReward(space, NT3_PAPER_SHAPES, nt3_head(),
                             TrainingCostModel.nt3_paper(), epochs=1,
                             train_fraction=1.0, timeout=600.0, seed=7)
    metadata = {"problem": "nt3", "size": "small", "scale": 0.05,
                "cap_ops": 2, "cap": None, "seed": 0}
    sweep_space(space, reward, out,
                SweepConfig(backend="thread", workers=4, shard_size=512,
                            seed=0), metadata=metadata)
    return ArchTable.load(out), space


def tabular_reward(table, space):
    resolver = SignatureResolver(space, NT3_PAPER_SHAPES, nt3_head())
    return TabularReward(table, resolver, miss="failure")


@pytest.mark.slow
class TestTabularRegret:
    """The ISSUE acceptance check: on a capped tabular benchmark, AMBS
    reaches the 0.05 exact-regret threshold in fewer evaluations than
    random search at the same seed."""

    def replay(self, table, space, method, seed):
        reward = tabular_reward(table, space)
        cfg = SearchConfig(method=method,
                           allocation=NodeAllocation(32, 4, 3),
                           wall_time=240 * 60.0, seed=seed,
                           ambs_warmup=8, ambs_candidates=64,
                           ambs_ensemble=4)
        return run_search(reward.resolver.structure, reward, cfg)

    def test_ambs_beats_rdm_to_low_regret(self, nt3_table):
        table, space = nt3_table
        optimum = table.optimum().reward
        seed = 1
        ambs = self.replay(table, space, "ambs", seed)
        rdm = self.replay(table, space, "rdm", seed)
        e_ambs = evaluations_to_regret(ambs.records, optimum, 0.05)
        e_rdm = evaluations_to_regret(rdm.records, optimum, 0.05)
        assert e_ambs is not None
        assert e_rdm is None or e_ambs < e_rdm

    def test_evolution_finds_strong_archs(self, nt3_table):
        table, space = nt3_table
        optimum = table.optimum().reward
        res = self.replay(table, space, "evolution", seed=1)
        traj_best = max(r.reward for r in res.records)
        assert optimum - traj_best <= 0.05
