"""Unit tests for the training-time cost model."""

import pytest

from repro.hpc.costmodel import TrainingCostModel


class TestDuration:
    def test_linear_in_params(self):
        cm = TrainingCostModel(samples_per_epoch=1000, startup=10.0)
        d1 = cm.duration(1_000_000) - 10.0
        d2 = cm.duration(2_000_000) - 10.0
        assert d2 == pytest.approx(2 * d1)

    def test_linear_in_fraction_and_epochs(self):
        cm = TrainingCostModel(samples_per_epoch=1000, startup=0.0)
        base = cm.duration(10_000, epochs=1, train_fraction=0.5)
        assert cm.duration(10_000, epochs=2, train_fraction=0.5) == \
            pytest.approx(2 * base)
        assert cm.duration(10_000, epochs=1, train_fraction=1.0) == \
            pytest.approx(2 * base)

    def test_startup_floor(self):
        cm = TrainingCostModel(samples_per_epoch=1000, startup=30.0)
        assert cm.duration(0) == 30.0

    def test_validation_term(self):
        with_val = TrainingCostModel(samples_per_epoch=1000, val_samples=500,
                                     startup=0.0)
        without = TrainingCostModel(samples_per_epoch=1000, startup=0.0)
        assert with_val.duration(1000) > without.duration(1000)

    def test_invalid_fraction(self):
        cm = TrainingCostModel(samples_per_epoch=100)
        with pytest.raises(ValueError):
            cm.duration(10, train_fraction=0.0)
        with pytest.raises(ValueError):
            cm.duration(10, train_fraction=1.5)

    def test_negative_params(self):
        cm = TrainingCostModel(samples_per_epoch=100)
        with pytest.raises(ValueError):
            cm.duration(-5)

    def test_invalid_ctor(self):
        with pytest.raises(ValueError):
            TrainingCostModel(samples_per_epoch=0)


class TestPaperCalibration:
    def test_combo_reward_estimation_regime(self):
        """At 10% Combo data, paper-scale architectures land in the
        1–10 minute range; the manual network (13.77M params) exceeds
        the 10-minute timeout at 40% data."""
        cm = TrainingCostModel.combo_paper()
        d_small = cm.duration(2_000_000, epochs=1, train_fraction=0.1)
        assert 60.0 < d_small < 600.0
        d_manual_40 = cm.duration(13_772_001, epochs=1, train_fraction=0.4)
        assert d_manual_40 > 600.0

    def test_uno_duration_variance_smaller(self):
        """§5.1: randomly sampled Uno networks have smaller variance of
        reward-estimation times than Combo ones (far fewer samples)."""
        combo = TrainingCostModel.combo_paper()
        uno = TrainingCostModel.uno_paper()
        p_lo, p_hi = 500_000, 20_000_000
        combo_spread = combo.duration(p_hi, train_fraction=0.1) \
            - combo.duration(p_lo, train_fraction=0.1)
        uno_spread = uno.duration(p_hi) - uno.duration(p_lo)
        assert uno_spread < combo_spread
