"""Unit tests for the durability layer (repro.search.journal).

The write-ahead journal, the checkpoint generations, and the shared
atomic-write primitives are each tested in isolation here; the
end-to-end crash/resume promises (bit-identical fingerprints, zero
re-evaluation) live in ``test_search_journal_resume.py`` and the
crash-point fuzzer (``repro.search.chaos --profile crashpoint``).
"""

import json
import os

import pytest

from repro.events import EVAL_DONE, PUSH, RESTART, SUBMIT, SearchEvent
from repro.hpc import NodeAllocation, TrainingCostModel
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search import NasSearch, SearchConfig
from repro.search.journal import (CheckpointGenerations, JournalSink,
                                  JournalWriter, build_replay, read_journal,
                                  resume_durable)
from repro.util import (FsyncPolicy, atomic_write_json, atomic_write_text)


def some_events(n=3):
    kinds = [SUBMIT, EVAL_DONE, PUSH]
    return [SearchEvent(kinds[i % 3], float(i), agent_id=i % 2,
                        iteration=i, payload={"i": i, "x": 0.125 * i})
            for i in range(n)]


class TestAtomicIO:
    def test_atomic_write_text_overwrites(self, tmp_path):
        path = tmp_path / "a.txt"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"
        assert not path.with_suffix(".txt.tmp").exists()

    def test_atomic_write_json_kwargs_pass_through(self, tmp_path):
        path = atomic_write_json(tmp_path / "a.json", {"b": 1, "a": 2},
                                 sort_keys=True, separators=(",", ":"))
        assert path.read_text() == '{"a":2,"b":1}'

    def test_fsync_policy_never(self, tmp_path):
        with open(tmp_path / "f", "w") as fh:
            policy = FsyncPolicy(None)
            assert not any(policy.tick(fh.fileno()) for _ in range(5))

    def test_fsync_policy_every_nth(self, tmp_path):
        with open(tmp_path / "f", "w") as fh:
            policy = FsyncPolicy(2)
            assert [policy.tick(fh.fileno()) for _ in range(4)] \
                == [False, True, False, True]

    def test_fsync_policy_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            FsyncPolicy(0)


class TestJournalWriter:
    def test_round_trip_and_sequence(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        writer = JournalWriter(path)
        seqs = [writer.append(ev) for ev in some_events(4)]
        writer.close()
        assert seqs == [1, 2, 3, 4]
        back = read_journal(path)
        assert [e.to_dict() for e in back] \
            == [e.to_dict() for e in some_events(4)]
        assert back.num_skipped == 0

    def test_crc_detects_interior_bit_flip(self, tmp_path, caplog):
        """A flipped byte that keeps the JSON valid still fails the
        record CRC: the record is skipped with a warning, the rest of
        the journal survives."""
        path = tmp_path / "journal.jsonl"
        writer = JournalWriter(path)
        for ev in some_events(3):
            writer.append(ev)
        writer.close()
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"x":0.125', '"x":0.625')
        path.write_text("\n".join(lines) + "\n")
        with caplog.at_level("WARNING", logger="repro.search.journal"):
            back = read_journal(path)
        assert len(back) == 2
        assert back.num_skipped == 1
        assert any("line 2" in rec.message for rec in caplog.records)

    def test_torn_tail_dropped_on_read(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        writer = JournalWriter(path)
        for ev in some_events(2):
            writer.append(ev)
        writer.close()
        with open(path, "a") as fh:
            fh.write('{"seq": 3, "crc": 1, "ev": {"kind"')   # crash mid-write
        back = read_journal(path)
        assert len(back) == 2
        assert back.num_skipped == 0          # expected crash residue

    def test_reopen_repairs_tail_and_continues_sequence(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        writer = JournalWriter(path)
        for ev in some_events(3):
            writer.append(ev)
        writer.close()
        with open(path, "a") as fh:
            fh.write('{"seq": 4, "crc": 1, "ev"')            # torn record
        writer = JournalWriter(path)          # the relaunch
        assert writer.seq == 3                # fragment truncated away
        writer.append(some_events(1)[0])
        writer.close()
        raw = [json.loads(line) for line in path.read_text().splitlines()]
        assert [rec["seq"] for rec in raw] == [1, 2, 3, 4]

    def test_append_after_close_raises(self, tmp_path):
        writer = JournalWriter(tmp_path / "journal.jsonl")
        writer.close()
        with pytest.raises(ValueError):
            writer.append(some_events(1)[0])

    def test_sink_adapter_feeds_writer(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        sink = JournalSink(JournalWriter(path))
        for ev in some_events(2):
            sink.emit(ev)
        sink.close()
        assert [e.kind for e in read_journal(path)] == [SUBMIT, EVAL_DONE]


def make_checkpoint():
    """A deterministic mid-run checkpoint (same idiom as the golden
    wire-format test): agents in flight, boundaries and caches live."""
    space = combo_small()
    surrogate = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                                TrainingCostModel.combo_paper(),
                                epochs=1, train_fraction=0.1,
                                timeout=600.0, seed=7)
    cfg = SearchConfig(method="a3c", allocation=NodeAllocation(32, 4, 3),
                       wall_time=30 * 60.0, seed=1,
                       checkpoint_interval=300.0)
    search = NasSearch(space, surrogate, cfg)
    search.run()
    return search.checkpoints[len(search.checkpoints) // 2]


@pytest.fixture(scope="module")
def ckpt():
    return make_checkpoint()


class TestCheckpointGenerations:
    def test_save_load_round_trip(self, tmp_path, ckpt):
        gens = CheckpointGenerations(tmp_path)
        path = gens.save(ckpt, journal_seq=17)
        assert path.name == "ckpt-00000001.json"
        loaded, integrity = gens.load_latest()
        assert loaded.fingerprint() == ckpt.fingerprint()
        assert integrity["journal_seq"] == 17

    def test_generation_is_pinned_v1_plus_integrity(self, tmp_path, ckpt):
        """The on-disk generation is exactly the pinned checkpoint v1
        payload plus one additive ``integrity`` key — guard-off readers
        of the v1 schema keep working on generation files."""
        gens = CheckpointGenerations(tmp_path)
        path = gens.save(ckpt, journal_seq=3)
        data = json.loads(path.read_text())
        integrity = data.pop("integrity")
        assert set(integrity) == {"sha256", "journal_seq"}
        assert data == json.loads(json.dumps(ckpt.to_json()))

    def test_prune_keeps_newest(self, tmp_path, ckpt):
        gens = CheckpointGenerations(tmp_path, keep=3)
        for seq in range(5):
            gens.save(ckpt, journal_seq=seq)
        names = [p.name for p in gens.paths()]
        assert names == ["ckpt-00000003.json", "ckpt-00000004.json",
                         "ckpt-00000005.json"]
        assert gens.load_latest()[1]["journal_seq"] == 4

    def test_corrupt_newest_falls_back_with_warning(self, tmp_path, ckpt,
                                                    caplog):
        gens = CheckpointGenerations(tmp_path)
        gens.save(ckpt, journal_seq=1)
        newest = gens.save(ckpt, journal_seq=2)
        data = json.loads(newest.read_text())
        data["time"] = -12345.0               # bit rot after the sha stamp
        newest.write_text(json.dumps(data))
        with caplog.at_level("WARNING", logger="repro.search.journal"):
            loaded, integrity = gens.load_latest()
        assert loaded.fingerprint() == ckpt.fingerprint()
        assert integrity["journal_seq"] == 1
        assert any("falling back" in rec.message for rec in caplog.records)

    def test_torn_newest_falls_back(self, tmp_path, ckpt):
        gens = CheckpointGenerations(tmp_path)
        gens.save(ckpt, journal_seq=1)
        newest = gens.save(ckpt, journal_seq=2)
        newest.write_bytes(newest.read_bytes()[:100])   # torn mid-write
        assert gens.load_latest()[1]["journal_seq"] == 1

    def test_no_surviving_generation_returns_none(self, tmp_path, ckpt,
                                                  caplog):
        gens = CheckpointGenerations(tmp_path)
        path = gens.save(ckpt, journal_seq=1)
        path.write_text("garbage")
        with caplog.at_level("WARNING", logger="repro.search.journal"):
            assert gens.load_latest() is None

    def test_empty_directory(self, tmp_path):
        gens = CheckpointGenerations(tmp_path / "missing")
        assert gens.paths() == []
        assert gens.load_latest() is None


def eval_done(agent_id, arch_dict, reward=0.5, replayed=False, time=1.0):
    payload = {"arch": arch_dict, "reward": reward, "duration": 2.0,
               "params": 100, "failed": False}
    if replayed:
        payload["replayed"] = True
    return SearchEvent(EVAL_DONE, time, agent_id=agent_id, payload=payload)


class TestBuildReplay:
    def arch(self, space, rng_seed):
        import numpy as np
        rng = np.random.default_rng(rng_seed)
        return space.random_architecture(rng)

    def test_groups_by_agent_and_preserves_order(self):
        space = combo_small()
        a0 = self.arch(space, 0).to_dict()
        a1 = self.arch(space, 1).to_dict()
        replay = build_replay([eval_done(0, a0, reward=0.1),
                               eval_done(1, a1, reward=0.2),
                               eval_done(0, a1, reward=0.3)], None)
        assert sorted(replay) == [0, 1]
        assert [e.reward for e in replay[0]] == [0.1, 0.3]
        assert [e.reward for e in replay[1]] == [0.2]

    def test_skips_replayed_and_archless_records(self):
        space = combo_small()
        a0 = self.arch(space, 0).to_dict()
        events = [eval_done(0, a0, replayed=True),
                  SearchEvent(EVAL_DONE, 1.0, agent_id=0,
                              payload={"reward": 0.5}),       # no arch
                  eval_done(0, a0, reward=0.9)]
        replay = build_replay(events, None)
        assert [e.reward for e in replay[0]] == [0.9]

    def test_restart_truncates_to_real_evals(self):
        """An in-run resurrection trimmed the agent's records; resume
        must apply the same trim so post-restart re-executions in the
        stream are the continuation, not duplicates."""
        space = combo_small()
        archs = [self.arch(space, i).to_dict() for i in range(3)]
        events = [eval_done(0, archs[0], reward=0.1),
                  eval_done(0, archs[1], reward=0.2),
                  SearchEvent(RESTART, 5.0, agent_id=0,
                              payload={"real_evals": 1}),
                  eval_done(0, archs[2], reward=0.3)]
        replay = build_replay(events, None)
        assert [e.reward for e in replay[0]] == [0.1, 0.3]

    def test_empty_stream(self):
        assert build_replay([], None) == {}


class TestResumeDurableValidation:
    def test_requires_journal_dir(self):
        space = combo_small()
        with pytest.raises(ValueError, match="journal_dir"):
            resume_durable(space, None, SearchConfig(method="a3c"))

    def test_config_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SearchConfig(method="a3c", journal_fsync_every=2)  # no dir
        with pytest.raises(ValueError):
            SearchConfig(method="a3c", checkpoint_every_records=0)
        cfg = SearchConfig(method="a3c", journal_dir=os.fspath(tmp_path),
                           journal_fsync_every=2,
                           checkpoint_every_records=6)
        assert cfg.journal_fsync_every == 2
