"""Tests for the bench regression gate (tools/check_bench.py) and the
perf-marked wall-clock assertions.

The gate tests exercise the pure ``check`` function on synthetic
histories; the perf-marked tests make real timing claims and are
excluded from ``make test-fast`` via the ``perf`` tier marker.
"""

import sys
import time
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "tools"))

from check_bench import TRACKED, check, main as check_main  # noqa: E402


def entry(label, **best_ms):
    return {"label": label, "timestamp": "2026-01-01T00:00:00",
            "results": {k: {"best_ms": v} for k, v in best_ms.items()}}


class TestCheckBench:
    def test_single_entry_passes(self):
        assert check([entry("seed", conv1d_fwd_bwd=30.0)]) == []

    def test_within_tolerance_passes(self):
        runs = [entry("a", conv1d_fwd_bwd=10.0),
                entry("b", conv1d_fwd_bwd=11.4)]
        assert check(runs) == []

    def test_regression_detected(self):
        runs = [entry("a", conv1d_fwd_bwd=10.0),
                entry("b", conv1d_fwd_bwd=11.6)]
        problems = check(runs)
        assert len(problems) == 1 and "conv1d_fwd_bwd" in problems[0]

    def test_compares_against_best_prior_not_latest(self):
        # a slow middle entry must not raise the allowance
        runs = [entry("fast", ppo_update=5.0),
                entry("slow", ppo_update=9.0),
                entry("now", ppo_update=6.0)]
        problems = check(runs)
        assert len(problems) == 1 and "ppo_update" in problems[0]

    def test_new_kernel_passes_trivially(self):
        runs = [entry("old", conv1d_fwd_bwd=10.0),
                entry("new", conv1d_fwd_bwd=10.0, lstm_policy_step=1.0)]
        assert check(runs) == []

    def test_untracked_results_ignored(self):
        runs = [entry("a", dense_step_speedup=2.5),
                entry("b", dense_step_speedup=0.1)]
        runs[0]["results"]["dense_step_speedup"] = 2.5   # plain float
        runs[1]["results"]["dense_step_speedup"] = 0.1
        assert check(runs) == []

    def test_tolerance_configurable(self):
        runs = [entry("a", conv1d_fwd_bwd=10.0),
                entry("b", conv1d_fwd_bwd=11.4)]
        assert check(runs, tolerance=0.10) != []

    def test_uniform_machine_drift_tolerated_with_calibration(self):
        # the whole machine got 30% slower: calibration scales with the
        # kernels, normalized cost is unchanged, gate passes
        runs = [entry("a", machine_calibration=1.0, conv1d_fwd_bwd=10.0,
                      ppo_update=5.0),
                entry("b", machine_calibration=1.3, conv1d_fwd_bwd=13.0,
                      ppo_update=6.5)]
        assert check(runs) == []

    def test_selective_regression_caught_despite_calibration(self):
        # machine speed flat, one kernel slowed down: that's code
        runs = [entry("a", machine_calibration=1.0, conv1d_fwd_bwd=10.0,
                      ppo_update=5.0),
                entry("b", machine_calibration=1.0, conv1d_fwd_bwd=13.0,
                      ppo_update=5.0)]
        problems = check(runs)
        assert len(problems) == 1 and "conv1d_fwd_bwd" in problems[0]

    def test_faster_machine_does_not_mask_regression(self):
        # machine got 2x faster but the kernel only kept pace in raw ms:
        # normalized it doubled — still a regression
        runs = [entry("a", machine_calibration=2.0, conv1d_fwd_bwd=10.0),
                entry("b", machine_calibration=1.0, conv1d_fwd_bwd=10.0)]
        assert check(runs) != []

    def test_calibrated_entry_skips_uncalibrated_priors(self):
        # priors without calibration are not comparable; the first
        # calibrated entry seeds the normalized baseline
        runs = [entry("old", conv1d_fwd_bwd=10.0),
                entry("new", machine_calibration=1.0, conv1d_fwd_bwd=50.0)]
        assert check(runs) == []

    def test_tracked_covers_new_kernels(self):
        for kernel in ("lstm_policy_step", "plan_cache_hit_x20",
                       "search_iteration"):
            assert kernel in TRACKED

    def test_cli_exit_codes(self, tmp_path):
        import json

        path = tmp_path / "bench.json"
        path.write_text(json.dumps([entry("a", conv1d_fwd_bwd=10.0),
                                    entry("b", conv1d_fwd_bwd=50.0)]))
        assert check_main(["--file", str(path)]) == 1
        path.write_text(json.dumps([entry("a", conv1d_fwd_bwd=10.0),
                                    entry("b", conv1d_fwd_bwd=10.5)]))
        assert check_main(["--file", str(path)]) == 0
        assert check_main(["--file", str(tmp_path / "missing.json")]) == 0


@pytest.mark.perf
class TestKernelPerf:
    """Coarse wall-clock claims with wide margins; tier ``perf`` keeps
    them out of the fast inner loop on noisy machines."""

    @staticmethod
    def _best_ms(fn, repeats=20):
        fn()
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best * 1e3

    def test_plan_cache_hit_much_faster_than_compile(self):
        from repro.nas.builder import compile_architecture
        from repro.nas.plancache import PlanCache
        from repro.nas.spaces import combo_small
        from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head

        space = combo_small()
        head = combo_head()
        cache = PlanCache()
        rng = np.random.default_rng(0)
        archs = [space.random_architecture(rng) for _ in range(20)]
        for a in archs:
            cache.get_or_compile(space, a.choices, COMBO_PAPER_SHAPES, head)

        cold = self._best_ms(lambda: [
            compile_architecture(space, a.choices, COMBO_PAPER_SHAPES, head)
            for a in archs])
        warm = self._best_ms(lambda: [
            cache.get_or_compile(space, a.choices, COMBO_PAPER_SHAPES, head)
            for a in archs])
        assert warm * 5 < cold     # measured ~40x; 5x is the safety floor
