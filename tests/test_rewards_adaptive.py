"""Tests for adaptive-fidelity reward estimation (§7 extension)."""

import numpy as np
import pytest

from repro.hpc import TrainingCostModel
from repro.nas.arch import Architecture
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import AdaptiveFidelityReward, SurrogateReward
from repro.rewards.base import EvalResult, RewardModel


class FractionEcho(RewardModel):
    """Returns the train_fraction it was asked for as the reward."""

    def evaluate(self, arch, agent_seed=0, train_fraction=None):
        return EvalResult(train_fraction, 1.0, 10)


ARCH = Architecture("s", (0,))
SCHEDULE = [(0, 0.1), (3, 0.2), (6, 0.4)]


class TestSchedule:
    def test_fraction_progresses(self):
        rm = AdaptiveFidelityReward(FractionEcho(), SCHEDULE)
        fractions = [rm.evaluate(ARCH).reward for _ in range(8)]
        assert fractions == [0.1, 0.1, 0.1, 0.2, 0.2, 0.2, 0.4, 0.4]

    def test_current_fraction_reflects_count(self):
        rm = AdaptiveFidelityReward(FractionEcho(), SCHEDULE)
        assert rm.current_fraction() == 0.1
        for _ in range(6):
            rm.evaluate(ARCH)
        assert rm.current_fraction() == 0.4

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveFidelityReward(FractionEcho(), [])
        with pytest.raises(ValueError):
            AdaptiveFidelityReward(FractionEcho(), [(5, 0.1)])  # not at 0
        with pytest.raises(ValueError):
            AdaptiveFidelityReward(FractionEcho(),
                                   [(0, 0.2), (5, 0.1)])  # decreasing
        with pytest.raises(ValueError):
            AdaptiveFidelityReward(FractionEcho(),
                                   [(0, 0.1), (0, 0.2)])  # same threshold
        with pytest.raises(ValueError):
            AdaptiveFidelityReward(FractionEcho(), [(0, 1.5)])


class TestWithSurrogate:
    def test_fidelity_changes_duration_and_timeouts(self):
        space = combo_small()
        base = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                               TrainingCostModel.combo_paper(),
                               train_fraction=0.1, timeout=600.0, seed=1)
        rm = AdaptiveFidelityReward(base, [(0, 0.1), (2, 1.0)])
        big = space.decode([9] * 9 + [0] + [9] * 3)  # ~17M params
        first = rm.evaluate(big)
        rm.evaluate(big)
        third = rm.evaluate(big)  # now at fraction 1.0
        assert not first.timed_out
        assert third.timed_out
        assert third.duration >= first.duration

    def test_search_runs_with_adaptive_reward(self):
        from repro.hpc import NodeAllocation
        from repro.search import SearchConfig, run_search
        space = combo_small()
        base = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                               TrainingCostModel.combo_paper(),
                               train_fraction=0.1, timeout=600.0, seed=1)
        rm = AdaptiveFidelityReward(base, [(0, 0.1), (100, 0.4)])
        cfg = SearchConfig(method="a3c", allocation=NodeAllocation(32, 4, 3),
                           wall_time=60 * 60, seed=2)
        res = run_search(space, rm, cfg)
        assert res.num_evaluations > 100
        assert rm.current_fraction() == 0.4
