"""Tests for the aging-evolution comparator."""

import numpy as np
import pytest

from repro.hpc import NodeAllocation, TrainingCostModel
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search import EvolutionConfig, EvolutionSearch, run_evolution


@pytest.fixture(scope="module")
def space():
    return combo_small()


def make_reward(space, seed=7):
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(),
                           epochs=1, train_fraction=0.1, timeout=600.0,
                           log_params_opt=6.5, seed=seed)


class TestConfig:
    def test_defaults(self):
        cfg = EvolutionConfig()
        assert cfg.population_size == 50
        assert cfg.tournament_size == 10
        assert cfg.allocation == NodeAllocation.paper_256()

    def test_validation(self):
        with pytest.raises(ValueError):
            EvolutionConfig(population_size=1)
        with pytest.raises(ValueError):
            EvolutionConfig(population_size=5, tournament_size=6)


class TestMutation:
    def test_mutates_exactly_one_decision(self, space):
        search = EvolutionSearch(space, make_reward(space))
        rng = np.random.default_rng(0)
        parent = space.random_architecture(rng)
        for _ in range(20):
            child = search.mutate(parent, rng)
            diff = sum(a != b for a, b in
                       zip(parent.choices, child.choices))
            assert diff == 1

    def test_child_is_valid(self, space):
        search = EvolutionSearch(space, make_reward(space))
        rng = np.random.default_rng(1)
        parent = space.random_architecture(rng)
        child = search.mutate(parent, rng)
        space.decode(child.choices)  # raises if invalid


class TestRuns:
    def test_run_produces_records(self, space):
        cfg = EvolutionConfig(population_size=12, tournament_size=4,
                              wall_time=60 * 60,
                              allocation=NodeAllocation(32, 4, 3), seed=1)
        res = run_evolution(space, make_reward(space), cfg)
        assert res.num_evaluations > 20
        assert all(-1.0 <= r.reward <= 1.0 for r in res.records)

    def test_population_bounded(self, space):
        cfg = EvolutionConfig(population_size=10, tournament_size=3,
                              wall_time=60 * 60,
                              allocation=NodeAllocation(32, 4, 3), seed=1)
        search = EvolutionSearch(space, make_reward(space), cfg)
        search.run()
        assert len(search.population) <= 10

    def test_deterministic(self, space):
        cfg = EvolutionConfig(population_size=10, tournament_size=3,
                              wall_time=30 * 60,
                              allocation=NodeAllocation(32, 4, 3), seed=5)
        keys = []
        for _ in range(2):
            res = run_evolution(space, make_reward(space), cfg)
            keys.append([(r.time, r.arch.key) for r in res.records])
        assert keys[0] == keys[1]

    def test_evolution_improves_over_random_start(self, space):
        cfg = EvolutionConfig(population_size=16, tournament_size=6,
                              wall_time=240 * 60,
                              allocation=NodeAllocation(32, 4, 3), seed=2)
        res = run_evolution(space, make_reward(space), cfg)
        recs = sorted(res.records, key=lambda r: r.time)
        # baseline on the random warm-up era (proposals made while the
        # population was still filling), so the comparison holds however
        # quickly tournament selection converges afterwards
        warm = 2 * cfg.population_size
        first = float(np.mean([r.reward for r in recs[:warm]]))
        last = float(np.mean([r.reward for r in recs[-(len(recs) // 4):]]))
        assert last > first + 0.05
