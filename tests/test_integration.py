"""Integration tests: full search → analytics → post-training pipelines."""

import numpy as np
import pytest

from repro.analytics import (best_so_far_trajectory, top_k_architectures,
                             unique_architectures)
from repro.evaluator import SerialEvaluator
from repro.hpc import NodeAllocation, TrainingCostModel
from repro.posttrain import post_train
from repro.rewards import SurrogateReward, TrainingReward
from repro.search import NasSearch, SearchConfig, run_search


def _surrogate_for(problem, paper_shapes, cost_model, **kwargs):
    defaults = dict(epochs=1, train_fraction=0.1, timeout=600.0, seed=5)
    defaults.update(kwargs)
    return SurrogateReward(problem.space, paper_shapes, problem.head_ops,
                           cost_model, **defaults)


class TestSimulatedSearchToPostTrain:
    def test_combo_pipeline(self, small_combo):
        """Search on the simulated cluster with the surrogate, then
        post-train the top architectures with real numpy training."""
        from repro.problems.combo import COMBO_PAPER_SHAPES
        rm = _surrogate_for(small_combo, COMBO_PAPER_SHAPES,
                            TrainingCostModel.combo_paper(),
                            log_params_opt=6.5)
        cfg = SearchConfig(method="a3c", allocation=NodeAllocation(32, 4, 3),
                           wall_time=90 * 60, seed=2)
        res = run_search(small_combo.space, rm, cfg)
        assert res.num_evaluations > 50

        top = top_k_architectures(res.records, k=3)
        report = post_train(small_combo, [t.arch for t in top], epochs=4,
                            time_model=TrainingCostModel.combo_paper())
        assert len(report.entries) == 3
        for e in report.entries:
            assert np.isfinite(e.metric)
            assert e.params > 0

    def test_uno_pipeline(self, small_uno):
        from repro.problems.uno import UNO_PAPER_SHAPES
        rm = _surrogate_for(small_uno, UNO_PAPER_SHAPES,
                            TrainingCostModel.uno_paper())
        cfg = SearchConfig(method="a2c", allocation=NodeAllocation(32, 4, 3),
                           wall_time=60 * 60, seed=3)
        res = run_search(small_uno.space, rm, cfg)
        assert res.num_evaluations > 20
        assert unique_architectures(res.records) > 10

    def test_nt3_pipeline(self, small_nt3):
        from repro.problems.nt3 import NT3_PAPER_SHAPES
        rm = _surrogate_for(small_nt3, NT3_PAPER_SHAPES,
                            TrainingCostModel.nt3_paper(),
                            noise=0.25, log_params_opt=5.0)
        cfg = SearchConfig(method="rdm", allocation=NodeAllocation(32, 4, 3),
                           wall_time=60 * 60, seed=4)
        res = run_search(small_nt3.space, rm, cfg)
        assert res.num_evaluations > 20
        traj = best_so_far_trajectory(res.records)
        assert traj[-1, 1] >= traj[0, 1]


class TestRealTrainingSearch:
    def test_serial_evaluator_search_loop(self, small_combo):
        """A laptop-scale loop: sample → really train → PPO update, using
        the SerialEvaluator backend (no simulation)."""
        from repro.rl import LSTMPolicy, PPOUpdater, PPOConfig

        rm = TrainingReward(small_combo, epochs=1, train_fraction=0.5)
        evaluator = SerialEvaluator(rm)
        policy = LSTMPolicy(small_combo.space.action_dims, seed=0)
        updater = PPOUpdater(policy, PPOConfig(lr=5e-3))
        rng = np.random.default_rng(0)

        all_rewards = []
        for _ in range(3):
            rollout = policy.sample(4, rng)
            archs = [small_combo.space.decode(a) for a in rollout.actions]
            evaluator.add_eval_batch(archs)
            recs = evaluator.get_finished_evals()
            by_key = {}
            for r in recs:
                by_key.setdefault(r.arch.key, []).append(r.reward)
            rewards = np.array([by_key[a.key].pop(0) for a in archs])
            updater.update(rollout, rewards)
            all_rewards.extend(rewards)
        assert len(all_rewards) == 12
        assert all(-1.0 <= r <= 1.0 for r in all_rewards)

    def test_training_reward_feeds_posttrain(self, small_nt3):
        rm = TrainingReward(small_nt3, epochs=1)
        evaluator = SerialEvaluator(rm)
        rng = np.random.default_rng(1)
        archs = [small_nt3.space.random_architecture(rng) for _ in range(4)]
        evaluator.add_eval_batch(archs)
        recs = sorted(evaluator.get_finished_evals(),
                      key=lambda r: -r.reward)
        report = post_train(small_nt3, [recs[0].arch], epochs=3)
        assert 0.0 <= report.entries[0].metric <= 1.0


class TestScalingConfigurations:
    @pytest.mark.parametrize("nodes,mode", [(512, "workers"),
                                            (512, "agents")])
    def test_scaled_allocations_run(self, nodes, mode):
        """Down-scaled replica of the §5.3 agent- vs worker-scaling runs
        (structure preserved, sizes shrunk for test time)."""
        from repro.nas.spaces import combo_small
        from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
        space = combo_small()
        alloc = NodeAllocation.paper_scaling(nodes, mode)
        # shrink: keep the agents/workers ratio, cap totals
        shrunk = NodeAllocation(
            total_nodes=64,
            num_agents=max(2, alloc.num_agents // 12),
            workers_per_agent=max(2, alloc.workers_per_agent // 4))
        rm = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                             TrainingCostModel.combo_paper(),
                             train_fraction=0.1, timeout=600.0, seed=6)
        cfg = SearchConfig(method="a3c", allocation=shrunk,
                           wall_time=45 * 60, seed=6)
        res = run_search(space, rm, cfg)
        assert res.num_evaluations > 0
        assert 0.0 < res.cluster.mean_utilization(res.end_time) <= 1.0
