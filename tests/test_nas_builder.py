"""Unit tests for the architecture compiler (plan + materialization)."""

import numpy as np
import pytest

from repro.nas.builder import (build_model, compile_architecture,
                               count_parameters)
from repro.nas.nodes import ConstantNode, MirrorNode, VariableNode
from repro.nas.ops import (AddOp, ConnectOp, Conv1DOp, DenseOp, DropoutOp,
                           IdentityOp, MaxPooling1DOp)
from repro.nas.space import Block, Cell, Structure


def _mlp_ops():
    return [IdentityOp(), DenseOp(6, "relu"), DropoutOp(0.1)]


def _chain_structure():
    s = Structure("chain", ["x"], output_sources="last_cell")
    c = Cell("C0")
    b = Block("B0", inputs=["x"])
    b.add_node(VariableNode("N0", _mlp_ops()))
    b.add_node(VariableNode("N1", _mlp_ops()))
    c.add_block(b)
    s.add_cell(c)
    s.validate()
    return s


SHAPES = {"x": (5,)}
HEAD = [DenseOp(1, "linear")]


class TestPlan:
    def test_param_count_dense_chain(self):
        s = _chain_structure()
        # Dense(6) on 5 inputs, Dense(6) on 6, head Dense(1) on 6
        n = count_parameters(s, [1, 1], SHAPES, HEAD)
        assert n == (5 + 1) * 6 + (6 + 1) * 6 + (6 + 1) * 1

    def test_identity_contributes_nothing(self):
        s = _chain_structure()
        n = count_parameters(s, [0, 0], SHAPES, HEAD)
        assert n == (5 + 1) * 1  # only the head

    def test_plan_matches_materialized_params(self, rng):
        s = _chain_structure()
        for choices in ([0, 1], [1, 2], [2, 2], [1, 1]):
            plan = compile_architecture(s, choices, SHAPES, HEAD)
            model = plan.materialize(rng)
            assert plan.total_params == model.num_params, choices

    def test_output_shape(self):
        s = _chain_structure()
        plan = compile_architecture(s, [1, 1], SHAPES, HEAD)
        assert plan.output_shape == (1,)

    def test_depth_counts_parameterized_layers(self):
        s = _chain_structure()
        assert compile_architecture(s, [1, 1], SHAPES, HEAD).depth == 3
        assert compile_architecture(s, [0, 0], SHAPES, HEAD).depth == 1

    def test_missing_input_shape_raises(self):
        s = _chain_structure()
        with pytest.raises(KeyError):
            compile_architecture(s, [0, 0], {}, HEAD)

    def test_invalid_choices_raise(self):
        s = _chain_structure()
        with pytest.raises(IndexError):
            compile_architecture(s, [0, 9], SHAPES, HEAD)


class TestMirror:
    def _mirror_structure(self):
        s = Structure("mir", ["a", "b"], output_sources="last_cell")
        c = Cell("C0")
        b0 = Block("B0", inputs=["a"])
        n0 = VariableNode("N0", _mlp_ops())
        b0.add_node(n0)
        c.add_block(b0)
        b1 = Block("B1", inputs=["b"])
        b1.add_node(MirrorNode("N0", n0))
        c.add_block(b1)
        s.add_cell(c)
        s.validate()
        return s

    def test_mirror_shares_weights(self, rng):
        s = self._mirror_structure()
        shapes = {"a": (5,), "b": (5,)}
        model = build_model(s, [1], shapes, HEAD, rng)
        denses = [l for l in model.layers.values()
                  if type(l).__name__ == "Dense" and l.units == 6]
        assert len(denses) == 2
        assert denses[0].w is denses[1].w

    def test_mirror_params_counted_once(self):
        s = self._mirror_structure()
        shapes = {"a": (5,), "b": (5,)}
        n = count_parameters(s, [1], shapes, HEAD)
        # one Dense(6) on 5 + head on concat(6, 6)=12
        assert n == (5 + 1) * 6 + (12 + 1) * 1

    def test_mirror_of_identity(self, rng):
        s = self._mirror_structure()
        shapes = {"a": (5,), "b": (5,)}
        model = build_model(s, [0], shapes, HEAD, rng)
        x = {"a": rng.standard_normal((2, 5)),
             "b": rng.standard_normal((2, 5))}
        assert model.forward(x).shape == (2, 1)

    def test_mirror_of_dropout_is_independent_layer(self, rng):
        s = self._mirror_structure()
        shapes = {"a": (5,), "b": (5,)}
        model = build_model(s, [2], shapes, HEAD, rng)
        # dropout has no weights: only the head on concat(5, 5)
        assert model.num_params == (10 + 1) * 1


class TestConnect:
    def _connect_structure(self):
        s = Structure("con", ["x", "y"], output_sources="all_cells")
        c0 = Cell("C0")
        b = Block("B0", inputs=["x"])
        b.add_node(VariableNode("N0", _mlp_ops()))
        c0.add_block(b)
        s.add_cell(c0)
        c1 = Cell("C1")
        b0 = Block("B0", inputs=["C0"])
        b0.add_node(VariableNode("N0", _mlp_ops()))
        c1.add_block(b0)
        b1 = Block("B1", inputs=["C0"])
        b1.add_node(VariableNode("N1", [
            ConnectOp(), ConnectOp("x"), ConnectOp("x", "y")]))
        c1.add_block(b1)
        s.add_cell(c1)
        s.validate()
        return s

    SHAPES2 = {"x": (4,), "y": (3,)}

    def test_null_option_contributes_nothing(self, rng):
        s = self._connect_structure()
        # C0 -> Dense(6); C1.B0 -> Dense(6); Null connect.
        # output = concat(C0=6, C1=6) = 12 -> head
        n = count_parameters(s, [1, 1, 0], self.SHAPES2, HEAD)
        assert n == (4 + 1) * 6 + (6 + 1) * 6 + (12 + 1) * 1

    def test_single_skip_widens_cell_output(self):
        s = self._connect_structure()
        # connect 'x' (4 wide): C1 output = 6 + 4
        n = count_parameters(s, [1, 1, 1], self.SHAPES2, HEAD)
        assert n == (4 + 1) * 6 + (6 + 1) * 6 + (16 + 1) * 1

    def test_multi_skip(self):
        s = self._connect_structure()
        n = count_parameters(s, [1, 1, 2], self.SHAPES2, HEAD)
        assert n == (4 + 1) * 6 + (6 + 1) * 6 + (19 + 1) * 1

    def test_forward_runs(self, rng):
        s = self._connect_structure()
        for c in ([1, 1, 0], [1, 1, 1], [0, 2, 2]):
            m = build_model(s, c, self.SHAPES2, HEAD, rng)
            x = {"x": rng.standard_normal((3, 4)),
                 "y": rng.standard_normal((3, 3))}
            assert m.forward(x).shape == (3, 1)


class TestAddAndAutoFlatten:
    def test_residual_add(self, rng):
        s = Structure("res", ["x"], output_sources="last_cell")
        c = Cell("C0")
        b = Block("B0", inputs=["x"])
        b.add_node(VariableNode("N0", _mlp_ops()))
        b.add_node(VariableNode("N1", _mlp_ops()))
        b.add_node(ConstantNode("N2", AddOp()), extra_inputs=[0])
        c.add_block(b)
        s.add_cell(c)
        s.validate()
        m = build_model(s, [1, 1], SHAPES, HEAD, rng)
        assert m.forward({"x": rng.standard_normal((2, 5))}).shape == (2, 1)

    def test_auto_flatten_before_dense(self, rng):
        s = Structure("cnn", ["x"], output_sources="last_cell")
        c = Cell("C0")
        b = Block("B0", inputs=["x"])
        b.add_node(VariableNode("N0", [Conv1DOp(3, filters=4)]))
        b.add_node(VariableNode("N1", [MaxPooling1DOp(2)]))
        b.add_node(VariableNode("N2", [DenseOp(7)]))
        c.add_block(b)
        s.add_cell(c)
        s.validate()
        shapes = {"x": (20, 1)}
        plan = compile_architecture(s, [0, 0, 0], shapes, HEAD)
        kinds = [n.kind for n in plan.nodes]
        assert "flatten" in kinds
        m = plan.materialize(rng)
        assert m.forward({"x": rng.standard_normal((2, 20, 1))}).shape == (2, 1)
        # conv (3*1+1)*4, Dense on flattened (20-3+1)//2 * 4 = 36 features
        assert plan.total_params == (3 + 1) * 4 + (36 + 1) * 7 + (7 + 1) * 1

    def test_head_flattens_rank2_output(self, rng):
        s = Structure("cnn2", ["x"], output_sources="last_cell")
        c = Cell("C0")
        b = Block("B0", inputs=["x"])
        b.add_node(VariableNode("N0", [Conv1DOp(3, filters=2), IdentityOp()]))
        c.add_block(b)
        s.add_cell(c)
        s.validate()
        m = build_model(s, [0], {"x": (10, 1)}, HEAD, rng)
        assert m.forward({"x": np.zeros((2, 10, 1))}).shape == (2, 1)

    def test_multi_input_block_concatenated(self, rng):
        s = Structure("mi", ["x", "y"], output_sources="last_cell")
        c = Cell("C0")
        b = Block("B0", inputs=["x", "y"])
        b.add_node(VariableNode("N0", [DenseOp(3)]))
        c.add_block(b)
        s.add_cell(c)
        s.validate()
        n = count_parameters(s, [0], {"x": (4,), "y": (2,)}, HEAD)
        assert n == (6 + 1) * 3 + (3 + 1) * 1
