"""Smoke tests for the example scripts.

Each example must at least import cleanly; the fastest one runs end to
end.  The long-running examples are exercised by the benchmark suite's
equivalent experiments instead.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    path = EXAMPLES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


ALL_EXAMPLES = ["quickstart", "combo_drug_synergy",
                "nt3_tissue_classification", "uno_fidelity_study",
                "scaling_study", "custom_search_space",
                "analytics_walkthrough"]


class TestExamples:
    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_imports_and_has_main(self, name):
        module = _load(name)
        assert callable(module.main)

    def test_custom_search_space_builds(self):
        module = _load("custom_search_space")
        space = module.build_space()
        assert space.size == 5 ** 5 * 4
        data = module.make_data(n=50)
        assert set(data.x_train) == {"omics_a", "omics_b", "clinical"}

    def test_quickstart_runs(self, capsys):
        module = _load("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "best architecture" in out
        assert "trainable parameters" in out
