"""Supervised process-pool evaluator: crash detection and respawn,
deadline kills, poison-job quarantine, graceful degradation, and the
end-to-end chaos profile.

Everything here spawns real worker processes, so the module is
``proc``-marked (excluded from ``make test-fast``, run by ``make
chaos``) and guarded by the conftest SIGALRM watchdog.  Faults are
injected with :class:`repro.search.chaos.ChaosEvalModel` — a reward
model that really ``os._exit``s and really hangs — because it lives in
an importable ``src`` module the spawn children can re-import.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.evaluator import ProcConfig, ProcessEvaluator
from repro.events import (QUARANTINE, WORKER_CRASH, WORKER_RESPAWN,
                          WORKER_SPAWN, WORKER_TIMEOUT, RecordingSink)
from repro.hpc import TrainingCostModel
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.rewards.base import RewardModel
from repro.search.chaos import ChaosEvalModel, check_proc_rows, proc_matrix

pytestmark = pytest.mark.proc


@pytest.fixture(scope="module")
def space():
    return combo_small()


@pytest.fixture(scope="module")
def archs(space):
    rng = np.random.default_rng(5)
    dims = np.array(space.action_dims)
    return [space.decode(rng.integers(0, dims)) for _ in range(8)]


def make_model(space, **chaos):
    inner = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                            TrainingCostModel.combo_paper(), epochs=1,
                            train_fraction=0.1, timeout=600.0, seed=7)
    return ChaosEvalModel(inner, **chaos) if chaos else inner


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ProcConfig(workers=0)
        with pytest.raises(ValueError):
            ProcConfig(job_deadline=-1.0)
        with pytest.raises(ValueError):
            ProcConfig(poison_threshold=0)
        with pytest.raises(ValueError):
            ProcConfig(max_respawns=-1)


class TestCrashSupervision:
    def test_crash_always_arch_is_quarantined(self, space, archs):
        """An arch that kills every worker it touches gets the failure
        reward after poison_threshold distinct workers die — not an
        infinite respawn loop — and the stream shows the whole story."""
        sink = RecordingSink()
        ev = ProcessEvaluator(
            make_model(space, crash_frac=1.0), 0,
            config=ProcConfig(workers=2, retry_backoff=0.01), sink=sink)
        with ev:
            ev.add_eval_batch(archs[:1])
            ev.wait_all(timeout=120)
            recs = ev.get_finished_evals()
        assert len(recs) == 1
        assert recs[0].reward == RewardModel.FAILURE_REWARD
        assert ev.num_quarantined == 1
        assert ev.num_worker_crashes >= ev.proc_config.poison_threshold
        assert ev.num_failed == 1
        kinds = set(sink.kinds())
        assert {WORKER_SPAWN, WORKER_CRASH, WORKER_RESPAWN,
                QUARANTINE} <= kinds

    def test_quarantined_arch_short_circuits(self, space, archs):
        """A restored quarantine record answers resubmissions without
        ever touching the pool."""
        poisoned = ProcessEvaluator(
            make_model(space, crash_frac=1.0), 0,
            config=ProcConfig(workers=2, retry_backoff=0.01))
        with poisoned:
            poisoned.add_eval_batch(archs[:1])
            poisoned.wait_all(timeout=120)
            poisoned.get_finished_evals()
        snapshot = poisoned.quarantine_snapshot()
        assert snapshot and snapshot[0][0] == archs[0].space

        fresh = ProcessEvaluator(make_model(space, crash_frac=1.0), 0,
                                 config=ProcConfig(workers=1))
        fresh.restore_quarantine(snapshot)
        with fresh:
            fresh.add_eval_batch(archs[:1])
            fresh.wait_all(timeout=30)
            recs = fresh.get_finished_evals()
        assert recs[0].reward == RewardModel.FAILURE_REWARD
        assert fresh.num_worker_crashes == 0
        assert fresh.quarantined[archs[0].key]["resubmits"] == 1

    def test_external_sigkill_retries_to_success(self, space, archs):
        """A worker SIGKILLed mid-evaluation is detected, its job
        retried on a respawned worker, and the true reward delivered."""
        ev = ProcessEvaluator(
            make_model(space, eval_seconds=1.5), 0,
            config=ProcConfig(workers=1, retry_backoff=0.01))
        with ev:
            ev.add_eval_batch(archs[2:3])
            time.sleep(0.5)
            pids = ev.worker_pids()
            assert pids
            os.kill(pids[0], signal.SIGKILL)
            ev.wait_all(timeout=120)
            recs = ev.get_finished_evals()
        assert len(recs) == 1
        assert recs[0].reward > RewardModel.FAILURE_REWARD
        assert ev.num_worker_crashes >= 1
        assert ev.num_respawns >= 1
        assert ev.num_failed == 0


class TestDeadlines:
    def test_hung_eval_is_killed_and_quarantined(self, space, archs):
        """A hang beats heartbeats (the beat thread stays alive), so the
        per-job deadline is what catches it: kill, retry, quarantine."""
        sink = RecordingSink()
        ev = ProcessEvaluator(
            make_model(space, hang_frac=1.0, hang_seconds=60.0), 0,
            config=ProcConfig(workers=2, job_deadline=1.0,
                              retry_backoff=0.01), sink=sink)
        start = time.monotonic()
        with ev:
            ev.add_eval_batch(archs[1:2])
            ev.wait_all(timeout=120)
            recs = ev.get_finished_evals()
        elapsed = time.monotonic() - start
        assert recs[0].reward == RewardModel.FAILURE_REWARD
        assert ev.num_worker_timeouts >= ev.proc_config.poison_threshold
        assert ev.num_quarantined == 1
        assert WORKER_TIMEOUT in sink.kinds()
        assert elapsed < 60.0, "deadline did not preempt the hang"


class TestGracefulDegradation:
    def test_pool_exhaustion_falls_back_inline(self, space, archs):
        """With the respawn budget at zero, killing the only worker
        shrinks the pool to nothing — and the remaining jobs complete
        in-process instead of the evaluator dying."""
        ev = ProcessEvaluator(
            make_model(space, eval_seconds=1.0), 0,
            config=ProcConfig(workers=1, max_respawns=0,
                              retry_backoff=0.01))
        with ev:
            ev.add_eval_batch(archs[3:5])
            time.sleep(0.3)
            pids = ev.worker_pids()
            assert pids
            os.kill(pids[0], signal.SIGKILL)
            ev.wait_all(timeout=120)
            recs = ev.get_finished_evals()
        assert len(recs) == 2
        assert all(r.reward > RewardModel.FAILURE_REWARD for r in recs)
        assert ev.pool_size == 0
        assert ev.num_inline_evals >= 1

    def test_inline_matches_pool_rewards(self, space, archs):
        """Inline fallback evaluates the same pure function, so its
        rewards are bit-identical to the pool's."""
        pooled = ProcessEvaluator(make_model(space), 0,
                                  config=ProcConfig(workers=2))
        with pooled:
            pooled.add_eval_batch(archs[:4])
            pooled.wait_all(timeout=120)
            pool_rewards = {r.arch.key: r.reward
                            for r in pooled.get_finished_evals()}
        inline = ProcessEvaluator(make_model(space), 0,
                                  config=ProcConfig(workers=1,
                                                    max_respawns=0))
        with inline:
            # shrink the pool before dispatch so everything runs inline
            for worker in list(inline._workers.values()):
                worker.proc.kill()
            time.sleep(0.2)
            inline.add_eval_batch(archs[:4])
            inline.wait_all(timeout=120)
            recs = inline.get_finished_evals()
        assert inline.num_inline_evals == 4
        assert {r.arch.key: r.reward for r in recs} == pool_rewards


class TestChaosProfile:
    def test_proc_matrix_invariants(self):
        """The end-to-end chaos profile: external SIGKILLs + crashing +
        hanging evals over a real search, all invariants green."""
        rows = proc_matrix(seed=1)
        assert check_proc_rows(rows) == []
        row = rows[0]
        assert row["evaluations"] > 0
        assert row["respawns"] >= 1
        assert row["quarantined"] >= 1
