"""Unit tests for the Block/Cell/Structure formalism."""

import numpy as np
import pytest

from repro.nas.arch import Architecture
from repro.nas.nodes import ConstantNode, MirrorNode, VariableNode
from repro.nas.ops import AddOp, ConnectOp, DenseOp, DropoutOp, IdentityOp
from repro.nas.space import Block, Cell, Structure


def _ops3():
    return [IdentityOp(), DenseOp(4, "relu"), DropoutOp(0.1)]


def _tiny_structure():
    s = Structure("tiny", ["x"], output_sources="last_cell")
    c = Cell("C0")
    b = Block("B0", inputs=["x"])
    b.add_node(VariableNode("N0", _ops3()))
    b.add_node(VariableNode("N1", _ops3()))
    c.add_block(b)
    s.add_cell(c)
    s.validate()
    return s


class TestNodes:
    def test_variable_node_add_op(self):
        n = VariableNode("n")
        n.add_op(IdentityOp()).add_op(DenseOp(3))
        assert n.num_ops == 2
        assert n.op_at(1) == DenseOp(3)

    def test_op_at_out_of_range(self):
        n = VariableNode("n", _ops3())
        with pytest.raises(IndexError):
            n.op_at(3)
        with pytest.raises(IndexError):
            n.op_at(-1)

    def test_add_op_type_check(self):
        with pytest.raises(TypeError):
            VariableNode("n").add_op("Dense(3)")

    def test_constant_node(self):
        c = ConstantNode("c", IdentityOp())
        assert c.op == IdentityOp()
        with pytest.raises(TypeError):
            ConstantNode("c", 42)

    def test_mirror_node_targets(self):
        v = VariableNode("v", _ops3())
        assert MirrorNode("m", v).target is v
        c = ConstantNode("c", DenseOp(3))
        assert MirrorNode("m", c).target is c
        with pytest.raises(TypeError):
            MirrorNode("m", "v")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            VariableNode("")


class TestBlock:
    def test_needs_input(self):
        with pytest.raises(ValueError):
            Block("b", inputs=[])

    def test_extra_inputs_must_be_earlier(self):
        b = Block("b", inputs=["x"])
        b.add_node(VariableNode("n0", _ops3()))
        with pytest.raises(ValueError):
            b.add_node(ConstantNode("n1", AddOp()), extra_inputs=[1])

    def test_extra_inputs_require_merge_node(self):
        b = Block("b", inputs=["x"])
        b.add_node(VariableNode("n0", _ops3()))
        b.add_node(VariableNode("n1", _ops3()), extra_inputs=[0])
        with pytest.raises(ValueError):
            b.validate()

    def test_connect_must_be_alone(self):
        b = Block("b", inputs=["x"])
        b.add_node(VariableNode("n0", [ConnectOp(), ConnectOp("x")]))
        b.add_node(VariableNode("n1", _ops3()))
        with pytest.raises(ValueError):
            b.validate()

    def test_empty_variable_node_rejected(self):
        b = Block("b", inputs=["x"])
        b.add_node(VariableNode("n0"))
        with pytest.raises(ValueError):
            b.validate()


class TestStructure:
    def test_action_dims_and_size(self):
        s = _tiny_structure()
        assert s.action_dims == [3, 3]
        assert s.size == 9
        assert s.num_actions == 2

    def test_decode_roundtrip(self):
        s = _tiny_structure()
        arch = s.decode([1, 2])
        assert isinstance(arch, Architecture)
        assert arch.choices == (1, 2)
        assert arch.space == "tiny"

    def test_decode_wrong_length(self):
        s = _tiny_structure()
        with pytest.raises(ValueError):
            s.decode([1])

    def test_decode_out_of_range(self):
        s = _tiny_structure()
        with pytest.raises(IndexError):
            s.decode([1, 5])

    def test_random_architecture_valid(self):
        s = _tiny_structure()
        rng = np.random.default_rng(0)
        for _ in range(20):
            arch = s.random_architecture(rng)
            assert all(0 <= c < 3 for c in arch.choices)

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(ValueError):
            Structure("s", ["x", "x"])

    def test_duplicate_cell_rejected(self):
        s = Structure("s", ["x"])
        s.add_cell(Cell("C0"))
        with pytest.raises(ValueError):
            s.add_cell(Cell("C0"))

    def test_unknown_block_input_rejected(self):
        s = Structure("s", ["x"])
        c = Cell("C0")
        b = Block("B0", inputs=["missing"])
        b.add_node(VariableNode("N0", _ops3()))
        c.add_block(b)
        s.add_cell(c)
        with pytest.raises(ValueError):
            s.validate()

    def test_forward_reference_rejected(self):
        # a block cannot consume a later cell's output
        s = Structure("s", ["x"])
        c0 = Cell("C0")
        b = Block("B0", inputs=["C1"])
        b.add_node(VariableNode("N0", _ops3()))
        c0.add_block(b)
        s.add_cell(c0)
        c1 = Cell("C1")
        b1 = Block("B0", inputs=["x"])
        b1.add_node(VariableNode("N0", _ops3()))
        c1.add_block(b1)
        s.add_cell(c1)
        with pytest.raises(ValueError):
            s.validate()

    def test_mirror_outside_structure_rejected(self):
        foreign = VariableNode("f", _ops3())
        s = Structure("s", ["x"])
        c = Cell("C0")
        b = Block("B0", inputs=["x"])
        b.add_node(MirrorNode("m", foreign))
        c.add_block(b)
        s.add_cell(c)
        with pytest.raises(ValueError):
            s.validate()

    def test_describe(self):
        s = _tiny_structure()
        lines = s.describe([0, 1])
        assert lines[0] == "C0.B0.N0: Identity"
        assert lines[1] == "C0.B0.N1: Dense(4, relu)"

    def test_unknown_output_source_rejected(self):
        s = Structure("s", ["x"], output_sources=["nope"])
        c = Cell("C0")
        b = Block("B0", inputs=["x"])
        b.add_node(VariableNode("N0", _ops3()))
        c.add_block(b)
        s.add_cell(c)
        with pytest.raises(ValueError):
            s.validate()


class TestArchitecture:
    def test_hashable_and_equal(self):
        a = Architecture("s", (1, 2))
        b = Architecture("s", (1, 2))
        assert a == b and hash(a) == hash(b)
        assert a.key == ("s", (1, 2))

    def test_dict_roundtrip(self):
        a = Architecture("s", (3, 0, 1))
        assert Architecture.from_dict(a.to_dict()) == a

    def test_str(self):
        assert str(Architecture("s", (1, 2))) == "s[1,2]"

    def test_coerces_ints(self):
        a = Architecture("s", (np.int64(1), np.int64(2)))
        assert all(isinstance(c, int) for c in a.choices)
