"""Unit tests for the numerical health layer (repro.health)."""

import numpy as np
import pytest

from repro.health import (AgentHealth, DeltaSanitizer, GuardConfig,
                          LossSpikeDetector, NumericalAnomaly,
                          PPODivergenceDetector, SnapshotRing, all_finite,
                          require_finite)
from repro.nn import Dense, GraphModel
from repro.nn.training import Trainer
from repro.rl.ppo import PPOStats


def stats(policy_loss=0.1, value_loss=0.2, approx_kl=0.01, max_ratio=1.2):
    return PPOStats(policy_loss, value_loss, entropy=1.0, clip_fraction=0.1,
                    grad_norm=0.5, approx_kl=approx_kl, max_ratio=max_ratio)


class TestGuardConfig:
    def test_default_off_and_inert(self):
        cfg = GuardConfig()
        assert cfg.mode == "off"
        assert not cfg.enabled and not cfg.recovers

    def test_modes(self):
        assert GuardConfig(mode="check").enabled
        assert not GuardConfig(mode="check").recovers
        assert GuardConfig(mode="recover").recovers

    @pytest.mark.parametrize("kwargs", [
        dict(mode="maybe"),
        dict(loss_spike_zscore=0.0),
        dict(loss_ewma_alpha=0.0),
        dict(kl_limit=-1.0),
        dict(ratio_limit=1.0),
        dict(delta_norm_factor=1.0),
        dict(max_delta_age=0.0),
        dict(snapshot_ring=0),
        dict(lr_backoff=1.0),
        dict(min_lr_fraction=0.0),
        dict(escalate_after=0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GuardConfig(**kwargs)


class TestFiniteChecks:
    def test_all_finite(self):
        assert all_finite(np.ones(10))
        assert not all_finite(np.array([1.0, np.nan]))
        assert not all_finite(np.array([[1.0], [np.inf]]))

    def test_blockwise_scan_finds_early_poison(self):
        arr = np.ones(1000)
        arr[3] = np.nan
        assert not all_finite(arr, block=16)

    def test_require_finite_raises_with_kind(self):
        with pytest.raises(NumericalAnomaly) as exc:
            require_finite(np.array([np.nan]), "gradients")
        assert exc.value.kind == "nonfinite"
        assert exc.value.what == "gradients"


class TestLossSpikeDetector:
    def test_warmup_then_spike(self):
        det = LossSpikeDetector(zscore=8.0, alpha=0.2, warmup=5)
        for _ in range(6):
            assert not det.observe(1.0)
        assert det.observe(100.0)
        assert det.num_spikes == 1
        # the spike was excluded from the baseline: healthy follows
        assert not det.observe(1.0)

    def test_nonfinite_loss_always_flagged(self):
        det = LossSpikeDetector(warmup=5)
        assert det.observe(float("nan"))
        assert det.observe(float("inf"))

    def test_export_restore_round_trip(self):
        det = LossSpikeDetector(warmup=2)
        for v in (1.0, 1.1, 0.9, 1.05):
            det.observe(v)
        fresh = LossSpikeDetector(warmup=2)
        fresh.restore_state(det.export_state())
        assert fresh.count == det.count
        assert fresh.mean == det.mean and fresh.var == det.var


class TestPPODivergenceDetector:
    def test_healthy_passes(self):
        assert PPODivergenceDetector().check(stats()) is None

    def test_kl_limit(self):
        assert PPODivergenceDetector(kl_limit=0.5).check(
            stats(approx_kl=0.9)) == "kl_divergence"

    def test_ratio_limit(self):
        assert PPODivergenceDetector(ratio_limit=10.0).check(
            stats(max_ratio=11.0)) == "ratio_blowup"

    def test_nonfinite_stat(self):
        assert PPODivergenceDetector().check(
            stats(policy_loss=float("nan"))) == "nonfinite"


class TestSnapshotRing:
    def test_bounded_latest(self):
        ring = SnapshotRing(capacity=2)
        for i in range(4):
            ring.push(i, np.full(3, float(i)), None)
        assert len(ring) == 2
        it, vec, _ = ring.latest()
        assert it == 3 and vec[0] == 3.0

    def test_entries_are_copies(self):
        ring = SnapshotRing()
        src = np.zeros(3)
        opt = {"t": 1, "m": np.zeros(3), "v": np.zeros(3)}
        ring.push(0, src, opt)
        src[:] = 9.0
        opt["m"][:] = 9.0
        _, vec, state = ring.latest()
        assert vec[0] == 0.0 and state["m"][0] == 0.0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SnapshotRing(capacity=0)


class TestDeltaSanitizer:
    def test_accepts_and_warms_up(self):
        san = DeltaSanitizer(warmup=3)
        for _ in range(3):
            assert san.check(np.ones(4)) is None
        assert san.accepted == 3 and san.num_rejected == 0

    def test_rejects_nonfinite(self):
        san = DeltaSanitizer()
        assert san.check(np.array([1.0, np.nan])) == "nonfinite"
        assert san.num_rejected_nonfinite == 1

    def test_rejects_norm_outlier_after_warmup(self):
        san = DeltaSanitizer(norm_factor=10.0, warmup=3)
        big = np.full(4, 1e6)
        assert san.check(big) is None        # pre-warmup: accepted
        for _ in range(3):
            assert san.check(np.ones(4)) is None
        # wait for the EWMA to settle near 1 before the outlier probe
        for _ in range(20):
            san.check(np.ones(4))
        assert san.check(big) == "outlier"
        assert san.num_rejected_outlier == 1
        # rejection did not pollute the baseline
        assert san.check(np.ones(4)) is None

    def test_export_restore_round_trip(self):
        san = DeltaSanitizer(warmup=2)
        san.check(np.ones(4))
        san.check(np.array([np.nan] * 4))
        fresh = DeltaSanitizer(warmup=2)
        fresh.restore_state(san.export_state())
        assert fresh.accepted == 1
        assert fresh.ewma_norm == san.ewma_norm
        assert fresh.num_rejected_nonfinite == 1

    @pytest.mark.parametrize("kwargs", [dict(norm_factor=1.0),
                                        dict(warmup=0),
                                        dict(ewma_alpha=1.5)])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DeltaSanitizer(**kwargs)


class _Policy:
    def __init__(self, vec):
        self.vec = np.asarray(vec, dtype=np.float64).copy()

    def get_flat(self):
        return self.vec.copy()

    def set_flat(self, values):
        self.vec = np.asarray(values, dtype=np.float64).copy()


class _Opt:
    def __init__(self, lr=0.1):
        self.lr = lr
        self.t = 0
        self.m = np.zeros(3)
        self.v = np.zeros(3)

    def export_state(self):
        return {"t": self.t, "m": self.m.copy(), "v": self.v.copy()}

    def restore_state(self, state):
        self.t = int(state["t"])
        self.m = np.asarray(state["m"]).copy()
        self.v = np.asarray(state["v"]).copy()


class TestAgentHealth:
    def make(self, **overrides):
        defaults = dict(mode="recover", escalate_after=3)
        defaults.update(overrides)
        return AgentHealth(GuardConfig(**defaults), base_lr=0.1)

    def test_healthy_update_passes(self):
        health = self.make()
        assert health.check_update(np.ones(3), np.full(3, 0.01),
                                   stats()) is None
        assert health.last_anomaly is None

    def test_nonfinite_delta_detected(self):
        health = self.make()
        assert health.check_update(np.ones(3), np.array([np.nan, 0, 0]),
                                   stats()) == "nonfinite:delta"

    def test_nonfinite_policy_detected(self):
        health = self.make()
        assert health.check_update(np.array([np.inf, 0, 0]),
                                   np.full(3, 0.01),
                                   stats()) == "nonfinite:policy"

    def test_divergence_detected(self):
        health = self.make(kl_limit=0.5)
        assert health.check_update(np.ones(3), np.full(3, 0.01),
                                   stats(approx_kl=0.9)) == "kl_divergence:ppo"

    def test_rollback_restores_and_backs_off(self):
        health = self.make()
        policy, opt = _Policy([1.0, 2.0, 3.0]), _Opt(lr=0.1)
        opt.t = 5
        health.snapshot(0, policy.get_flat(), opt.export_state())
        policy.set_flat([np.nan] * 3)
        opt.t = 6
        iteration, lr = health.rollback(policy, opt)
        assert iteration == 0
        np.testing.assert_array_equal(policy.vec, [1.0, 2.0, 3.0])
        assert opt.t == 5
        assert lr == pytest.approx(0.05)
        assert health.num_rollbacks == 1

    def test_lr_floor(self):
        health = self.make(escalate_after=20, lr_backoff=0.5,
                           min_lr_fraction=0.25)
        policy, opt = _Policy([0.0]), _Opt(lr=0.1)
        for _ in range(5):
            health.snapshot(0, policy.get_flat(), opt.export_state())
            health.rollback(policy, opt)
        assert opt.lr == pytest.approx(0.1 * 0.25)

    def test_escalates_after_budget(self):
        health = self.make(escalate_after=2)
        policy, opt = _Policy([0.0]), _Opt()
        health.snapshot(0, policy.get_flat(), opt.export_state())
        health.rollback(policy, opt)
        health.snapshot(1, policy.get_flat(), opt.export_state())
        with pytest.raises(NumericalAnomaly) as exc:
            health.rollback(policy, opt)
        assert exc.value.kind == "rollback_exhausted"

    def test_rollback_without_snapshot_escalates(self):
        with pytest.raises(NumericalAnomaly):
            self.make().rollback(_Policy([0.0]), _Opt())


def _dense_model(seed=0):
    m = GraphModel()
    m.add_input("x", (4,))
    m.add("h", Dense(8, "relu"), ["x"])
    m.add("y", Dense(1), ["h"])
    m.set_output("y")
    return m.build(np.random.default_rng(seed))


def _data(n=48, seed=1):
    rng = np.random.default_rng(seed)
    x = {"x": rng.standard_normal((n, 4))}
    y = rng.standard_normal((n, 1))
    return x, y


class TestExecutionPlanGuard:
    def test_forward_nan_activation_raises_when_armed(self):
        m = _dense_model()
        m._plan.check_finite = True
        with pytest.raises(NumericalAnomaly) as exc:
            m.forward({"x": np.full((2, 4), np.nan)})
        assert exc.value.what.startswith("activation:")

    def test_forward_nan_silent_by_default(self):
        m = _dense_model()
        assert not m._plan.check_finite
        out = m.forward({"x": np.full((2, 4), np.nan)})
        assert np.isnan(out).all()

    def test_backward_nan_grad_raises_when_armed(self):
        m = _dense_model()
        x, _ = _data(8)
        m.forward(x, training=True)
        m.zero_grad()
        m._plan.check_finite = True
        with pytest.raises(NumericalAnomaly) as exc:
            m.backward(np.full((8, 1), np.nan))
        assert exc.value.what.startswith("input_grad:")


class TestTrainerGuard:
    def test_nan_weights_surface_structured_outcome(self):
        m = _dense_model()
        m.parameters()[0].value[0, 0] = np.nan
        x, y = _data()
        hist = Trainer(epochs=2, batch_size=16,
                       guard=GuardConfig(mode="check")).fit(m, x, y, x, y)
        assert hist.nonfinite
        assert hist.anomaly.startswith("nonfinite:")
        # validation is skipped on an aborted run
        assert np.isnan(hist.val_metric)

    def test_unguarded_run_does_not_flag(self):
        m = _dense_model()
        m.parameters()[0].value[0, 0] = np.nan
        x, y = _data()
        hist = Trainer(epochs=1, batch_size=16).fit(m, x, y)
        assert not hist.nonfinite and hist.anomaly is None

    def test_guarded_healthy_run_bit_identical(self):
        x, y = _data()
        m_off, m_on = _dense_model(), _dense_model()
        Trainer(epochs=3, batch_size=16).fit(m_off, x, y)
        hist = Trainer(epochs=3, batch_size=16,
                       guard=GuardConfig(mode="check")).fit(m_on, x, y)
        assert not hist.nonfinite
        for a, b in zip(m_off.parameters(), m_on.parameters()):
            np.testing.assert_array_equal(a.value, b.value)

    def test_check_finite_restored_after_fit(self):
        m = _dense_model()
        x, y = _data()
        Trainer(epochs=1, batch_size=16,
                guard=GuardConfig(mode="check")).fit(m, x, y)
        assert not m._plan.check_finite


class TestTrainingRewardNonfinite:
    def make_problem(self):
        from repro.problems import combo_problem

        return combo_problem(n_train=64, n_val=32, cell_dim=8, drug_dim=10,
                             scale=0.02)

    def test_nonfinite_maps_to_failure_reward(self):
        from repro.rewards import TrainingReward

        problem = self.make_problem()
        # poison the dataset: every architecture trains straight into NaN
        for arr in problem.dataset.x_train.values():
            arr[0, ...] = np.nan
        reward = TrainingReward(problem, epochs=1,
                                guard=GuardConfig(mode="check"))
        arch = problem.space.random_architecture(np.random.default_rng(0))
        res = reward.evaluate(arch)
        assert res.nonfinite
        assert res.reward == reward.FAILURE_REWARD
        assert reward.num_nonfinite == 1

    def test_unguarded_failure_not_counted_as_nonfinite(self):
        from repro.rewards import TrainingReward

        problem = self.make_problem()
        for arr in problem.dataset.x_train.values():
            arr[0, ...] = np.nan
        reward = TrainingReward(problem, epochs=1)
        arch = problem.space.random_architecture(np.random.default_rng(0))
        res = reward.evaluate(arch)
        # NaN leaks to the metric and is floored to the failure reward,
        # but it is not the structured guard outcome
        assert res.reward == reward.FAILURE_REWARD
        assert not res.nonfinite
        assert reward.num_nonfinite == 0
