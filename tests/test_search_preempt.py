"""Graceful preemption and crash-consistent checkpointing.

The robustness contract: a preempted run stops at the next iteration
boundary with a resumable checkpoint, and the resumed run is
bit-identical to the run that was never interrupted.  The checkpoint
file itself must survive crashes (fsync'd tmp + atomic replace) and
``load`` must clean the residue a torn save leaves behind.
"""

import os
import signal
import threading

import pytest

from repro.events import (EVAL_DONE, PREEMPT, CallbackSink, RecordingSink,
                          TeeSink)
from repro.hpc import NodeAllocation, TrainingCostModel
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search import NasSearch, SearchConfig
from repro.search.chaos import ChaosEvalModel
from repro.search.checkpoint import SearchCheckpoint
from repro.search.runner import resume_search


@pytest.fixture(scope="module")
def space():
    return combo_small()


def make_surrogate(space, seed=7):
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(), epochs=1,
                           train_fraction=0.1, timeout=600.0, seed=seed)


CFG = dict(method="a3c", allocation=NodeAllocation(16, 3, 3),
           wall_time=1800.0, seed=3)


class TestPreemption:
    def test_preempt_then_resume_is_bit_identical(self, space):
        """Preempt after the 12th evaluation, resume from the captured
        checkpoint, and land on the uninterrupted run's fingerprint."""
        base = NasSearch(space, make_surrogate(space),
                         SearchConfig(**CFG)).run()
        assert base.num_evaluations > 12

        cfg = SearchConfig(**CFG, preemptible=True)
        count = [0]
        holder = []

        def on_event(ev):
            if ev.kind == EVAL_DONE:
                count[0] += 1
                if count[0] == 12:
                    holder[0].request_preemption("test")

        rec = RecordingSink()
        search = NasSearch(space, make_surrogate(space), cfg,
                           event_sink=TeeSink(rec, CallbackSink(on_event)))
        holder.append(search)
        res = search.run()

        assert res.preempted
        assert [e for e in rec.events if e.kind == PREEMPT]
        assert search.checkpoints, "no checkpoint captured at preemption"
        ckpt = search.checkpoints[-1]
        assert len(ckpt.records) <= 12
        assert res.num_evaluations < base.num_evaluations

        resumed = resume_search(space, make_surrogate(space),
                                ckpt.round_trip(), SearchConfig(**CFG))
        assert resumed.fingerprint() == base.fingerprint()

    def test_unpreempted_preemptible_run_matches_baseline(self, space):
        """The preemption machinery (stop polling, boundary capture)
        must not perturb a run that is never actually preempted."""
        base = NasSearch(space, make_surrogate(space),
                         SearchConfig(**CFG)).run()
        armed = NasSearch(space, make_surrogate(space),
                          SearchConfig(**CFG, preemptible=True)).run()
        assert not armed.preempted
        assert armed.fingerprint() == base.fingerprint()

    def test_sigterm_stops_search_with_checkpoint(self, space):
        """A real SIGTERM mid-search flips the preemption flag and the
        run exits at the next boundary with a checkpoint in hand."""
        model = ChaosEvalModel(make_surrogate(space), eval_seconds=0.05)
        cfg = SearchConfig(method="a3c", allocation=NodeAllocation(10, 2, 3),
                           wall_time=3600.0, seed=1, backend="serial",
                           max_iterations=50, preemptible=True)
        search = NasSearch(space, model, cfg)
        prev_handler = signal.getsignal(signal.SIGTERM)
        timer = threading.Timer(0.6, os.kill, (os.getpid(), signal.SIGTERM))
        timer.start()
        try:
            res = search.run()
        finally:
            timer.cancel()
        # the installed handler was removed again on exit
        assert signal.getsignal(signal.SIGTERM) is prev_handler
        if not res.preempted:
            pytest.skip("search finished before SIGTERM was delivered")
        assert search.checkpoints


class TestCheckpointDurability:
    @pytest.fixture()
    def ckpt(self, space):
        cfg = SearchConfig(**CFG, checkpoint_interval=600.0)
        search = NasSearch(space, make_surrogate(space), cfg,
                           event_sink=RecordingSink())
        search.run()
        assert search.checkpoints
        return search.checkpoints[-1]

    def test_save_leaves_no_tmp_residue(self, ckpt, tmp_path):
        path = ckpt.save(tmp_path / "search.ckpt.json")
        assert path.exists()
        assert list(tmp_path.glob("*.tmp")) == []
        loaded = SearchCheckpoint.load(path)
        assert loaded.fingerprint() == ckpt.fingerprint()

    def test_load_cleans_stale_tmp(self, ckpt, tmp_path):
        """The residue of a save torn by a crash is deleted, and the
        published file — the durable truth — is what gets read."""
        path = ckpt.save(tmp_path / "search.ckpt.json")
        stale = path.with_suffix(path.suffix + ".tmp")
        stale.write_text('{"torn": ')
        loaded = SearchCheckpoint.load(path)
        assert not stale.exists()
        assert loaded.fingerprint() == ckpt.fingerprint()

    def test_quarantine_survives_round_trip(self, ckpt):
        ckpt.quarantine = {0: [["combo_small", [1, 2, 3], 2, 1]],
                           2: [["combo_small", [0, 0, 1], 3, 0]]}
        back = ckpt.round_trip()
        assert back.quarantine == ckpt.quarantine
        # quarantine rides in the conditional health export
        assert "quarantine" in ckpt.to_json()["health"]

    def test_health_block_absent_without_incidents(self, ckpt):
        """Schema pin: a clean run's checkpoint JSON is unchanged — no
        health block unless restarts, rollbacks, or quarantine exist."""
        ckpt.quarantine = {}
        if ckpt.agent_restarts or ckpt.agent_rollbacks:
            pytest.skip("run recorded health incidents")
        assert "health" not in ckpt.to_json()
