"""Table serving, isomorphism keying, miss policies, and exact-regret
analytics — including the search-level determinism the benchmark mode
exists for: seeded searches replayed against one table fingerprint
bit-identically, regardless of evaluator backend.
"""

import pytest

from repro.analytics.regret import (compare_report, evaluations_to_regret,
                                    fraction_of_optimum_trajectory,
                                    regret_summary, regret_trajectory)
from repro.bench import ArchTable, SweepConfig, sweep_space
from repro.evaluator.cache import EvalCache
from repro.hpc import NodeAllocation
from repro.nas.arch import Architecture
from repro.nas.nodes import VariableNode
from repro.nas.ops import DenseOp
from repro.nas.plancache import SignatureResolver, exact_key
from repro.nas.space import Block, Cell, Structure
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import TableMiss, TabularReward
from repro.rewards.base import EvalResult
from repro.search import SearchConfig, run_search
from repro.search.base import RewardRecord

from _bench_common import sweep_combo_table

pytestmark = pytest.mark.bench


# -- isomorphic architectures share one table row ----------------------
def iso_space() -> Structure:
    """A space with a *repeated* op in one decision: choices 0 and 1 of
    node N0 compile to the same plan, so (0, c) and (1, c) are
    guaranteed isomorphic action sequences."""
    space = Structure("iso-toy", ["x"])
    cell = Cell("C0")
    block = Block("B0", inputs=["x"])
    block.add_node(VariableNode("N0", [DenseOp(4, "relu"),
                                      DenseOp(4, "relu"),
                                      DenseOp(8, "tanh")]))
    block.add_node(VariableNode("N1", [DenseOp(4, "relu"),
                                       DenseOp(2, "relu")]))
    cell.add_block(block)
    space.add_cell(cell)
    space.validate()
    return space


class ChoiceReward:
    """Deterministic toy reward keyed on the raw choice tuple."""

    FAILURE_REWARD = -1.0
    plan_cache = None
    input_shapes = {"x": (6,)}
    head_ops = None

    def set_plan_cache(self, cache):
        self.plan_cache = cache

    def prefetch_plan(self, arch):
        pass

    def evaluate(self, arch, agent_seed=0):
        return EvalResult(0.1 * sum(arch.choices), 1.0, 100)


def test_isomorphic_archs_hit_the_same_table_row(tmp_path):
    space = iso_space()
    assert space.size == 6
    report = sweep_space(space, ChoiceReward(), tmp_path,
                         SweepConfig(shard_size=4))
    # 6 action sequences, but choices 0/1 of N0 are one plan: 4 classes
    assert report.enumerated == 6
    assert report.iso_skips == 2
    assert report.evaluated == 4

    table = ArchTable.load(tmp_path)
    assert len(table) == 4
    resolver = SignatureResolver(space, {"x": (6,)})
    a, b = Architecture("iso-toy", (0, 1)), Architecture("iso-toy", (1, 1))
    assert resolver.signature(a) == resolver.signature(b)
    assert table.get(resolver.signature(a)) is table.get(
        resolver.signature(b))

    # ...and TabularReward serves both the identical result
    model = TabularReward(table, resolver)
    assert model.evaluate(a) == model.evaluate(b)

    # regression for the shared-helper refactor: the agent-local
    # EvalCache deliberately keys on the *exact* (space, choices) pair —
    # isomorphic archs are distinct entries there (agent-specific weight
    # init), while the table collapses them
    assert exact_key(a) != exact_key(b)
    cache = EvalCache()
    cache.put(a, EvalResult(0.5, 1.0, 10))
    assert a in cache and b not in cache


def test_identical_sequences_share_exact_key():
    a = Architecture("iso-toy", (0, 1))
    b = Architecture("iso-toy", (0, 1))
    assert exact_key(a) == exact_key(b)
    cache = EvalCache()
    cache.put(a, EvalResult(0.5, 1.0, 10))
    assert cache.get(b) == EvalResult(0.5, 1.0, 10)


# -- miss policies -----------------------------------------------------
@pytest.fixture(scope="module")
def combo_table(tmp_path_factory):
    d = tmp_path_factory.mktemp("combo_table")
    space, report = sweep_combo_table(d, cap=60, shard_size=32)
    assert report.failed == 0
    return ArchTable.load(d), space


def _missing_arch(table, space):
    """An architecture whose class the (sampled) table does not hold."""
    resolver = SignatureResolver(space, COMBO_PAPER_SHAPES, combo_head())
    from repro.bench import enumerate_space
    for arch in enumerate_space(space):
        if resolver.signature(arch) not in table:
            return arch, resolver
    pytest.fail("sampled table unexpectedly covers the whole space")


def test_miss_policies(combo_table):
    table, space = combo_table
    arch, resolver = _missing_arch(table, space)

    strict = TabularReward(table, resolver, miss="error")
    with pytest.raises(TableMiss):
        strict.evaluate(arch)
    assert strict.misses == 1 and strict.hits == 0

    fallback = TabularReward(table, resolver, miss="fallback",
                             fallback_reward=0.25)
    assert fallback.evaluate(arch) == EvalResult(0.25, 0.0, 0)

    failure = TabularReward(table, resolver, miss="failure")
    assert failure.evaluate(arch) == EvalResult(
        TabularReward.FAILURE_REWARD, 0.0, 0)

    hit = Architecture(space.name, next(iter(table.rows.values())).choices)
    assert strict.evaluate(hit).reward == table.get(
        resolver.signature(hit)).reward
    assert strict.hits == 1

    with pytest.raises(ValueError, match="miss policy"):
        TabularReward(table, resolver, miss="explode")


# -- exact-regret analytics --------------------------------------------
def _rec(t, reward):
    return RewardRecord(time=t, agent_id=0,
                        arch=Architecture("toy", (0,)), reward=reward,
                        params=10, duration=1.0, cached=False,
                        timed_out=False)


def test_regret_trajectory_properties():
    records = [_rec(60.0, 0.1), _rec(120.0, 0.4), _rec(180.0, 0.2),
               _rec(240.0, 0.7)]
    traj = regret_trajectory(records, optimum=0.7)
    assert traj.shape == (4, 2)
    assert list(traj[:, 0]) == [1.0, 2.0, 3.0, 4.0]        # minutes
    # regret is monotonically non-increasing and hits exactly 0
    assert all(a >= b for a, b in zip(traj[:, 1], traj[1:, 1]))
    assert traj[-1, 1] == 0.0

    frac = fraction_of_optimum_trajectory(records, optimum=0.7)
    assert ((0.0 <= frac[:, 1]) & (frac[:, 1] <= 1.0)).all()
    assert frac[-1, 1] == 1.0

    assert evaluations_to_regret(records, 0.7) == 4
    assert evaluations_to_regret(records, 0.7, threshold=0.3) == 2
    assert evaluations_to_regret(records, 2.0) is None

    summary = regret_summary(records, 0.7)
    assert summary["found_optimum"] is True
    assert summary["evaluations_to_optimum"] == 4
    assert summary["final_regret"] == 0.0

    report = compare_report({"m": [records, records[:2]]}, 0.7)
    m = report["methods"]["m"]
    assert m["replicates"] == 2 and m["optimum_hits"] == 1
    assert m["min_final_regret"] == 0.0
    assert m["max_final_regret"] == pytest.approx(0.3)


def test_regret_of_empty_run_is_well_defined():
    assert regret_trajectory([], 0.5).shape == (0, 2)
    summary = regret_summary([], 0.5)
    assert summary["final_regret"] is None
    assert summary["found_optimum"] is False


# -- search-level determinism over the table ---------------------------
def _replay(table, space, method, backend="balsam", seed=3):
    resolver = SignatureResolver(space, COMBO_PAPER_SHAPES, combo_head())
    model = TabularReward(table, resolver, miss="failure")
    alloc = NodeAllocation(9, 2, 3)
    if backend == "balsam":
        cfg = SearchConfig(method=method, allocation=alloc,
                           wall_time=300.0, seed=seed)
    else:
        cfg = SearchConfig(method=method, allocation=alloc,
                           wall_time=60.0, seed=seed, backend=backend,
                           max_iterations=4)
    return run_search(space, model, cfg)


@pytest.mark.parametrize("method", ["a3c", "a2c", "rdm"])
def test_seeded_search_against_table_reproduces_fingerprint(
        combo_table, method):
    table, space = combo_table
    first = _replay(table, space, method)
    second = _replay(table, space, method)
    assert first.fingerprint() == second.fingerprint()
    assert [r.reward for r in first.records] \
        == [r.reward for r in second.records]


def test_backend_choice_does_not_change_the_fingerprint(combo_table):
    """TabularReward's referential transparency makes the evaluator
    backend invisible to the trajectory digest."""
    table, space = combo_table
    serial = _replay(table, space, "a3c", backend="serial")
    threaded = _replay(table, space, "a3c", backend="thread")
    assert serial.fingerprint() == threaded.fingerprint()


def test_search_result_regret_methods(combo_table):
    table, space = combo_table
    result = _replay(table, space, "rdm")
    assert result.records
    optimum = table.optimum().reward
    traj = result.regret_trajectory(optimum)
    assert traj.shape == (len(result.records), 2)
    assert (traj[:, 1] >= 0.0).all()
    frac = result.fraction_of_optimum(optimum)
    assert ((0.0 <= frac[:, 1]) & (frac[:, 1] <= 1.0)).all()
    # best-so-far regret at the end matches the table's own regret()
    assert traj[-1, 1] == pytest.approx(
        max(0.0, table.regret(result.best().reward)))
