"""Golden-file test pinning the bench-table v1 wire format.

Same contract as the checkpoint golden: the schema (recursive key →
type-name mapping) of a real swept table's ``manifest.json`` and of one
shard row is pinned in ``tests/golden/``.  Tables on disk must stay
loadable, so renaming, removing, or re-typing a field requires bumping
``TABLE_FORMAT_VERSION`` and updating the golden file deliberately.

Regenerate (after an intentional format bump) with::

    PYTHONPATH=src:tests python tests/test_bench_golden.py
"""

import json
from pathlib import Path

from repro.bench import ArchTable
from repro.bench.table import TABLE_FORMAT_VERSION

from _bench_common import sweep_combo_table

GOLDEN = Path(__file__).parent / "golden" / "bench_table_v1_schema.json"


def schema_of(obj):
    """Recursive key -> type-name schema; lists collapse to their first
    element's schema (the formats here are homogeneous)."""
    if isinstance(obj, dict):
        return {key: schema_of(value) for key, value in sorted(obj.items())}
    if isinstance(obj, list):
        return ["empty"] if not obj else [schema_of(obj[0])]
    if obj is None:
        return "null"
    if isinstance(obj, bool):
        return "bool"
    if isinstance(obj, int):
        return "int"
    if isinstance(obj, float):
        return "float"
    if isinstance(obj, str):
        return "str"
    return type(obj).__name__


def make_table(tmp_dir):
    """A real (tiny) sweep, so the golden pins what the sweeper actually
    writes — CLI-shaped metadata included — with at least one sealed
    shard in the manifest."""
    sweep_combo_table(tmp_dir, cap=20, shard_size=8)
    manifest = json.loads((Path(tmp_dir) / "manifest.json").read_text())
    shard = Path(tmp_dir) / manifest["shards"][0]["name"]
    row = json.loads(shard.read_text().splitlines()[0])
    return manifest, row


def test_bench_table_v1_schema_is_pinned(tmp_path):
    manifest, row = make_table(tmp_path)
    assert manifest["version"] == TABLE_FORMAT_VERSION == 1
    golden = json.loads(GOLDEN.read_text())
    assert {"manifest": schema_of(manifest),
            "row": schema_of(row)} == golden, (
        "bench-table wire format changed; if intentional, bump "
        "TABLE_FORMAT_VERSION and regenerate tests/golden/ (see module "
        "docstring)")


def test_golden_snapshot_is_not_vacuous(tmp_path):
    manifest, row = make_table(tmp_path)
    assert manifest["shards"], "no sealed shard captured"
    assert manifest["total_rows"] > 0
    assert manifest["metadata"], "no metadata captured"
    assert {"sig", "space", "choices", "reward", "duration", "params",
            "timed_out"} <= set(row)
    assert row["choices"], "no choices captured"


def test_golden_round_trips_through_loader(tmp_path):
    make_table(tmp_path)
    table = ArchTable.load(tmp_path)
    assert len(table) > 0
    assert table.fingerprint() == ArchTable.load(tmp_path).fingerprint()


if __name__ == "__main__":  # regenerate the golden file
    import tempfile
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    with tempfile.TemporaryDirectory() as tmp:
        manifest, row = make_table(tmp)
    GOLDEN.write_text(json.dumps({"manifest": schema_of(manifest),
                                  "row": schema_of(row)}, indent=2) + "\n")
    print(f"wrote {GOLDEN}")
