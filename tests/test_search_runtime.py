"""Structural and seam-level tests for the composable search runtime.

The refactor's shape is part of its contract: the runner is a thin
composition root (no method over ~60 lines, no `_agent_body` monolith),
and exchange modes / health / chaos / checkpointing each live behind
their own seam.  These tests pin that shape so it cannot silently
regress back into a monolith.
"""

import ast
from pathlib import Path

import numpy as np
import pytest

import repro.search.runner as runner_module
from repro.evaluator import EvalBroker, EvalCache, SerialEvaluator
from repro.hpc import NodeAllocation, TrainingCostModel
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.rewards.base import EvalResult
from repro.search import (EXCHANGE_STRATEGIES, A2CExchange, A3CExchange,
                          NasSearch, RandomExchange, SearchConfig,
                          build_exchange)
from repro.search.runner import resume_search

MAX_METHOD_LINES = 60


@pytest.fixture(scope="module")
def space():
    return combo_small()


def make_surrogate(space, seed=7):
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(), epochs=1,
                           train_fraction=0.1, timeout=600.0, seed=seed)


def small_config(method, minutes=40, **kwargs):
    defaults = dict(method=method, allocation=NodeAllocation(32, 4, 3),
                    wall_time=minutes * 60.0, seed=1)
    defaults.update(kwargs)
    return SearchConfig(**defaults)


class TestRunnerShape:
    def _runner_functions(self):
        source = Path(runner_module.__file__).read_text()
        tree = ast.parse(source)
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def test_agent_body_is_gone(self):
        assert not hasattr(NasSearch, "_agent_body")
        names = {fn.name for fn in self._runner_functions()}
        assert "_agent_body" not in names

    def test_no_method_exceeds_line_budget(self):
        for fn in self._runner_functions():
            body_start = fn.body[0].lineno
            if isinstance(fn.body[0], ast.Expr) and \
                    isinstance(fn.body[0].value, ast.Constant):
                # docstrings don't count against the budget
                body_start = (fn.body[1].lineno if len(fn.body) > 1
                              else fn.end_lineno)
            length = fn.end_lineno - body_start + 1
            assert length <= MAX_METHOD_LINES, \
                f"{fn.name} is {length} lines (> {MAX_METHOD_LINES})"


class TestExchangeSeam:
    def test_registry_covers_methods(self):
        assert set(EXCHANGE_STRATEGIES) == {"a3c", "a2c", "rdm"}
        assert EXCHANGE_STRATEGIES["a2c"] is A2CExchange
        assert EXCHANGE_STRATEGIES["a3c"] is A3CExchange
        assert EXCHANGE_STRATEGIES["rdm"] is RandomExchange

    def test_config_validates_against_registry(self):
        with pytest.raises(ValueError, match="unknown method"):
            SearchConfig(method="elastic")

    @pytest.mark.parametrize("method,ps_mode", [("a2c", "sync"),
                                                ("a3c", "async")])
    def test_build_exchange_server_modes(self, space, method, ps_mode):
        from repro.hpc.sim import Simulator
        exchange = build_exchange(Simulator(), small_config(method), space)
        assert exchange.ps is not None
        assert exchange.ps.mode == ps_mode

    def test_rdm_has_no_server(self, space):
        from repro.hpc.sim import Simulator
        exchange = build_exchange(Simulator(), small_config("rdm"), space)
        assert exchange.ps is None
        assert not type(exchange).learns
        exchange.leave()                # lifecycle calls are no-ops
        exchange.rejoin(0)
        assert exchange.export_state() is None

    def test_runner_exposes_ps_through_exchange(self, space):
        search = NasSearch(space, make_surrogate(space),
                           small_config("a2c"))
        assert search.ps is search.exchange.ps


class TestBrokerSeam:
    def test_balsam_evaluator_is_a_broker(self, space):
        search = NasSearch(space, make_surrogate(space),
                           small_config("a3c"))
        assert all(isinstance(ev, EvalBroker) for ev in search.evaluators)

    def test_serial_has_lifecycle_surface(self, space):
        ev = SerialEvaluator(make_surrogate(space))
        with ev:                        # context manager + no-op barrier
            ev.wait_all()
        ev.shutdown()                   # idempotent

    def test_serial_converts_exceptions_to_failure_records(self, space):
        class Exploding:
            def evaluate(self, arch, agent_seed=0):
                raise RuntimeError("boom")

        ev = SerialEvaluator(Exploding(), agent_id=0)
        archs = [space.decode(np.zeros(len(space.action_dims), dtype=int))]
        ev.add_eval_batch(archs)
        recs = ev.get_finished_evals()
        assert ev.num_failed == 1
        assert recs[0].reward == -1.0
        assert len(ev.cache) == 0       # failures are never cached


class TestCacheCounterRestore:
    def test_restore_with_counters(self):
        cache = EvalCache()
        entries = [(("k",), EvalResult(0.5, 1.0, 10))]
        cache.restore(entries, hits=3, misses=7)
        assert (cache.hits, cache.misses, len(cache)) == (3, 7, 1)

    def test_restore_without_counters_keeps_them(self):
        cache = EvalCache()
        cache.hits, cache.misses = 2, 5
        cache.restore([])
        assert (cache.hits, cache.misses) == (2, 5)

    def test_broker_restores_cache_tally(self, space):
        ev = SerialEvaluator(make_surrogate(space), agent_id=0)
        ev.restore_counters(num_submitted=10, num_cache_hits=4,
                            num_failed=1)
        assert (ev.num_submitted, ev.num_cache_hits, ev.num_failed) \
            == (10, 4, 1)
        assert (ev.cache.hits, ev.cache.misses) == (4, 6)

    def test_checkpoint_resume_restores_cache_tally(self, space):
        cfg = small_config("a3c", checkpoint_interval=300.0)
        search = NasSearch(space, make_surrogate(space), cfg)
        search.run()
        ckpt = search.checkpoints[1]
        resumed = NasSearch(space, make_surrogate(space), cfg,
                            resume_from=ckpt)
        for agent in ckpt.agents:
            if agent.done or agent.boundary is None:
                continue
            cache = resumed.evaluators[agent.agent_id].cache
            assert cache.hits == agent.boundary.num_cache_hits
            assert cache.misses == (agent.boundary.num_submitted
                                    - agent.boundary.num_cache_hits)


class TestResumePublicSurface:
    def test_resume_search_signature_unchanged(self, space):
        cfg = small_config("a2c", checkpoint_interval=300.0)
        search = NasSearch(space, make_surrogate(space), cfg)
        full = search.run()
        resumed = resume_search(space, make_surrogate(space),
                                search.checkpoints[0].round_trip(), cfg)
        assert resumed.fingerprint() == full.fingerprint()
