"""Unit tests for node allocation arithmetic and cluster occupancy."""

import pytest

from repro.hpc.cluster import Cluster, NodeAllocation
from repro.hpc.sim import Simulator, Timeout


class TestNodeAllocation:
    def test_paper_256(self):
        a = NodeAllocation.paper_256()
        assert (a.num_agents, a.workers_per_agent) == (21, 11)
        assert a.worker_nodes == 231
        # 21 agents + 231 workers + 1 Balsam + 3 unused = 256 (§5.1)
        assert a.used_nodes == 253
        assert a.unused_nodes == 3

    @pytest.mark.parametrize("nodes,mode,agents,workers", [
        (512, "workers", 21, 23),
        (1024, "workers", 21, 47),
        (512, "agents", 42, 11),
        (1024, "agents", 85, 11),
    ])
    def test_paper_scaling_table(self, nodes, mode, agents, workers):
        a = NodeAllocation.paper_scaling(nodes, mode)
        assert (a.num_agents, a.workers_per_agent) == (agents, workers)
        assert a.used_nodes <= nodes

    def test_unknown_scaling_config(self):
        with pytest.raises(ValueError):
            NodeAllocation.paper_scaling(2048, "agents")

    def test_overcommit_rejected(self):
        with pytest.raises(ValueError):
            NodeAllocation(10, 5, 5)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            NodeAllocation(10, 0, 1)


class TestCluster:
    def test_try_acquire_counts(self):
        sim = Simulator()
        c = Cluster(sim, 2)
        assert c.try_acquire() and c.try_acquire()
        assert not c.try_acquire()
        assert c.busy == 2 and c.idle == 0
        c.release()
        assert c.idle == 1

    def test_release_without_acquire(self):
        c = Cluster(Simulator(), 1)
        with pytest.raises(RuntimeError):
            c.release()

    def test_fifo_waiting(self):
        sim = Simulator()
        c = Cluster(sim, 1)
        order = []

        def job(tag, hold):
            yield c.acquire()
            order.append(("start", tag, sim.now))
            yield Timeout(hold)
            c.release()

        sim.process(job("a", 5.0))
        sim.process(job("b", 5.0))
        sim.process(job("c", 5.0))
        sim.run()
        assert order == [("start", "a", 0.0), ("start", "b", 5.0),
                         ("start", "c", 10.0)]

    def test_handoff_keeps_occupancy(self):
        # when a waiter exists, release hands the node over directly
        sim = Simulator()
        c = Cluster(sim, 1)

        def job(hold):
            yield c.acquire()
            yield Timeout(hold)
            c.release()

        sim.process(job(2.0))
        sim.process(job(2.0))
        sim.run()
        # busy never dipped to 0 between the jobs
        busy_at = dict(c.samples)
        assert busy_at.get(2.0, 1) == 1 or all(
            b > 0 for t, b in c.samples if 0 < t < 4.0)

    def test_mean_utilization_exact(self):
        sim = Simulator()
        c = Cluster(sim, 2)

        def job(start, hold):
            yield Timeout(start)
            yield c.acquire()
            yield Timeout(hold)
            c.release()

        sim.process(job(0.0, 10.0))   # node busy [0, 10)
        sim.process(job(5.0, 5.0))    # node busy [5, 10)
        sim.run()
        # busy-node-seconds = 10 + 5 = 15 over 2 nodes * 10 s
        assert c.mean_utilization(10.0) == pytest.approx(0.75)

    def test_utilization_trace_bins(self):
        sim = Simulator()
        c = Cluster(sim, 1)

        def job():
            yield c.acquire()
            yield Timeout(3.0)
            c.release()

        sim.process(job())
        sim.run()
        trace = c.utilization_trace(6.0, bin_width=2.0)
        assert [u for _, u in trace] == pytest.approx([1.0, 0.5, 0.0])
        assert [t for t, _ in trace] == [2.0, 4.0, 6.0]

    def test_trace_rejects_bad_end(self):
        c = Cluster(Simulator(), 1)
        with pytest.raises(ValueError):
            c.utilization_trace(0.0)

    def test_utilization_bounded(self):
        sim = Simulator()
        c = Cluster(sim, 3)

        def job(start, hold):
            yield Timeout(start)
            yield c.acquire()
            yield Timeout(hold)
            c.release()

        for s in (0.0, 0.5, 1.0, 2.0):
            sim.process(job(s, 4.0))
        sim.run()
        u = c.mean_utilization(sim.now)
        assert 0.0 <= u <= 1.0
