"""Unit tests for node allocation arithmetic and cluster occupancy."""

import pytest

from repro.hpc.cluster import Cluster, NodeAllocation
from repro.hpc.sim import Interrupt, Simulator, Timeout


class TestNodeAllocation:
    def test_paper_256(self):
        a = NodeAllocation.paper_256()
        assert (a.num_agents, a.workers_per_agent) == (21, 11)
        assert a.worker_nodes == 231
        # 21 agents + 231 workers + 1 Balsam + 3 unused = 256 (§5.1)
        assert a.used_nodes == 253
        assert a.unused_nodes == 3

    @pytest.mark.parametrize("nodes,mode,agents,workers", [
        (512, "workers", 21, 23),
        (1024, "workers", 21, 47),
        (512, "agents", 42, 11),
        (1024, "agents", 85, 11),
    ])
    def test_paper_scaling_table(self, nodes, mode, agents, workers):
        a = NodeAllocation.paper_scaling(nodes, mode)
        assert (a.num_agents, a.workers_per_agent) == (agents, workers)
        assert a.used_nodes <= nodes

    def test_unknown_scaling_config(self):
        with pytest.raises(ValueError):
            NodeAllocation.paper_scaling(2048, "agents")

    def test_overcommit_rejected(self):
        with pytest.raises(ValueError):
            NodeAllocation(10, 5, 5)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            NodeAllocation(10, 0, 1)


class TestCluster:
    def test_try_acquire_counts(self):
        sim = Simulator()
        c = Cluster(sim, 2)
        assert c.try_acquire() and c.try_acquire()
        assert not c.try_acquire()
        assert c.busy == 2 and c.idle == 0
        c.release()
        assert c.idle == 1

    def test_release_without_acquire(self):
        c = Cluster(Simulator(), 1)
        with pytest.raises(RuntimeError):
            c.release()

    def test_fifo_waiting(self):
        sim = Simulator()
        c = Cluster(sim, 1)
        order = []

        def job(tag, hold):
            yield c.acquire()
            order.append(("start", tag, sim.now))
            yield Timeout(hold)
            c.release()

        sim.process(job("a", 5.0))
        sim.process(job("b", 5.0))
        sim.process(job("c", 5.0))
        sim.run()
        assert order == [("start", "a", 0.0), ("start", "b", 5.0),
                         ("start", "c", 10.0)]

    def test_handoff_keeps_occupancy(self):
        # when a waiter exists, release hands the node over directly
        sim = Simulator()
        c = Cluster(sim, 1)

        def job(hold):
            yield c.acquire()
            yield Timeout(hold)
            c.release()

        sim.process(job(2.0))
        sim.process(job(2.0))
        sim.run()
        # busy never dipped to 0 between the jobs
        busy_at = dict(c.samples)
        assert busy_at.get(2.0, 1) == 1 or all(
            b > 0 for t, b in c.samples if 0 < t < 4.0)

    def test_mean_utilization_exact(self):
        sim = Simulator()
        c = Cluster(sim, 2)

        def job(start, hold):
            yield Timeout(start)
            yield c.acquire()
            yield Timeout(hold)
            c.release()

        sim.process(job(0.0, 10.0))   # node busy [0, 10)
        sim.process(job(5.0, 5.0))    # node busy [5, 10)
        sim.run()
        # busy-node-seconds = 10 + 5 = 15 over 2 nodes * 10 s
        assert c.mean_utilization(10.0) == pytest.approx(0.75)

    def test_utilization_trace_bins(self):
        sim = Simulator()
        c = Cluster(sim, 1)

        def job():
            yield c.acquire()
            yield Timeout(3.0)
            c.release()

        sim.process(job())
        sim.run()
        trace = c.utilization_trace(6.0, bin_width=2.0)
        assert [u for _, u in trace] == pytest.approx([1.0, 0.5, 0.0])
        assert [t for t, _ in trace] == [2.0, 4.0, 6.0]

    def test_trace_rejects_bad_end(self):
        c = Cluster(Simulator(), 1)
        with pytest.raises(ValueError):
            c.utilization_trace(0.0)

    def test_utilization_bounded(self):
        sim = Simulator()
        c = Cluster(sim, 3)

        def job(start, hold):
            yield Timeout(start)
            yield c.acquire()
            yield Timeout(hold)
            c.release()

        for s in (0.0, 0.5, 1.0, 2.0):
            sim.process(job(s, 4.0))
        sim.run()
        u = c.mean_utilization(sim.now)
        assert 0.0 <= u <= 1.0


class TestClusterEdgeCases:
    def test_handoff_occupancy_with_waiter_chain(self):
        # a release with waiters hands the node over without busy ever
        # dipping: occupancy stays at capacity through the whole chain
        sim = Simulator()
        c = Cluster(sim, 2)
        min_busy_during = []

        def job(start, hold):
            yield Timeout(start)
            yield c.acquire()
            min_busy_during.append(c.busy)
            yield Timeout(hold)
            c.release()

        for s in (0.0, 0.0, 0.1, 0.1, 0.2):
            sim.process(job(s, 3.0))
        sim.run()
        # the handed-off grants at t=3 saw full occupancy — the node
        # passed straight from releaser to waiter without going idle
        assert min_busy_during[:4] == [2, 2, 2, 2]
        assert all(b >= 1 for b in min_busy_during)

    def test_mean_utilization_ignores_samples_past_end(self):
        sim = Simulator()
        c = Cluster(sim, 1)

        def job(hold):
            yield c.acquire()
            yield Timeout(hold)
            c.release()

        sim.process(job(20.0))     # busy [0, 20); release sample at t=20
        sim.run()
        # truncating at t=10 must not see the release at t=20
        assert c.mean_utilization(10.0) == pytest.approx(1.0)
        assert c.mean_utilization(40.0) == pytest.approx(0.5)

    def test_fifo_fairness_under_contention(self):
        # 8 jobs compete for 2 nodes: grants strictly follow arrival order
        sim = Simulator()
        c = Cluster(sim, 2)
        starts = []

        def job(tag, arrive):
            yield Timeout(arrive)
            yield c.acquire()
            starts.append(tag)
            yield Timeout(10.0)
            c.release()

        for i in range(8):
            sim.process(job(i, 0.1 * i))
        sim.run()
        assert starts == list(range(8))


class TestClusterFaults:
    def test_fail_idle_node_shrinks_capacity(self):
        sim = Simulator()
        c = Cluster(sim, 3)
        assert c.fail_node()
        assert c.worker_nodes == 2 and c.busy == 0
        assert c.num_failures == 1
        assert c.fault_events == [(0.0, "fail")]

    def test_fail_node_exhausted(self):
        c = Cluster(Simulator(), 1)
        assert c.fail_node()
        assert not c.fail_node()
        assert c.num_failures == 1

    def test_repair_restores_capacity_and_grants_waiter(self):
        sim = Simulator()
        c = Cluster(sim, 1)
        c.fail_node()
        granted = []

        def job():
            yield c.acquire()
            granted.append(sim.now)
            c.release()

        def repair():
            yield Timeout(5.0)
            c.repair_node()

        sim.process(job())
        sim.process(repair())
        sim.run()
        assert granted == [5.0]
        assert c.num_repairs == 1

    def test_release_sheds_surplus_lease_after_shrink(self):
        # capacity drops below occupancy (no victim): the next release
        # must shed the lease instead of handing it to a waiter
        sim = Simulator()
        c = Cluster(sim, 1)
        order = []

        def holder_job():
            yield c.acquire()
            yield Timeout(10.0)
            c.release()
            order.append(("released", sim.now))

        def waiter_job():
            yield Timeout(1.0)
            yield c.acquire()
            order.append(("granted", sim.now))
            c.release()

        def failer():
            yield Timeout(2.0)
            c.fail_node()          # no idle node: occupancy now exceeds 0
            yield Timeout(10.0)
            c.repair_node()

        sim.process(holder_job())
        sim.process(waiter_job())
        sim.process(failer())
        sim.run()
        # the waiter was NOT granted at t=10 (no capacity); only after
        # the repair at t=12
        assert order == [("released", 10.0), ("granted", 12.0)]

    def test_utilization_normalized_by_nominal_capacity(self):
        sim = Simulator()
        c = Cluster(sim, 2)

        def job(hold):
            yield c.acquire()
            yield Timeout(hold)
            c.release()

        sim.process(job(10.0))
        c.fail_node()              # one idle node dies immediately
        sim.run()
        # one of two nominal nodes busy for the window, failures ignored
        # in the denominator
        assert c.nominal_worker_nodes == 2
        assert c.mean_utilization(10.0) == pytest.approx(0.5)

    def test_victim_preemption_decrements_busy(self):
        sim = Simulator()
        c = Cluster(sim, 2)
        outcome = []

        def pilot():
            proc = ref[0]
            yield c.acquire(holder=proc)
            try:
                yield Timeout(100.0)
                c.release(holder=proc)
                outcome.append("finished")
            except Interrupt:
                outcome.append("preempted")

        ref = [None]
        ref[0] = sim.process(pilot())

        def failer():
            yield Timeout(1.0)
            c.fail_node(ref[0])

        sim.process(failer())
        sim.run()
        assert outcome == ["preempted"]
        assert c.busy == 0 and c.worker_nodes == 1
