"""Tests for the Balsam-style job-table monitoring module."""

import numpy as np
import pytest

from repro.evaluator.balsam import BalsamService
from repro.hpc.cluster import Cluster
from repro.hpc.monitor import (job_table_stats, throughput_trace,
                               utilization_from_jobs)
from repro.hpc.sim import Simulator
from repro.nas.arch import Architecture
from repro.rewards.base import EvalResult


def _service(nodes=2, latency=0.0):
    sim = Simulator()
    cluster = Cluster(sim, nodes)
    return sim, BalsamService(sim, cluster, submit_latency=latency)


def _submit(service, duration, agent=0):
    return service.submit(agent, Architecture("s", (0,)),
                          EvalResult(0.5, duration, 100))


class TestUtilizationFromJobs:
    def test_single_job(self):
        sim, service = _service(nodes=1)
        _submit(service, 5.0)
        sim.run()
        trace = utilization_from_jobs(service, 10.0, bin_width=5.0)
        assert trace == [(5.0, 1.0), (10.0, 0.0)]

    def test_matches_cluster_counters(self):
        """The external job-table view must agree with the cluster's
        internal occupancy accounting."""
        sim, service = _service(nodes=3, latency=0.5)
        rng = np.random.default_rng(0)
        for _ in range(20):
            _submit(service, float(rng.uniform(1.0, 30.0)))
        sim.run()
        end = sim.now
        from_jobs = utilization_from_jobs(service, end, bin_width=7.0)
        from_cluster = service.cluster.utilization_trace(end, bin_width=7.0)
        for (t1, u1), (t2, u2) in zip(from_jobs, from_cluster):
            assert t1 == t2
            assert u1 == pytest.approx(u2, abs=1e-9)

    def test_running_jobs_counted_to_horizon(self):
        sim, service = _service(nodes=1)
        _submit(service, 100.0)
        sim.run(until=10.0)
        trace = utilization_from_jobs(service, 10.0, bin_width=10.0)
        assert trace == [(10.0, 1.0)]

    def test_bad_end_time(self):
        _, service = _service()
        with pytest.raises(ValueError):
            utilization_from_jobs(service, 0.0)


class TestJobTableStats:
    def test_empty_table(self):
        _, service = _service()
        stats = job_table_stats(service)
        assert stats.num_jobs == 0 and stats.num_finished == 0
        assert np.isnan(stats.mean_queue_wait)

    def test_queue_waits_and_runtimes(self):
        sim, service = _service(nodes=1)
        _submit(service, 10.0)
        _submit(service, 10.0)  # waits 10s for the node
        sim.run()
        stats = job_table_stats(service)
        assert stats.num_finished == 2
        assert stats.mean_queue_wait == pytest.approx(5.0)
        assert stats.mean_run_time == pytest.approx(10.0)
        assert stats.total_node_seconds == pytest.approx(20.0)
        assert set(stats.as_dict()) == {
            "num_jobs", "num_finished", "mean_queue_wait",
            "p95_queue_wait", "mean_run_time", "total_node_seconds"}


class TestThroughput:
    def test_completions_per_bin(self):
        sim, service = _service(nodes=2)
        for _ in range(4):
            _submit(service, 5.0)
        sim.run()
        # 2 finish at t=5, 2 at t=10
        trace = throughput_trace(service, 10.0, bin_width=5.0)
        assert trace == [(5.0, 0.4), (10.0, 0.4)]

    def test_bad_end_time(self):
        _, service = _service()
        with pytest.raises(ValueError):
            throughput_trace(service, -1.0)
