"""Universal finite-difference gradient checker over every public
layer/loss, the LSTM policy, and the PPO surrogate — including the edge
shapes ISSUE 3 calls out (pool-size remainders, sequence length 1,
batch size 1)."""

import numpy as np
import pytest

from repro.nn.conv import Conv1D, MaxPooling1D
from repro.nn.layers import Dense, Dropout
from repro.nn.losses import CategoricalCrossentropy, MeanSquaredError
from repro.nn.merge import Add, Concatenate
from repro.verify.gradcheck import default_checks

_SUITE = default_checks()


@pytest.mark.verify
@pytest.mark.parametrize("name,thunk", _SUITE,
                         ids=[name for name, _ in _SUITE])
def test_default_suite(name, thunk):
    """Every public layer and loss validates against central FD."""
    thunk().assert_ok()


class TestEdgeShapes:
    """The satellite edge shapes, via the ``gradcheck`` fixture."""

    def test_conv_into_pool_with_remainder(self, gradcheck):
        """Conv1D output length 15 is not divisible by pool size 4 —
        the trailing remainder must neither crash nor leak gradient."""
        gradcheck(Conv1D(2, 3), (17, 1))          # conv -> length 15
        gradcheck(MaxPooling1D(4), (15, 2))       # 15 = 3*4 + 3

    def test_lstm_sequence_length_one(self, gradcheck):
        gradcheck.check_policy([6])

    def test_batch_size_one(self, gradcheck):
        gradcheck(Dense(4, "tanh"), (5,), batch=1)
        gradcheck(Conv1D(2, 3), (9, 1), batch=1)
        gradcheck(MaxPooling1D(2), (8, 2), batch=1)
        gradcheck(Concatenate(), [(3,), (4,)], batch=1)
        gradcheck.check_policy([3, 2], batch=1)

    def test_dropout_eval_is_identity_gradient(self, gradcheck):
        res = gradcheck(Dropout(0.5), (6,), training=False)
        assert res.n_checked > 0

    def test_add_with_width_padding(self, gradcheck):
        gradcheck(Add(), [(5,), (2,), (3,)])


class TestLosses:
    def test_mse(self, gradcheck):
        rng = np.random.default_rng(0)
        gradcheck.check_loss(MeanSquaredError(),
                             rng.standard_normal((4, 2)),
                             rng.standard_normal((4, 2)))

    def test_crossentropy(self, gradcheck):
        rng = np.random.default_rng(1)
        logits = rng.standard_normal((6, 3))
        e = np.exp(logits - logits.max(axis=-1, keepdims=True))
        pred = e / e.sum(axis=-1, keepdims=True)
        target = np.eye(3)[rng.integers(0, 3, size=6)]
        gradcheck.check_loss(CategoricalCrossentropy(), pred, target)


class TestPolicyAndPPO:
    def test_lstm_policy_masked_gradients(self, gradcheck):
        """Ragged action dims exercise the −1e9 logit mask in BPTT."""
        gradcheck.check_policy([3, 7, 2, 5])

    def test_ppo_surrogate(self, gradcheck):
        gradcheck.check_ppo()

    def test_failure_is_detected(self):
        """A deliberately broken backward must fail the checker —
        guards against a vacuously green suite."""
        from repro.verify.gradcheck import check_layer

        layer = Dense(3, "linear")
        orig = Dense.backward

        def broken(self, grad):
            out = orig(self, grad)
            self.w.grad *= 1.5
            return out

        Dense.backward = broken
        try:
            res = check_layer(layer, (4,))
        finally:
            Dense.backward = orig
        assert not res.ok
