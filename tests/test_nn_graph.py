"""Unit tests for the DAG model container."""

import numpy as np
import pytest

from repro.nn import Concatenate, Dense, GraphModel, Identity


def _diamond(rng):
    """x -> (a, b) -> concat -> out; used by several tests."""
    m = GraphModel()
    m.add_input("x", (4,))
    m.add("a", Dense(3, "tanh"), ["x"])
    m.add("b", Dense(5, "relu"), ["x"])
    m.add("cat", Concatenate(), ["a", "b"])
    m.add("out", Dense(1), ["cat"])
    m.set_output("out")
    return m.build(rng)


class TestConstruction:
    def test_duplicate_name_rejected(self, rng):
        m = GraphModel()
        m.add_input("x", (4,))
        with pytest.raises(ValueError):
            m.add_input("x", (4,))
        m.add("a", Dense(3), ["x"])
        with pytest.raises(ValueError):
            m.add("a", Dense(3), ["x"])

    def test_unknown_input_rejected(self):
        m = GraphModel()
        m.add_input("x", (4,))
        with pytest.raises(KeyError):
            m.add("a", Dense(3), ["nope"])

    def test_multi_input_needs_merge_layer(self):
        m = GraphModel()
        m.add_input("x", (4,))
        m.add_input("y", (4,))
        with pytest.raises(ValueError):
            m.add("a", Dense(3), ["x", "y"])

    def test_no_inputs_rejected(self):
        m = GraphModel()
        m.add_input("x", (4,))
        with pytest.raises(ValueError):
            m.add("a", Dense(3), [])

    def test_build_without_output_raises(self, rng):
        m = GraphModel()
        m.add_input("x", (4,))
        m.add("a", Dense(3), ["x"])
        with pytest.raises(RuntimeError):
            m.build(rng)

    def test_unknown_output_raises(self):
        m = GraphModel()
        m.add_input("x", (4,))
        with pytest.raises(KeyError):
            m.set_output("zzz")

    def test_add_after_build_raises(self, rng):
        m = _diamond(rng)
        with pytest.raises(RuntimeError):
            m.add("late", Dense(2), ["a"])


class TestExecution:
    def test_forward_shape(self, rng):
        m = _diamond(rng)
        out = m.forward({"x": rng.standard_normal((7, 4))})
        assert out.shape == (7, 1)
        assert m.output_shape == (1,)

    def test_missing_input_raises(self, rng):
        m = _diamond(rng)
        with pytest.raises(KeyError):
            m.forward({})

    def test_forward_before_build_raises(self):
        m = GraphModel()
        m.add_input("x", (4,))
        m.add("a", Dense(3), ["x"])
        m.set_output("a")
        with pytest.raises(RuntimeError):
            m.forward({"x": np.zeros((1, 4))})

    def test_diamond_gradient_accumulates(self, rng):
        m = _diamond(rng)
        x = rng.standard_normal((5, 4))

        def f():
            return float(m.forward({"x": x}).sum())

        m.forward({"x": x})
        m.zero_grad()
        grads = m.backward(np.ones((5, 1)))
        # input gradient flows through both branches
        eps = 1e-6
        xp, xm = x.copy(), x.copy()
        xp[2, 1] += eps
        xm[2, 1] -= eps
        num = (m.forward({"x": xp}).sum() - m.forward({"x": xm}).sum()) / (2 * eps)
        assert abs(num - grads["x"][2, 1]) < 1e-6

    def test_fan_out_parameter_gradients(self, rng):
        # one layer consumed by two downstream heads: grads accumulate
        m = GraphModel()
        m.add_input("x", (3,))
        m.add("h", Dense(4, "tanh"), ["x"])
        m.add("p", Dense(2), ["h"])
        m.add("q", Dense(2), ["h"])
        m.add("cat", Concatenate(), ["p", "q"])
        m.set_output("cat")
        m.build(rng)
        x = rng.standard_normal((3, 3))

        def f():
            return float(m.forward({"x": x}).sum())

        m.forward({"x": x})
        m.zero_grad()
        m.backward(np.ones((3, 4)))
        w = m.layers["h"].w
        eps = 1e-6
        old = w.value[1, 1]
        w.value[1, 1] = old + eps
        fp = f()
        w.value[1, 1] = old - eps
        fm = f()
        w.value[1, 1] = old
        assert abs((fp - fm) / (2 * eps) - w.grad[1, 1]) < 1e-6

    def test_node_value(self, rng):
        m = _diamond(rng)
        x = rng.standard_normal((2, 4))
        m.forward({"x": x})
        assert m.node_value("a").shape == (2, 3)


class TestIntrospection:
    def test_param_dedup_shared_weights(self, rng):
        m = GraphModel()
        m.add_input("x", (4,))
        m.add_input("y", (4,))
        a = Dense(3)
        m.add("a", a, ["x"])
        m.add("b", Dense(3, share_from=a), ["y"])
        m.add("cat", Concatenate(), ["a", "b"])
        m.set_output("cat")
        m.build(rng)
        assert m.num_params == (4 + 1) * 3  # counted once

    def test_summary_mentions_total(self, rng):
        m = _diamond(rng)
        text = m.summary()
        assert f"total trainable parameters: {m.num_params}" in text

    def test_prebuilt_layers_not_reinitialized(self, rng):
        m = GraphModel()
        m.add_input("x", (4,))
        d = Dense(3)
        d.build((4,), rng)
        w_before = d.w.value.copy()
        m.add("a", d, ["x"])
        m.set_output("a")
        m.build(rng)
        np.testing.assert_array_equal(d.w.value, w_before)

    def test_identity_chain(self, rng):
        m = GraphModel()
        m.add_input("x", (4,))
        m.add("i1", Identity(), ["x"])
        m.add("i2", Identity(), ["i1"])
        m.set_output("i2")
        m.build(rng)
        x = rng.standard_normal((2, 4))
        np.testing.assert_array_equal(m.forward({"x": x}), x)
        assert m.num_params == 0
