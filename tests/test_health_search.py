"""Search-level health integration (ISSUE 4 acceptance).

Numeric chaos heals under guard-mode=recover, guard-mode=check crashes
resurrect, same-seed fingerprints are bit-identical with guards on but
silent, and the new health counters round-trip through checkpoints
without disturbing the pinned guard-off schema.
"""

import numpy as np
import pytest

from repro.health import GuardConfig
from repro.hpc import FaultConfig, NodeAllocation, TrainingCostModel
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search import NasSearch, SearchConfig, resume_search, run_search
from repro.search.chaos import check_numeric_rows, numeric_matrix

pytestmark = pytest.mark.health


@pytest.fixture(scope="module")
def space():
    return combo_small()


def make_surrogate(space, seed=7):
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(),
                           epochs=1, train_fraction=0.1, timeout=600.0,
                           log_params_opt=6.5, seed=seed)


def small_config(method="a3c", minutes=60, **kwargs):
    defaults = dict(method=method, allocation=NodeAllocation(32, 4, 3),
                    wall_time=minutes * 60.0, seed=1)
    defaults.update(kwargs)
    return SearchConfig(**defaults)


def numeric_faults(seed=3):
    return FaultConfig(nan_grad_prob=0.05, exploding_loss_prob=0.02,
                       corrupt_delta_prob=0.05, seed=seed)


class TestFingerprintIdentity:
    """Guards observe, never perturb: with no anomaly firing, a guarded
    search is bit-identical to an unguarded one."""

    @pytest.mark.parametrize("method", ["a3c", "a2c"])
    def test_check_mode_matches_off(self, space, method):
        cfg_off = small_config(method, minutes=40)
        cfg_on = small_config(method, minutes=40,
                              guard=GuardConfig(mode="check"),
                              max_restarts=3)
        fp_off = run_search(space, make_surrogate(space), cfg_off).fingerprint()
        res_on = run_search(space, make_surrogate(space), cfg_on)
        assert res_on.fingerprint() == fp_off
        assert res_on.num_rollbacks == 0 and res_on.num_restarts == 0

    def test_mode_off_config_is_inert(self, space):
        fp_none = run_search(space, make_surrogate(space),
                             small_config(minutes=30)).fingerprint()
        fp_off = run_search(space, make_surrogate(space),
                            small_config(minutes=30,
                                         guard=GuardConfig(mode="off"))
                            ).fingerprint()
        assert fp_off == fp_none


class TestNumericChaos:
    def test_numeric_matrix_acceptance(self):
        """The ISSUE 4 chaos criterion: NaN-gradient + corrupt-delta runs
        for a3c and a2c complete with a finite best reward, at least one
        rollback and one resurrection, and no agent permanently lost."""
        rows = numeric_matrix(minutes=40.0)
        assert {row["level"] for row in rows} == {"numeric/a3c",
                                                  "numeric/a2c"}
        assert check_numeric_rows(rows) == []

    def test_recover_counters_consistent(self, space):
        cfg = small_config(minutes=40, faults=numeric_faults(),
                           guard=GuardConfig(mode="recover"),
                           max_restarts=3)
        search = NasSearch(space, make_surrogate(space), cfg)
        res = search.run()
        assert search.injector.num_numeric_faults > 0
        assert res.num_rollbacks >= 1
        assert res.num_restarts >= 1
        assert res.num_rollbacks == sum(res.agent_rollbacks.values())
        assert res.num_restarts == sum(res.agent_restarts.values())
        assert not res.failed_agents
        assert np.isfinite(res.best().reward)

    def test_check_mode_resurrects_without_rollbacks(self, space):
        cfg = small_config(minutes=40, faults=numeric_faults(),
                           guard=GuardConfig(mode="check"),
                           max_restarts=8)
        res = run_search(space, make_surrogate(space), cfg)
        assert res.num_restarts >= 1
        assert res.num_rollbacks == 0
        assert np.isfinite(res.best().reward)

    def test_restart_cap_respected(self, space):
        cfg = small_config(minutes=40, faults=numeric_faults(),
                           guard=GuardConfig(mode="check"),
                           max_restarts=1)
        res = run_search(space, make_surrogate(space), cfg)
        assert all(n <= 1 for n in res.agent_restarts.values())

    def test_deterministic_under_numeric_faults(self, space):
        cfg = small_config(minutes=30, faults=numeric_faults(),
                           guard=GuardConfig(mode="recover"),
                           max_restarts=3)
        a = run_search(space, make_surrogate(space), cfg)
        b = run_search(space, make_surrogate(space), cfg)
        assert a.fingerprint() == b.fingerprint()
        assert a.agent_restarts == b.agent_restarts
        assert a.agent_rollbacks == b.agent_rollbacks


class TestCheckpointHealth:
    def run_checkpointed(self, space, **overrides):
        cfg = small_config(minutes=40, faults=numeric_faults(),
                           guard=GuardConfig(mode="recover"),
                           max_restarts=3, checkpoint_interval=600.0,
                           **overrides)
        search = NasSearch(space, make_surrogate(space), cfg)
        result = search.run()
        return search, result, cfg

    def test_counters_round_trip_json(self, space):
        search, result, _ = self.run_checkpointed(space)
        assert result.num_restarts >= 1    # the run actually healed
        ckpt = search.checkpoints[-1]
        restored = ckpt.round_trip()
        assert restored.agent_restarts == ckpt.agent_restarts
        assert restored.agent_rollbacks == ckpt.agent_rollbacks
        assert restored.fingerprint() == ckpt.fingerprint()

    def test_resume_restores_counters(self, space):
        search, _, cfg = self.run_checkpointed(space)
        mid = next((c for c in search.checkpoints
                    if c.agent_restarts or c.agent_rollbacks),
                   search.checkpoints[-1])
        resumed = resume_search(space, make_surrogate(space),
                                mid.round_trip(), cfg)
        for agent_id, n in mid.agent_restarts.items():
            assert resumed.agent_restarts.get(agent_id, 0) >= n
        for agent_id, n in mid.agent_rollbacks.items():
            assert resumed.agent_rollbacks.get(agent_id, 0) >= n

    def test_guard_off_checkpoint_has_no_health_key(self, space):
        cfg = small_config(minutes=30, checkpoint_interval=600.0)
        search = NasSearch(space, make_surrogate(space), cfg)
        search.run()
        data = search.checkpoints[-1].to_json()
        assert "health" not in data
        assert "health" not in (data["ps_state"] or {})
        for agent in data["agents"]:
            boundary = agent.get("boundary") or {}
            assert "lr" not in boundary
