"""Tests for the text renderers."""

from repro.nas.builder import compile_architecture
from repro.nas.ops import DenseOp
from repro.nas.spaces import combo_small, uno_small
from repro.nas.visualize import render_plan, render_space
from repro.problems.combo import COMBO_PAPER_SHAPES


class TestRenderSpace:
    def test_combo_space_content(self):
        text = render_space(combo_small())
        assert "Structure 'combo-small'" in text
        assert "cardinality: 2.0968e+14" in text
        assert "mirror of N0" in text
        assert "[a12]" in text and "[a13]" not in text  # 13 decisions
        assert "output: concat(all_cells)" in text

    def test_uno_space_shows_constants(self):
        text = render_space(uno_small())
        assert "Identity [constant]" in text
        assert "Add [constant]" in text
        assert "(+ inputs from nodes [0])" in text

    def test_option_truncation(self):
        text = render_space(combo_small())
        assert "... (13 options)" in text


class TestRenderPlan:
    def test_plan_content(self):
        space = combo_small()
        choices = [1] * 9 + [0] + [1] * 3
        plan = compile_architecture(space, choices, COMBO_PAPER_SHAPES,
                                    [DenseOp(1, "linear")])
        text = render_plan(plan)
        assert f"{plan.total_params:,} trainable parameters" in text
        assert "input cell_expression" in text
        assert "[shares " in text           # mirror sharing is visible
        assert f"output: {plan.output}" in text

    def test_every_plan_node_rendered(self):
        space = combo_small()
        plan = compile_architecture(space, [0] * 13, COMBO_PAPER_SHAPES,
                                    [DenseOp(1, "linear")])
        text = render_plan(plan)
        for node in plan.nodes:
            assert node.name in text
