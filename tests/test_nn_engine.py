"""Compiled-engine tests: dtype config, buffer reuse, flat parameters.

The float64 numerics of the compiled plan are covered by the whole
existing suite (the conftest pins float64); this file covers what is new
in the engine: the float32 default substrate, aliasing safety of pooled
buffers, and the fused flat-vector optimizer.
"""

import numpy as np
import pytest

from repro.nn import (Adam, Conv1D, Dense, Dropout, FlatAdam,
                      FlatParameterVector, Flatten, GraphModel, Identity,
                      MaxPooling1D, Parameter, Trainer, dtype_scope,
                      get_default_dtype, set_default_dtype)
from repro.nn.merge import Concatenate


def combo_like(dtype=None, seed=3):
    """A small Combo-shaped model: three inputs, dense towers, concat."""
    m = GraphModel()
    m.add_input("cell", (20,))
    m.add_input("drug1", (24,))
    m.add_input("drug2", (24,))
    for src, pref in (("cell", "c"), ("drug1", "d1"), ("drug2", "d2")):
        m.add(f"{pref}.h", Dense(16, "relu"), [src])
    m.add("cat", Concatenate(), ["c.h", "d1.h", "d2.h"])
    m.add("top", Dense(16, "relu"), ["cat"])
    m.add("y", Dense(1), ["top"])
    m.set_output("y")
    return m.build(np.random.default_rng(seed), dtype=dtype)


def nt3_like(dtype=None, seed=5):
    """A small NT3-shaped model: conv/pool stack over a 1-D signal."""
    m = GraphModel()
    m.add_input("x", (60, 1))
    m.add("c1", Conv1D(4, 5, activation="relu"), ["x"])
    m.add("p1", MaxPooling1D(2), ["c1"])
    m.add("f", Flatten(), ["p1"])
    m.add("y", Dense(3, "softmax"), ["f"])
    m.set_output("y")
    return m.build(np.random.default_rng(seed), dtype=dtype)


def combo_batch(n, rng, dtype=np.float64):
    return {"cell": rng.normal(size=(n, 20)).astype(dtype),
            "drug1": rng.normal(size=(n, 24)).astype(dtype),
            "drug2": rng.normal(size=(n, 24)).astype(dtype)}


# ----------------------------------------------------------------------
# dtype configuration
# ----------------------------------------------------------------------
class TestDtypeConfig:
    def test_suite_default_is_float64(self):
        # pinned by conftest for the gradient checks
        assert get_default_dtype() == np.dtype(np.float64)

    def test_set_returns_previous(self):
        prev = set_default_dtype(np.float32)
        assert prev == np.dtype(np.float64)
        assert get_default_dtype() == np.dtype(np.float32)
        set_default_dtype(prev)

    def test_scope_restores_on_exit_and_error(self):
        with dtype_scope(np.float32):
            assert get_default_dtype() == np.dtype(np.float32)
        assert get_default_dtype() == np.dtype(np.float64)
        with pytest.raises(RuntimeError):
            with dtype_scope(np.float32):
                raise RuntimeError("boom")
        assert get_default_dtype() == np.dtype(np.float64)

    def test_rejects_non_float_dtypes(self):
        for bad in (np.int32, np.float16, "complex128"):
            with pytest.raises(ValueError):
                set_default_dtype(bad)

    def test_parameter_uses_configured_dtype(self):
        with dtype_scope(np.float32):
            p = Parameter(np.zeros(3))
        assert p.dtype == np.dtype(np.float32)
        assert Parameter(np.zeros(3)).dtype == np.dtype(np.float64)
        assert Parameter(np.zeros(3), dtype=np.float32).dtype == np.float32

    def test_model_freezes_dtype_at_build(self):
        m32 = combo_like(dtype=np.float32)
        m64 = combo_like(dtype=np.float64)
        assert m32.dtype == np.dtype(np.float32)
        assert m64.dtype == np.dtype(np.float64)
        for p in m32.parameters():
            assert p.dtype == np.dtype(np.float32)
        x = combo_batch(8, np.random.default_rng(0))
        assert m32.forward(x).dtype == np.float32
        assert m64.forward(x).dtype == np.float64


# ----------------------------------------------------------------------
# float32 vs float64 equivalence
# ----------------------------------------------------------------------
class TestPrecisionEquivalence:
    def test_combo_forward_close(self):
        m32, m64 = combo_like(np.float32), combo_like(np.float64)
        x = combo_batch(16, np.random.default_rng(1))
        p32 = m32.forward(x)
        p64 = m64.forward(x)
        np.testing.assert_allclose(p32, p64, rtol=1e-4, atol=1e-5)

    def test_nt3_forward_backward_close(self):
        m32, m64 = nt3_like(np.float32), nt3_like(np.float64)
        rng = np.random.default_rng(2)
        x = {"x": rng.normal(size=(12, 60, 1))}
        p32, p64 = m32.forward(x), m64.forward(x)
        np.testing.assert_allclose(p32, p64, rtol=1e-4, atol=1e-5)
        g = rng.normal(size=p64.shape) / 12
        m32.zero_grad(), m64.zero_grad()
        g32 = m32.backward(g)["x"]
        g64 = m64.backward(g)["x"]
        np.testing.assert_allclose(g32, g64, rtol=1e-3, atol=1e-5)

    def test_training_trajectories_track(self):
        rng = np.random.default_rng(7)
        x = combo_batch(96, rng)
        y = rng.normal(size=(96, 1))
        losses = {}
        for dt in (np.float32, np.float64):
            hist = Trainer(epochs=3, batch_size=16, seed=9).fit(
                combo_like(dt), x, y)
            losses[dt] = hist.epoch_losses
        np.testing.assert_allclose(losses[np.float32], losses[np.float64],
                                   rtol=1e-3)


# ----------------------------------------------------------------------
# buffer reuse
# ----------------------------------------------------------------------
class TestBufferReuse:
    def test_varying_batch_sizes_match_full_batch(self):
        m = combo_like(np.float64)
        rng = np.random.default_rng(4)
        x = combo_batch(37, rng)  # deliberately not a multiple of anything
        full = m.forward(x).copy()
        for lo, hi in ((0, 16), (16, 32), (32, 37), (5, 6)):
            part = m.forward({k: v[lo:hi] for k, v in x.items()})
            # BLAS picks different kernels per batch size (gemv vs gemm),
            # so rows agree to reduction-order rounding, not bitwise
            np.testing.assert_allclose(part, full[lo:hi], rtol=1e-12)

    def test_outputs_not_aliased_across_calls(self):
        # Trainer.evaluate appends per-batch predictions; a reused output
        # buffer would silently corrupt earlier batches.
        m = combo_like(np.float64)
        rng = np.random.default_rng(6)
        x1, x2 = combo_batch(8, rng), combo_batch(8, rng)
        out1 = m.forward(x1)
        snap = out1.copy()
        out2 = m.forward(x2)
        assert out2 is not out1
        np.testing.assert_array_equal(out1, snap)

    def test_output_through_passthrough_not_aliased(self):
        # Identity/Flatten return views; the node feeding them must also
        # be excluded from buffer reuse when it reaches the output.
        m = GraphModel()
        m.add_input("x", (6,))
        m.add("h", Dense(5, "relu"), ["x"])
        m.add("id", Identity(), ["h"])
        m.add("do", Dropout(0.5), ["id"])
        m.set_output("do")
        m.build(np.random.default_rng(0), dtype=np.float64)
        rng = np.random.default_rng(1)
        out1 = m.forward({"x": rng.normal(size=(4, 6))})  # eval: dropout=identity
        snap = out1.copy()
        m.forward({"x": rng.normal(size=(4, 6))})
        np.testing.assert_array_equal(out1, snap)

    def test_interior_buffers_are_reused(self):
        m = combo_like(np.float64)
        x = combo_batch(16, np.random.default_rng(8))
        m.forward(x)
        first = m.node_value("c.h")
        m.forward(x)
        assert m.node_value("c.h") is first  # same pooled buffer

    def test_gradients_match_unpooled_layers(self):
        # plan-driven (pooled) gradients == standalone-layer gradients
        m = combo_like(np.float64)
        rng = np.random.default_rng(11)
        x = combo_batch(9, rng)
        pred = m.forward(x, training=True)
        m.zero_grad()
        m.backward(np.ones_like(pred) / pred.size)
        pooled = [p.grad.copy() for p in m.parameters()]

        ref = combo_like(np.float64)  # identical weights (same build seed)
        layer = ref.layers["top"]
        layer._pool = None  # force the standalone allocation path
        pred2 = ref.forward(x, training=True)
        np.testing.assert_array_equal(pred2, pred)
        ref.zero_grad()
        ref.backward(np.ones_like(pred2) / pred2.size)
        for g, p in zip(pooled, ref.parameters()):
            np.testing.assert_array_equal(g, p.grad)


# ----------------------------------------------------------------------
# flat parameter vector + fused optimizer
# ----------------------------------------------------------------------
class TestFlatParameters:
    def test_views_share_storage(self):
        m = combo_like(np.float64)
        flat = m.flatten_parameters()
        assert flat is m.flatten_parameters()  # cached
        assert len(flat) == m.num_params
        p = m.parameters()[0]
        before = flat.copy_values()
        p.value += 1.0
        assert not np.array_equal(flat.values, before)
        flat.set_values(before)
        np.testing.assert_array_equal(p.value, before[:p.size].reshape(p.shape))

    def test_dedups_shared_parameters(self):
        w = Parameter(np.arange(6, dtype=np.float64).reshape(2, 3))
        b = Parameter(np.zeros(3))
        flat = FlatParameterVector([w, b, w])  # mirror-shared w listed twice
        assert len(flat) == 9
        assert flat.params == [w, b]

    def test_set_and_add_validate_size(self):
        flat = combo_like(np.float64).flatten_parameters()
        with pytest.raises(ValueError):
            flat.set_values(np.zeros(len(flat) + 1))
        with pytest.raises(ValueError):
            flat.add_values(np.zeros(len(flat) - 1))
        delta = np.ones(len(flat))
        before = flat.copy_values()
        flat.add_values(delta)
        np.testing.assert_array_equal(flat.values, before + 1.0)

    def test_zero_grad_clears_all_views(self):
        m = combo_like(np.float64)
        flat = m.flatten_parameters()
        flat.grads += 3.0
        m.zero_grad()
        assert not flat.grads.any()
        assert not any(p.grad.any() for p in m.parameters())

    def test_flat_adam_matches_per_param_adam_exactly(self):
        rng = np.random.default_rng(13)
        shapes = [(4, 5), (5,), (5, 2), (2,)]
        pa = [Parameter(rng.normal(size=s)) for s in shapes]
        pb = [Parameter(p.value.copy()) for p in pa]
        opt_a, opt_b = Adam(pa, lr=0.01), FlatAdam(pb, lr=0.01)
        for step in range(5):
            g_rng = np.random.default_rng(100 + step)
            for a, b in zip(pa, pb):
                g = g_rng.normal(size=a.shape)
                a.grad[...] = g
                b.grad[...] = g
            opt_a.step()
            opt_b.step()
        for a, b in zip(pa, pb):
            np.testing.assert_array_equal(a.value, b.value)

    def test_trainer_default_optimizer_is_fused(self):
        m = combo_like(np.float64)
        rng = np.random.default_rng(17)
        x = combo_batch(32, rng)
        y = rng.normal(size=(32, 1))
        hist = Trainer(epochs=2, batch_size=8, seed=1).fit(m, x, y)
        assert m._flat is not None  # fit packed the parameters
        assert hist.batches_seen == 8
        assert np.isfinite(hist.final_loss)
