"""Shape tests for the paper's qualitative search phenomenology.

These pin, at test scale, the mechanisms the figures rely on: A2C's
sawtooth utilization, the cache-driven utilization decay, and the
convergence-stop at saturation.
"""

import numpy as np
import pytest

from repro.hpc import NodeAllocation, TrainingCostModel
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search import SearchConfig, run_search


@pytest.fixture(scope="module")
def space():
    return combo_small()


def make_reward(space, noise=0.05):
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(),
                           epochs=1, train_fraction=0.1, timeout=600.0,
                           noise=noise, seed=7)


@pytest.fixture(scope="module")
def runs(space):
    out = {}
    for method in ("a3c", "a2c", "rdm"):
        cfg = SearchConfig(method=method,
                           allocation=NodeAllocation(64, 6, 5),
                           wall_time=150 * 60, seed=5)
        out[method] = run_search(space, make_reward(space), cfg)
    return out


class TestUtilizationShapes:
    def test_a2c_lowest_mean_utilization(self, runs):
        """Fig 5: the synchronous barrier costs A2C utilization."""
        means = {m: r.cluster.mean_utilization(max(r.end_time, 1e-9))
                 for m, r in runs.items()}
        assert means["a2c"] < means["rdm"]

    def test_a2c_utilization_oscillates_more(self, runs):
        """Fig 5: A2C shows a sawtooth — within-round swings between
        full and idle that RDM's steady pipeline doesn't have."""
        def fine_variance(res):
            trace = res.cluster.utilization_trace(res.end_time, 120.0)
            return float(np.var([u for _, u in trace]))

        assert fine_variance(runs["a2c"]) > fine_variance(runs["rdm"])

    def test_a3c_late_utilization_decays_with_cache(self, runs):
        """Fig 5: as the A3C policy concentrates, cache hits starve the
        cluster; RDM never caches so it stays flat."""
        def late_minus_early(res):
            trace = res.cluster.utilization_trace(res.end_time, 15 * 60.0)
            us = [u for _, u in trace]
            third = max(1, len(us) // 3)
            return float(np.mean(us[-third:]) - np.mean(us[:third]))

        assert late_minus_early(runs["a3c"]) < \
            late_minus_early(runs["rdm"]) + 0.02

    def test_rdm_never_hits_cache(self, runs):
        assert all(not r.cached for r in runs["rdm"].records)


class TestLearningShapes:
    def test_rl_methods_concentrate_sampling(self, runs):
        """Learning policies revisit architectures (unique < evals);
        random search essentially never repeats in this space."""
        for method in ("a3c",):
            res = runs[method]
            assert res.unique_architectures < res.num_evaluations
        rdm = runs["rdm"]
        assert rdm.unique_architectures == rdm.num_evaluations

    def test_best_rewards_ordering(self, runs):
        assert runs["a3c"].best().reward >= runs["rdm"].best().reward - 0.05

    def test_timeouts_logged_for_oversized_archs(self, runs):
        recs = runs["rdm"].records
        timed_out = [r for r in recs if r.timed_out]
        if timed_out:  # large random archs exceed the 10-min budget
            assert all(r.duration == 600.0 for r in timed_out)
            assert all(r.reward < 0.5 for r in timed_out)
