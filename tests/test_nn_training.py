"""Unit tests for the training loop: fit, timeout, fidelity controls."""

import numpy as np
import pytest

from repro.nn import Dense, GraphModel, Trainer, train_model


def _linear_problem(rng, n=200, d=6):
    x = rng.standard_normal((n, d))
    w = rng.standard_normal(d)
    y = (x @ w)[:, None]
    return {"x": x}, y


def _model(rng, d=6, hidden=16):
    m = GraphModel()
    m.add_input("x", (d,))
    m.add("h", Dense(hidden, "tanh"), ["x"])
    m.add("y", Dense(1), ["h"])
    m.set_output("y")
    return m.build(rng)


class FakeClock:
    """Deterministic clock: each call advances by ``tick`` seconds."""

    def __init__(self, tick=1.0):
        self.t = 0.0
        self.tick = tick

    def __call__(self):
        self.t += self.tick
        return self.t


class TestFit:
    def test_loss_decreases(self, rng):
        x, y = _linear_problem(rng)
        m = _model(rng)
        hist = train_model(m, x, y, epochs=20, lr=0.01, metric="r2",
                           x_val=x, y_val=y)
        assert hist.epoch_losses[-1] < hist.epoch_losses[0]
        assert hist.val_metric > 0.8

    def test_history_fields(self, rng):
        x, y = _linear_problem(rng, n=64)
        m = _model(rng)
        hist = Trainer(batch_size=16, epochs=3).fit(m, x, y)
        assert len(hist.epoch_losses) == 3
        assert hist.batches_seen == 3 * 4
        assert np.isnan(hist.val_metric)  # no validation data given
        assert hist.final_loss == hist.epoch_losses[-1]

    def test_train_fraction_reduces_batches(self, rng):
        x, y = _linear_problem(rng, n=100)
        m = _model(rng)
        full = Trainer(batch_size=10, epochs=1).fit(m, x, y)
        m2 = _model(rng)
        frac = Trainer(batch_size=10, epochs=1, train_fraction=0.3).fit(
            m2, x, y)
        assert full.batches_seen == 10
        assert frac.batches_seen == 3

    def test_deterministic_given_seed(self, rng):
        x, y = _linear_problem(rng, n=64)
        results = []
        for _ in range(2):
            m = _model(np.random.default_rng(0))
            h = Trainer(epochs=2, seed=42).fit(m, x, y, x, y)
            results.append(h.val_metric)
        assert results[0] == results[1]

    def test_evaluate_batches_consistent(self, rng):
        x, y = _linear_problem(rng, n=50)
        m = _model(rng)
        tr = Trainer(metric="r2")
        full = tr.evaluate(m, x, y, batch_size=1000)
        chunked = tr.evaluate(m, x, y, batch_size=7)
        assert abs(full - chunked) < 1e-12


class TestTimeout:
    def test_timeout_stops_mid_epoch(self, rng):
        x, y = _linear_problem(rng, n=100)
        m = _model(rng)
        clock = FakeClock(tick=1.0)
        # every clock call advances 1s; timeout after 5s cuts the epoch
        hist = Trainer(batch_size=10, epochs=1, timeout=5.0,
                       clock=clock).fit(m, x, y)
        assert hist.timed_out
        assert hist.batches_seen < 10

    def test_no_timeout_completes(self, rng):
        x, y = _linear_problem(rng, n=40)
        m = _model(rng)
        hist = Trainer(batch_size=10, epochs=2).fit(m, x, y)
        assert not hist.timed_out
        assert hist.batches_seen == 8

    def test_timeout_records_train_time(self, rng):
        x, y = _linear_problem(rng, n=100)
        m = _model(rng)
        clock = FakeClock(tick=1.0)
        hist = Trainer(batch_size=10, epochs=1, timeout=3.0,
                       clock=clock).fit(m, x, y)
        assert hist.train_time > 3.0


class TestValidation:
    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            Trainer(train_fraction=0.0)
        with pytest.raises(ValueError):
            Trainer(train_fraction=1.5)

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            Trainer(batch_size=0)
        with pytest.raises(ValueError):
            Trainer(epochs=0)

    def test_loss_instance_accepted(self, rng):
        from repro.nn.losses import MeanSquaredError
        x, y = _linear_problem(rng, n=32)
        m = _model(rng)
        hist = Trainer(loss=MeanSquaredError(), epochs=1).fit(m, x, y)
        assert len(hist.epoch_losses) == 1
