"""Property-based tests of the tabular benchmark layer.

Three families of invariants (hypothesis where the input space is worth
fuzzing, exhaustive checks where the space is exactly enumerable):

* **enumeration** — ``enumerate_space`` is exhaustive and duplicate-free
  for every capped paper space, matching the space's exact cardinality;
  stratified sampling yields exactly ``cap`` distinct valid
  architectures and is a pure function of (space, cap, seed);
* **persistence** — a table save/load round-trips bit-identically
  (rows, metadata, fingerprint), for any row content and any shard
  size, including through a resume-reopen;
* **serving** — ``TabularReward`` is referentially transparent: the
  same architecture maps to the same ``EvalResult`` across calls, agent
  seeds, fresh loads, and evaluator backends.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench import ArchTable, TableRow, TableWriter, enumerate_space
from repro.bench.subspace import capped_space, enumeration_count
from repro.evaluator.serial import SerialEvaluator
from repro.evaluator.thread import ThreadEvaluator
from repro.nas.arch import Architecture
from repro.nas.plancache import SignatureResolver
from repro.nas.spaces import get_space
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import TabularReward

from _bench_common import capped_combo, sweep_combo_table

pytestmark = pytest.mark.bench


# -- enumeration -------------------------------------------------------
@pytest.mark.parametrize("space_name", ["combo-small", "uno-small",
                                        "nt3-small"])
def test_exhaustive_enumeration_matches_exact_cardinality(space_name):
    """Capped to 2 options per decision, every paper space is exactly
    enumerable: the stream is duplicate-free and its length equals both
    the rebuilt space's ``size`` and the closed-form product."""
    space = capped_space(get_space(space_name, scale=0.05), 2)
    dims = space.action_dims
    expected = math.prod(dims)
    assert space.size == expected
    assert all(d <= 2 for d in dims)

    seen = set()
    for arch in enumerate_space(space):
        assert arch.space == space.name
        assert len(arch.choices) == len(dims)
        assert all(0 <= c < d for c, d in zip(arch.choices, dims))
        seen.add(arch.choices)
    assert len(seen) == expected == enumeration_count(space)


@settings(max_examples=15, deadline=None)
@given(cap=st.integers(min_value=5, max_value=400),
       seed=st.integers(min_value=0, max_value=2**16))
def test_stratified_sample_is_exact_distinct_and_seeded(cap, seed):
    space = capped_combo()
    assert space.size > cap
    dims = space.action_dims
    first = [a.choices for a in enumerate_space(space, cap=cap, seed=seed)]
    assert len(first) == cap == enumeration_count(space, cap)
    assert len(set(first)) == cap
    for choices in first:
        assert all(0 <= c < d for c, d in zip(choices, dims))
    again = [a.choices for a in enumerate_space(space, cap=cap, seed=seed)]
    assert first == again
    other = [a.choices for a in enumerate_space(space, cap=cap,
                                                seed=seed + 1)]
    assert first != other


def test_cap_above_cardinality_falls_back_to_exhaustive():
    space = capped_space(get_space("combo-small", scale=0.05), 1)
    assert space.size == 1
    archs = list(enumerate_space(space, cap=100, seed=3))
    assert len(archs) == 1


# -- persistence -------------------------------------------------------
_row = st.builds(
    dict,
    reward=st.floats(min_value=-1.0, max_value=1.0, allow_nan=False),
    duration=st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    params=st.integers(min_value=0, max_value=10**9),
    timed_out=st.booleans())


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(rows=st.lists(_row, min_size=0, max_size=25),
       shard_size=st.integers(min_value=1, max_value=7))
def test_table_roundtrip_is_bit_identical(tmp_path_factory, rows,
                                          shard_size):
    d = tmp_path_factory.mktemp("table")
    table_rows = [TableRow(sig=f"sig-{i:04d}", space="toy",
                           choices=(i, i % 3), **payload)
                  for i, payload in enumerate(rows)]
    with TableWriter(d, "toy", shard_size=shard_size,
                     metadata={"k": 1}) as writer:
        for row in table_rows:
            assert writer.append(row)

    loaded = ArchTable.load(d)
    assert loaded.space_name == "toy"
    assert loaded.metadata == {"k": 1}
    assert len(loaded) == len(table_rows)
    for row in table_rows:
        assert loaded.get(row.sig) == row
    # the fingerprint is a pure function of content: stable across
    # loads, and across a resume-reopen that adds nothing
    fp = loaded.fingerprint()
    assert ArchTable.load(d).fingerprint() == fp
    with TableWriter(d, "toy", shard_size=shard_size,
                     metadata={"k": 1}) as writer:
        for row in table_rows:
            assert not writer.append(row)   # everything already known
    assert ArchTable.load(d).fingerprint() == fp


def test_writer_rejects_mismatched_metadata_and_space(tmp_path):
    with TableWriter(tmp_path, "toy", metadata={"k": 1}) as writer:
        writer.append(TableRow("s", "toy", (0,), 0.5, 1.0, 10))
    with pytest.raises(ValueError, match="metadata"):
        TableWriter(tmp_path, "toy", metadata={"k": 2})
    with pytest.raises(ValueError, match="space"):
        TableWriter(tmp_path, "other", metadata={"k": 1})


# -- serving -----------------------------------------------------------
@pytest.fixture(scope="module")
def small_table(tmp_path_factory):
    d = tmp_path_factory.mktemp("bench_table")
    space, report = sweep_combo_table(d, cap=40, shard_size=16)
    assert report.evaluated > 0
    return d, space


def _reward(table_dir, space) -> TabularReward:
    return TabularReward.from_table_dir(
        table_dir, space, COMBO_PAPER_SHAPES, combo_head())


def test_tabular_reward_referentially_transparent(small_table):
    table_dir, space = small_table
    model = _reward(table_dir, space)
    archs = [Architecture(space.name, row.choices)
             for row in list(model.table.rows.values())[:10]]

    for arch in archs:
        baseline = model.evaluate(arch, agent_seed=0)
        # across calls and agent seeds
        for seed in (0, 1, 17, 12345):
            assert model.evaluate(arch, agent_seed=seed) == baseline
        # across fresh loads (independent processes see the same file)
        assert _reward(table_dir, space).evaluate(arch) == baseline


def test_tabular_reward_identical_across_backends(small_table):
    table_dir, space = small_table
    archs = [Architecture(space.name, row.choices)
             for row in list(_reward(table_dir, space).table
                             .rows.values())[:12]]

    def rewards_via(evaluator):
        evaluator.add_eval_batch(archs)
        evaluator.wait_all()
        by_key = {rec.arch.choices: rec.result
                  for rec in evaluator.get_finished_evals()}
        evaluator.shutdown()
        return [by_key[a.choices] for a in archs]

    serial = rewards_via(SerialEvaluator(_reward(table_dir, space), 0,
                                         use_cache=False))
    threaded = rewards_via(ThreadEvaluator(_reward(table_dir, space), 3,
                                           max_workers=3,
                                           use_cache=False))
    assert serial == threaded


def test_resolver_space_mismatch_is_rejected(small_table):
    from repro.problems.uno import UNO_PAPER_SHAPES, uno_head
    table_dir, space = small_table
    other = get_space("uno-small", scale=0.05)
    resolver = SignatureResolver(other, UNO_PAPER_SHAPES, uno_head())
    with pytest.raises(ValueError, match="space"):
        TabularReward(ArchTable.load(table_dir), resolver)
