"""Unit tests for the analytics module."""

import numpy as np
import pytest

from repro.analytics import (best_so_far_trajectory, binned_mean_trajectory,
                             cache_hit_fraction, evaluations_per_agent,
                             quantile_bands, rolling_mean_trajectory,
                             time_to_reward, top_k_architectures,
                             unique_architectures)
from repro.nas.arch import Architecture
from repro.search.base import RewardRecord


def R(t, reward, agent=0, arch_id=0, cached=False):
    return RewardRecord(time=t * 60.0, agent_id=agent,
                        arch=Architecture("s", (arch_id,)), reward=reward,
                        params=100, duration=10.0, cached=cached,
                        timed_out=False)


RECORDS = [R(1, 0.1, arch_id=1), R(2, 0.5, arch_id=2), R(3, 0.3, arch_id=3),
           R(4, 0.7, arch_id=4), R(5, 0.6, arch_id=5)]


class TestTrajectories:
    def test_best_so_far(self):
        traj = best_so_far_trajectory(RECORDS)
        np.testing.assert_allclose(traj[:, 1], [0.1, 0.5, 0.5, 0.7, 0.7])
        np.testing.assert_allclose(traj[:, 0], [1, 2, 3, 4, 5])

    def test_best_so_far_unsorted_input(self):
        traj = best_so_far_trajectory(list(reversed(RECORDS)))
        np.testing.assert_allclose(traj[:, 1], [0.1, 0.5, 0.5, 0.7, 0.7])

    def test_rolling_mean_window(self):
        traj = rolling_mean_trajectory(RECORDS, window=2)
        np.testing.assert_allclose(traj[:, 1], [0.3, 0.4, 0.5, 0.65])

    def test_rolling_mean_window_clamped(self):
        traj = rolling_mean_trajectory(RECORDS, window=100)
        assert len(traj) == 1
        assert traj[0, 1] == pytest.approx(np.mean([0.1, 0.5, 0.3, 0.7, 0.6]))

    def test_rolling_mean_empty(self):
        assert rolling_mean_trajectory([]).shape == (0, 2)

    def test_binned_mean(self):
        traj = binned_mean_trajectory(RECORDS, bin_minutes=2.0,
                                      end_minutes=6.0)
        # bins [0,2): r(1)=0.1; [2,4): 0.5, 0.3; [4,6): 0.7, 0.6
        np.testing.assert_allclose(traj[:, 1], [0.1, 0.4, 0.65])

    def test_binned_mean_nan_for_empty_bins(self):
        traj = binned_mean_trajectory([R(5, 0.5)], bin_minutes=1.0,
                                      end_minutes=6.0)
        assert np.isnan(traj[0, 1])
        assert not np.isnan(traj[-1, 1])

    def test_time_to_reward(self):
        assert time_to_reward(RECORDS, 0.5) == 2.0
        assert time_to_reward(RECORDS, 0.7) == 4.0
        assert time_to_reward(RECORDS, 0.9) is None


class TestTopK:
    def test_dedupes_by_best_reward(self):
        records = [R(1, 0.2, arch_id=1), R(2, 0.8, arch_id=1),
                   R(3, 0.5, arch_id=2)]
        top = top_k_architectures(records, k=5)
        assert len(top) == 2
        assert top[0].reward == 0.8 and top[0].arch.choices == (1,)

    def test_k_limits(self):
        assert len(top_k_architectures(RECORDS, k=2)) == 2

    def test_unique_count(self):
        records = RECORDS + [R(6, 0.1, arch_id=1)]
        assert unique_architectures(records) == 5

    def test_cache_fraction(self):
        records = [R(1, 0.1, cached=True), R(2, 0.2), R(3, 0.3, cached=True),
                   R(4, 0.4)]
        assert cache_hit_fraction(records) == 0.5
        assert cache_hit_fraction([]) == 0.0

    def test_per_agent_counts(self):
        records = [R(1, 0.1, agent=0), R(2, 0.2, agent=1), R(3, 0.3, agent=0)]
        assert evaluations_per_agent(records) == {0: 2, 1: 1}


class TestTopKNaN:
    """NaN propagation ordering: a NaN reward that reaches the records
    (guards off) must rank strictly below every finite reward and must
    never squat in a dedup slot over a finite observation."""

    def test_nan_never_ranks_above_finite(self):
        records = [R(1, float("nan"), arch_id=1), R(2, 0.2, arch_id=2),
                   R(3, -5.0, arch_id=3)]
        top = top_k_architectures(records, k=5)
        assert [r.reward for r in top[:2]] == [0.2, -5.0]
        assert np.isnan(top[2].reward)

    def test_finite_displaces_earlier_nan_for_same_arch(self):
        records = [R(1, float("nan"), arch_id=1), R(2, 0.3, arch_id=1)]
        top = top_k_architectures(records, k=5)
        assert len(top) == 1 and top[0].reward == 0.3

    def test_nan_cannot_displace_finite_for_same_arch(self):
        records = [R(1, 0.3, arch_id=1), R(2, float("nan"), arch_id=1)]
        top = top_k_architectures(records, k=5)
        assert len(top) == 1 and top[0].reward == 0.3

    def test_all_nan_still_returns_k(self):
        records = [R(t, float("nan"), arch_id=t) for t in range(1, 4)]
        assert len(top_k_architectures(records, k=2)) == 2


class TestQuantiles:
    def test_bands_shape_and_order(self):
        reps = []
        for offset in (0.0, 0.1, 0.2, 0.3):
            reps.append([R(t, 0.1 * t + offset, arch_id=t)
                         for t in range(1, 11)])
        grid = np.array([2.0, 5.0, 9.0])
        bands = quantile_bands(reps, grid, quantiles=(0.1, 0.5, 0.9),
                               window=1)
        assert bands.shape == (3, 3)
        assert (bands[:, 0] <= bands[:, 1]).all()
        assert (bands[:, 1] <= bands[:, 2]).all()

    def test_median_of_symmetric_offsets(self):
        reps = []
        for offset in (-0.1, 0.0, 0.1):
            reps.append([R(t, 0.5 + offset, arch_id=t)
                         for t in range(1, 6)])
        bands = quantile_bands(reps, np.array([3.0]), quantiles=(0.5,),
                               window=1)
        assert bands[0, 0] == pytest.approx(0.5)

    def test_empty_replications_rejected(self):
        with pytest.raises(ValueError):
            quantile_bands([], np.array([1.0]))

    def test_replication_without_records_rejected(self):
        with pytest.raises(ValueError):
            quantile_bands([[]], np.array([1.0]))

    def test_band_spread(self):
        from repro.analytics import band_spread
        bands = np.array([[0.1, 0.5, 0.9], [0.4, 0.5, 0.6]])
        np.testing.assert_allclose(band_spread(bands), [0.8, 0.2])
