"""End-to-end crash/resume tests for the durable search journal.

The crash here is simulated the way the crash-point fuzzer's SIGKILL
leaves the disk: the journal is truncated to its first ``k`` records and
every checkpoint generation captured after them is deleted.  Resume must
then reproduce the uninterrupted run bit-for-bit (determinism
fingerprint) without re-executing any journaled evaluation.  The
``crashfuzz``-marked test at the bottom runs the real thing — a
subprocess search SIGKILLed mid-journal via
:func:`repro.search.chaos.crashpoint_matrix`.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.events import BATCH_STATS, EVAL_DONE
from repro.search.chaos import (check_crashpoint_rows, crashpoint_child,
                                crashpoint_matrix, _journal_real_evals)
from repro.search.journal import GENERATIONS_DIR, JOURNAL_NAME, read_journal


def run_durable(journal_dir, method="a3c", backend="serial"):
    """One durable search (first launch and relaunch alike) with the
    fuzzer's config; returns ``(result, search, counter)``."""
    return crashpoint_child(journal_dir, method=method, backend=backend,
                            count=True)


def journal_lines(journal_dir) -> int:
    return len((Path(journal_dir) / JOURNAL_NAME).read_text().splitlines())


def crash_at(journal_dir, k: int) -> None:
    """Leave the directory as a SIGKILL at journal record ``k`` would:
    only the first ``k`` records survive, and with them only the
    checkpoint generations captured at or before record ``k``."""
    path = Path(journal_dir) / JOURNAL_NAME
    lines = path.read_text().splitlines(keepends=True)
    path.write_text("".join(lines[:k]))
    gen_dir = Path(journal_dir) / GENERATIONS_DIR
    if gen_dir.is_dir():
        for gen in list(gen_dir.iterdir()):
            data = json.loads(gen.read_text())
            if data["integrity"]["journal_seq"] > k:
                gen.unlink()


def surviving_checkpoint_seq(journal_dir) -> int:
    gen_dir = Path(journal_dir) / GENERATIONS_DIR
    if not gen_dir.is_dir():
        return 0
    seqs = [json.loads(p.read_text())["integrity"]["journal_seq"]
            for p in gen_dir.iterdir()]
    return max(seqs, default=0)


@pytest.fixture(scope="module")
def baselines(tmp_path_factory):
    """Uninterrupted durable runs, one per method, shared by the crash
    scenarios below (each scenario copies the directory and corrupts
    the copy)."""
    out = {}
    for method in ("a3c", "a2c", "rdm"):
        directory = tmp_path_factory.mktemp(f"base-{method}")
        result, search, counter = run_durable(directory, method=method)
        out[method] = {
            "dir": directory,
            "fingerprint": result.fingerprint(),
            "real": _journal_real_evals(directory),
            "lines": journal_lines(directory),
            "evals": result.num_evaluations,
            "counters": broker_counters(search),
        }
    return out


def broker_counters(search):
    return {aid: (ev.num_submitted, ev.num_cache_hits, ev.num_failed,
                  ev.cache.hits if ev.cache is not None else 0,
                  ev.cache.misses if ev.cache is not None else 0)
            for aid, ev in enumerate(search.evaluators)}


class TestTruncateCrashResume:
    @pytest.mark.parametrize("method", ("a3c", "a2c", "rdm"))
    def test_mid_journal_crash_resumes_bit_identical(self, method,
                                                     baselines, tmp_path):
        base = baselines[method]
        work = tmp_path / "run"
        shutil.copytree(base["dir"], work)
        k = base["lines"] // 2
        crash_at(work, k)
        result, search, counter = run_durable(work, method=method)
        assert result.fingerprint() == base["fingerprint"]
        # zero re-evaluation: real executions across crash + resume
        # equal the uninterrupted run's, and the reward model was only
        # invoked for the journal deficit
        assert _journal_real_evals(work) == base["real"]
        assert counter.calls == base["real"] - real_evals_before(work, k)
        assert all(ev.replay_pending() == 0 for ev in search.evaluators)

    def test_crash_before_first_checkpoint_replays_from_start(
            self, baselines, tmp_path):
        base = baselines["a3c"]
        work = tmp_path / "run"
        shutil.copytree(base["dir"], work)
        # crash one record before the first checkpoint generation: no
        # checkpoint survives, so resume replays the journal from the
        # very start
        gen_dir = base["dir"] / GENERATIONS_DIR
        first_seq = min(json.loads(p.read_text())["integrity"]["journal_seq"]
                        for p in gen_dir.iterdir())
        k = first_seq - 1
        crash_at(work, k)
        assert surviving_checkpoint_seq(work) == 0
        result, search, _counter = run_durable(work)
        assert search.num_replay_loaded == real_evals_before(work, k) > 0
        assert result.fingerprint() == base["fingerprint"]
        assert _journal_real_evals(work) == base["real"]

    def test_two_successive_crashes(self, baselines, tmp_path):
        """Crash, resume, crash the resumed run, resume again: the
        ``replayed=True`` re-emissions must not double-feed the second
        resume, and the total real-execution count stays pinned."""
        base = baselines["a3c"]
        work = tmp_path / "run"
        shutil.copytree(base["dir"], work)
        crash_at(work, base["lines"] // 3)
        result, _search, _counter = run_durable(work)
        assert result.fingerprint() == base["fingerprint"]
        crash_at(work, int(journal_lines(work) * 0.8))
        result, search, _counter = run_durable(work)
        assert result.fingerprint() == base["fingerprint"]
        assert _journal_real_evals(work) == base["real"]
        assert all(ev.replay_pending() == 0 for ev in search.evaluators)

    def test_corrupt_newest_generation_falls_back(self, baselines,
                                                  tmp_path, caplog):
        """Bit rot in the newest checkpoint generation costs one
        generation, not the run: resume falls back to N-1 (with a
        logged warning) and still converges to the same fingerprint."""
        base = baselines["a3c"]
        work = tmp_path / "run"
        shutil.copytree(base["dir"], work)
        # crash just after the second checkpoint so exactly two
        # generations survive
        seqs = sorted(json.loads(p.read_text())["integrity"]["journal_seq"]
                      for p in (base["dir"] / GENERATIONS_DIR).iterdir())
        assert len(seqs) >= 2, "scenario needs two checkpoint generations"
        crash_at(work, seqs[1])
        gens = sorted((work / GENERATIONS_DIR).iterdir())
        assert len(gens) == 2
        data = json.loads(gens[-1].read_text())
        data["time"] = -1.0
        gens[-1].write_text(json.dumps(data))
        with caplog.at_level("WARNING", logger="repro.search.journal"):
            result, _search, _counter = run_durable(work)
        assert any("falling back" in rec.message for rec in caplog.records)
        assert result.fingerprint() == base["fingerprint"]
        assert _journal_real_evals(work) == base["real"]


def real_evals_before(journal_dir, k: int) -> int:
    """Real executions among the first ``k`` surviving records."""
    events = read_journal(Path(journal_dir) / JOURNAL_NAME)
    return sum(1 for e in list(events)[:k]
               if e.kind == EVAL_DONE and "arch" in e.payload
               and not e.payload.get("replayed"))


class TestCounterRestoration:
    """Satellite: broker counters and batch tallies after resume match
    the uninterrupted run exactly, on every backend."""

    @pytest.mark.parametrize("backend", ("serial", "thread"))
    def test_counters_match_uninterrupted(self, backend, baselines,
                                          tmp_path):
        base = (baselines["a3c"] if backend == "serial"
                else self._baseline(tmp_path / "base", backend))
        work = tmp_path / "run"
        shutil.copytree(base["dir"], work)
        crash_at(work, base["lines"] // 2)
        result, search, _counter = run_durable(work, backend=backend)
        assert result.fingerprint() == base["fingerprint"]
        assert result.num_evaluations == base["evals"]
        assert broker_counters(search) == base["counters"]

    @pytest.mark.proc
    def test_counters_match_uninterrupted_process(self, tmp_path):
        base = self._baseline(tmp_path / "base", "process")
        work = tmp_path / "run"
        shutil.copytree(base["dir"], work)
        crash_at(work, base["lines"] // 2)
        result, search, _counter = run_durable(work, backend="process")
        assert result.fingerprint() == base["fingerprint"]
        assert result.num_evaluations == base["evals"]
        assert broker_counters(search) == base["counters"]

    def _baseline(self, directory, backend):
        result, search, _counter = run_durable(directory, backend=backend)
        return {"dir": directory, "fingerprint": result.fingerprint(),
                "lines": journal_lines(directory),
                "evals": result.num_evaluations,
                "counters": broker_counters(search)}

    def test_batch_stats_suffix_matches(self, baselines, tmp_path):
        """The resumed run's re-emitted per-batch tallies are exactly a
        suffix of the uninterrupted run's tally stream (the resumed
        window starts at the checkpointed agent boundaries, which may
        sit a few records before the generation's own journal stamp).
        Plan-cache hit/miss splits are excluded by design: the resumed
        process starts with a cold plan cache."""
        base = baselines["a3c"]
        work = tmp_path / "run"
        shutil.copytree(base["dir"], work)
        k = base["lines"] // 2
        crash_at(work, k)
        run_durable(work)

        def tallies(directory, start):
            events = list(read_journal(Path(directory) / JOURNAL_NAME))
            return [(e.agent_id, e.payload["batch"], e.payload["distinct"])
                    for e in events[start:] if e.kind == BATCH_STATS]

        resumed = tallies(work, k)
        full = tallies(base["dir"], 0)
        assert resumed, "resumed run re-emitted no batch tallies"
        assert resumed == full[-len(resumed):]


class TestBalsamCheckpointOnly:
    def test_balsam_resumes_from_checkpoint_without_replay(self, tmp_path):
        """Virtual-time searches journal and checkpoint like everyone
        else but skip evaluation replay: the checkpoint alone resumes
        them deterministically."""
        base_dir = tmp_path / "base"
        result, _search, _counter = run_durable(base_dir, backend="balsam")
        base_fp = result.fingerprint()
        work = tmp_path / "run"
        shutil.copytree(base_dir, work)
        crash_at(work, journal_lines(base_dir) // 2)
        result, search, _counter = run_durable(work, backend="balsam")
        assert search.num_replay_loaded == 0
        assert result.fingerprint() == base_fp


@pytest.mark.crashfuzz
def test_crashpoint_fuzzer_smoke():
    """The real thing, bounded: SIGKILL a journaled subprocess search at
    one stratified journal record, resume, and hold both durability
    promises (bit-identical fingerprint, zero re-evaluation)."""
    rows = crashpoint_matrix(points=1, methods=("a3c",),
                             backends=("serial",))
    assert rows and rows[0]["kills_landed"] >= 1
    assert check_crashpoint_rows(rows) == []
