"""Uniform evaluator lifecycle semantics across every backend.

The broker contract promises that serial / thread / Balsam / process
evaluators are drop-in interchangeable behind

    with make_evaluator() as ev:
        ev.add_eval_batch(archs); ev.wait_all()

so the lifecycle edges — ``shutdown()`` called twice, ``wait_all`` with
a timeout while stragglers are still running, context-manager cleanup —
must behave the same everywhere.  The process backend's variants are
``proc``-marked (they spawn real worker pools).
"""

import time

import numpy as np
import pytest

from repro.evaluator import (BalsamEvaluator, BalsamService, ProcConfig,
                             ProcessEvaluator, SerialEvaluator,
                             ThreadEvaluator)
from repro.hpc import TrainingCostModel
from repro.hpc.cluster import Cluster
from repro.hpc.sim import Simulator
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search.chaos import ChaosEvalModel

_SPACE = combo_small()


def make_surrogate(eval_seconds: float = 0.0):
    inner = SurrogateReward(_SPACE, COMBO_PAPER_SHAPES, combo_head(),
                            TrainingCostModel.combo_paper(), epochs=1,
                            train_fraction=0.1, timeout=600.0, seed=7)
    if eval_seconds > 0:
        return ChaosEvalModel(inner, eval_seconds=eval_seconds)
    return inner


def make_archs(n=3):
    rng = np.random.default_rng(11)
    dims = np.array(_SPACE.action_dims)
    return [_SPACE.decode(rng.integers(0, dims)) for _ in range(n)]


def make_serial(**kw):
    return SerialEvaluator(make_surrogate(), 0)


def make_thread(eval_seconds=0.0):
    return ThreadEvaluator(make_surrogate(eval_seconds), 0, max_workers=2)


def make_balsam(**kw):
    sim = Simulator()
    service = BalsamService(sim, Cluster(sim, 4))
    return BalsamEvaluator(service, make_surrogate(), 0)


def make_process(eval_seconds=0.0):
    return ProcessEvaluator(make_surrogate(eval_seconds), 0,
                            config=ProcConfig(workers=2))


INLINE_FACTORIES = [make_serial, make_thread, make_balsam]


@pytest.mark.parametrize("factory", INLINE_FACTORIES,
                         ids=["serial", "thread", "balsam"])
class TestLifecycleInline:
    def test_shutdown_is_idempotent(self, factory):
        ev = factory()
        ev.shutdown()
        ev.shutdown()       # second call must be a no-op, not an error

    def test_context_manager_shuts_down(self, factory):
        with factory() as ev:
            assert ev is not None
        ev.shutdown()       # __exit__ already shut down; still safe

    def test_wait_all_after_empty_submit(self, factory):
        ev = factory()
        ev.wait_all()
        ev.wait_all(timeout=0.01)
        assert ev.get_finished_evals() == []
        ev.shutdown()


class TestStragglersThread:
    def test_wait_all_timeout_returns_with_stragglers(self):
        """A timed-out wait returns control with work still in flight;
        a later unbounded wait completes it — nothing is lost."""
        ev = make_thread(eval_seconds=1.0)
        archs = make_archs(2)
        with ev:
            start = time.monotonic()
            ev.add_eval_batch(archs)
            ev.wait_all(timeout=0.05)
            assert time.monotonic() - start < 0.9, "timeout did not bound"
            done_early = len(ev.get_finished_evals())
            ev.wait_all()
            done_late = len(ev.get_finished_evals())
        assert done_early + done_late == len(archs)


@pytest.mark.proc
class TestLifecycleProcess:
    def test_shutdown_is_idempotent(self):
        ev = make_process()
        assert ev.pool_size == 2
        ev.shutdown()
        assert ev.pool_size == 0
        ev.shutdown()       # second call must be a no-op

    def test_context_manager_reaps_workers(self):
        with make_process() as ev:
            ev.add_eval_batch(make_archs(2))
            ev.wait_all(timeout=120)
            assert len(ev.get_finished_evals()) == 2
            procs = [w.proc for w in ev._workers.values()]
            assert all(p.is_alive() for p in procs)
        assert ev.pool_size == 0
        assert all(not p.is_alive() for p in procs)

    def test_wait_all_timeout_returns_with_stragglers(self):
        ev = make_process(eval_seconds=1.5)
        archs = make_archs(2)
        with ev:
            start = time.monotonic()
            ev.add_eval_batch(archs)
            ev.wait_all(timeout=0.2)
            assert time.monotonic() - start < 1.4, "timeout did not bound"
            done_early = len(ev.get_finished_evals())
            ev.wait_all()
            done_late = len(ev.get_finished_evals())
        assert done_early + done_late == len(archs)

    def test_wait_all_after_empty_submit(self):
        with make_process() as ev:
            ev.wait_all()
            ev.wait_all(timeout=0.01)
            assert ev.get_finished_evals() == []
