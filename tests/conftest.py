"""Shared fixtures: seeded RNG and cached small problems.

The test suite pins the substrate to float64: the gradient checks use
central finite differences with eps ~1e-6, which only resolve in double
precision, and the seed's tolerance-based numerics tests were written
against float64.  The env var is set *before* any ``repro`` import so
subprocess-style tests (CLI/examples) inherit it; the autouse fixture
additionally restores the in-process default around every test so the
float32-specific tests in ``test_nn_engine.py`` cannot leak state.
"""

import os

os.environ["REPRO_NN_DTYPE"] = "float64"

import numpy as np
import pytest

from repro.nn.config import get_default_dtype, set_default_dtype
from repro.problems import combo_problem, nt3_problem, uno_problem


@pytest.fixture(autouse=True)
def _float64_substrate():
    previous = set_default_dtype(np.float64)
    assert get_default_dtype() == np.float64
    yield
    set_default_dtype(previous)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_combo():
    return combo_problem(n_train=160, n_val=64, cell_dim=20, drug_dim=24,
                         scale=0.02)


@pytest.fixture(scope="session")
def small_uno():
    return uno_problem(n_train=256, n_val=96, rna_dim=20, desc_dim=24,
                       fp_dim=12, scale=0.04)


@pytest.fixture(scope="session")
def small_nt3():
    return nt3_problem(n_train=120, n_val=48, length=100, scale=0.05,
                       baseline_filters=4)
