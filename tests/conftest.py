"""Shared fixtures: seeded RNG and cached small problems."""

import numpy as np
import pytest

from repro.problems import combo_problem, nt3_problem, uno_problem


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_combo():
    return combo_problem(n_train=160, n_val=64, cell_dim=20, drug_dim=24,
                         scale=0.02)


@pytest.fixture(scope="session")
def small_uno():
    return uno_problem(n_train=256, n_val=96, rna_dim=20, desc_dim=24,
                       fp_dim=12, scale=0.04)


@pytest.fixture(scope="session")
def small_nt3():
    return nt3_problem(n_train=120, n_val=48, length=100, scale=0.05,
                       baseline_filters=4)
