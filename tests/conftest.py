"""Shared fixtures: seeded RNG and cached small problems.

The test suite pins the substrate to float64: the gradient checks use
central finite differences with eps ~1e-6, which only resolve in double
precision, and the seed's tolerance-based numerics tests were written
against float64.  The env var is set *before* any ``repro`` import so
subprocess-style tests (CLI/examples) inherit it; the autouse fixture
additionally restores the in-process default around every test so the
float32-specific tests in ``test_nn_engine.py`` cannot leak state.
"""

import os
import signal

os.environ["REPRO_NN_DTYPE"] = "float64"

import numpy as np
import pytest

from repro.nn.config import get_default_dtype, set_default_dtype
from repro.problems import combo_problem, nt3_problem, uno_problem


#: markers that define the test tiers (see docs/testing.md); anything
#: not explicitly tiered is "fast" — the default inner-loop suite
_TIER_MARKERS = ("slow", "chaos", "verify", "health", "perf", "proc",
                 "bench", "crashfuzz")

#: hard per-test wall-clock cap (seconds) for proc-, bench- and
#: crashfuzz-marked tests: a hung or deadlocked worker pool (or a sweep
#: subprocess that never reaches its kill point) must never wedge tier-1
_PROC_WATCHDOG_SECONDS = 240

#: markers whose tests get the SIGALRM watchdog — all spawn or poll
#: subprocesses whose hangs pytest alone cannot interrupt
_WATCHDOG_MARKERS = ("proc", "bench", "crashfuzz")


def pytest_collection_modifyitems(config, items):
    """Auto-mark untier-ed tests as ``fast`` so ``-m fast`` selects the
    quick inner-loop subset without annotating hundreds of tests."""
    for item in items:
        if not any(item.get_closest_marker(m) for m in _TIER_MARKERS):
            item.add_marker(pytest.mark.fast)


@pytest.fixture(autouse=True)
def _proc_watchdog(request):
    """SIGALRM watchdog around every proc-marked test (POSIX only).

    Supervision already bounds each *worker's* misbehaviour, but a bug
    in the supervisor itself (a wait_all that never returns, a deadlock
    on the result queue) would otherwise hang the whole test run.  The
    same cap guards bench-marked tests, whose kill/resume scenarios
    poll sweep subprocesses.
    """
    if (all(request.node.get_closest_marker(m) is None
            for m in _WATCHDOG_MARKERS)
            or not hasattr(signal, "SIGALRM")):
        yield
        return

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"proc test exceeded the {_PROC_WATCHDOG_SECONDS}s watchdog")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(_PROC_WATCHDOG_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def _float64_substrate():
    previous = set_default_dtype(np.float64)
    assert get_default_dtype() == np.float64
    yield
    set_default_dtype(previous)


@pytest.fixture
def gradcheck():
    """Finite-difference gradient checker: ``gradcheck(layer, shapes)``
    (or ``gradcheck.check_loss`` / ``gradcheck.check_policy``), raising
    on mismatch.  See :mod:`repro.verify.gradcheck`."""
    from repro.verify import gradcheck as gc

    class _Checker:
        check_loss = staticmethod(
            lambda *a, **kw: gc.check_loss(*a, **kw).assert_ok())
        check_policy = staticmethod(
            lambda *a, **kw: gc.check_policy(*a, **kw).assert_ok())
        check_ppo = staticmethod(
            lambda *a, **kw: gc.check_ppo_objective(*a, **kw).assert_ok())

        def __call__(self, layer, input_shapes, **kw):
            return gc.check_layer(layer, input_shapes, **kw).assert_ok()

    return _Checker()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_combo():
    return combo_problem(n_train=160, n_val=64, cell_dim=20, drug_dim=24,
                         scale=0.02)


@pytest.fixture(scope="session")
def small_uno():
    return uno_problem(n_train=256, n_val=96, rna_dim=20, desc_dim=24,
                       fp_dim=12, scale=0.04)


@pytest.fixture(scope="session")
def small_nt3():
    return nt3_problem(n_train=120, n_val=48, length=100, scale=0.05,
                       baseline_filters=4)
