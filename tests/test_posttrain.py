"""Unit tests for the post-training harness."""

import numpy as np
import pytest

from repro.hpc.costmodel import TrainingCostModel
from repro.posttrain import post_train


class TestPostTrain:
    def test_entries_and_baseline(self, small_combo):
        rng = np.random.default_rng(0)
        archs = [small_combo.space.random_architecture(rng) for _ in range(3)]
        rep = post_train(small_combo, archs, epochs=4)
        assert len(rep.entries) == 3
        assert rep.baseline_params == small_combo.baseline_params()
        assert rep.baseline_time > 0
        for e in rep.entries:
            assert e.params == small_combo.count_params(e.arch.choices)
            assert e.params_ratio == pytest.approx(
                rep.baseline_params / e.params)
            assert e.accuracy_ratio == pytest.approx(
                e.metric / rep.baseline_metric)
            assert e.time_ratio > 0

    def test_time_model_makes_time_deterministic(self, small_combo):
        rng = np.random.default_rng(0)
        archs = [small_combo.space.random_architecture(rng)]
        cm = TrainingCostModel(samples_per_epoch=1000, startup=1.0)
        r1 = post_train(small_combo, archs, epochs=2, time_model=cm)
        r2 = post_train(small_combo, archs, epochs=2, time_model=cm)
        assert r1.entries[0].train_time == r2.entries[0].train_time
        assert r1.baseline_time == cm.duration(r1.baseline_params, epochs=2)

    def test_time_ratio_tracks_params_under_model(self, small_combo):
        """With the cost model, smaller networks are proportionally
        faster — the paper's P/T coupling."""
        rng = np.random.default_rng(1)
        archs = [small_combo.space.random_architecture(rng)
                 for _ in range(4)]
        cm = TrainingCostModel(samples_per_epoch=1000, startup=0.0)
        rep = post_train(small_combo, archs, epochs=2, time_model=cm)
        for e in rep.entries:
            assert e.time_ratio == pytest.approx(e.params_ratio)

    def test_counters(self, small_combo):
        rng = np.random.default_rng(2)
        archs = [small_combo.space.random_architecture(rng)
                 for _ in range(4)]
        rep = post_train(small_combo, archs, epochs=3)
        assert 0 <= rep.num_outperforming <= 4
        assert rep.num_competitive(0.0) == sum(
            1 for e in rep.entries if e.accuracy_ratio > 0.0)
        assert 0 <= rep.num_smaller <= 4
        assert 0 <= rep.num_faster <= 4

    def test_best_and_summary_rows(self, small_combo):
        rng = np.random.default_rng(3)
        archs = [small_combo.space.random_architecture(rng)
                 for _ in range(2)]
        rep = post_train(small_combo, archs, epochs=3)
        best = rep.best()
        assert best.metric == max(e.metric for e in rep.entries)
        rows = rep.summary_rows()
        assert rows[0]["network"] == "manually designed"
        assert rows[1]["params"] == best.params

    def test_empty_archs_best_raises(self, small_combo):
        rep = post_train(small_combo, [], epochs=1)
        with pytest.raises(ValueError):
            rep.best()

    def test_deterministic_metrics(self, small_combo):
        rng = np.random.default_rng(4)
        archs = [small_combo.space.random_architecture(rng)]
        m1 = post_train(small_combo, archs, epochs=2).entries[0].metric
        m2 = post_train(small_combo, archs, epochs=2).entries[0].metric
        assert m1 == m2
