"""Backend-parity: the same seeded job stream through the serial,
thread, and simulated-Balsam backends yields identical rewards,
identical broker accounting, and an identical search fingerprint.

This is the contract the broker refactor exists to enforce: all three
backends share one front-end (cache, counters, failure conversion), so
only *when* an evaluation completes may differ — never *what* it is
worth.  Rewards are aligned by architecture within each batch (the
thread pool completes out of order) and chained into a digest exactly
the way the search loop fingerprints trajectories; end-to-end wall
clock vs. virtual time cancels out because the digest hashes actions
and rewards, never timestamps.
"""

import numpy as np
import pytest

from repro.evaluator import (BalsamEvaluator, BalsamService, ProcConfig,
                             ProcessEvaluator, SerialEvaluator,
                             ThreadEvaluator)
from repro.hpc import TrainingCostModel
from repro.hpc.cluster import Cluster
from repro.hpc.sim import Simulator
from repro.nas.spaces import combo_small
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.search import SearchConfig
from repro.search.ambs import AmbsProposer
from repro.search.evolution import EvolutionProposer
from repro.verify.fingerprint import agent_genesis, chain_step

AGENT_ID = 2
NUM_BATCHES = 6
BATCH = 4


@pytest.fixture(scope="module")
def space():
    return combo_small()


@pytest.fixture(scope="module")
def batches(space):
    """A seeded stream of action batches; the last repeats the first so
    every backend must exercise its cache path identically."""
    rng = np.random.default_rng(123)
    dims = np.array(space.action_dims)
    out = [rng.integers(0, dims, size=(BATCH, len(dims)))
           for _ in range(NUM_BATCHES - 1)]
    out.append(out[0].copy())
    return out


def make_surrogate(space):
    return SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                           TrainingCostModel.combo_paper(), epochs=1,
                           train_fraction=0.1, timeout=600.0, seed=7)


def aligned_rewards(archs, recs):
    """Rewards in batch row order, the way the agent loop aligns them."""
    by_key = {}
    for rec in recs:
        by_key.setdefault(rec.arch.key, []).append(rec)
    return np.array([by_key[a.key].pop(0).reward for a in archs])


def stream_digest(space, batches, reward_batches):
    digest = agent_genesis(0, AGENT_ID)
    for actions, rewards in zip(batches, reward_batches):
        digest = chain_step(digest, actions, rewards, None)
    return digest


def drive_inline(evaluator, space, batches):
    """Serial/thread backends: submit, barrier, drain — per batch."""
    reward_batches = []
    with evaluator as ev:
        for actions in batches:
            archs = [space.decode(row) for row in actions]
            ev.add_eval_batch(archs)
            ev.wait_all()
            reward_batches.append(aligned_rewards(archs,
                                                  ev.get_finished_evals()))
    return reward_batches


def drive_balsam(space, batches):
    """Balsam backend: the same stream as a simulator coroutine."""
    sim = Simulator()
    cluster = Cluster(sim, BATCH)
    service = BalsamService(sim, cluster)
    ev = BalsamEvaluator(service, make_surrogate(space), AGENT_ID)
    reward_batches = []

    def agent():
        for actions in batches:
            archs = [space.decode(row) for row in actions]
            done = ev.add_eval_batch(archs)
            yield done
            reward_batches.append(aligned_rewards(archs,
                                                  ev.get_finished_evals()))

    sim.process(agent(), name="agent")
    sim.run()
    return ev, reward_batches


@pytest.fixture(scope="module")
def runs(space, batches):
    serial = SerialEvaluator(make_surrogate(space), AGENT_ID)
    serial_rewards = drive_inline(serial, space, batches)
    thread = ThreadEvaluator(make_surrogate(space), AGENT_ID, max_workers=3)
    thread_rewards = drive_inline(thread, space, batches)
    balsam, balsam_rewards = drive_balsam(space, batches)
    return {"serial": (serial, serial_rewards),
            "thread": (thread, thread_rewards),
            "balsam": (balsam, balsam_rewards)}


@pytest.fixture(scope="module")
def proc_run(space, batches):
    """The same stream through the supervised process pool.

    Separate from ``runs`` so the fast tier never spawns processes;
    only the proc-marked tests below pull this fixture in.
    """
    ev = ProcessEvaluator(make_surrogate(space), AGENT_ID,
                          config=ProcConfig(workers=3))
    return ev, drive_inline(ev, space, batches)


@pytest.mark.proc
class TestProcessBackendParity:
    """Deterministic mode: bit-identical rewards, fingerprints, and
    accounting across the process boundary — retries and worker
    scheduling may reorder completions, never change values."""

    def test_identical_rewards_per_batch(self, runs, proc_run):
        _, serial_rewards = runs["serial"]
        _, rewards = proc_run
        for i, (a, b) in enumerate(zip(serial_rewards, rewards)):
            assert np.array_equal(a, b), f"process batch {i} diverged"

    def test_identical_fingerprints(self, space, batches, runs, proc_run):
        _, serial_rewards = runs["serial"]
        _, rewards = proc_run
        assert stream_digest(space, batches, serial_rewards) == \
            stream_digest(space, batches, rewards)

    def test_identical_broker_accounting(self, runs, proc_run):
        serial, _ = runs["serial"]
        ev, _ = proc_run
        assert (serial.num_submitted, serial.num_cache_hits,
                serial.num_failed) == (ev.num_submitted, ev.num_cache_hits,
                                       ev.num_failed)
        assert (serial.cache.hits, serial.cache.misses,
                len(serial.cache)) == (ev.cache.hits, ev.cache.misses,
                                       len(ev.cache))
        assert ev.last_batch_all_cached is True

    def test_no_supervision_interventions(self, proc_run):
        """A fault-free run must not trip any supervision machinery."""
        ev, _ = proc_run
        stats = ev.stats()
        assert stats["worker_crashes"] == 0
        assert stats["worker_timeouts"] == 0
        assert stats["respawns"] == 0
        assert stats["quarantined"] == 0
        assert stats["inline_evals"] == 0


class _StubLoop:
    """The slice of the agent loop a proposer reads during propose /
    observe: a seeded rng and the batch size."""

    def __init__(self, rng, batch, agent_id=AGENT_ID):
        self.rng = rng
        self.batch = batch
        self.agent_id = agent_id


@pytest.fixture(scope="module")
def proposer_batches(space):
    """A batch stream shaped by the real AMBS and evolution proposers
    instead of uniform draws: constant-liar picks can repeat rows
    *inside* one batch and mutations cluster around incumbents, so the
    cache path is exercised very differently from the random stream."""
    proposers = (
        AmbsProposer.build(
            SearchConfig(method="ambs", ambs_warmup=2, ambs_candidates=16,
                         ambs_ensemble=4), space, None),
        EvolutionProposer.build(
            SearchConfig(method="evolution", population_size=6,
                         tournament_size=2), space, None),
    )
    out = []
    with SerialEvaluator(make_surrogate(space), AGENT_ID) as ev:
        for proposer in proposers:
            loop = _StubLoop(np.random.default_rng(9), BATCH)
            for _ in range(3):
                actions = proposer.propose(loop)
                archs = [space.decode(row) for row in actions]
                ev.add_eval_batch(archs)
                ev.wait_all()
                rewards = aligned_rewards(archs, ev.get_finished_evals())
                list(proposer.observe(loop, actions, rewards))
                out.append(actions)
    return out


class TestProposerBatchParity:
    """The backend-parity contract holds for proposer-shaped streams,
    not just uniform random ones."""

    def test_identical_rewards_and_fingerprints(self, space,
                                                proposer_batches):
        serial = drive_inline(
            SerialEvaluator(make_surrogate(space), AGENT_ID),
            space, proposer_batches)
        thread = drive_inline(
            ThreadEvaluator(make_surrogate(space), AGENT_ID,
                            max_workers=3),
            space, proposer_batches)
        _, balsam = drive_balsam(space, proposer_batches)
        for name, rewards in (("thread", thread), ("balsam", balsam)):
            for i, (a, b) in enumerate(zip(serial, rewards)):
                assert np.array_equal(a, b), f"{name} batch {i} diverged"
        assert stream_digest(space, proposer_batches, serial) == \
            stream_digest(space, proposer_batches, thread) == \
            stream_digest(space, proposer_batches, balsam)

    def test_batches_stay_inside_the_space(self, space, proposer_batches):
        dims = np.array(space.action_dims)
        assert len(proposer_batches) == 6
        for b in proposer_batches:
            assert b.shape == (BATCH, len(dims))
            assert np.all((0 <= b) & (b < dims))


class TestBackendParity:
    def test_identical_rewards_per_batch(self, runs):
        _, serial_rewards = runs["serial"]
        for name in ("thread", "balsam"):
            _, rewards = runs[name]
            for i, (a, b) in enumerate(zip(serial_rewards, rewards)):
                assert np.array_equal(a, b), f"{name} batch {i} diverged"

    def test_identical_fingerprints(self, space, batches, runs):
        digests = {name: stream_digest(space, batches, rewards)
                   for name, (_, rewards) in runs.items()}
        assert digests["serial"] == digests["thread"] == digests["balsam"]

    def test_identical_broker_accounting(self, runs):
        counters = {name: (ev.num_submitted, ev.num_cache_hits,
                           ev.num_failed)
                    for name, (ev, _) in runs.items()}
        assert counters["serial"] == counters["thread"] == counters["balsam"]
        # the repeated batch must have been answered from the cache
        assert counters["serial"][1] >= BATCH

    def test_identical_cache_tallies(self, runs):
        tallies = {name: (ev.cache.hits, ev.cache.misses, len(ev.cache))
                   for name, (ev, _) in runs.items()}
        assert tallies["serial"] == tallies["thread"] == tallies["balsam"]

    def test_all_cached_flag_parity(self, runs):
        flags = {name: ev.last_batch_all_cached
                 for name, (ev, _) in runs.items()}
        assert flags["serial"] == flags["thread"] == flags["balsam"] is True
