"""Tests for the in-library experiment harness (repro.experiments)."""

import numpy as np
import pytest

from repro import experiments as ex


class TestConfiguration:
    def test_quick_scale_defaults(self):
        # the test environment runs at quick scale
        assert ex.WALL_MINUTES > 0
        assert ex.TOP_K > 0
        assert ex.POST_EPOCHS > 0

    def test_allocation_preserves_structure(self):
        for nodes, mode in ((256, "agents"), (512, "workers"),
                            (1024, "agents")):
            alloc = ex.allocation(nodes, mode)
            assert alloc.num_agents >= 2
            assert alloc.workers_per_agent >= 2
            assert alloc.used_nodes <= alloc.total_nodes

    def test_agent_scaling_has_more_agents_than_worker_scaling(self):
        a = ex.allocation(1024, "agents")
        w = ex.allocation(1024, "workers")
        assert a.num_agents > w.num_agents
        assert w.workers_per_agent > a.workers_per_agent


class TestSurrogates:
    @pytest.mark.parametrize("problem", ["combo", "uno", "nt3"])
    def test_surrogate_constructs_per_problem(self, problem):
        rm = ex.surrogate_for(problem)
        arch = ex.space_for(problem).random_architecture(
            np.random.default_rng(0))
        res = rm.evaluate(arch, agent_seed=0)
        assert -1.0 <= res.reward <= 1.0
        assert res.duration > 0

    def test_combo_uses_ten_percent_data(self):
        assert ex.surrogate_for("combo").train_fraction == 0.1

    def test_uno_nt3_use_full_data(self):
        # §5: "For Uno and NT3, since the data sizes are smaller, the
        # full training data are used."
        assert ex.surrogate_for("uno").train_fraction == 1.0
        assert ex.surrogate_for("nt3").train_fraction == 1.0


class TestWorkingProblems:
    @pytest.mark.parametrize("problem", ["combo", "uno", "nt3"])
    def test_working_problem_constructs(self, problem):
        prob = ex.working_problem(problem)
        assert prob.name == problem
        assert prob.dataset.n_train > 0

    def test_paper_scale_counts(self):
        assert ex.working_problem("combo").baseline_params(
            paper_scale=True) == 13_772_001
        assert ex.working_problem("uno").baseline_params(
            paper_scale=True) == 19_274_001


class TestPostTrainTop:
    def test_ratios_at_paper_dimensions(self):
        result = ex.run_cached("combo", "rdm", seed=99)
        report = ex.post_train_top("combo", result, k=3)
        assert report.baseline_params == 13_772_001
        for e in report.entries:
            # params are paper-dimension counts, far above working scale
            assert e.params > 10_000
            assert e.params_ratio == pytest.approx(
                13_772_001 / e.params)
            assert e.time_ratio > 0
