"""Table 1: summary of the best A3C-generated architectures vs the
manually designed networks, per benchmark.

Columns mirror the paper: trainable parameters, training time, R²/ACC.
Parameter counts for the manually designed networks reproduce the paper
exactly for Combo (13,772,001) and Uno (19,274,001); metrics are
measured at working scale on the synthetic datasets, and training time
uses the single-node cost model on the exact parameter counts.

Shape claims reproduced: on every benchmark the best NAS architecture is
several-fold smaller and faster than the manual network at comparable or
better accuracy; the reduction factor is largest on NT3.
"""

import pytest

from harness import post_train_top, run_cached, working_problem
from repro.hpc import TrainingCostModel

PAPER_TABLE1 = {
    "combo": {"baseline_params": 13_772_001, "best_params": 1_883_301,
              "param_factor": 7.3},
    "uno": {"baseline_params": 19_274_001, "best_params": 1_670_401,
            "param_factor": 11.5},
    "nt3": {"baseline_params": 96_777_878, "best_params": 120_968,
            "param_factor": 800.0},
}
COST = {"combo": TrainingCostModel.combo_paper,
        "uno": TrainingCostModel.uno_paper,
        "nt3": TrainingCostModel.nt3_paper}


def bench_table1(benchmark):
    def build_table():
        rows = []
        for problem in ("combo", "uno", "nt3"):
            result = run_cached(problem, "a3c")
            report = post_train_top(problem, result)
            best = max(report.entries, key=lambda e: e.metric)
            prob = working_problem(problem)
            baseline_paper_params = prob.baseline_params(paper_scale=True)
            cm = COST[problem]()
            # paper-dimension parameter count of the best architecture
            # (the search evaluated architectures at paper input dims)
            best_paper_params = next(
                r.params for r in result.top_k(200)
                if r.arch.key == best.arch.key)
            rows.append({
                "problem": problem,
                "baseline_params": baseline_paper_params,
                "baseline_time": cm.duration(baseline_paper_params,
                                             epochs=20),
                "baseline_metric": report.baseline_metric,
                "best_params": best_paper_params,
                "best_time": cm.duration(best_paper_params, epochs=20),
                "best_metric": best.metric,
            })
        return rows

    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print("\n=== Table 1: best A3C architectures vs manual baselines ===")
    print(f"{'benchmark':<10} {'network':<18} {'params':>12} "
          f"{'time(s)':>10} {'metric':>8}")
    for row in rows:
        print(f"{row['problem']:<10} {'manually designed':<18} "
              f"{row['baseline_params']:12d} {row['baseline_time']:10.1f} "
              f"{row['baseline_metric']:8.4f}")
        print(f"{'':<10} {'A3C-best':<18} {row['best_params']:12d} "
              f"{row['best_time']:10.1f} {row['best_metric']:8.4f}")
        factor = row["baseline_params"] / max(row["best_params"], 1)
        speedup = row["baseline_time"] / max(row["best_time"], 1e-9)
        paper = PAPER_TABLE1[row["problem"]]
        print(f"{'':<10} -> {factor:.1f}x fewer params "
              f"(paper: {paper['param_factor']:.1f}x), "
              f"{speedup:.1f}x faster training")

    # shape: NAS-best is smaller than the baseline on every benchmark
    for row in rows:
        assert row["best_params"] < row["baseline_params"], row["problem"]
    # exact paper values for the manual baselines (Combo, Uno)
    assert rows[0]["baseline_params"] == 13_772_001
    assert rows[1]["baseline_params"] == 19_274_001
