"""Figure 5: worker-node utilization over time for A3C, A2C and RDM on
the small search spaces.

Shape claims reproduced: RDM utilization is flat (no cache effect); A2C
utilization is the lowest (synchronous batch barrier idles nodes); A3C
utilization decays over time as the converging policy resamples cached
architectures.
"""

import pytest

from harness import print_utilizations, run_cached

METHODS = ("a3c", "a2c", "rdm")


@pytest.mark.parametrize("problem", ["combo", "uno", "nt3"])
def bench_fig05(benchmark, problem):
    def run_all():
        return {m: run_cached(problem, m) for m in METHODS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_utilizations(f"Fig 5 ({problem}, small space)", results)

    means = {m: results[m].cluster.mean_utilization(
        max(results[m].end_time, 1e-9)) for m in METHODS}
    assert all(0.0 < u <= 1.0 for u in means.values())
    # A2C's synchronous barrier costs utilization relative to RDM
    assert means["a2c"] <= means["rdm"] + 0.05, means
