"""Benchmark-suite shim: the harness lives in :mod:`repro.experiments`."""

from repro.experiments import (FULL, POST_EPOCHS, TOP_K, WALL_MINUTES,
                               allocation, post_train_top,
                               print_posttrain, print_trajectories,
                               print_utilizations, run_cached, space_for,
                               surrogate_for, working_problem)

__all__ = ["FULL", "POST_EPOCHS", "TOP_K", "WALL_MINUTES", "allocation",
           "post_train_top", "print_posttrain", "print_trajectories",
           "print_utilizations", "run_cached", "space_for",
           "surrogate_for", "working_problem"]
