"""Figure 11: A3C reward trajectories on Combo (large space, 256 nodes)
at 10/20/30/40% training-data fractions.

Shape claims reproduced: at 10–30% the reward rises quickly; at 40% the
early trajectory is depressed (many architectures exceed the 10-minute
timeout and are penalized toward −1) and recovery is slow — the agent
must first learn to generate architectures that finish within the
timeout.
"""

import numpy as np

from harness import print_trajectories, run_cached
from repro.analytics import binned_mean_trajectory

FRACTIONS = (0.1, 0.2, 0.3, 0.4)


def bench_fig11(benchmark):
    def run_all():
        return {f"{int(f * 100)}%": run_cached(
            "combo", "a3c", size="large", train_fraction=f,
            log_params_opt=7.2)
            for f in FRACTIONS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_trajectories("Fig 11 (combo large, fidelity)", results)

    def early_mean(res):
        recs = sorted(res.records, key=lambda r: r.time)
        head = recs[:max(1, len(recs) // 5)]
        return float(np.mean([r.reward for r in head]))

    early = {name: early_mean(res) for name, res in results.items()}
    print("\nearly-phase mean rewards:",
          {k: round(v, 3) for k, v in early.items()})
    # 40% data: timeouts depress the early rewards vs 10%
    assert early["40%"] < early["10%"] - 0.1, early

    timeout_frac = {
        name: float(np.mean([r.timed_out for r in res.records]))
        for name, res in results.items()}
    print("timeout fractions:",
          {k: round(v, 2) for k, v in timeout_frac.items()})
    assert timeout_frac["40%"] > timeout_frac["10%"], timeout_frac
