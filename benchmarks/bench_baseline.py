"""Substrate wall-clock baselines, recorded to ``BENCH_substrate.json``.

Unlike the pytest-benchmark suites in this directory (statistical guards
run under CI), this is the *recording* entry point: it times the
substrate hot paths via :mod:`repro.perf` and appends the numbers to
``BENCH_substrate.json`` at the repo root, so performance changes land in
review with before/after evidence attached.

Usage (see also ``make bench``)::

    PYTHONPATH=src python benchmarks/bench_baseline.py
    PYTHONPATH=src python benchmarks/bench_baseline.py --quick --no-write
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))


def main(argv: list[str] | None = None) -> int:
    from repro.perf import run_suite, write_results

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="few repeats; for smoke checks, not baselines")
    parser.add_argument("--no-write", action="store_true",
                        help="print timings without touching the JSON file")
    parser.add_argument("--output", default=str(ROOT / "BENCH_substrate.json"),
                        help="results file (default: repo-root "
                             "BENCH_substrate.json)")
    parser.add_argument("--label", default=None,
                        help="name this entry in the results file "
                             "(see BENCH_LABEL in the Makefile)")
    args = parser.parse_args(argv)
    results = run_suite(repeats=5 if args.quick else 30)
    if not args.no_write:
        write_results(args.output, results, label=args.label)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
