"""Figure 9: A3C utilization on Combo (large space) at 256/512/1,024
nodes, comparing worker scaling against agent scaling.

Shape claims reproduced: agent scaling (512-a, 1024-a) sustains
utilization close to the 256-node reference, while worker scaling
(512-w, 1024-w) loses utilization because each agent's batch-synchronous
evaluation idles more workers per round.
"""

import numpy as np

from harness import print_utilizations, run_cached

CONFIGS = {
    "256": (256, "agents"),
    "512-w": (512, "workers"),
    "1024-w": (1024, "workers"),
    "512-a": (512, "agents"),
    "1024-a": (1024, "agents"),
}


def bench_fig09(benchmark):
    def run_all():
        return {name: run_cached("combo", "a3c", size="large",
                                 nodes=nodes, mode=mode)
                for name, (nodes, mode) in CONFIGS.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_utilizations("Fig 9 (combo large, scaling)", results)

    means = {name: res.cluster.mean_utilization(max(res.end_time, 1e-9))
             for name, res in results.items()}
    print("\nmean utilizations:", {k: round(v, 3) for k, v in means.items()})

    # agent scaling holds utilization better than worker scaling
    assert means["512-a"] >= means["512-w"] - 0.02, means
    assert means["1024-a"] >= means["1024-w"] - 0.02, means
    # worker scaling degrades with node count
    assert means["1024-w"] <= means["256"] + 0.02, means
