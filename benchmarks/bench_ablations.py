"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but controlled studies of the mechanisms the
paper attributes its results to:

* the agent-local evaluation cache (utilization decay + convergence);
* the A3C staleness window (how many recent updates the PS averages);
* the PPO entropy bonus (exploration vs collapse);
* aging evolution (§7's future-work comparator) vs A3C vs RDM on the
  identical substrate.
"""

import numpy as np

from harness import WALL_MINUTES, allocation, space_for, surrogate_for
from repro.analytics import cache_hit_fraction, unique_architectures
from repro.search import (EvolutionConfig, SearchConfig, run_evolution,
                          run_search)


def _late_mean(result):
    recs = sorted(result.records, key=lambda r: r.time)
    tail = recs[int(0.7 * len(recs)):]
    return float(np.mean([r.reward for r in tail]))


def bench_ablation_cache(benchmark):
    space = space_for("combo")

    def run_both():
        out = {}
        for use_cache in (True, False):
            cfg = SearchConfig(method="a3c", allocation=allocation(256),
                               wall_time=WALL_MINUTES * 60.0, seed=4,
                               use_cache=use_cache)
            out[use_cache] = run_search(space, surrogate_for("combo"), cfg)
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print("\n=== ablation: agent-local evaluation cache ===")
    for use_cache, res in results.items():
        print(f"cache={use_cache}: evals={res.num_evaluations} "
              f"unique={unique_architectures(res.records)} "
              f"cache_hits={cache_hit_fraction(res.records):.2f} "
              f"util={res.cluster.mean_utilization(max(res.end_time, 1e-9)):.2f} "
              f"late_mean={_late_mean(res):.3f}")
    # the cache's mechanisms: hits happen, they consume no node time
    # (utilization can only drop), and convergence detection becomes
    # possible — without it, repeats burn nodes and hits are impossible
    assert cache_hit_fraction(results[True].records) > 0.0
    assert cache_hit_fraction(results[False].records) == 0.0
    u_cache = results[True].cluster.mean_utilization(
        max(results[True].end_time, 1e-9))
    u_nocache = results[False].cluster.mean_utilization(
        max(results[False].end_time, 1e-9))
    assert u_cache <= u_nocache + 0.02


def bench_ablation_staleness(benchmark):
    space = space_for("combo")
    alloc = allocation(256)
    windows = (1, max(1, alloc.num_agents // 2), alloc.num_agents)

    def run_all():
        out = {}
        for w in windows:
            cfg = SearchConfig(method="a3c", allocation=alloc,
                               wall_time=WALL_MINUTES * 60.0, seed=4,
                               staleness_window=w)
            out[w] = run_search(space, surrogate_for("combo"), cfg)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\n=== ablation: A3C staleness window ===")
    for w, res in results.items():
        print(f"window={w:>3}: late_mean={_late_mean(res):.3f} "
              f"best={res.best().reward:.3f}")
    # every variant still learns (beats the random-policy starting level)
    assert all(_late_mean(res) > 0.15 for res in results.values())


def bench_ablation_entropy(benchmark):
    space = space_for("combo")

    def run_all():
        out = {}
        for ent in (0.0, 0.002, 0.02):
            cfg = SearchConfig(method="a3c", allocation=allocation(256),
                               wall_time=WALL_MINUTES * 60.0, seed=4,
                               entropy_coef=ent)
            out[ent] = run_search(space, surrogate_for("combo"), cfg)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\n=== ablation: PPO entropy bonus ===")
    for ent, res in results.items():
        print(f"entropy={ent:<6}: late_mean={_late_mean(res):.3f} "
              f"unique={unique_architectures(res.records)} "
              f"cache={cache_hit_fraction(res.records):.2f}")
    # stronger entropy keeps exploration higher (more unique archs)
    assert unique_architectures(results[0.02].records) >= \
        unique_architectures(results[0.0].records)


def bench_ablation_multi_parameter_server(benchmark):
    """§7 future work: "developing multiparameter servers to improve
    scalability".  With a contended single PS (nonzero service time per
    update vector), agent iterations queue behind parameter exchange;
    sharding the vector across independent servers restores throughput.
    """
    space = space_for("combo")
    alloc = allocation(1024, "agents")  # the high-agent-count regime

    def run_all():
        out = {}
        for label, service, shards in (("free", 0.0, 1),
                                       ("single-ps", 30.0, 1),
                                       ("4-shards", 30.0, 4)):
            cfg = SearchConfig(method="a3c", allocation=alloc,
                               wall_time=WALL_MINUTES * 60.0, seed=4,
                               ps_service_time=service, ps_shards=shards)
            out[label] = run_search(space, surrogate_for("combo"), cfg)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\n=== ablation: multi-parameter-server scalability (§7) ===")
    for label, res in results.items():
        print(f"{label:>10}: evals={res.num_evaluations} "
              f"util={res.cluster.mean_utilization(max(res.end_time, 1e-9)):.2f} "
              f"best={res.best().reward:.3f}")
    assert results["single-ps"].num_evaluations < \
        results["free"].num_evaluations
    assert results["4-shards"].num_evaluations > \
        results["single-ps"].num_evaluations


def bench_ablation_adaptive_fidelity(benchmark):
    """§7 future work: adaptive reward estimation.  A schedule that
    starts at 10% data and ramps to 40% should avoid the fixed-40%
    timeout collapse early while ranking survivors at high fidelity
    late — better early rewards than fixed-40%, more high-fidelity
    evaluations than fixed-10%."""
    from repro.rewards import AdaptiveFidelityReward
    from repro.search import SearchConfig, run_search

    space = space_for("combo", "large")

    def make(kind):
        if kind == "adaptive":
            base = surrogate_for("combo", "large", log_params_opt=7.2)
            return AdaptiveFidelityReward(
                base, [(0, 0.1), (300, 0.2), (900, 0.4)])
        fraction = 0.1 if kind == "fixed-10%" else 0.4
        return surrogate_for("combo", "large", train_fraction=fraction,
                             log_params_opt=7.2)

    def run_all():
        out = {}
        for kind in ("fixed-10%", "fixed-40%", "adaptive"):
            cfg = SearchConfig(method="a3c", allocation=allocation(256),
                               wall_time=WALL_MINUTES * 60.0, seed=4)
            out[kind] = run_search(space, make(kind), cfg)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\n=== ablation: adaptive reward-estimation fidelity (§7) ===")
    early = {}
    for kind, res in results.items():
        recs = sorted(res.records, key=lambda r: r.time)
        head = recs[:max(1, len(recs) // 5)]
        early[kind] = float(np.mean([r.reward for r in head]))
        timeouts = float(np.mean([r.timed_out for r in res.records]))
        print(f"{kind:>10}: evals={res.num_evaluations} "
              f"early_mean={early[kind]:+.3f} timeouts={timeouts:.2f} "
              f"best={res.best().reward:.3f}")
    # the schedule avoids the fixed-40% early collapse
    assert early["adaptive"] > early["fixed-40%"] + 0.1, early


def bench_evolution_vs_rl(benchmark):
    space = space_for("combo")

    def run_all():
        out = {}
        for method in ("a3c", "rdm"):
            cfg = SearchConfig(method=method, allocation=allocation(256),
                               wall_time=WALL_MINUTES * 60.0, seed=4)
            out[method] = run_search(space, surrogate_for("combo"), cfg)
        evo_cfg = EvolutionConfig(population_size=50, tournament_size=10,
                                  wall_time=WALL_MINUTES * 60.0,
                                  allocation=allocation(256), seed=4)
        out["evolution"] = run_evolution(space, surrogate_for("combo"),
                                         evo_cfg)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\n=== comparator: A3C vs aging evolution vs RDM ===")
    for name, res in results.items():
        print(f"{name:>10}: evals={res.num_evaluations} "
              f"best={res.best().reward:.3f} "
              f"late_mean={_late_mean(res):.3f}")
    # both learning methods beat random search
    assert _late_mean(results["a3c"]) > _late_mean(results["rdm"])
    assert _late_mean(results["evolution"]) > _late_mean(results["rdm"])
