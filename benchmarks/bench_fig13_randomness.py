"""Figure 13: impact of randomness — 10 replications of A3C on Combo
(small space), 10/50/90% quantiles of the reward trajectory.

Shape claims reproduced: early-run spread across replications is
noticeable; the quantile band narrows as the search progresses and the
replications converge to similar reward levels.
"""

import numpy as np

from harness import WALL_MINUTES, allocation, space_for, surrogate_for
from repro.analytics import band_spread, quantile_bands
from repro.search import SearchConfig, run_search

N_REPLICATIONS = 10


def bench_fig13(benchmark):
    space = space_for("combo", "small")

    def run_replications():
        reps = []
        for seed in range(N_REPLICATIONS):
            cfg = SearchConfig(method="a3c", allocation=allocation(256),
                               wall_time=WALL_MINUTES * 60.0, seed=100 + seed)
            reps.append(run_search(space, surrogate_for("combo"), cfg))
        return reps

    reps = benchmark.pedantic(run_replications, rounds=1, iterations=1)
    grid = np.linspace(WALL_MINUTES * 0.15, WALL_MINUTES * 0.95, 9)
    bands = quantile_bands([r.records for r in reps], grid,
                           quantiles=(0.1, 0.5, 0.9))
    print(f"\n=== Fig 13: quantiles over {N_REPLICATIONS} replications ===")
    print(f"{'t(min)':>7} {'q10':>7} {'q50':>7} {'q90':>7} {'spread':>7}")
    spread = band_spread(bands)
    for t, row, s in zip(grid, bands, spread):
        print(f"{t:7.0f} {row[0]:7.3f} {row[1]:7.3f} {row[2]:7.3f} {s:7.3f}")

    # the replication band narrows (or stays narrow) as the search runs
    assert spread[-1] <= spread[0] + 0.05, spread
    # medians rise over the run (the search is learning in every rep)
    assert bands[-1, 1] > bands[0, 1], bands
