"""Figure 8: post-training of the top A3C architectures from the *large*
search spaces (Combo and Uno), 256-node configuration.

Shape claims reproduced: on Combo, the large space yields architectures
with higher accuracy than the small space (at the cost of more
parameters); on Uno, the larger space over-parameterizes the small
dataset and accuracy drops relative to the small space.
"""

import numpy as np
import pytest

from harness import post_train_top, print_posttrain, run_cached


@pytest.mark.parametrize("problem", ["combo", "uno"])
def bench_fig08(benchmark, problem):
    result = run_cached(problem, "a3c", size="large")

    def do_posttrain():
        return post_train_top(problem, result, large=True)

    report = benchmark.pedantic(do_posttrain, rounds=1, iterations=1)
    print_posttrain(f"Fig 8 ({problem}, large space, top "
                    f"{len(report.entries)})", report)

    assert len(report.entries) > 0
    assert all(np.isfinite(e.metric) for e in report.entries)


def bench_fig08_small_vs_large_combo(benchmark):
    """The paper's Combo observation: the large space increases
    parameters/training time of the best architectures."""
    small = run_cached("combo", "a3c", size="small")
    large = run_cached("combo", "a3c", size="large")

    def medians():
        med = {}
        for name, res in (("small", small), ("large", large)):
            top = res.top_k(20)
            med[name] = float(np.median([t.params for t in top]))
        return med

    med = benchmark.pedantic(medians, rounds=1, iterations=1)
    print("\n=== Fig 8 context: median top-20 parameter counts "
          "(paper input dims) ===")
    for name, m in med.items():
        print(f"combo {name} space: {m:.3e}")
