"""Substrate micro-benchmarks: NN training step, architecture compile +
materialize, PPO update, and discrete-event kernel throughput.

These are conventional pytest-benchmark timings (multiple rounds) that
guard the performance of the pieces every experiment is built on.
"""

import numpy as np

from repro.hpc.sim import Simulator, Timeout
from repro.nas.builder import build_model, compile_architecture
from repro.nas.spaces import combo_small
from repro.nn import Adam, Dense, GraphModel, Trainer
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rl import LSTMPolicy, PPOUpdater


def bench_dense_training_step(benchmark):
    rng = np.random.default_rng(0)
    m = GraphModel()
    m.add_input("x", (128,))
    m.add("h1", Dense(256, "relu"), ["x"])
    m.add("h2", Dense(256, "relu"), ["h1"])
    m.add("y", Dense(1), ["h2"])
    m.set_output("y")
    m.build(rng)
    opt = Adam(m.parameters())
    x = {"x": rng.standard_normal((256, 128))}
    g = np.ones((256, 1)) / 256

    def step():
        m.forward(x, training=True)
        m.zero_grad()
        m.backward(g)
        opt.step()

    benchmark(step)


def bench_compile_architecture(benchmark):
    space = combo_small()
    rng = np.random.default_rng(0)
    archs = [space.random_architecture(rng) for _ in range(20)]

    def compile_batch():
        return [compile_architecture(space, a.choices, COMBO_PAPER_SHAPES,
                                     combo_head()) for a in archs]

    plans = benchmark(compile_batch)
    assert all(p.total_params >= 0 for p in plans)


def bench_materialize_model(benchmark):
    space = combo_small(scale=0.02)
    shapes = {"cell_expression": (30,), "drug1_descriptors": (40,),
              "drug2_descriptors": (40,)}
    rng = np.random.default_rng(0)
    arch = space.random_architecture(rng)

    def materialize():
        return build_model(space, arch.choices, shapes, combo_head(), rng)

    model = benchmark(materialize)
    assert model.built


def bench_ppo_update(benchmark):
    space = combo_small()
    policy = LSTMPolicy(space.action_dims, seed=0)
    updater = PPOUpdater(policy)
    rng = np.random.default_rng(0)
    rollout = policy.sample(11, rng)
    rewards = rng.random(11)

    def update():
        updater.update(rollout, rewards)

    benchmark(update)


def bench_des_event_throughput(benchmark):
    def run_sim():
        sim = Simulator()

        def ticker(n):
            for _ in range(n):
                yield Timeout(1.0)

        for _ in range(20):
            sim.process(ticker(500))
        sim.run()
        return sim.now

    now = benchmark(run_sim)
    assert now == 500.0
