"""Substrate micro-benchmarks: NN training step, architecture compile +
materialize, PPO update, and discrete-event kernel throughput.

These are conventional pytest-benchmark timings (multiple rounds) that
guard the performance of the pieces every experiment is built on.
"""

import numpy as np

from repro.hpc import NodeAllocation, TrainingCostModel
from repro.hpc.sim import Simulator, Timeout
from repro.nas.builder import build_model, compile_architecture
from repro.nas.plancache import PlanCache
from repro.nas.spaces import combo_small
from repro.nn import Adam, Dense, FlatAdam, GraphModel, Trainer
from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
from repro.rewards import SurrogateReward
from repro.rl import LSTMPolicy, PPOUpdater
from repro.search import SearchConfig, run_search


def _dense_model(dtype):
    rng = np.random.default_rng(0)
    m = GraphModel()
    m.add_input("x", (128,))
    m.add("h1", Dense(256, "relu"), ["x"])
    m.add("h2", Dense(256, "relu"), ["h1"])
    m.add("y", Dense(1), ["h2"])
    m.set_output("y")
    return m.build(rng, dtype=dtype)


def _dense_step(m, opt):
    rng = np.random.default_rng(0)
    x = {"x": rng.standard_normal((256, 128)).astype(m.dtype)}
    g = (np.ones((256, 1)) / 256).astype(m.dtype)

    def step():
        m.forward(x, training=True)
        m.zero_grad()
        m.backward(g)
        opt.step()

    return step


def bench_dense_training_step(benchmark):
    """The shipped default: float32 compiled plan + fused flat Adam."""
    m = _dense_model(np.float32)
    benchmark(_dense_step(m, FlatAdam(m.flatten_parameters())))


def bench_dense_training_step_float64(benchmark):
    """Seed-equivalent numerics: float64 weights, per-parameter Adam."""
    m = _dense_model(np.float64)
    benchmark(_dense_step(m, Adam(m.parameters())))


def bench_compile_architecture(benchmark):
    space = combo_small()
    rng = np.random.default_rng(0)
    archs = [space.random_architecture(rng) for _ in range(20)]

    def compile_batch():
        return [compile_architecture(space, a.choices, COMBO_PAPER_SHAPES,
                                     combo_head()) for a in archs]

    plans = benchmark(compile_batch)
    assert all(p.total_params >= 0 for p in plans)


def bench_materialize_model(benchmark):
    space = combo_small(scale=0.02)
    shapes = {"cell_expression": (30,), "drug1_descriptors": (40,),
              "drug2_descriptors": (40,)}
    rng = np.random.default_rng(0)
    arch = space.random_architecture(rng)

    def materialize():
        return build_model(space, arch.choices, shapes, combo_head(), rng)

    model = benchmark(materialize)
    assert model.built


def bench_ppo_update(benchmark):
    space = combo_small()
    policy = LSTMPolicy(space.action_dims, seed=0)
    updater = PPOUpdater(policy)
    rng = np.random.default_rng(0)
    rollout = policy.sample(11, rng)
    rewards = rng.random(11)

    def update():
        updater.update(rollout, rewards)

    benchmark(update)


def bench_lstm_policy_step(benchmark):
    """One autoregressive rollout: horizon fused LSTM steps + sampling."""
    space = combo_small()
    policy = LSTMPolicy(space.action_dims, seed=0)
    rng = np.random.default_rng(0)

    rollout = benchmark(lambda: policy.sample(11, rng))
    assert rollout.actions.shape[0] == 11


def bench_plan_cache_hit(benchmark):
    """Warm-cache plan lookups for the 20 archs of bench_compile."""
    space = combo_small()
    head = combo_head()
    cache = PlanCache()
    rng = np.random.default_rng(0)
    archs = [space.random_architecture(rng) for _ in range(20)]
    for a in archs:
        cache.get_or_compile(space, a.choices, COMBO_PAPER_SHAPES, head)

    def hit_batch():
        return [cache.get_or_compile(space, a.choices, COMBO_PAPER_SHAPES,
                                     head) for a in archs]

    plans = benchmark(hit_batch)
    assert all(p.total_params >= 0 for p in plans)
    assert cache.stats()["misses"] == 20  # everything after warmup hit


def bench_search_iteration(benchmark):
    """Short end-to-end a3c surrogate search through the runner stack."""
    space = combo_small()
    cfg = SearchConfig(method="a3c", allocation=NodeAllocation(32, 4, 3),
                       wall_time=20 * 60.0, seed=1)

    def iteration():
        reward = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                                 TrainingCostModel.combo_paper(),
                                 epochs=1, train_fraction=0.1,
                                 timeout=600.0, log_params_opt=6.5, seed=7)
        return run_search(space, reward, cfg)

    res = benchmark(iteration)
    assert res.num_evaluations > 0


def bench_des_event_throughput(benchmark):
    def run_sim():
        sim = Simulator()

        def ticker(n):
            for _ in range(n):
                yield Timeout(1.0)

        for _ in range(20):
            sim.process(ticker(500))
        sim.run()
        return sim.now

    now = benchmark(run_sim)
    assert now == 500.0
