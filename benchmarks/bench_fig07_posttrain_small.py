"""Figure 7: post-training of the top A3C architectures from the small
search spaces (Combo, Uno, NT3), run on the 256-node configuration.

Shape claims reproduced: most top architectures have (often many-fold)
fewer trainable parameters than the manually designed network; several
reach competitive accuracy (ratio > 0.98), and training-time ratios
track the parameter reduction.
"""

import pytest

from harness import post_train_top, print_posttrain, run_cached


@pytest.mark.parametrize("problem", ["combo", "uno", "nt3"])
def bench_fig07(benchmark, problem):
    result = run_cached(problem, "a3c")

    def do_posttrain():
        return post_train_top(problem, result)

    report = benchmark.pedantic(do_posttrain, rounds=1, iterations=1)
    print_posttrain(f"Fig 7 ({problem}, small space, top "
                    f"{len(report.entries)})", report)

    assert report.num_smaller >= len(report.entries) // 2, \
        "NAS should find mostly smaller-than-baseline networks"
    assert report.num_competitive(0.5) >= 1, \
        "at least some architectures should train to useful accuracy"
