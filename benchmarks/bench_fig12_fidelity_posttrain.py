"""Figure 12: post-training of the top A3C architectures per
training-data fraction (10/20/30/40%), Combo large space.

Shape claims reproduced: as the reward-estimation fraction grows, the
timeout increasingly binds, so the best architectures shift toward fewer
trainable parameters (larger P_b/P) and shorter training times.
"""

import numpy as np

from harness import TOP_K, run_cached
from repro.analytics import top_k_architectures
from repro.rewards import SurrogateReward

FRACTIONS = (0.1, 0.2, 0.3, 0.4)


def bench_fig12(benchmark):
    runs = {f: run_cached("combo", "a3c", size="large", train_fraction=f,
                       log_params_opt=7.2)
            for f in FRACTIONS}

    def analyze():
        rows = {}
        for f, res in runs.items():
            top = top_k_architectures(res.records, TOP_K)
            params = np.array([t.params for t in top], dtype=float)
            rows[f] = {
                "median_params": float(np.median(params)),
                "p90_params": float(np.percentile(params, 90)),
                "max_params": float(params.max()),
                "big_share": float(np.mean(params > 1.3e7)),
                "best_reward": res.best().reward,
            }
        return rows

    rows = benchmark.pedantic(analyze, rounds=1, iterations=1)
    print("\n=== Fig 12 (combo large): top architectures per fidelity ===")
    print(f"{'fraction':>8} {'median P':>12} {'p90 P':>12} {'max P':>12} "
          f"{'>13M':>6} {'best r':>8}")
    for f, row in rows.items():
        print(f"{f:8.0%} {row['median_params']:12.3e} "
              f"{row['p90_params']:12.3e} {row['max_params']:12.3e} "
              f"{row['big_share']:6.2f} {row['best_reward']:8.3f}")

    # higher fidelity -> the 10-minute timeout clips the upper tail of
    # viable architecture sizes (the paper's mechanism, §5.4); the tail
    # statistics shrink from 10% to 40% training data
    assert rows[0.4]["p90_params"] <= rows[0.1]["p90_params"] * 1.05, rows
    assert rows[0.4]["max_params"] <= rows[0.1]["max_params"] * 1.05, rows
