"""Figure 4: reward over time for A3C, A2C and RDM on the small search
spaces (Combo, Uno, NT3), 256-node reference configuration.

Shape claims reproduced: A3C learns fastest and reaches the highest
rewards; A2C learns but more slowly (synchronous barrier); RDM shows no
learning trend.
"""

import numpy as np
import pytest

from harness import print_trajectories, run_cached
from repro.analytics import binned_mean_trajectory

METHODS = ("a3c", "a2c", "rdm")


def _late_mean(result):
    recs = sorted(result.records, key=lambda r: r.time)
    tail = recs[int(0.7 * len(recs)):]
    return float(np.mean([r.reward for r in tail]))


@pytest.mark.parametrize("problem", ["combo", "uno", "nt3"])
def bench_fig04(benchmark, problem):
    def run_all():
        return {m: run_cached(problem, m) for m in METHODS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_trajectories(f"Fig 4 ({problem}, small space)", results)

    # shape assertions: the RL methods end above random search
    a3c, a2c, rdm = (_late_mean(results[m]) for m in METHODS)
    assert a3c > rdm, f"A3C must out-learn RDM on {problem}"
    assert a2c > rdm, f"A2C must out-learn RDM on {problem}"
    # RDM is flat: early and late means are close
    recs = sorted(results["rdm"].records, key=lambda r: r.time)
    half = len(recs) // 2
    drift = abs(np.mean([r.reward for r in recs[half:]])
                - np.mean([r.reward for r in recs[:half]]))
    # NT3's reward distribution is bimodal (timeouts near -1 vs successes),
    # so allow more sampling noise in its half-to-half mean
    assert drift < (0.2 if problem == "nt3" else 0.1), \
        "random search must show no learning trend"
