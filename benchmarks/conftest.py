"""Benchmark suite configuration.

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark
regenerates one of the paper's tables or figures (printed to stdout; use
``-s`` to see them live, or rely on pytest's captured-output report).
Set ``REPRO_BENCH_SCALE=full`` for paper-scale experiment sizes.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
