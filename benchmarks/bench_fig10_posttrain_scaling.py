"""Figure 10: post-training of top architectures from the 512- and
1,024-node agent-scaling runs on Combo (large space).

Shape claims reproduced: more agents explore more architectures, and the
scaled runs' top sets match or beat the 256-node run's best estimated
reward while keeping small parameter counts.
"""

import numpy as np

from harness import post_train_top, print_posttrain, run_cached
from repro.analytics import unique_architectures


def bench_fig10(benchmark):
    runs = {
        "256": run_cached("combo", "a3c", size="large", nodes=256),
        "512-a": run_cached("combo", "a3c", size="large", nodes=512,
                            mode="agents"),
        "1024-a": run_cached("combo", "a3c", size="large", nodes=1024,
                             mode="agents"),
    }

    def do_posttrain():
        return {name: post_train_top("combo", res, large=True)
                for name, res in runs.items() if name != "256"}

    reports = benchmark.pedantic(do_posttrain, rounds=1, iterations=1)
    for name, report in reports.items():
        print_posttrain(f"Fig 10 (combo large, {name} agent scaling, top "
                        f"{len(report.entries)})", report)

    print("\n=== exploration vs scale ===")
    for name, res in runs.items():
        print(f"{name}: evaluations={res.num_evaluations} "
              f"unique={unique_architectures(res.records)} "
              f"best_estimated={res.best().reward:.3f}")

    # more agents -> more exploration
    assert unique_architectures(runs["1024-a"].records) > \
        unique_architectures(runs["256"].records)
    # scaling does not lose reward quality
    assert runs["1024-a"].best().reward >= runs["256"].best().reward - 0.05
