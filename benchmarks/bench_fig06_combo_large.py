"""Figure 6: Combo with the large search space — A3C search trajectory
and utilization at the 256-node reference configuration.

Shape claims reproduced: A3C finds higher rewards faster than A2C/RDM;
utilization tracks RDM early and decays gradually (cache effect) without
the full convergence-stop seen on the small space.
"""

import numpy as np

from harness import print_trajectories, print_utilizations, run_cached

METHODS = ("a3c", "a2c", "rdm")


def bench_fig06(benchmark):
    def run_all():
        return {m: run_cached("combo", m, size="large") for m in METHODS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_trajectories("Fig 6a (combo, large space)", results)
    print_utilizations("Fig 6b (combo, large space)", results)

    def late_mean(res):
        recs = sorted(res.records, key=lambda r: r.time)
        return float(np.mean([r.reward for r in recs[len(recs) // 2:]]))

    assert late_mean(results["a3c"]) > late_mean(results["rdm"])
    # the large space does not converge within the wall clock
    assert not results["a3c"].converged
