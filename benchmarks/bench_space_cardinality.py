"""§3.1 search-space cardinalities (text claims).

Reproduces the paper's stated sizes exactly for the small spaces and
prints the constructed sizes for the large spaces; also benchmarks
space-construction and architecture-decode throughput.
"""

import numpy as np

from repro.nas.spaces import (combo_large, combo_small, nt3_small,
                              uno_large, uno_small)

PAPER = {
    "combo-small": (13**12 * 9, "2.0968e14"),
    "uno-small": (13**12, "2.3298e13"),
    "nt3-small": (635_040_000, "6.3504e8"),
}


def bench_cardinalities(benchmark):
    def build_and_check():
        sizes = {
            "combo-small": combo_small().size,
            "combo-large": combo_large().size,
            "uno-small": uno_small().size,
            "uno-large": uno_large().size,
            "nt3-small": nt3_small().size,
        }
        return sizes

    sizes = benchmark(build_and_check)
    print("\n=== §3.1 search-space cardinalities ===")
    print(f"{'space':<14} {'ours':>12} {'paper':>12}")
    for name, size in sizes.items():
        if name in PAPER:
            exact, approx = PAPER[name]
            assert size == exact, name
            print(f"{name:<14} {size:12.4e} {approx:>12}  (exact match)")
        else:
            paper = "2.987e44" if name == "combo-large" else "5.7408e29"
            print(f"{name:<14} {size:12.4e} {paper:>12}  (see EXPERIMENTS.md)")


def bench_decode_throughput(benchmark):
    space = combo_large()
    rng = np.random.default_rng(0)
    batch = [[int(rng.integers(n.num_ops)) for n in space.variable_nodes]
             for _ in range(100)]

    def decode_batch():
        return [space.decode(c) for c in batch]

    archs = benchmark(decode_batch)
    assert len(archs) == 100
