"""Paper-experiment harness: regenerate every table and figure.

Every experiment of the paper's evaluation section is expressed as a
function here, so figures can be regenerated from a Python session or
the CLI without the benchmark suite.  Search experiments run on the
simulated cluster with the surrogate reward model; post-training
experiments really train the numpy models on the working-scale
synthetic datasets.  Runs are memoized per process so figure pairs
sharing a run (e.g. Fig 4 trajectories and Fig 5 utilizations) only
execute once.

Scale control: set ``REPRO_BENCH_SCALE=full`` for paper-scale
allocations (256-1,024 simulated nodes, 360 simulated minutes, top-50
post-training); the default ``quick`` scale shrinks allocations and
post-training budgets so a full regeneration finishes in a few minutes.
"""


from __future__ import annotations

import os
from functools import lru_cache

import numpy as np

from .analytics import (binned_mean_trajectory, cache_hit_fraction,
                             time_to_reward, top_k_architectures,
                             unique_architectures)
from .health import GuardConfig
from .hpc import NodeAllocation, TrainingCostModel
from .nas.spaces import get_space
from .posttrain import PostTrainReport, post_train
from .problems import combo_problem, nt3_problem, uno_problem
from .problems.combo import COMBO_PAPER_SHAPES, combo_head
from .problems.nt3 import NT3_PAPER_SHAPES, nt3_head
from .problems.uno import UNO_PAPER_SHAPES, uno_head
from .rewards import SurrogateReward
from .search import SearchConfig, SearchResult, run_search

FULL = os.environ.get("REPRO_BENCH_SCALE", "quick") == "full"

#: simulated wall-clock budget (the paper runs 360 minutes)
WALL_MINUTES = 360.0 if FULL else 150.0
#: post-training selection size (the paper post-trains the top 50)
TOP_K = 50 if FULL else 12
POST_EPOCHS = 25 if FULL else 20


def allocation(nodes: int = 256, mode: str = "agents") -> NodeAllocation:
    """Paper allocation at ``full`` scale; proportionally shrunk quick
    version otherwise (agents/workers ratio preserved)."""
    alloc = NodeAllocation.paper_scaling(nodes, mode)
    if FULL:
        return alloc
    agents = max(2, round(alloc.num_agents / 3))
    workers = max(2, round(alloc.workers_per_agent / 2))
    return NodeAllocation(agents * (workers + 1) + 4, agents, workers)


_PAPER_SHAPES = {
    "combo": COMBO_PAPER_SHAPES,
    "uno": UNO_PAPER_SHAPES,
    "nt3": NT3_PAPER_SHAPES,
}
_HEADS = {"combo": combo_head, "uno": uno_head, "nt3": nt3_head}
_COST_MODELS = {
    "combo": TrainingCostModel.combo_paper,
    "uno": TrainingCostModel.uno_paper,
    "nt3": TrainingCostModel.nt3_paper,
}
#: surrogate shaping per benchmark: (noise, log10 of the capacity-optimal
#: parameter count, reward base).  NT3's reward estimates are very noisy
#: (1 epoch, batch 20 — §5.1) and its good architectures are tiny (§5.6).
_SURROGATE_SHAPE = {
    "combo": dict(noise=0.05, log_params_opt=6.5, reward_base=0.1),
    "uno": dict(noise=0.08, log_params_opt=6.3, reward_base=0.1),
    "nt3": dict(noise=0.25, log_params_opt=5.0, reward_base=0.4),
}

_SPACE_NAMES = {
    ("combo", "small"): "combo-small",
    ("combo", "large"): "combo-large",
    ("uno", "small"): "uno-small",
    ("uno", "large"): "uno-large",
    ("nt3", "small"): "nt3-small",
}


@lru_cache(maxsize=32)
def space_for(problem: str, size: str = "small"):
    return get_space(_SPACE_NAMES[(problem, size)])


def surrogate_for(problem: str, size: str = "small",
                  train_fraction: float = 0.1, seed: int = 7,
                  **overrides) -> SurrogateReward:
    """The paper's reward-estimation setup: 1 epoch, 10-minute timeout,
    benchmark-specific data fraction (10% for Combo; full data for
    Uno/NT3, whose datasets are small)."""
    shape = dict(_SURROGATE_SHAPE[problem])
    shape.update(overrides)
    if problem != "combo" and "train_fraction" not in overrides:
        train_fraction = 1.0
    return SurrogateReward(
        space_for(problem, size), _PAPER_SHAPES[problem],
        _HEADS[problem](), _COST_MODELS[problem](),
        epochs=1, train_fraction=train_fraction, timeout=600.0,
        seed=seed, **shape)


@lru_cache(maxsize=64)
def run_cached(problem: str, method: str, size: str = "small",
               nodes: int = 256, mode: str = "agents",
               train_fraction: float = 0.1, seed: int = 3,
               log_params_opt: float | None = None,
               guard_mode: str = "off",
               max_restarts: int = 0) -> SearchResult:
    """Memoized search run (figures share runs).

    ``log_params_opt`` overrides the surrogate's capacity optimum; the
    fidelity experiments (Figs. 11/12) use 7.2 (≈16M parameters) so the
    reward-optimal capacity is viable under the 10-minute timeout at 10%
    training data but *not* at 40% — the §5.4 regime where "the training
    time in the reward estimation becomes a bottleneck" and the agents
    must trade reward for speed.

    ``guard_mode`` / ``max_restarts`` thread the numerical health layer
    (repro.health) through: with guards on but no anomaly firing, the
    result fingerprints identically to the unguarded run.
    """
    overrides = {}
    if log_params_opt is not None:
        overrides["log_params_opt"] = log_params_opt
    reward = surrogate_for(problem, size, train_fraction, **overrides)
    guard = GuardConfig(mode=guard_mode) if guard_mode != "off" else None
    cfg = SearchConfig(method=method, allocation=allocation(nodes, mode),
                       wall_time=WALL_MINUTES * 60.0, seed=seed,
                       guard=guard, max_restarts=max_restarts)
    return run_search(space_for(problem, size), reward, cfg)


@lru_cache(maxsize=8)
def working_problem(problem: str, large: bool = False):
    """Working-scale problem instance (real numpy training)."""
    if problem == "combo":
        # batch 64 keeps a paper-like optimizer-steps-per-epoch count at
        # the reduced dataset size (the paper's 256 would give 2 steps)
        return combo_problem(n_train=512, n_val=160, cell_dim=40,
                             drug_dim=48, scale=0.03, batch_size=64,
                             large=large)
    if problem == "uno":
        # few samples + a wide baseline + label noise: the
        # overparameterized manual network overfits, the regime behind
        # the paper's Uno result (§5.2)
        return uno_problem(n_train=128, n_val=192, rna_dim=40, desc_dim=48,
                           fp_dim=24, scale=0.12, noise=0.2, large=large)
    return nt3_problem(n_train=200, n_val=80, length=120, scale=0.05,
                       baseline_filters=8)


def post_train_top(problem: str, result: SearchResult,
                   k: int | None = None, large: bool = False
                   ) -> PostTrainReport:
    """The paper's §5 protocol: select top-k architectures by estimated
    reward, retrain on full data without timeout, report ratios.

    Accuracy ratios come from real training at working scale; the
    parameter and training-time ratios are recomputed at the *paper's*
    input dimensions (the search already counted each architecture's
    exact parameters there), which is the regime Figs. 7/8/10/12
    describe — at working scale the cost model's startup term would
    flatten every time ratio.
    """
    import dataclasses

    top = top_k_architectures(result.records, k or TOP_K)
    prob = working_problem(problem, large)
    report = post_train(prob, [t.arch for t in top], epochs=POST_EPOCHS,
                        time_model=_COST_MODELS[problem]())

    paper_params = {t.arch.key: t.params for t in top}
    baseline_paper = prob.baseline_params(paper_scale=True)
    cm = _COST_MODELS[problem]()
    baseline_time = cm.duration(baseline_paper, epochs=POST_EPOCHS)
    entries = []
    for e in report.entries:
        params = paper_params[e.arch.key]
        train_time = cm.duration(params, epochs=POST_EPOCHS)
        entries.append(dataclasses.replace(
            e, params=params, train_time=train_time,
            params_ratio=baseline_paper / max(params, 1),
            time_ratio=baseline_time / train_time))
    return PostTrainReport(report.problem, report.baseline_metric,
                           baseline_paper, baseline_time, entries)


# ----------------------------------------------------------------------
# printing helpers (the "figures" are printed series)
# ----------------------------------------------------------------------
def print_trajectories(title: str, results: dict[str, SearchResult],
                       bin_minutes: float = 15.0) -> None:
    print(f"\n=== {title}: mean reward per {bin_minutes:.0f}-min bin ===")
    names = list(results)
    trajs = {n: binned_mean_trajectory(results[n].records, bin_minutes,
                                       end_minutes=WALL_MINUTES)
             for n in names}
    header = "t(min)  " + "  ".join(f"{n:>8}" for n in names)
    print(header)
    rows = max(len(t) for t in trajs.values())
    for i in range(rows):
        cells = []
        tmin = None
        for n in names:
            t = trajs[n]
            if i < len(t):
                tmin = t[i, 0]
                cells.append(f"{t[i, 1]:8.3f}" if np.isfinite(t[i, 1])
                             else "       -")
            else:
                cells.append("       -")
        print(f"{tmin:6.0f}  " + "  ".join(cells))
    for n in names:
        res = results[n]
        t50 = time_to_reward(res.records, 0.5)
        print(f"{n}: evals={res.num_evaluations} "
              f"unique={unique_architectures(res.records)} "
              f"best={res.best().reward:.3f} "
              f"cache={cache_hit_fraction(res.records):.2f} "
              f"t(best>=0.5)={'%.0f min' % t50 if t50 else 'n/a'} "
              f"end={res.end_time / 60:.0f} min "
              f"converged={res.converged}")


def print_utilizations(title: str, results: dict[str, SearchResult],
                       bin_minutes: float = 15.0) -> None:
    print(f"\n=== {title}: utilization per {bin_minutes:.0f}-min bin ===")
    names = list(results)
    traces = {n: results[n].utilization_trace(bin_minutes) for n in names}
    print("t(min)  " + "  ".join(f"{n:>8}" for n in names))
    rows = max(len(t) for t in traces.values())
    for i in range(rows):
        tmin = None
        cells = []
        for n in names:
            t = traces[n]
            if i < len(t):
                tmin = t[i][0]
                cells.append(f"{t[i][1]:8.2f}")
            else:
                cells.append("       -")
        print(f"{tmin:6.0f}  " + "  ".join(cells))
    for n in names:
        res = results[n]
        print(f"{n}: mean utilization = "
              f"{res.cluster.mean_utilization(max(res.end_time, 1e-9)):.3f}")


def print_posttrain(title: str, report: PostTrainReport) -> None:
    print(f"\n=== {title} ===")
    print(f"baseline: metric={report.baseline_metric:.4f} "
          f"params={report.baseline_params} "
          f"time={report.baseline_time:.1f}s")
    print(f"{'acc_ratio':>9} {'Pb/P':>8} {'Tb/T':>8} {'metric':>8} "
          f"{'params':>10}")
    for e in sorted(report.entries, key=lambda e: -e.accuracy_ratio):
        print(f"{e.accuracy_ratio:9.3f} {e.params_ratio:8.2f} "
              f"{e.time_ratio:8.2f} {e.metric:8.4f} {e.params:10d}")
    print(f"competitive (>0.98): {report.num_competitive(0.98)}"
          f"/{len(report.entries)}; outperforming: "
          f"{report.num_outperforming}; smaller: {report.num_smaller}; "
          f"faster: {report.num_faster}")
