"""Small shared utilities with no dependency on the rest of the stack."""

from .atomicio import (FsyncPolicy, atomic_write_json, atomic_write_text,
                       fsync_dir)

__all__ = ["FsyncPolicy", "atomic_write_json", "atomic_write_text",
           "fsync_dir"]
