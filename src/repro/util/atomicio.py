"""Crash-consistent file primitives shared across the stack.

Three layers used to carry their own copy of the same atomic-publish
dance — search checkpoints (:mod:`repro.search.checkpoint`), the bench
table's manifest (:mod:`repro.bench.table`), and now the search journal
(:mod:`repro.search.journal`).  The dance matters because write-to-tmp
plus atomic ``replace`` alone is *not* crash-safe: a host crash can tear
the tmp write (the rename then publishes garbage) or lose the rename
itself (the data never became durable).  So:

1. write the payload to ``<path>.tmp`` and ``fsync`` the file;
2. atomically ``rename`` it over ``path``;
3. ``fsync`` the containing directory so the rename is durable.

After :func:`atomic_write_text` returns, either the old or the new file
survives a crash — never a torn hybrid.  Platforms without directory
fsync degrade to best effort, matching the previous inline copies.

:class:`FsyncPolicy` is the shared knob for append-style writers (the
event :class:`~repro.events.JsonlSink` and the journal): flush happens
per record regardless; the policy decides how often the OS buffers are
additionally forced to stable storage.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["fsync_dir", "atomic_write_text", "atomic_write_json",
           "FsyncPolicy"]


def fsync_dir(path: str | Path) -> None:
    """Best-effort fsync of a directory (makes renames in it durable)."""
    try:
        dir_fd = os.open(Path(path) or Path("."), os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
    except OSError:
        pass    # platforms without directory fsync: best effort


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Durably publish ``text`` at ``path`` (tmp + fsync + rename +
    dir-fsync); returns the published path."""
    path = Path(path)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    tmp.replace(path)
    fsync_dir(path.parent or Path("."))
    return path


def atomic_write_json(path: str | Path, data, **dumps_kwargs) -> Path:
    """Durably publish ``data`` as JSON at ``path``.

    ``dumps_kwargs`` pass through to :func:`json.dumps`, so call sites
    keep their existing byte format (the bench manifest's compact
    sorted form, the checkpoint's default form).
    """
    return atomic_write_text(path, json.dumps(data, **dumps_kwargs))


class FsyncPolicy:
    """How often an append-style writer forces records to stable storage.

    ``every=None`` never fsyncs (flush-only — a process crash loses
    nothing, a host crash may lose OS-buffered records); ``every=N``
    fsyncs after every Nth record (``N=1`` is the classic write-ahead
    discipline: a record is durable before the caller proceeds).
    """

    def __init__(self, every: int | None = None) -> None:
        if every is not None and every <= 0:
            raise ValueError("fsync interval must be positive (or None)")
        self.every = every
        self._since = 0

    def tick(self, fileno: int) -> bool:
        """One record was written to ``fileno``; fsync if due."""
        if self.every is None:
            return False
        self._since += 1
        if self._since < self.every:
            return False
        self._since = 0
        try:
            os.fsync(fileno)
        except OSError:
            return False
        return True
