"""Health monitoring and self-healing for long-horizon NAS runs.

The paper's searches run A3C/PPO for hours across up to 1,024 nodes.  At
that horizon a single non-finite gradient, a diverging agent, or a
corrupted exchange delta silently poisons the *shared* policy for every
other agent — a failure mode the infrastructure fault layer
(:mod:`repro.hpc.faults`: node crashes, retries, checkpoint/resume) does
not cover.  This package is the numerical counterpart:

* :mod:`repro.health.guards` — opt-in detection: blockwise finite
  checks, EWMA loss-spike z-scores, PPO approx-KL / ratio divergence
  limits, bundled in :class:`GuardConfig` with a three-position ``mode``
  (``off`` / ``check`` / ``recover``);
* :mod:`repro.health.recovery` — automatic recovery: per-agent
  last-known-good snapshot rings with rollback + learning-rate backoff,
  escalation to agent resurrection, and parameter-server delta
  sanitization.

Invariant: with ``mode="check"`` (or ``"recover"``) and no anomaly
firing, every guarded code path is bit-identical to ``mode="off"`` —
guards observe, they never perturb.  See ``docs/robustness.md``.
"""

from .guards import (GUARD_MODES, GuardConfig, LossSpikeDetector,
                     NumericalAnomaly, PPODivergenceDetector, all_finite,
                     require_finite)
from .recovery import AgentHealth, DeltaSanitizer, SnapshotRing

__all__ = ["GUARD_MODES", "GuardConfig", "NumericalAnomaly", "all_finite",
           "require_finite", "LossSpikeDetector", "PPODivergenceDetector",
           "AgentHealth", "DeltaSanitizer", "SnapshotRing"]
