"""Numerical-health guards: finite checks, spike and divergence detectors.

Everything in this module *observes* — nothing here mutates the values it
inspects, draws from a random stream, or otherwise perturbs the
computation.  That is a hard requirement: a search run with guards
enabled but no anomaly firing must stay bit-identical to a run with
guards off (asserted by the fingerprint tests), so detection has to be a
pure read of the numbers flowing past.

Three families of guard live here:

* :func:`all_finite` / :func:`require_finite` — blockwise non-finite
  scans over activations, gradients, parameters, and exchange deltas.
  Blockwise so a poisoned entry near the front of a large array is found
  without scanning the rest.
* :class:`LossSpikeDetector` — an EWMA mean/variance tracker over a
  scalar loss stream; a z-score above the configured threshold flags a
  spike.  Spiking observations are excluded from the running statistics
  so one blow-up cannot drag the baseline after it.
* :class:`PPODivergenceDetector` — stateless limits on the PPO update's
  approximate KL and probability-ratio extremes (an off-policy update
  whose ratios explode is diverging even while every number is finite).

:class:`GuardConfig` bundles the thresholds plus the guard ``mode``:
``"off"`` (inert), ``"check"`` (detect and raise
:class:`NumericalAnomaly` — fail fast, surface the anomaly), or
``"recover"`` (detect and roll back; see :mod:`repro.health.recovery`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GUARD_MODES", "GuardConfig", "NumericalAnomaly", "all_finite",
           "require_finite", "LossSpikeDetector", "PPODivergenceDetector"]

GUARD_MODES = ("off", "check", "recover")

#: block length of the incremental finite scan (64k doubles = 512 KiB)
_BLOCK = 1 << 16


class NumericalAnomaly(Exception):
    """A numerical-health guard fired.

    ``kind`` is a stable machine-readable tag (``"nonfinite"``,
    ``"loss_spike"``, ``"kl_divergence"``, ``"ratio_blowup"``,
    ``"rollback_exhausted"``); ``what`` names the tensor or statistic
    that tripped it.
    """

    def __init__(self, kind: str, what: str, detail: str = "") -> None:
        self.kind = kind
        self.what = what
        self.detail = detail
        msg = f"{kind} in {what}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


@dataclass(frozen=True)
class GuardConfig:
    """Thresholds and mode of the numerical-health layer.

    All detectors are calibrated to be silent on healthy training: the
    loss z-score threshold is far outside ordinary batch-to-batch noise,
    and the KL/ratio limits are an order of magnitude beyond what a
    clipped PPO update produces.  The defaults therefore trade detection
    latency for a near-zero false-positive rate — a guard that fires on
    healthy runs would *break* determinism instead of protecting it.
    """

    mode: str = "off"                 # "off" | "check" | "recover"
    #: loss-spike detector: z-score threshold, EWMA smoothing, and how
    #: many observations seed the statistics before detection arms
    loss_spike_zscore: float = 8.0
    loss_ewma_alpha: float = 0.2
    loss_warmup: int = 5
    #: PPO divergence: approximate-KL limit and probability-ratio bound
    kl_limit: float = 1.0
    ratio_limit: float = 50.0
    #: parameter-server delta hygiene: reject deltas whose L2 norm
    #: exceeds ``delta_norm_factor`` x the EWMA of accepted norms (after
    #: ``delta_warmup`` accepted pushes), and optionally evict recent
    #: async updates older than ``max_delta_age`` virtual seconds
    delta_norm_factor: float = 50.0
    delta_warmup: int = 8
    max_delta_age: float | None = None
    #: recovery: snapshots kept per agent, learning-rate multiplier
    #: applied on each rollback (with a floor), and how many rollbacks
    #: one agent lifetime absorbs before escalating to a restart
    snapshot_ring: int = 4
    lr_backoff: float = 0.5
    min_lr_fraction: float = 1.0 / 64.0
    escalate_after: int = 2

    def __post_init__(self) -> None:
        if self.mode not in GUARD_MODES:
            raise ValueError(
                f"guard mode must be one of {GUARD_MODES}, got {self.mode!r}")
        if self.loss_spike_zscore <= 0 or self.loss_warmup < 1:
            raise ValueError("loss_spike_zscore must be > 0, warmup >= 1")
        if not 0.0 < self.loss_ewma_alpha <= 1.0:
            raise ValueError("loss_ewma_alpha must be in (0, 1]")
        if self.kl_limit <= 0 or self.ratio_limit <= 1.0:
            raise ValueError("kl_limit must be > 0 and ratio_limit > 1")
        if self.delta_norm_factor <= 1.0 or self.delta_warmup < 1:
            raise ValueError(
                "delta_norm_factor must be > 1 and delta_warmup >= 1")
        if self.max_delta_age is not None and self.max_delta_age <= 0:
            raise ValueError("max_delta_age must be positive")
        if self.snapshot_ring < 1:
            raise ValueError("snapshot_ring must be >= 1")
        if not 0.0 < self.lr_backoff < 1.0:
            raise ValueError("lr_backoff must be in (0, 1)")
        if not 0.0 < self.min_lr_fraction <= 1.0:
            raise ValueError("min_lr_fraction must be in (0, 1]")
        if self.escalate_after < 1:
            raise ValueError("escalate_after must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    @property
    def recovers(self) -> bool:
        return self.mode == "recover"


def all_finite(arr: np.ndarray, block: int = _BLOCK) -> bool:
    """Blockwise non-finite scan; ``True`` iff every entry is finite.

    Scans ``block`` entries at a time so a poisoned value early in a
    large array short-circuits the check instead of paying a full pass.
    """
    flat = np.asarray(arr).reshape(-1)
    n = flat.size
    if n <= block:
        return bool(np.isfinite(flat).all())
    for lo in range(0, n, block):
        if not np.isfinite(flat[lo:lo + block]).all():
            return False
    return True


def require_finite(arr: np.ndarray, what: str) -> None:
    """Raise :class:`NumericalAnomaly` if ``arr`` has a NaN/Inf entry."""
    if not all_finite(arr):
        raise NumericalAnomaly("nonfinite", what)


class LossSpikeDetector:
    """EWMA z-score spike detection over a scalar loss stream.

    Tracks an exponentially weighted mean and variance of observed
    losses.  After ``warmup`` observations, a loss more than ``zscore``
    estimated standard deviations above the mean — or a non-finite loss
    at any point — is flagged as a spike.  Spikes are *not* folded into
    the running statistics, so a blow-up cannot normalize itself.
    """

    def __init__(self, zscore: float = 8.0, alpha: float = 0.2,
                 warmup: int = 5) -> None:
        self.zscore = zscore
        self.alpha = alpha
        self.warmup = warmup
        self.count = 0
        self.mean = 0.0
        self.var = 0.0
        self.num_spikes = 0

    def observe(self, loss: float) -> bool:
        """Feed one loss; returns ``True`` if it is a spike."""
        loss = float(loss)
        if not np.isfinite(loss):
            self.num_spikes += 1
            return True
        if self.count >= self.warmup:
            std = float(np.sqrt(self.var)) + 1e-12
            if (loss - self.mean) / std > self.zscore:
                self.num_spikes += 1
                return True
        if self.count == 0:
            self.mean = loss
            self.var = 0.0
        else:
            a = self.alpha
            diff = loss - self.mean
            # EW mean/variance (West 1979 incremental form)
            self.mean += a * diff
            self.var = (1.0 - a) * (self.var + a * diff * diff)
        self.count += 1
        return False

    # -- checkpoint support --------------------------------------------
    def export_state(self) -> dict:
        return {"count": self.count, "mean": self.mean, "var": self.var,
                "num_spikes": self.num_spikes}

    def restore_state(self, state: dict) -> None:
        self.count = int(state["count"])
        self.mean = float(state["mean"])
        self.var = float(state["var"])
        self.num_spikes = int(state.get("num_spikes", 0))


class PPODivergenceDetector:
    """Stateless divergence limits on one PPO update's statistics.

    ``check`` receives the updater's :class:`~repro.rl.ppo.PPOStats` and
    returns the anomaly kind (or ``None``): non-finite losses, an
    approximate KL above ``kl_limit`` (the policy jumped off-policy), or
    a probability ratio beyond ``ratio_limit`` (the clipped surrogate's
    trust region collapsed).
    """

    def __init__(self, kl_limit: float = 1.0,
                 ratio_limit: float = 50.0) -> None:
        self.kl_limit = kl_limit
        self.ratio_limit = ratio_limit

    def check(self, stats) -> str | None:
        for what in ("policy_loss", "value_loss", "approx_kl", "max_ratio"):
            if not np.isfinite(getattr(stats, what)):
                return "nonfinite"
        if stats.approx_kl > self.kl_limit:
            return "kl_divergence"
        if stats.max_ratio > self.ratio_limit:
            return "ratio_blowup"
        return None
