"""Recovery actuators: policy snapshot rings, rollback, delta hygiene.

Where :mod:`repro.health.guards` only observes, this module acts.  Three
actuators implement the self-healing ladder:

* :class:`SnapshotRing` — a bounded ring of last-known-good
  (policy parameters, optimizer moments) snapshots per agent.  Snapshots
  are taken at iteration boundaries *before* the PPO update, so a
  poisoned update is undone exactly by restoring the newest entry.
* :class:`AgentHealth` — one agent's monitor + actuator.  It runs the
  detectors over each update, and in ``recover`` mode rolls the policy
  and Adam moments back to the newest good snapshot while backing off
  the learning rate.  An agent whose lifetime accumulates
  ``escalate_after`` rollbacks is declared beyond local repair and
  escalates with :class:`~repro.health.guards.NumericalAnomaly` — the
  search runner then resurrects it from its iteration boundary.
* :class:`DeltaSanitizer` — parameter-server ingress hygiene: rejects
  non-finite deltas outright and, once an EWMA of accepted-delta norms
  is warmed up, rejects norm outliers (a diverging agent's update must
  not be averaged into everyone else's policy).  Pure observation on the
  accept path: accepted deltas are passed through bit-unchanged.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .guards import (GuardConfig, LossSpikeDetector, NumericalAnomaly,
                     PPODivergenceDetector, all_finite)

__all__ = ["SnapshotRing", "AgentHealth", "DeltaSanitizer"]


class SnapshotRing:
    """Bounded ring of (iteration, policy_flat, opt_state) snapshots."""

    def __init__(self, capacity: int = 4) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._ring: deque[tuple[int, np.ndarray, dict | None]] = \
            deque(maxlen=capacity)

    def push(self, iteration: int, policy_flat: np.ndarray,
             opt_state: dict | None) -> None:
        """Record a known-good snapshot (arrays are copied on entry)."""
        self._ring.append((iteration, np.array(policy_flat, copy=True),
                           None if opt_state is None else {
                               "t": int(opt_state["t"]),
                               "m": np.array(opt_state["m"], copy=True),
                               "v": np.array(opt_state["v"], copy=True)}))

    def latest(self) -> tuple[int, np.ndarray, dict | None] | None:
        return self._ring[-1] if self._ring else None

    def __len__(self) -> int:
        return len(self._ring)


class AgentHealth:
    """Numerical-health monitor and recovery actuator for one agent.

    Lifecycle per search iteration::

        health.snapshot(iteration, policy.get_flat(), opt.export_state())
        delta, stats = updater.update_delta(rollout, rewards)
        anomaly = health.check_update(policy.get_flat(), delta, stats)
        if anomaly:             # recover mode
            health.rollback(policy, updater.optimizer)   # may escalate

    ``check_update`` is pure observation.  ``rollback`` restores the
    newest snapshot, multiplies the optimizer's learning rate by the
    configured backoff (floored at ``min_lr_fraction`` of the base
    rate), and raises :class:`NumericalAnomaly` once this lifetime has
    used up its rollback budget or has no snapshot to return to.
    """

    def __init__(self, config: GuardConfig, base_lr: float) -> None:
        self.config = config
        self.base_lr = float(base_lr)
        self.ring = SnapshotRing(config.snapshot_ring)
        self.loss_detector = LossSpikeDetector(
            config.loss_spike_zscore, config.loss_ewma_alpha,
            config.loss_warmup)
        self.ppo_detector = PPODivergenceDetector(
            config.kl_limit, config.ratio_limit)
        # local update-direction hygiene: same EWMA-norm screen the
        # parameter server applies to incoming deltas, so an exploding
        # (finite but huge) local update is caught before it is pushed
        self.delta_check = DeltaSanitizer.from_guard(config)
        self.num_rollbacks = 0
        self.last_anomaly: str | None = None

    def snapshot(self, iteration: int, policy_flat: np.ndarray,
                 opt_state: dict | None) -> None:
        """Record the pre-update state as last known good."""
        self.ring.push(iteration, policy_flat, opt_state)

    def check_update(self, policy_flat: np.ndarray, delta: np.ndarray,
                     stats=None) -> str | None:
        """Inspect one finished PPO update; returns the anomaly kind or
        ``None``.  Detection order: non-finite state first (cheap and
        unambiguous), then divergence statistics, then the loss-spike
        EWMA (which self-updates only on healthy observations)."""
        reason = self.delta_check.check(delta)
        if reason == "nonfinite":
            self.last_anomaly = "nonfinite:delta"
            return self.last_anomaly
        if reason == "outlier":
            self.last_anomaly = "delta_outlier:delta"
            return self.last_anomaly
        if not all_finite(policy_flat):
            self.last_anomaly = "nonfinite:policy"
            return self.last_anomaly
        if stats is not None:
            kind = self.ppo_detector.check(stats)
            if kind is not None:
                self.last_anomaly = f"{kind}:ppo"
                return self.last_anomaly
            if self.loss_detector.observe(stats.policy_loss
                                          + stats.value_loss):
                self.last_anomaly = "loss_spike:ppo"
                return self.last_anomaly
        self.last_anomaly = None
        return None

    def rollback(self, policy, optimizer) -> tuple[int, float]:
        """Restore the newest good snapshot and back off the learning
        rate; returns ``(iteration_restored, new_lr)``.  Escalates with
        :class:`NumericalAnomaly` when the lifetime rollback budget is
        spent or no snapshot exists."""
        entry = self.ring.latest()
        if entry is None:
            raise NumericalAnomaly(
                "rollback_exhausted", "agent",
                f"no snapshot to restore after {self.last_anomaly}")
        if self.num_rollbacks + 1 >= self.config.escalate_after:
            raise NumericalAnomaly(
                "rollback_exhausted", "agent",
                f"{self.num_rollbacks + 1} rollbacks this lifetime "
                f"(last anomaly: {self.last_anomaly})")
        iteration, policy_flat, opt_state = entry
        policy.set_flat(policy_flat)
        if opt_state is not None:
            optimizer.restore_state(opt_state)
        floor = self.base_lr * self.config.min_lr_fraction
        optimizer.lr = max(optimizer.lr * self.config.lr_backoff, floor)
        self.num_rollbacks += 1
        return iteration, optimizer.lr


class DeltaSanitizer:
    """Parameter-server ingress hygiene for exchanged update deltas.

    ``check`` returns ``None`` to accept a delta (and folds its norm
    into the EWMA baseline) or a rejection reason: ``"nonfinite"`` for
    NaN/Inf entries, ``"outlier"`` for a norm more than
    ``norm_factor`` x the EWMA of accepted norms once ``warmup``
    accepted pushes have seeded the baseline.  Rejection counters are
    public and exported/restored with parameter-server checkpoints.
    """

    def __init__(self, norm_factor: float = 50.0, warmup: int = 8,
                 ewma_alpha: float = 0.2) -> None:
        if norm_factor <= 1.0:
            raise ValueError("norm_factor must be > 1")
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.norm_factor = norm_factor
        self.warmup = warmup
        self.ewma_alpha = ewma_alpha
        self.accepted = 0
        self.ewma_norm = 0.0
        self.num_rejected_nonfinite = 0
        self.num_rejected_outlier = 0

    @classmethod
    def from_guard(cls, config: GuardConfig) -> "DeltaSanitizer":
        return cls(norm_factor=config.delta_norm_factor,
                   warmup=config.delta_warmup)

    @property
    def num_rejected(self) -> int:
        return self.num_rejected_nonfinite + self.num_rejected_outlier

    def check(self, delta: np.ndarray) -> str | None:
        """Accept (``None``) or give the rejection reason for ``delta``."""
        if not all_finite(delta):
            self.num_rejected_nonfinite += 1
            return "nonfinite"
        norm = float(np.linalg.norm(delta))
        if (self.accepted >= self.warmup
                and norm > self.norm_factor * max(self.ewma_norm, 1e-12)):
            self.num_rejected_outlier += 1
            return "outlier"
        if self.accepted == 0:
            self.ewma_norm = norm
        else:
            self.ewma_norm += self.ewma_alpha * (norm - self.ewma_norm)
        self.accepted += 1
        return None

    # -- checkpoint support --------------------------------------------
    def export_state(self) -> dict:
        return {"accepted": self.accepted, "ewma_norm": self.ewma_norm,
                "num_rejected_nonfinite": self.num_rejected_nonfinite,
                "num_rejected_outlier": self.num_rejected_outlier}

    def restore_state(self, state: dict) -> None:
        self.accepted = int(state["accepted"])
        self.ewma_norm = float(state["ewma_norm"])
        self.num_rejected_nonfinite = int(
            state.get("num_rejected_nonfinite", 0))
        self.num_rejected_outlier = int(state.get("num_rejected_outlier", 0))
