"""Substrate performance harness: baseline timings and regression smoke.

The NAS loop's throughput is bounded by how fast candidate networks train
(the paper's premise is that thousands of reward estimations per hour are
needed), so the substrate's hot paths are guarded by explicit wall-clock
baselines.  This module provides:

* :func:`run_suite` — timed micro-benchmarks of the dense training step
  (the reward-estimation inner loop) in both the compiled float32 default
  configuration and the seed-equivalent float64 per-parameter
  configuration, plus Conv1D forward+backward, a PPO update, an LSTM
  policy rollout, architecture compilation (cold and through a warm
  :class:`~repro.nas.plancache.PlanCache`), and one short end-to-end
  surrogate search through the full runner stack.
* :func:`write_results` / :func:`main` — the ``repro-bench`` console
  entry point; appends one timestamped record per run to
  ``BENCH_substrate.json`` so before/after numbers live in the repo.
* :func:`smoke` — the ``repro-smoke`` console entry point: the tier-1
  substrate test files plus one quick benchmark iteration; the cheap
  pre-merge check wired into ``make smoke``.

Run via ``make bench`` / ``make smoke`` or::

    PYTHONPATH=src python -m repro.perf --quick
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

__all__ = ["time_callable", "run_suite", "write_results", "main", "smoke"]

#: test files exercised by the smoke entry point (tier-1 substrate core)
SMOKE_TESTS = ["tests/test_nn_graph.py", "tests/test_nn_training.py",
               "tests/test_rl_ppo.py"]


def time_callable(fn, repeats: int = 30, warmup: int = 5) -> dict:
    """Time ``fn()`` and report best/mean/p50 milliseconds.

    ``best`` is the headline number: on shared machines it is the least
    noise-contaminated estimate of the achievable per-call cost.
    """
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    arr = np.asarray(samples) * 1e3
    return {"best_ms": float(arr.min()), "mean_ms": float(arr.mean()),
            "p50_ms": float(np.percentile(arr, 50)), "repeats": repeats}


# ----------------------------------------------------------------------
# benchmark workloads
# ----------------------------------------------------------------------
def _dense_model(dtype):
    from repro.nn import Dense, GraphModel

    m = GraphModel()
    m.add_input("x", (128,))
    m.add("h1", Dense(256, "relu"), ["x"])
    m.add("h2", Dense(256, "relu"), ["h1"])
    m.add("y", Dense(1), ["h2"])
    m.set_output("y")
    return m.build(np.random.default_rng(0), dtype=dtype)


def _dense_step(dtype, fused: bool):
    from repro.nn import Adam, FlatAdam

    m = _dense_model(dtype)
    opt = (FlatAdam(m.flatten_parameters()) if fused
           else Adam(m.parameters()))
    rng = np.random.default_rng(1)
    x = {"x": rng.standard_normal((256, 128)).astype(m.dtype)}
    g = (np.ones((256, 1)) / 256).astype(m.dtype)

    def step():
        m.forward(x, training=True)
        m.zero_grad()
        m.backward(g)
        opt.step()

    return step


def _conv_fwd_bwd(dtype):
    from repro.nn import Conv1D, Dense, Flatten, GraphModel, MaxPooling1D

    m = GraphModel()
    m.add_input("x", (1024, 1))
    m.add("c1", Conv1D(8, 7, activation="relu"), ["x"])
    m.add("p1", MaxPooling1D(2), ["c1"])
    m.add("c2", Conv1D(8, 5, activation="relu"), ["p1"])
    m.add("p2", MaxPooling1D(2), ["c2"])
    m.add("f", Flatten(), ["p2"])
    m.add("y", Dense(1), ["f"])
    m.set_output("y")
    m.build(np.random.default_rng(0), dtype=dtype)
    rng = np.random.default_rng(1)
    x = {"x": rng.standard_normal((32, 1024, 1)).astype(m.dtype)}
    g = (np.ones((32, 1)) / 32).astype(m.dtype)

    def step():
        m.forward(x, training=True)
        m.zero_grad()
        m.backward(g)

    return step


def _ppo_update():
    from repro.nas.spaces import combo_small
    from repro.rl import LSTMPolicy, PPOUpdater

    space = combo_small()
    policy = LSTMPolicy(space.action_dims, seed=0)
    updater = PPOUpdater(policy)
    rng = np.random.default_rng(0)
    rollout = policy.sample(11, rng)
    rewards = rng.random(11)
    return lambda: updater.update(rollout, rewards)


def _compile_batch():
    from repro.nas.builder import compile_architecture
    from repro.nas.spaces import combo_small
    from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head

    space = combo_small()
    rng = np.random.default_rng(0)
    archs = [space.random_architecture(rng) for _ in range(20)]
    return lambda: [compile_architecture(space, a.choices,
                                         COMBO_PAPER_SHAPES, combo_head())
                    for a in archs]


def _machine_calibration():
    # fixed, repo-independent GEMM + elementwise mix: measures how fast
    # *this machine, right now* runs the kind of work the suite times.
    # Recorded with every entry so the regression gate can compare
    # normalized (best_ms / calibration) across entries — on shared
    # containers the absolute numbers drift 20-30% day to day
    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 256)).astype(np.float32)
    b = rng.standard_normal((256, 256)).astype(np.float32)

    def fn():
        c = a @ b
        np.tanh(c, out=c)
        c += a
        return c @ b

    return fn


def _lstm_policy_step():
    # one full autoregressive rollout: horizon fused LSTM steps + head
    # GEMM + masked softmax sampling, at the paper's per-agent batch of 11
    from repro.nas.spaces import combo_small
    from repro.rl import LSTMPolicy

    space = combo_small()
    policy = LSTMPolicy(space.action_dims, seed=0)
    rng = np.random.default_rng(0)
    return lambda: policy.sample(11, rng)


def _plan_cache_hit():
    # warm-cache lookups for the same 20 architectures compiled by
    # compile_architecture_x20; the ratio of the two is the cache payoff
    from repro.nas.plancache import PlanCache
    from repro.nas.spaces import combo_small
    from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head

    space = combo_small()
    head = combo_head()
    cache = PlanCache()
    rng = np.random.default_rng(0)
    archs = [space.random_architecture(rng) for _ in range(20)]
    for a in archs:
        cache.get_or_compile(space, a.choices, COMBO_PAPER_SHAPES, head)
    return lambda: [cache.get_or_compile(space, a.choices,
                                         COMBO_PAPER_SHAPES, head)
                    for a in archs]


def _search_iteration():
    # end to end: a short a3c surrogate search (4 agents x 3 workers, 20
    # virtual minutes) through the full runner/broker/exchange stack,
    # with a cold reward model (and plan cache) per call
    from repro.hpc import NodeAllocation, TrainingCostModel
    from repro.nas.spaces import combo_small
    from repro.problems.combo import COMBO_PAPER_SHAPES, combo_head
    from repro.rewards import SurrogateReward
    from repro.search import SearchConfig, run_search

    space = combo_small()
    cfg = SearchConfig(method="a3c", allocation=NodeAllocation(32, 4, 3),
                       wall_time=20 * 60.0, seed=1)

    def iteration():
        reward = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                                 TrainingCostModel.combo_paper(),
                                 epochs=1, train_fraction=0.1,
                                 timeout=600.0, log_params_opt=6.5, seed=7)
        return run_search(space, reward, cfg)

    return iteration


def run_suite(repeats: int = 30) -> dict:
    """Run every benchmark; returns ``{name: timing dict}``.

    ``dense_train_step_float64_unfused`` reproduces the seed
    configuration (float64 weights, per-parameter Adam) and
    ``dense_train_step`` is the shipped default (float32, compiled plan,
    fused flat Adam); their ratio is the substrate speedup.
    """
    suite = {
        "machine_calibration": _machine_calibration(),
        "dense_train_step": _dense_step(np.float32, fused=True),
        "dense_train_step_float64_unfused": _dense_step(np.float64,
                                                        fused=False),
        "conv1d_fwd_bwd": _conv_fwd_bwd(np.float32),
        "ppo_update": _ppo_update(),
        "lstm_policy_step": _lstm_policy_step(),
        "compile_architecture_x20": _compile_batch(),
        "plan_cache_hit_x20": _plan_cache_hit(),
        "search_iteration": _search_iteration(),
    }
    # the end-to-end search is ~100x a micro-benchmark call; fewer
    # repeats keep 'make bench' under a minute without losing best_ms
    slow_repeats = {"search_iteration": max(3, repeats // 5)}
    results = {}
    for name, fn in suite.items():
        results[name] = time_callable(fn, repeats=slow_repeats.get(name,
                                                                   repeats))
        print(f"{name:36s} best {results[name]['best_ms']:8.3f} ms  "
              f"mean {results[name]['mean_ms']:8.3f} ms")
    fast = results["dense_train_step"]["best_ms"]
    slow = results["dense_train_step_float64_unfused"]["best_ms"]
    results["dense_step_speedup"] = round(slow / fast, 3)
    print(f"{'dense_step_speedup':36s} {results['dense_step_speedup']:.2f}x "
          f"(float64 unfused / float32 fused)")
    return results


def write_results(path: str | Path, results: dict,
                  label: str | None = None) -> None:
    """Append one benchmark record to a JSON file (list of runs).

    ``label`` names the entry ("seed", "PR 6: ...", ...) so the history
    in ``BENCH_substrate.json`` reads as a changelog; ``make bench``
    passes one via ``BENCH_LABEL``.
    """
    path = Path(path)
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "results": results,
    }
    if label:
        record["label"] = label
    runs = []
    if path.exists():
        try:
            runs = json.loads(path.read_text())
        except (ValueError, OSError):
            runs = []
        if not isinstance(runs, list):
            runs = [runs]
    runs.append(record)
    path.write_text(json.dumps(runs, indent=2) + "\n")
    print(f"wrote {path} ({len(runs)} run{'s' if len(runs) != 1 else ''})")


# ----------------------------------------------------------------------
# console entry points
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench", description="substrate performance baselines")
    parser.add_argument("--quick", action="store_true",
                        help="few repeats; for smoke checks, not baselines")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per benchmark (default 30)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="append results to this JSON file "
                             "(e.g. BENCH_substrate.json)")
    parser.add_argument("--label", default=None,
                        help="name this entry in the results file")
    args = parser.parse_args(argv)
    repeats = args.repeats or (5 if args.quick else 30)
    results = run_suite(repeats=repeats)
    if args.output:
        write_results(args.output, results, label=args.label)
    return 0


def smoke(argv: list[str] | None = None) -> int:
    """Tier-1 substrate tests + one quick benchmark pass."""
    parser = argparse.ArgumentParser(
        prog="repro-smoke",
        description="substrate smoke check: core tests + quick bench")
    parser.add_argument("--no-chaos", action="store_true",
                        help="skip the light fault-injection pass")
    parser.add_argument("--no-verify", action="store_true",
                        help="skip the eager-vs-compiled differential pass")
    args = parser.parse_args(argv)
    root = Path(__file__).resolve().parents[2]
    code = subprocess.call(
        [sys.executable, "-m", "pytest", "-q", *SMOKE_TESTS], cwd=root)
    if code != 0:
        print("smoke: tests FAILED")
        return code
    print("smoke: tests passed; timing one quick benchmark pass")
    run_suite(repeats=3)
    if not args.no_verify:
        # differential-test a handful of sampled architectures per space
        # (eager walk vs. compiled plan) and append the outcome to
        # VERIFY_report.json so agreement is tracked across commits
        print("smoke: differential pass (8 archs/space, eager vs. compiled)")
        from repro.verify.diff import verify_report, write_verify_report
        report = verify_report(per_space=8)
        write_verify_report(root / "VERIFY_report.json", report)
        if not report["ok"]:
            for problem, per_dtype in report["spaces"].items():
                for dtype, row in per_dtype.items():
                    for failure in row["failures"]:
                        print(f"smoke: diff FAIL — {failure}")
            return 1
        print("smoke: eager and compiled paths agree")
    if args.no_chaos:
        return 0
    # one light-fault row against the fault-free baseline keeps smoke
    # quick; 'make chaos' runs the full none/light/moderate/heavy matrix
    print("smoke: light fault-injection pass (see 'make chaos' for the "
          "full matrix)")
    from repro.search.chaos import (check_numeric_rows, check_rows,
                                    fault_matrix, numeric_matrix)
    rows = fault_matrix(minutes=10.0, levels=("none", "light"))
    problems = check_rows(rows, tolerance=0.10)
    for problem in problems:
        print(f"smoke: chaos FAIL — {problem}")
    if problems:
        return 1
    print("smoke: fault smoke within tolerance")
    # light NaN-injection pass: inject numeric faults into one a3c
    # search under guard-mode=recover and require the health layer to
    # heal it (rollback + resurrection, nothing permanently lost); the
    # outcome rides along in VERIFY_report.json next to the
    # differential record so recovery is tracked across commits
    print("smoke: light NaN-injection pass (health layer, a3c)")
    from repro.verify.diff import write_verify_report
    health_rows = numeric_matrix(minutes=40.0, methods=("a3c",))
    health_problems = check_numeric_rows(health_rows)
    write_verify_report(root / "VERIFY_report.json",
                        {"kind": "health_smoke",
                         "ok": not health_problems, "rows": health_rows})
    for problem in health_problems:
        print(f"smoke: health FAIL — {problem}")
    if health_problems:
        return 1
    print("smoke: health layer recovered from injected numeric faults")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
