"""Custom multi-objective rewards.

§5 notes that "other metrics can be specified, such as model size,
training time, and inference time for a fixed accuracy using a custom
reward function", and §7 lists multi-objective NAS as future work.
:class:`CompositeReward` implements that: it wraps a base reward model
and mixes its accuracy reward with parameter-count and training-time
objectives, so searches can be steered toward small/fast architectures
explicitly rather than only through the timeout.
"""

from __future__ import annotations

import numpy as np

from ..nas.arch import Architecture
from .base import EvalResult, RewardModel

__all__ = ["CompositeReward"]


class CompositeReward(RewardModel):
    """reward = accuracy − w_p·size_penalty − w_t·time_penalty.

    Parameters
    ----------
    base:
        The accuracy reward model (training or surrogate).
    params_weight, params_target:
        Penalty ``w_p · max(0, log10(P) − log10(target))`` applied above
        ``params_target`` trainable parameters.
    time_weight, time_target:
        Same shape for the (modelled or measured) training duration in
        seconds.
    accuracy_floor:
        Below this accuracy the size/time terms are ignored and the raw
        accuracy is returned — "for a fixed accuracy" means size only
        matters between architectures that already work.
    """

    def __init__(self, base: RewardModel,
                 params_weight: float = 0.0, params_target: float = 1e6,
                 time_weight: float = 0.0, time_target: float = 60.0,
                 accuracy_floor: float = 0.0) -> None:
        if params_weight < 0 or time_weight < 0:
            raise ValueError("weights must be non-negative")
        if params_target <= 0 or time_target <= 0:
            raise ValueError("targets must be positive")
        self.base = base
        self.params_weight = params_weight
        self.params_target = params_target
        self.time_weight = time_weight
        self.time_target = time_target
        self.accuracy_floor = accuracy_floor

    def evaluate(self, arch: Architecture, agent_seed: int = 0) -> EvalResult:
        res = self.base.evaluate(arch, agent_seed)
        if res.reward < self.accuracy_floor:
            return res
        penalty = 0.0
        if self.params_weight and res.params > 0:
            over = np.log10(res.params) - np.log10(self.params_target)
            penalty += self.params_weight * max(0.0, over)
        if self.time_weight and res.duration > 0:
            over = np.log10(res.duration) - np.log10(self.time_target)
            penalty += self.time_weight * max(0.0, over)
        return EvalResult(float(res.reward - penalty), res.duration,
                          res.params, res.timed_out)
