"""Surrogate reward model for at-scale search simulation.

A 256–1,024-node, 360-minute search evaluates tens of thousands of
architectures; really training each one is exactly the cost the paper
needed a supercomputer for.  The surrogate replaces the training run with
a seeded deterministic quality function over the architecture plus
agent-keyed noise, preserving the properties the search experiments
measure:

* **learnable structure** — the quality is a sum of per-decision
  affinities plus adjacent-decision synergies (a Markovian signal, which
  is precisely the structure RL-based NAS exploits, §1) and a smooth
  capacity term peaking at a space-specific parameter count;
* **agent-keyed stochasticity** — the same architecture gets a different
  reward from different agents (random weight initialization with
  agent-specific seeds, §5), with a benchmark-tunable noise scale (NT3's
  1-epoch/batch-20 estimates are very noisy: the paper saw 1.0 vs 0.4
  for the same network);
* **fidelity coupling** — training-data fraction scales both the reward
  (less estimation bias) and the modelled duration; runs exceeding the
  timeout are truncated and heavily penalized, reproducing the §5.4
  regime where 40% data makes most early architectures time out.
"""

from __future__ import annotations

import zlib

import numpy as np

from ..hpc.costmodel import TrainingCostModel
from ..nas.arch import Architecture
from ..nas.ops import (ActivationOp, ConnectOp, Conv1DOp, DenseOp,
                       DropoutOp, MaxPooling1DOp, Operation)
from ..nas.space import Structure
from .base import EvalResult, RewardModel

__all__ = ["SurrogateReward", "op_prior"]

_ACT_PRIOR = {"relu": 0.5, "tanh": 0.25, "linear": 0.15, "sigmoid": -0.4,
              "softmax": -0.4}


def op_prior(op: Operation) -> float:
    """Trainability prior of an operation under 1-epoch low-fidelity
    training — what real reward estimation systematically favors.

    ReLU optimizes better than saturating activations at short budgets;
    light dropout helps generalization while heavy dropout starves a
    single epoch; convolution + pooling are the right primitives for the
    long 1-D expression inputs; skip connections mildly help.  These
    priors correlate the surrogate's landscape with what actually
    post-trains well, without removing the per-decision structure the
    RL agent must learn.
    """
    if isinstance(op, DenseOp):
        return _ACT_PRIOR.get(op.activation, 0.0)
    if isinstance(op, ActivationOp):
        return _ACT_PRIOR.get(op.activation, 0.0)
    if isinstance(op, DropoutOp):
        if op.rate <= 0.1:
            return 0.2
        if op.rate <= 0.25:
            return 0.0
        return -0.3
    if isinstance(op, Conv1DOp):
        return 0.35
    if isinstance(op, MaxPooling1DOp):
        return 0.25
    if isinstance(op, ConnectOp):
        return 0.15 if op.refs else 0.0
    return 0.0  # Identity, Add, anything unknown


class SurrogateReward(RewardModel):
    """Deterministic seeded architecture-quality surrogate.

    Parameters
    ----------
    space, input_shapes, head_ops:
        Define the compile step (parameter counts are exact, via the
        plan compiler).
    cost_model:
        Maps parameter count → single-node training seconds.
    epochs, train_fraction, timeout:
        Reward-estimation fidelity knobs (§3.3/§5.4).
    reward_base, reward_amp:
        The noiseless reward is
        ``reward_base + reward_amp·tanh(quality)``; defaults give the
        Combo-like range of Fig. 4.
    noise:
        Std of the agent-keyed gaussian reward noise.
    log_params_opt, capacity_sigma, capacity_weight:
        The capacity prior: quality is boosted near ``10**log_params_opt``
        trainable parameters — the mechanism by which agents "learn to
        generate architectures that have a shorter training time with
        higher rewards" (§5.1).
    seed:
        Seeds the hidden affinity tables; two surrogates with the same
        seed define the same optimization landscape.
    """

    def __init__(self, space: Structure,
                 input_shapes: dict[str, tuple[int, ...]],
                 head_ops: list[Operation],
                 cost_model: TrainingCostModel,
                 epochs: int = 1, train_fraction: float = 1.0,
                 timeout: float | None = 600.0,
                 reward_base: float = 0.1, reward_amp: float = 0.5,
                 noise: float = 0.05,
                 log_params_opt: float = 6.2, capacity_sigma: float = 0.8,
                 capacity_weight: float = 1.0,
                 fidelity_weight: float = 0.15,
                 seed: int = 0) -> None:
        if not 0.0 < train_fraction <= 1.0:
            raise ValueError("train_fraction must be in (0, 1]")
        self.space = space
        self.input_shapes = dict(input_shapes)
        self.head_ops = list(head_ops)
        self.cost_model = cost_model
        self.epochs = epochs
        self.train_fraction = train_fraction
        self.timeout = timeout
        self.reward_base = reward_base
        self.reward_amp = reward_amp
        self.noise = noise
        self.log_params_opt = log_params_opt
        self.capacity_sigma = capacity_sigma
        self.capacity_weight = capacity_weight
        self.fidelity_weight = fidelity_weight
        self.seed = seed

        rng = np.random.default_rng(seed)
        dims = space.action_dims
        # per-decision affinity = trainability prior + seeded noise: the
        # prior correlates the landscape with real short-budget training,
        # the noise makes each landscape instance distinct
        self._affinity = [
            np.array([op_prior(op) for op in node.ops])
            + rng.normal(0.0, 0.5, size=node.num_ops)
            for node in space.variable_nodes]
        self._synergy = [rng.normal(0.0, 0.35, size=(dims[i], dims[i + 1]))
                         for i in range(len(dims) - 1)]
        self._param_cache: dict[tuple[int, ...], int] = {}

    # -- internals -----------------------------------------------------
    def _plan(self, arch: Architecture):
        return self._compile_plan(self.space, arch.choices,
                                  self.input_shapes, self.head_ops)

    def prefetch_plan(self, arch: Architecture) -> None:
        if self.plan_cache is None:
            return
        try:
            self._plan(arch)
        except (ValueError, KeyError):
            pass  # invalid architecture: surfaces at evaluation time

    def params_of(self, arch: Architecture) -> int:
        """Exact parameter count, memoized per choice tuple."""
        key = arch.choices
        if key not in self._param_cache:
            if len(self._param_cache) > 200_000:  # bound memory at scale
                self._param_cache.clear()
            self._param_cache[key] = self._plan(arch).total_params
        return self._param_cache[key]

    def quality(self, arch: Architecture) -> float:
        """Noise-free architecture quality (hidden objective)."""
        c = arch.choices
        q = sum(self._affinity[i][c[i]] for i in range(len(c)))
        q += sum(self._synergy[i][c[i], c[i + 1]] for i in range(len(c) - 1))
        q /= max(1, len(c))

        log_p = np.log10(max(self.params_of(arch), 1))
        cap = np.exp(-0.5 * ((log_p - self.log_params_opt)
                             / self.capacity_sigma) ** 2)
        return float(q + self.capacity_weight * (cap - 0.5))

    def noiseless_reward(self, arch: Architecture,
                         train_fraction: float | None = None) -> float:
        f = self.train_fraction if train_fraction is None else train_fraction
        r = self.reward_base + self.reward_amp * np.tanh(self.quality(arch))
        return float(r + self.fidelity_weight * (f - 0.5))

    # -- RewardModel API -------------------------------------------------
    def evaluate(self, arch: Architecture, agent_seed: int = 0,
                 train_fraction: float | None = None) -> EvalResult:
        fraction = self.train_fraction if train_fraction is None \
            else train_fraction
        try:
            params = self.params_of(arch)
        except (ValueError, KeyError):
            return EvalResult(self.FAILURE_REWARD, self.cost_model.startup, 0)

        key = zlib.crc32(f"{self.seed}|{agent_seed}|{arch}".encode())
        noise = np.random.default_rng(key).normal(0.0, self.noise)
        reward = self.noiseless_reward(arch, train_fraction=fraction) + noise

        full_duration = self.cost_model.duration(params, self.epochs,
                                                 fraction)
        timed_out = self.timeout is not None and full_duration > self.timeout
        if timed_out:
            # partial training: reward collapses toward the failure floor
            progress = self.timeout / full_duration
            reward = self.FAILURE_REWARD + (reward - self.FAILURE_REWARD) \
                * progress ** 2
            duration = self.timeout
        else:
            duration = full_duration
        return EvalResult(float(np.clip(reward, -1.0, 1.0)), duration,
                          params, timed_out)
