"""Reward-estimation strategies (§3.3)."""

from .adaptive import AdaptiveFidelityReward
from .base import EvalResult, RewardModel
from .composite import CompositeReward
from .surrogate import SurrogateReward
from .tabular import TableMiss, TabularReward
from .training import TrainingReward, arch_seed

__all__ = ['AdaptiveFidelityReward', 'CompositeReward', 'EvalResult', 'RewardModel', 'SurrogateReward', 'TableMiss', 'TabularReward', 'TrainingReward', 'arch_seed']
