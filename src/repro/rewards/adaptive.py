"""Adaptive reward estimation (§7 future work).

§3.3 notes that low-fidelity training biases reward estimates and cites
work that gradually increases fidelity as the search progresses; §7
lists "developing adaptive reward estimation approaches" as future
work.  :class:`AdaptiveFidelityReward` implements the natural schedule:
wrap any reward model whose ``evaluate`` accepts a ``train_fraction``
override (both :class:`~repro.rewards.training.TrainingReward` and
:class:`~repro.rewards.surrogate.SurrogateReward` do) and raise the
fraction at evaluation-count milestones.

Early search thus screens many architectures cheaply (few hit the
timeout) while the late search ranks survivors at high fidelity — the
compromise Fig. 11 shows neither fixed extreme achieves.
"""

from __future__ import annotations

from ..nas.arch import Architecture
from .base import EvalResult, RewardModel

__all__ = ["AdaptiveFidelityReward"]


class AdaptiveFidelityReward(RewardModel):
    """Evaluation-count-scheduled training-data fraction.

    Parameters
    ----------
    base:
        The wrapped reward model.
    schedule:
        ``[(evals_threshold, fraction), ...]``; the fraction of the last
        entry whose threshold has been reached applies.  Must start at
        threshold 0 and be strictly increasing in both columns.
    """

    def __init__(self, base: RewardModel,
                 schedule: list[tuple[int, float]]) -> None:
        if not schedule:
            raise ValueError("schedule must be non-empty")
        if schedule[0][0] != 0:
            raise ValueError("schedule must start at evaluation 0")
        for (t0, f0), (t1, f1) in zip(schedule, schedule[1:]):
            if t1 <= t0 or f1 <= f0:
                raise ValueError(
                    "schedule must be strictly increasing in both "
                    "thresholds and fractions")
        for _, f in schedule:
            if not 0.0 < f <= 1.0:
                raise ValueError("fractions must be in (0, 1]")
        self.base = base
        self.schedule = list(schedule)
        self.evaluations = 0

    def current_fraction(self) -> float:
        fraction = self.schedule[0][1]
        for threshold, f in self.schedule:
            if self.evaluations >= threshold:
                fraction = f
        return fraction

    def evaluate(self, arch: Architecture, agent_seed: int = 0) -> EvalResult:
        fraction = self.current_fraction()
        self.evaluations += 1
        return self.base.evaluate(arch, agent_seed,
                                  train_fraction=fraction)
