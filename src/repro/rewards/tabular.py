"""Tabular reward model: O(1) lookups from a precomputed bench table.

NAS-Bench-201's core trick, applied to the repro spaces: once a space
has been swept into an :class:`~repro.bench.table.ArchTable`, a search
no longer trains anything — every reward estimation is a dictionary
read keyed by the architecture's isomorphism signature
(:class:`~repro.nas.plancache.SignatureResolver`), so structurally
identical action sequences hit the same row.

Properties the benchmark mode relies on:

* **referential transparency** — the same architecture maps to the same
  :class:`~repro.rewards.base.EvalResult` on every call, for every
  ``agent_seed``, in every process, over every evaluator backend.  That
  is what makes search-method comparisons exact: a3c / a2c / rdm /
  evolution replayed against one table see the *same* reward landscape,
  and a seeded search's determinism fingerprint is bit-identical no
  matter which backend serves the lookups;
* **configurable miss policy** — a lookup for a class the table does
  not hold either raises (``"error"``, the honest benchmark default),
  returns a fixed fallback reward (``"fallback"``), or surfaces the
  paper's ``FAILURE_REWARD`` (``"failure"``).  Invalid architectures
  (compile errors) are failures under every policy, matching
  :class:`~repro.rewards.training.TrainingReward`;
* **durations from the table** — the stored (real or modelled) duration
  is served back, so a virtual-time search over the simulated Balsam
  service behaves like the original sweep's cost landscape.
"""

from __future__ import annotations

from ..nas.arch import Architecture
from ..nas.plancache import SignatureResolver
from ..nas.space import Structure
from .base import EvalResult, RewardModel

__all__ = ["TableMiss", "TabularReward"]

_MISS_POLICIES = ("error", "fallback", "failure")


class TableMiss(KeyError):
    """An architecture's class is not in the table (miss policy
    ``"error"``)."""


class TabularReward(RewardModel):
    """Serves rewards from a loaded arch→metrics table.

    Parameters
    ----------
    table:
        A loaded :class:`~repro.bench.table.ArchTable`.
    resolver:
        The arch→signature resolver; must be built over the same space
        and compile context the table was swept with.
    miss:
        Lookup-miss policy: ``"error"`` | ``"fallback"`` | ``"failure"``.
    fallback_reward:
        Reward served on a miss under ``"fallback"``.
    """

    def __init__(self, table, resolver: SignatureResolver,
                 miss: str = "error",
                 fallback_reward: float = 0.0) -> None:
        if miss not in _MISS_POLICIES:
            raise ValueError(
                f"unknown miss policy {miss!r}; choose from "
                f"{_MISS_POLICIES}")
        if table.space_name != resolver.structure.name:
            raise ValueError(
                f"table is for space {table.space_name!r}, resolver for "
                f"{resolver.structure.name!r}")
        self.table = table
        self.resolver = resolver
        self.miss = miss
        self.fallback_reward = float(fallback_reward)
        #: lookup tallies (hits include repeated hits of one class)
        self.hits = 0
        self.misses = 0

    @classmethod
    def from_table_dir(cls, directory, space: Structure,
                       input_shapes: dict, head_ops=None,
                       miss: str = "error",
                       fallback_reward: float = 0.0) -> "TabularReward":
        """Load a table directory and wire the resolver in one call."""
        from ..bench.table import ArchTable
        resolver = SignatureResolver(space, input_shapes, head_ops)
        return cls(ArchTable.load(directory), resolver, miss=miss,
                   fallback_reward=fallback_reward)

    # -- RewardModel API -----------------------------------------------
    def prefetch_plan(self, arch: Architecture) -> None:
        if self.plan_cache is None:
            return
        if self.resolver.plan_cache is None:
            # adopt the search's shared compile cache so gathers warm it
            self.resolver.plan_cache = self.plan_cache
        self.resolver.try_signature(arch)

    def evaluate(self, arch: Architecture,
                 agent_seed: int = 0) -> EvalResult:
        """Table lookup; ``agent_seed`` is deliberately ignored — the
        table is one fixed observer's ground truth."""
        sig = self.resolver.try_signature(arch)
        if sig is None:
            # invalid architecture: a failure under every policy, like
            # the training reward's compile-error path
            return EvalResult(self.FAILURE_REWARD, 0.0, 0)
        row = self.table.get(sig)
        if row is not None:
            self.hits += 1
            return EvalResult(row.reward, row.duration, row.params,
                              row.timed_out)
        self.misses += 1
        if self.miss == "error":
            raise TableMiss(
                f"architecture {arch} (class {sig[:12]}…) is not in the "
                f"table ({len(self.table)} rows)")
        if self.miss == "fallback":
            return EvalResult(self.fallback_reward, 0.0, 0)
        return EvalResult(self.FAILURE_REWARD, 0.0, 0)
