"""Reward estimation by actually training the generated network.

Implements the paper's protocol: build the architecture with
agent-specific random weight initialization, train for a small number of
epochs on a fraction of the training data with a timeout, and return the
validation metric (R² or accuracy) as the reward.
"""

from __future__ import annotations

import time
import zlib

import numpy as np

from ..nas.arch import Architecture
from ..nas.builder import compile_architecture
from ..nn.training import Trainer
from ..problems.base import Problem
from .base import EvalResult, RewardModel

__all__ = ["TrainingReward", "arch_seed"]


def arch_seed(base_seed: int, agent_seed: int, arch: Architecture) -> int:
    """Deterministic seed for (run, agent, architecture).

    Uses crc32 of the stable string form rather than Python's ``hash``
    (which is salted per interpreter) so runs reproduce across processes.
    """
    return zlib.crc32(f"{base_seed}|{agent_seed}|{arch}".encode()) & 0x7FFFFFFF


class TrainingReward(RewardModel):
    """Reward = validation metric after (low-fidelity) training.

    Parameters mirror §5's reward-estimation setup: ``epochs=1``, a
    timeout, and a training-data fraction (10% for Combo at paper scale,
    full data for Uno/NT3).
    """

    def __init__(self, problem: Problem, epochs: int = 1,
                 timeout: float | None = None, train_fraction: float = 1.0,
                 base_seed: int = 0,
                 clock=time.monotonic, guard=None) -> None:
        self.problem = problem
        self.epochs = epochs
        self.timeout = timeout
        self.train_fraction = train_fraction
        self.base_seed = base_seed
        self.clock = clock
        #: optional repro.health.GuardConfig threaded into each Trainer
        self.guard = guard
        #: evaluations that ended in a structured numerical-guard abort —
        #: distinct from invalid-architecture failures, which raise
        #: during build/training instead
        self.num_nonfinite = 0

    def _plan(self, arch: Architecture):
        problem = self.problem
        if self.plan_cache is not None:
            return self.plan_cache.get_or_compile(
                problem.space, arch.choices, problem.input_shapes,
                problem.head_ops)
        return compile_architecture(problem.space, arch.choices,
                                    problem.input_shapes, problem.head_ops)

    def prefetch_plan(self, arch: Architecture) -> None:
        if self.plan_cache is None:
            return
        try:
            self._plan(arch)
        except (ValueError, KeyError, FloatingPointError, OverflowError):
            pass  # invalid architecture: surfaces at evaluation time

    def evaluate(self, arch: Architecture, agent_seed: int = 0,
                 train_fraction: float | None = None) -> EvalResult:
        problem = self.problem
        fraction = self.train_fraction if train_fraction is None \
            else train_fraction
        seed = arch_seed(self.base_seed, agent_seed, arch)
        start = self.clock()
        try:
            plan = self._plan(arch)
            model = plan.materialize(np.random.default_rng(seed))
        except (ValueError, KeyError, FloatingPointError, OverflowError):
            # invalid architecture (e.g. pooling exhausted the sequence)
            # or a numerically degenerate build
            return EvalResult(self.FAILURE_REWARD, self.clock() - start, 0)

        trainer = Trainer(loss=problem.loss, metric=problem.metric,
                          batch_size=problem.batch_size, epochs=self.epochs,
                          timeout=self.timeout,
                          train_fraction=fraction,
                          seed=seed, clock=self.clock, guard=self.guard)
        ds = problem.dataset
        try:
            hist = trainer.fit(model, ds.x_train, ds.y_train,
                               ds.x_val, ds.y_val)
        except (FloatingPointError, OverflowError):
            # numerical blowup mid-training (exploding activations or
            # gradients): a bad architecture, not a crashed agent
            return EvalResult(self.FAILURE_REWARD, self.clock() - start,
                              plan.total_params)
        if hist.nonfinite:
            # structured guard abort: the architecture diverged
            # numerically; map it to the failure reward rather than
            # letting NaN leak into the reward stream
            self.num_nonfinite += 1
            return EvalResult(self.FAILURE_REWARD, self.clock() - start,
                              plan.total_params, hist.timed_out,
                              nonfinite=True)
        reward = hist.val_metric
        if not np.isfinite(reward):
            reward = self.FAILURE_REWARD
        # R² is unbounded below; the paper's reward scale floors at -1
        reward = max(float(reward), self.FAILURE_REWARD)
        return EvalResult(reward, self.clock() - start,
                          plan.total_params, hist.timed_out)
