"""Reward-estimation interface (§3.3).

A reward model turns an architecture into a scalar reward plus the cost
of obtaining it.  Two implementations exist:

* :class:`~repro.rewards.training.TrainingReward` really trains the
  numpy model (used for post-training experiments and laptop-scale
  searches);
* :class:`~repro.rewards.surrogate.SurrogateReward` computes a seeded
  deterministic architecture-quality score plus agent-keyed noise and a
  cost-model duration (used for at-scale simulated searches).

Both honour the paper's protocol detail that the *same architecture
evaluated by different agents gets different rewards* (agent-specific
random weight initialization), which is why the evaluation cache is
agent-local.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nas.arch import Architecture

__all__ = ["EvalResult", "RewardModel"]


@dataclass(frozen=True)
class EvalResult:
    """Outcome of one reward estimation."""

    reward: float
    duration: float          # single-node wall seconds (real or modelled)
    params: int              # trainable parameters of the architecture
    timed_out: bool = False
    #: the evaluation ended in a numerical-guard abort (repro.health):
    #: the reward is FAILURE_REWARD by construction, and the search layer
    #: can distinguish "diverged numerically" from "bad architecture"
    nonfinite: bool = False

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")


class RewardModel:
    """Maps (architecture, agent seed) to an :class:`EvalResult`."""

    #: reward granted when an architecture fails to compile/train at all
    FAILURE_REWARD = -1.0

    #: optional shared :class:`~repro.nas.plancache.PlanCache`; attached
    #: by the search runtime so compiled plans amortize across agents
    plan_cache = None

    def evaluate(self, arch: Architecture, agent_seed: int = 0) -> EvalResult:
        raise NotImplementedError

    def set_plan_cache(self, cache) -> None:
        """Attach a shared compile cache (plans are immutable, so one
        cache safely serves every agent of a search)."""
        self.plan_cache = cache

    def prefetch_plan(self, arch: Architecture) -> None:
        """Warm the plan cache for ``arch`` before evaluation.

        The broker calls this once per distinct architecture of a batch
        so the compile cost is paid (and shared) at gather time.  The
        base implementation is a no-op; subclasses that compile override
        it.  Must never raise — invalid architectures surface as failure
        rewards at evaluation time, not here.
        """

    def _compile_plan(self, space, choices, input_shapes, head_ops):
        """Compile through the attached plan cache, or directly when
        none is attached (identical plans either way)."""
        from ..nas.builder import compile_architecture
        if self.plan_cache is not None:
            return self.plan_cache.get_or_compile(space, choices,
                                                  input_shapes, head_ops)
        return compile_architecture(space, choices, input_shapes, head_ops)
