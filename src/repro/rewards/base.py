"""Reward-estimation interface (§3.3).

A reward model turns an architecture into a scalar reward plus the cost
of obtaining it.  Two implementations exist:

* :class:`~repro.rewards.training.TrainingReward` really trains the
  numpy model (used for post-training experiments and laptop-scale
  searches);
* :class:`~repro.rewards.surrogate.SurrogateReward` computes a seeded
  deterministic architecture-quality score plus agent-keyed noise and a
  cost-model duration (used for at-scale simulated searches).

Both honour the paper's protocol detail that the *same architecture
evaluated by different agents gets different rewards* (agent-specific
random weight initialization), which is why the evaluation cache is
agent-local.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nas.arch import Architecture

__all__ = ["EvalResult", "RewardModel"]


@dataclass(frozen=True)
class EvalResult:
    """Outcome of one reward estimation."""

    reward: float
    duration: float          # single-node wall seconds (real or modelled)
    params: int              # trainable parameters of the architecture
    timed_out: bool = False
    #: the evaluation ended in a numerical-guard abort (repro.health):
    #: the reward is FAILURE_REWARD by construction, and the search layer
    #: can distinguish "diverged numerically" from "bad architecture"
    nonfinite: bool = False

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError("duration must be non-negative")


class RewardModel:
    """Maps (architecture, agent seed) to an :class:`EvalResult`."""

    #: reward granted when an architecture fails to compile/train at all
    FAILURE_REWARD = -1.0

    def evaluate(self, arch: Architecture, agent_seed: int = 0) -> EvalResult:
        raise NotImplementedError
