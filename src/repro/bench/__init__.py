"""Tabular NAS benchmark mode (NAS-Bench-201-style, for this paper's
spaces): sweep a (capped) search space once into a crash-consistent
arch→metrics table, then replay searches against it with O(1) reward
lookups and *exact* regret analytics.  See ``docs/benchmark.md``.
"""

from .subspace import capped_space, enumerate_space, enumeration_count
from .sweep import SpaceSweeper, SweepConfig, SweepReport, sweep_space
from .table import (TABLE_FORMAT_VERSION, ArchTable, TableRow,
                    TableWriter)

__all__ = ["ArchTable", "SpaceSweeper", "SweepConfig", "SweepReport",
           "TABLE_FORMAT_VERSION", "TableRow", "TableWriter",
           "capped_space", "enumerate_space", "enumeration_count",
           "sweep_space"]
