"""Entry point: ``python -m repro.bench``."""

import sys

from .cli import main

sys.exit(main())
