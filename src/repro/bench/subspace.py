"""Sub-space construction and deterministic space enumeration.

A benchmark table is only buildable for a space you can afford to sweep.
The paper's spaces are exactly enumerable in principle (§3.1 computes
their cardinalities) but astronomically large in practice, so this
module provides the two standard reductions:

* :func:`capped_space` — rebuild a :class:`~repro.nas.space.Structure`
  with every variable node truncated to its first ``max_ops`` options.
  Topology, constant nodes, mirror targets and extra edges are
  preserved, so the capped space is a true sub-space whose cardinality
  is exactly ``prod(min(max_ops, num_ops))``;
* :func:`enumerate_space` — a deterministic, duplicate-free architecture
  stream: exhaustive mixed-radix enumeration when the cardinality fits
  the cap, otherwise a seeded stratified sample (every option of every
  decision appears in near-equal proportion — a Latin-hypercube-style
  column design) of exactly ``cap`` distinct architectures.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..nas.arch import Architecture
from ..nas.nodes import ConstantNode, MirrorNode, VariableNode
from ..nas.space import Block, Cell, Structure

__all__ = ["capped_space", "enumerate_space", "enumeration_count"]


def capped_space(space: Structure, max_ops: int,
                 name: str | None = None) -> Structure:
    """A sub-space of ``space`` keeping each decision's first
    ``max_ops`` options (nodes with fewer options keep them all)."""
    if max_ops < 1:
        raise ValueError("max_ops must be at least 1")
    out = Structure(name or f"{space.name}#cap{max_ops}",
                    list(space.inputs),
                    output_sources=(list(space.output_sources)
                                    if isinstance(space.output_sources, list)
                                    else space.output_sources))
    mapping: dict[int, VariableNode | ConstantNode] = {}
    for cell in space.cells:
        new_cell = Cell(cell.name)
        for block in cell.blocks:
            new_block = Block(block.name, list(block.inputs))
            for idx, node in enumerate(block.nodes):
                if isinstance(node, VariableNode):
                    new_node = VariableNode(node.name, node.ops[:max_ops])
                elif isinstance(node, ConstantNode):
                    new_node = ConstantNode(node.name, node.op)
                elif isinstance(node, MirrorNode):
                    new_node = MirrorNode(node.name,
                                          mapping[id(node.target)])
                else:
                    raise TypeError(f"unknown node type {type(node)}")
                mapping[id(node)] = new_node
                new_block.add_node(new_node, block.extra_inputs.get(idx))
            new_cell.add_block(new_block)
        out.add_cell(new_cell)
    out.validate()
    return out


def enumeration_count(space: Structure, cap: int | None = None) -> int:
    """Exactly how many architectures :func:`enumerate_space` yields."""
    if cap is None or space.size <= cap:
        return space.size
    return cap


def _exhaustive(space: Structure) -> Iterator[Architecture]:
    """Mixed-radix odometer over the action dims, lowest decision
    fastest — lexicographic, duplicate-free, exactly ``space.size``."""
    dims = space.action_dims
    if not dims:
        yield Architecture(space.name, ())
        return
    counter = [0] * len(dims)
    while True:
        yield Architecture(space.name, tuple(counter))
        for i in range(len(dims) - 1, -1, -1):
            counter[i] += 1
            if counter[i] < dims[i]:
                break
            counter[i] = 0
        else:
            return


def _stratified(space: Structure, cap: int,
                seed: int) -> Iterator[Architecture]:
    """Seeded stratified sample of exactly ``cap`` distinct archs.

    Each decision's column is built by tiling its options to length
    ``cap`` and permuting independently, so every option appears within
    one count of equally often.  Column permutations are independent,
    so row collisions are possible but rare; colliding rows are
    deterministically topped up with uniform redraws.
    """
    rng = np.random.default_rng(seed)
    dims = space.action_dims
    columns = []
    for d in dims:
        col = np.tile(np.arange(d), cap // d + 1)[:cap]
        columns.append(rng.permutation(col))
    seen: set[tuple[int, ...]] = set()
    for row in range(cap):
        choices = tuple(int(columns[i][row]) for i in range(len(dims)))
        if choices not in seen:
            seen.add(choices)
            yield Architecture(space.name, choices)
    while len(seen) < cap:    # top up the (rare) collisions
        choices = tuple(int(rng.integers(d)) for d in dims)
        if choices not in seen:
            seen.add(choices)
            yield Architecture(space.name, choices)


def enumerate_space(space: Structure, cap: int | None = None,
                    seed: int = 0) -> Iterator[Architecture]:
    """Deterministic, duplicate-free stream of the space's architectures.

    Exhaustive (lexicographic) when ``cap`` is None or the space's
    cardinality fits under it; otherwise a seeded stratified sample of
    exactly ``cap`` architectures.  Same (space, cap, seed) ⇒ same
    stream, which is what makes sweeps resumable and comparable.
    """
    if cap is not None and cap < 1:
        raise ValueError("cap must be positive")
    if cap is None or space.size <= cap:
        return _exhaustive(space)
    return _stratified(space, cap, seed)
