"""Arch→metrics benchmark table: crash-consistent shards + manifest.

NAS-Bench-201 turned NAS research into table lookups by recording every
architecture's trained result once.  This module is that record for the
repro spaces: a directory holding

* ``shard-NNNNN.jsonl`` — append-only JSON-lines shards, one row per
  *isomorphism class* (rows are keyed by the
  :func:`~repro.nas.plancache.plan_signature` of the compiled plan, so
  structurally identical action sequences share one entry);
* ``manifest.json`` — the fsync'd source of truth: format version,
  space metadata, and the list of *sealed* shards with row counts and
  content hashes.

Crash consistency follows the checkpoint pattern
(:meth:`repro.search.checkpoint.SearchCheckpoint.save`): rows are
flushed per append (a SIGKILLed sweep loses at most the torn trailing
line), shards are fsynced when sealed, and the manifest is published by
write-tmp → fsync → atomic rename → directory fsync.  After any kill,
the manifest plus its sealed shards are a consistent prefix of the
sweep, and the unsealed tail shard is recovered tolerantly — so a
resumed sweep re-evaluates nothing that already reached a shard.

The wire format is **v1** and pinned by a golden test
(``tests/golden/bench_table_v1_schema.json``): changing a field name or
type requires bumping :data:`TABLE_FORMAT_VERSION` deliberately.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

from ..util.atomicio import atomic_write_json

__all__ = ["TABLE_FORMAT_VERSION", "TableRow", "TableWriter", "ArchTable"]

TABLE_FORMAT_VERSION = 1

_MANIFEST = "manifest.json"


@dataclass(frozen=True)
class TableRow:
    """One isomorphism class's recorded evaluation."""

    sig: str                  # plan_signature of the compiled plan
    space: str
    choices: tuple[int, ...]  # representative action sequence (first seen)
    reward: float
    duration: float           # single-node wall seconds (real or modelled)
    params: int
    timed_out: bool = False

    def to_json(self) -> dict:
        return {"sig": self.sig, "space": self.space,
                "choices": list(self.choices), "reward": self.reward,
                "duration": self.duration, "params": self.params,
                "timed_out": self.timed_out}

    @classmethod
    def from_json(cls, data: dict) -> "TableRow":
        return cls(sig=str(data["sig"]), space=str(data["space"]),
                   choices=tuple(int(c) for c in data["choices"]),
                   reward=float(data["reward"]),
                   duration=float(data["duration"]),
                   params=int(data["params"]),
                   timed_out=bool(data["timed_out"]))


def _atomic_write_json(path: Path, data: dict) -> None:
    """The PR-7 atomic-publish pattern, via the shared helper: tmp write
    + fsync, rename, directory fsync — a crash leaves either the old or
    the new file.  Keeps the compact sorted byte format the manifest
    hash tests pin."""
    atomic_write_json(path, data, separators=(",", ":"), sort_keys=True)


def _read_rows(path: Path, tolerant: bool = False) -> list[TableRow]:
    """Rows of one shard file; ``tolerant`` drops a torn trailing line
    (the residue of a kill mid-append) instead of raising."""
    rows: list[TableRow] = []
    with path.open(encoding="utf-8") as fh:
        for line in fh:
            if not line.endswith("\n") or not line.strip():
                if tolerant:
                    break
                raise ValueError(f"torn line in sealed shard {path}")
            try:
                rows.append(TableRow.from_json(json.loads(line)))
            except (json.JSONDecodeError, KeyError):
                if tolerant:
                    break
                raise
    return rows


def _shard_name(index: int) -> str:
    return f"shard-{index:05d}.jsonl"


def _shard_sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TableWriter:
    """Appends rows to a table directory, sealing shards as it goes.

    Opening a directory that already holds a (possibly killed) sweep
    *resumes* it: sealed shards are trusted from the manifest, the
    unsealed tail shard is recovered tolerantly and rewritten clean, and
    ``known`` is primed so the sweeper can skip everything already
    recorded.  Metadata must match the existing manifest — a table is
    one (space, reward-model) world, never a mixture.
    """

    def __init__(self, directory: str | Path, space_name: str,
                 shard_size: int = 256,
                 metadata: dict | None = None) -> None:
        if shard_size <= 0:
            raise ValueError("shard_size must be positive")
        self.dir = Path(directory)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.space_name = space_name
        self.shard_size = shard_size
        self.metadata = dict(metadata or {})
        #: signatures already recorded (sealed, recovered, or appended)
        self.known: dict[str, TableRow] = {}
        #: rows salvaged from an unsealed shard of a killed sweep
        self.recovered_rows = 0
        self._shards: list[dict] = []     # sealed-shard manifest entries
        self._open_rows: list[TableRow] = []
        self._fh = None

        manifest_path = self.dir / _MANIFEST
        if manifest_path.exists():
            self._resume(manifest_path)
        else:
            self._write_manifest()
        self._open_current_shard()

    # -- resume --------------------------------------------------------
    def _resume(self, manifest_path: Path) -> None:
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("version") != TABLE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported table version {manifest.get('version')!r}")
        if manifest.get("space") != self.space_name:
            raise ValueError(
                f"table {self.dir} is for space {manifest.get('space')!r}, "
                f"not {self.space_name!r}")
        if manifest.get("metadata") != self.metadata:
            raise ValueError(
                f"table {self.dir} was swept with metadata "
                f"{manifest.get('metadata')!r}; refusing to mix in "
                f"{self.metadata!r}")
        self._shards = list(manifest["shards"])
        for entry in self._shards:
            rows = _read_rows(self.dir / entry["name"])
            if len(rows) != entry["rows"]:
                raise ValueError(
                    f"sealed shard {entry['name']} has {len(rows)} rows, "
                    f"manifest says {entry['rows']}")
            for row in rows:
                self.known[row.sig] = row
        # recover the unsealed tail shard a kill may have left behind
        tail = self.dir / _shard_name(len(self._shards))
        if tail.exists():
            rows = _read_rows(tail, tolerant=True)
            fresh = [r for r in rows if r.sig not in self.known]
            self.recovered_rows = len(fresh)
            for row in fresh:
                self.known[row.sig] = row
            self._open_rows = fresh
            # rewrite clean (drops any torn trailing line) before
            # appending resumes
            with open(tail, "w", encoding="utf-8") as fh:
                for row in fresh:
                    fh.write(json.dumps(row.to_json(),
                                        separators=(",", ":")) + "\n")
                fh.flush()
                os.fsync(fh.fileno())

    def _open_current_shard(self) -> None:
        path = self.dir / _shard_name(len(self._shards))
        self._fh = open(path, "a", encoding="utf-8")

    # -- writing -------------------------------------------------------
    def append(self, row: TableRow) -> bool:
        """Record one row; returns False (and writes nothing) when the
        signature is already known."""
        if row.sig in self.known:
            return False
        self.known[row.sig] = row
        self._open_rows.append(row)
        self._fh.write(json.dumps(row.to_json(),
                                  separators=(",", ":")) + "\n")
        self._fh.flush()    # survives SIGKILL of this process
        if len(self._open_rows) >= self.shard_size:
            self.seal_shard()
        return True

    def seal_shard(self) -> None:
        """Fsync + close the open shard and publish it in the manifest."""
        if not self._open_rows:
            return
        os.fsync(self._fh.fileno())
        self._fh.close()
        path = self.dir / _shard_name(len(self._shards))
        self._shards.append({"name": path.name,
                             "rows": len(self._open_rows),
                             "sha256": _shard_sha256(path)})
        self._open_rows = []
        self._write_manifest()
        self._open_current_shard()

    def _write_manifest(self) -> None:
        _atomic_write_json(self.dir / _MANIFEST, {
            "format": "repro-bench-table",
            "version": TABLE_FORMAT_VERSION,
            "space": self.space_name,
            "metadata": self.metadata,
            "total_rows": sum(e["rows"] for e in self._shards),
            "shards": self._shards,
        })

    def close(self) -> None:
        """Seal whatever is open; idempotent."""
        if self._fh is None:
            return
        self.seal_shard()
        self._fh.close()
        # remove the empty shard file the final reopen created
        tail = self.dir / _shard_name(len(self._shards))
        if tail.exists() and tail.stat().st_size == 0:
            tail.unlink()
        self._fh = None

    def __enter__(self) -> "TableWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.known)

    @property
    def num_shards(self) -> int:
        """Sealed shards published in the manifest."""
        return len(self._shards)


class ArchTable:
    """A loaded arch→metrics table serving O(1) signature lookups."""

    def __init__(self, space_name: str, rows: dict[str, TableRow],
                 metadata: dict | None = None) -> None:
        self.space_name = space_name
        self.rows = rows
        self.metadata = dict(metadata or {})

    @classmethod
    def load(cls, directory: str | Path) -> "ArchTable":
        """Load a table directory — including, tolerantly, the unsealed
        tail shard of a killed sweep, so a partial table is usable."""
        directory = Path(directory)
        manifest_path = directory / _MANIFEST
        if not manifest_path.exists():
            raise FileNotFoundError(f"no {_MANIFEST} in {directory}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("format") != "repro-bench-table":
            raise ValueError(f"{directory} is not a repro bench table")
        if manifest.get("version") != TABLE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported table version {manifest.get('version')!r}")
        rows: dict[str, TableRow] = {}
        for entry in manifest["shards"]:
            shard_rows = _read_rows(directory / entry["name"])
            if len(shard_rows) != entry["rows"]:
                raise ValueError(
                    f"sealed shard {entry['name']} has {len(shard_rows)} "
                    f"rows, manifest says {entry['rows']}")
            for row in shard_rows:
                rows[row.sig] = row
        tail = directory / _shard_name(len(manifest["shards"]))
        if tail.exists():
            for row in _read_rows(tail, tolerant=True):
                rows.setdefault(row.sig, row)
        return cls(manifest["space"], rows,
                   metadata=manifest.get("metadata", {}))

    # -- lookups -------------------------------------------------------
    def get(self, sig: str) -> TableRow | None:
        return self.rows.get(sig)

    def __contains__(self, sig: str) -> bool:
        return sig in self.rows

    def __len__(self) -> int:
        return len(self.rows)

    def optimum(self) -> TableRow:
        """The global-optimum row (highest reward; ties broken by
        signature so the answer is deterministic)."""
        if not self.rows:
            raise ValueError("empty table has no optimum")
        return max(self.rows.values(), key=lambda r: (r.reward, r.sig))

    def regret(self, reward: float) -> float:
        """Exact regret of a reward against the table's optimum."""
        return self.optimum().reward - reward

    def fingerprint(self) -> str:
        """Canonical content hash: independent of shard layout and row
        order, so an interrupted-and-resumed sweep fingerprints
        identically to an uninterrupted one."""
        payload = {
            "version": TABLE_FORMAT_VERSION,
            "space": self.space_name,
            "rows": [self.rows[sig].to_json()
                     for sig in sorted(self.rows)],
        }
        blob = json.dumps(payload, separators=(",", ":"),
                          sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()
