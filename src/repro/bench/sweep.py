"""Resumable space sweeper: enumerate, evaluate, persist (tentpole §1).

The sweeper turns a search space plus a reward model into a benchmark
table: it walks :func:`~repro.bench.subspace.enumerate_space`'s
deterministic stream, fans evaluations out through the existing
:class:`~repro.evaluator.broker.EvalBroker` machinery (serial, thread
pool, or the supervised multi-process pool), and appends one row per
isomorphism class to a crash-consistent
:class:`~repro.bench.table.TableWriter`.

Design points:

* **signature dedup before dispatch** — every enumerated architecture
  is resolved to its :func:`~repro.nas.plancache.plan_signature` first
  (through the shared :class:`~repro.nas.plancache.PlanCache`, so the
  compile amortizes with the evaluation's own compile); classes already
  in the table — from this run *or a previous killed run* — are
  skipped, which is exactly what makes a resumed sweep evaluate nothing
  twice;
* **invalid architectures** (compile errors, e.g. pooling exhausting
  NT3's sequence) are counted and skipped rather than stored: they are
  not rows of the benchmark, and :class:`~repro.rewards.tabular.
  TabularReward` maps them to ``FAILURE_REWARD`` without a lookup;
* **batched dispatch with a barrier per batch** — completion order
  inside a batch is backend-dependent (thread/process), but rows are
  written in *submission* order from the batch's result map, so the
  shard stream — and therefore the table fingerprint — is identical
  across backends.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..evaluator.process import ProcConfig, ProcessEvaluator
from ..evaluator.serial import SerialEvaluator
from ..evaluator.thread import ThreadEvaluator
from ..nas.plancache import PlanCache, SignatureResolver, exact_key
from ..nas.space import Structure
from ..rewards.base import RewardModel
from .subspace import enumerate_space, enumeration_count
from .table import ArchTable, TableRow, TableWriter

__all__ = ["SweepConfig", "SweepReport", "SpaceSweeper", "sweep_space",
           "planned_evaluations"]

_BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class SweepConfig:
    """How a sweep enumerates and evaluates."""

    #: evaluation backend: "serial" | "thread" | "process"
    backend: str = "serial"
    #: worker threads / processes for the parallel backends
    workers: int = 2
    #: architectures submitted per broker batch (barrier per batch)
    batch_size: int = 16
    #: rows per table shard before it is sealed + published
    shard_size: int = 256
    #: stratified-sampling cap: spaces larger than this are sampled,
    #: smaller ones enumerated exhaustively (None = always exhaustive)
    cap: int | None = None
    #: seed of the stratified sample (ignored for exhaustive sweeps)
    seed: int = 0
    #: agent seed handed to the reward model for every evaluation — one
    #: fixed observer, so the table is a deterministic ground truth
    agent_seed: int = 0
    #: supervision policy of the "process" backend (None = defaults)
    proc: ProcConfig | None = None
    #: seconds slept between batches (test hook: lets kill-and-resume
    #: tests catch a sweep mid-flight deterministically)
    throttle: float = 0.0

    def __post_init__(self) -> None:
        if self.backend not in _BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.throttle < 0:
            raise ValueError("throttle must be non-negative")


@dataclass
class SweepReport:
    """What one sweep run did (resume-aware)."""

    space: str
    backend: str
    enumerated: int = 0          # architectures drawn from the stream
    evaluated: int = 0           # rows written by THIS run
    resumed: int = 0             # rows already in the table at open
    iso_skips: int = 0           # enumerated archs deduped by signature
    invalid: int = 0             # architectures that failed to compile
    failed: int = 0              # evaluations surfaced as FAILURE_REWARD
    shards: int = 0
    total_rows: int = 0          # rows in the table after the sweep
    fingerprint: str = ""
    elapsed: float = 0.0

    def to_json(self) -> dict:
        return dict(self.__dict__)


class SpaceSweeper:
    """Sweeps one space into a table directory; see module docstring."""

    def __init__(self, space: Structure, reward_model: RewardModel,
                 out_dir, config: SweepConfig | None = None,
                 metadata: dict | None = None) -> None:
        self.space = space
        self.reward_model = reward_model
        self.out_dir = out_dir
        self.config = config or SweepConfig()
        self.metadata = metadata

    def _build_evaluator(self):
        cfg = self.config
        # the sweep evaluates each class exactly once, so the agent-local
        # EvalCache would only burn memory — off
        if cfg.backend == "serial":
            return SerialEvaluator(self.reward_model, cfg.agent_seed,
                                   use_cache=False)
        if cfg.backend == "thread":
            return ThreadEvaluator(self.reward_model, cfg.agent_seed,
                                   max_workers=cfg.workers, use_cache=False)
        proc = cfg.proc or ProcConfig(workers=cfg.workers)
        return ProcessEvaluator(self.reward_model, cfg.agent_seed,
                                config=proc, use_cache=False)

    def run(self) -> SweepReport:
        cfg = self.config
        start = time.monotonic()
        # one shared compile cache: the signature resolve and the
        # evaluation's own compile pay for a plan once between them
        if self.reward_model.plan_cache is None:
            self.reward_model.set_plan_cache(PlanCache())
        resolver = SignatureResolver(
            self.space, self._input_shapes(), self._head_ops(),
            plan_cache=self.reward_model.plan_cache)

        report = SweepReport(space=self.space.name, backend=cfg.backend)
        writer = TableWriter(self.out_dir, self.space.name,
                             shard_size=cfg.shard_size,
                             metadata=self.metadata)
        report.resumed = len(writer.known)
        evaluator = self._build_evaluator()
        try:
            batch: list[tuple[str, object]] = []   # (sig, arch) to evaluate
            pending: set[str] = set()
            for arch in enumerate_space(self.space, cap=cfg.cap,
                                        seed=cfg.seed):
                report.enumerated += 1
                sig = resolver.try_signature(arch)
                if sig is None:
                    report.invalid += 1
                    continue
                if sig in writer.known or sig in pending:
                    report.iso_skips += 1
                    continue
                pending.add(sig)
                batch.append((sig, arch))
                if len(batch) >= cfg.batch_size:
                    self._flush(batch, evaluator, writer, report)
                    pending.clear()
                    batch = []
                    if cfg.throttle:
                        time.sleep(cfg.throttle)
            if batch:
                self._flush(batch, evaluator, writer, report)
        finally:
            evaluator.shutdown()
            writer.close()

        report.shards = writer.num_shards
        report.total_rows = len(writer.known)
        report.fingerprint = ArchTable.load(self.out_dir).fingerprint()
        report.elapsed = time.monotonic() - start
        return report

    def _flush(self, batch, evaluator, writer, report) -> None:
        """Dispatch one batch, barrier on it, write rows in submission
        order (order-stable across backends)."""
        archs = [arch for _, arch in batch]
        evaluator.add_eval_batch(archs)
        evaluator.wait_all()
        results = {}
        for rec in evaluator.get_finished_evals():
            results[exact_key(rec.arch)] = rec.result
        for sig, arch in batch:
            result = results[exact_key(arch)]
            if result.reward == RewardModel.FAILURE_REWARD:
                report.failed += 1
            writer.append(TableRow(
                sig=sig, space=arch.space, choices=arch.choices,
                reward=float(result.reward),
                duration=float(result.duration),
                params=int(result.params),
                timed_out=bool(result.timed_out)))
            report.evaluated += 1

    # -- compile context discovery -------------------------------------
    # Reward models know their own compile context under two naming
    # conventions (SurrogateReward carries it directly, TrainingReward
    # via its problem); the resolver needs the same context to produce
    # the same plans.
    def _input_shapes(self) -> dict:
        model = self.reward_model
        if hasattr(model, "input_shapes"):
            return model.input_shapes
        if hasattr(model, "problem"):
            return model.problem.input_shapes
        raise ValueError(
            f"{type(model).__name__} exposes no input shapes; pass a "
            f"reward model with .input_shapes or .problem")

    def _head_ops(self):
        model = self.reward_model
        if hasattr(model, "head_ops"):
            return model.head_ops
        if hasattr(model, "problem"):
            return model.problem.head_ops
        return None


def sweep_space(space: Structure, reward_model: RewardModel, out_dir,
                config: SweepConfig | None = None,
                metadata: dict | None = None) -> SweepReport:
    """Convenience one-call sweep (resume-aware: rerunning over an
    existing directory finishes the remaining classes)."""
    return SpaceSweeper(space, reward_model, out_dir, config,
                        metadata).run()


def planned_evaluations(space: Structure,
                        config: SweepConfig | None = None) -> int:
    """Upper bound on evaluations a fresh sweep performs (isomorphism
    dedup can only shrink it)."""
    config = config or SweepConfig()
    return enumeration_count(space, config.cap)
