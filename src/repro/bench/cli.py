"""``python -m repro.bench`` — tabular NAS benchmark workflows.

Commands
--------
``sweep``
    Enumerate a (capped) search space, evaluate every isomorphism class
    through an evaluator backend, and persist a resumable arch→metrics
    table.  Rerunning with the same arguments resumes a killed sweep.
``info``
    Inspect a table directory: rows, optimum, fingerprint.
``compare``
    Replay N seeded searches per registered method (a3c / a2c / rdm /
    ambs / evolution) against one shared table via
    :class:`~repro.rewards.tabular.TabularReward` and print the
    exact-regret comparison report.

See ``docs/benchmark.md`` for the full workflow.
"""

from __future__ import annotations

import argparse
import json
import sys

from ..analytics.regret import compare_report, regret_summary
from ..hpc import NodeAllocation, TrainingCostModel
from ..nas.plancache import SignatureResolver
from ..nas.spaces import get_space
from ..problems.combo import COMBO_PAPER_SHAPES, combo_head
from ..problems.nt3 import NT3_PAPER_SHAPES, nt3_head
from ..problems.uno import UNO_PAPER_SHAPES, uno_head
from ..rewards import SurrogateReward, TabularReward
from ..search import SEARCH_METHODS, SearchConfig, run_search
from .subspace import capped_space, enumeration_count
from .sweep import SweepConfig, sweep_space
from .table import ArchTable

__all__ = ["main", "build_parser", "space_from_metadata"]

_PAPER = {
    "combo": (COMBO_PAPER_SHAPES, combo_head, TrainingCostModel.combo_paper),
    "uno": (UNO_PAPER_SHAPES, uno_head, TrainingCostModel.uno_paper),
    "nt3": (NT3_PAPER_SHAPES, nt3_head, TrainingCostModel.nt3_paper),
}

_METHODS = tuple(sorted(SEARCH_METHODS))


def _build_space(problem: str, size: str, scale: float, cap_ops: int | None):
    space = get_space(f"{problem}-{size}", scale=scale)
    if cap_ops is not None:
        space = capped_space(space, cap_ops)
    return space


def space_from_metadata(metadata: dict):
    """Rebuild the exact space a table was swept with (the manifest's
    metadata is the recipe)."""
    return _build_space(metadata["problem"], metadata["size"],
                        metadata["scale"], metadata.get("cap_ops"))


def _surrogate_for(space, problem: str, landscape_seed: int,
                   fraction: float) -> SurrogateReward:
    shapes, head, cost = _PAPER[problem]
    return SurrogateReward(space, shapes, head(), cost(), epochs=1,
                           train_fraction=fraction, timeout=600.0,
                           seed=landscape_seed)


def _tabular_for(table: ArchTable, miss: str) -> TabularReward:
    space = space_from_metadata(table.metadata)
    shapes, head, _ = _PAPER[table.metadata["problem"]]
    resolver = SignatureResolver(space, shapes, head())
    return TabularReward(table, resolver, miss=miss)


# ----------------------------------------------------------------------
def _cmd_sweep(args) -> int:
    space = _build_space(args.problem, args.size, args.scale, args.cap_ops)
    reward = _surrogate_for(space, args.problem, args.landscape_seed,
                            args.fraction)
    metadata = {"problem": args.problem, "size": args.size,
                "scale": args.scale, "cap_ops": args.cap_ops,
                "cap": args.cap, "seed": args.seed,
                "reward": {"kind": "surrogate",
                           "landscape_seed": args.landscape_seed,
                           "fraction": args.fraction}}
    cfg = SweepConfig(backend=args.backend, workers=args.workers,
                      batch_size=args.batch_size,
                      shard_size=args.shard_size, cap=args.cap,
                      seed=args.seed, throttle=args.throttle)
    planned = enumeration_count(space, args.cap)
    print(f"sweeping {space.name} (|S| = {space.size:,}, "
          f"enumerating {planned:,}) over the {args.backend} backend "
          f"into {args.out} ...")
    report = sweep_space(space, reward, args.out, cfg, metadata=metadata)
    print(f"enumerated {report.enumerated} | evaluated {report.evaluated} "
          f"| resumed {report.resumed} | iso-skips {report.iso_skips} "
          f"| invalid {report.invalid} | failed {report.failed}")
    print(f"table: {report.total_rows} rows in {report.shards} shards; "
          f"fingerprint {report.fingerprint[:16]}…  "
          f"({report.elapsed:.1f}s)")
    return 0


def _cmd_info(args) -> int:
    table = ArchTable.load(args.table)
    print(f"table: {args.table}")
    print(f"space: {table.space_name}")
    print(f"rows (isomorphism classes): {len(table)}")
    print(f"metadata: {json.dumps(table.metadata, sort_keys=True)}")
    if len(table):
        opt = table.optimum()
        arch = f"{opt.space}[{','.join(map(str, opt.choices))}]"
        print(f"optimum: reward={opt.reward:+.4f} params={opt.params:,} "
              f"arch={arch}")
    print(f"fingerprint: {table.fingerprint()}")
    return 0


def _cmd_compare(args) -> int:
    table = ArchTable.load(args.table)
    if not len(table):
        raise SystemExit(f"table {args.table} is empty")
    optimum = table.optimum().reward
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    for m in methods:
        if m not in _METHODS:
            raise SystemExit(f"unknown method {m!r}; choose from "
                             f"{_METHODS}")
    alloc = NodeAllocation(
        args.agents * (args.workers + 1) + 1, args.agents, args.workers)
    wall = args.minutes * 60.0
    print(f"comparing {methods} on {table.space_name} "
          f"({len(table)} rows, optimum {optimum:+.4f}); "
          f"{args.runs} seeded replays each ...")

    runs: dict[str, list] = {}
    for method in methods:
        replicates = []
        for rep in range(args.runs):
            seed = args.seed + rep
            reward = _tabular_for(table, args.miss)
            result = run_search(
                reward.resolver.structure, reward,
                SearchConfig(method=method, allocation=alloc,
                             wall_time=wall, seed=seed,
                             population_size=args.population,
                             tournament_size=args.tournament))
            replicates.append(result.records)
            summary = regret_summary(result.records, optimum,
                                     method=method)
            print(f"  {method} seed={seed}: evals={summary['evaluations']} "
                  f"final_regret={summary['final_regret']:.4f} "
                  f"optimum_found={summary['found_optimum']}")
        runs[method] = replicates

    report = compare_report(runs, optimum,
                            trajectories=args.trajectories)
    print(f"\n{'method':<10} {'reps':>4} {'mean_regret':>12} "
          f"{'min':>8} {'max':>8} {'opt_hits':>8}")
    for name, m in report["methods"].items():
        print(f"{name:<10} {m['replicates']:>4} "
              f"{m['mean_final_regret']:>12.4f} "
              f"{m['min_final_regret']:>8.4f} "
              f"{m['max_final_regret']:>8.4f} {m['optimum_hits']:>8}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"report written to {args.output}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.bench",
        description="Tabular NAS benchmark: sweep a space once, then "
                    "serve instant lookups with exact-regret analytics")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("sweep", help="sweep a (capped) space into a "
                                     "resumable arch→metrics table")
    p.add_argument("--problem", choices=("combo", "uno", "nt3"),
                   default="combo")
    p.add_argument("--size", choices=("small", "large"), default="small")
    p.add_argument("--scale", type=float, default=0.05,
                   help="layer-width scale of the swept networks")
    p.add_argument("--cap-ops", type=int, default=None,
                   help="truncate every decision to its first K options "
                        "(a true sub-space with exact cardinality)")
    p.add_argument("--cap", type=int, default=None,
                   help="stratified-sample this many architectures when "
                        "the space exceeds the cap (default: exhaustive)")
    p.add_argument("--out", required=True, help="table directory")
    p.add_argument("--backend", choices=("serial", "thread", "process"),
                   default="serial")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--batch-size", type=int, default=16)
    p.add_argument("--shard-size", type=int, default=256)
    p.add_argument("--seed", type=int, default=0,
                   help="stratified-sampling seed")
    p.add_argument("--landscape-seed", type=int, default=7)
    p.add_argument("--fraction", type=float, default=1.0,
                   help="training-data fraction of the reward estimates")
    p.add_argument("--throttle", type=float, default=0.0,
                   help=argparse.SUPPRESS)   # test hook
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("info", help="inspect a table directory")
    p.add_argument("table")
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser("compare",
                       help="replay seeded searches against one table "
                            "and report exact regret per method")
    p.add_argument("table")
    p.add_argument("--methods", default="a3c,rdm",
                   help=f"comma list from {','.join(_METHODS)}")
    p.add_argument("--population", type=int, default=20,
                   help="method=evolution: aging-population window")
    p.add_argument("--tournament", type=int, default=5,
                   help="method=evolution: tournament draw size")
    p.add_argument("--runs", type=int, default=3,
                   help="seeded replays per method")
    p.add_argument("--seed", type=int, default=0, help="base seed")
    p.add_argument("--minutes", type=float, default=30.0,
                   help="simulated wall-clock minutes per replay")
    p.add_argument("--agents", type=int, default=4)
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--miss", choices=("error", "fallback", "failure"),
                   default="failure",
                   help="table-miss policy during replays (sampled "
                        "tables are incomplete; failure is the safe "
                        "default)")
    p.add_argument("--trajectories", action="store_true",
                   help="include method-labeled per-replicate regret "
                        "trajectories in the report")
    p.add_argument("--output", help="write the JSON report here")
    p.set_defaults(fn=_cmd_compare)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
