"""Reproduction of "Scalable Reinforcement-Learning-Based Neural
Architecture Search for Cancer Deep Learning Research" (SC 2019).

Subpackages
-----------
``repro.nn``
    numpy neural-network substrate (Keras-like DAG models).
``repro.nas``
    the search-space formalism and architecture compiler (the paper's
    primary contribution), plus the Combo/Uno/NT3 spaces.
``repro.rl``
    LSTM controller, PPO, synchronous/asynchronous parameter server.
``repro.hpc``
    discrete-event simulation of the Theta-style cluster and the
    training-time cost model.
``repro.evaluator``
    the three-function evaluation API with serial and Balsam backends.
``repro.rewards``
    reward estimation: real training and the at-scale surrogate.
``repro.problems``
    synthetic CANDLE benchmarks and the manually designed baselines.
``repro.search``
    multi-agent A3C / A2C / RDM NAS runs.
``repro.analytics``
    trajectories, utilization, top-k, replication quantiles.
``repro.posttrain``
    post-training of top architectures and baseline-ratio reports.
``repro.hps``
    hyperparameter search for fixed architectures (§7 extension).
``repro.experiments``
    the harness regenerating every table/figure (imported lazily; see
    also the ``python -m repro figure`` CLI).
"""

__version__ = "1.0.0"

from . import (analytics, evaluator, hpc, hps, nas, nn, posttrain,
               problems, rewards, rl, search)

__all__ = ["analytics", "evaluator", "hpc", "hps", "nas", "nn",
           "posttrain", "problems", "rewards", "rl", "search",
           "__version__"]
