"""NT3 search space (§3.1.3).

A chain of four single-block cells over the RNA-seq gene-expression
input: two convolutional cells (Conv_Node → Act_Node → Pool_Node) and two
dense cells (Dense_Node → Act_Node → Drop_Node).

|S| = (5·4·5)² · (9·4·7)² = 635,040,000, exactly the paper's 6.3504×10⁸.
"""

from __future__ import annotations

from ..nodes import VariableNode
from ..ops import (ActivationOp, Conv1DOp, DenseOp, DropoutOp, IdentityOp,
                   MaxPooling1DOp, Operation)
from ..space import Block, Cell, Structure

__all__ = ["nt3_small", "conv_ops", "act_ops", "pool_ops", "dense_ops",
           "drop_ops", "NT3_INPUTS"]

NT3_INPUTS = ["rnaseq_expression"]


def conv_ops(filters: int = 8) -> list[Operation]:
    return [IdentityOp()] + [Conv1DOp(k, filters=filters, strides=1)
                             for k in (3, 4, 5, 6)]


def act_ops() -> list[Operation]:
    return [IdentityOp(), ActivationOp("relu"), ActivationOp("tanh"),
            ActivationOp("sigmoid")]


def pool_ops() -> list[Operation]:
    return [IdentityOp()] + [MaxPooling1DOp(p) for p in (3, 4, 5, 6)]


def dense_ops(scale: float = 1.0) -> list[Operation]:
    def u(units: int) -> int:
        return max(1, round(units * scale))
    return [IdentityOp()] + [DenseOp(u(n), "linear")
                             for n in (10, 50, 100, 200, 250, 500, 750, 1000)]


def drop_ops() -> list[Operation]:
    return [IdentityOp()] + [DropoutOp(r)
                             for r in (0.5, 0.4, 0.3, 0.2, 0.1, 0.05)]


def nt3_small(scale: float = 1.0, filters: int = 8) -> Structure:
    """The small NT3 space: |S| = 6.3504×10⁸ exactly.

    The RNA-seq input must be at least 71 samples long for the worst-case
    choice sequence (two kernel-6 convolutions and two pool-6 poolings)
    to stay valid: compiling an architecture against a shorter input
    raises during shape inference.
    """
    s = Structure("nt3-small", NT3_INPUTS, output_sources="last_cell")
    prev = "rnaseq_expression"
    for i in range(2):
        ci = Cell(f"C{i}")
        b = Block("B0", inputs=[prev])
        b.add_node(VariableNode("N0", conv_ops(filters)))
        b.add_node(VariableNode("N1", act_ops()))
        b.add_node(VariableNode("N2", pool_ops()))
        ci.add_block(b)
        s.add_cell(ci)
        prev = f"C{i}"
    for i in range(2, 4):
        ci = Cell(f"C{i}")
        b = Block("B0", inputs=[prev])
        b.add_node(VariableNode("N0", dense_ops(scale)))
        b.add_node(VariableNode("N1", act_ops()))
        b.add_node(VariableNode("N2", drop_ops()))
        ci.add_block(b)
        s.add_cell(ci)
        prev = f"C{i}"
    s.validate()
    return s
