"""Uno search spaces (§3.1.2).

Inputs: RNA-seq, scalar dose, drug descriptors, drug fingerprints.  The
dose block is built from ConstantNodes (identity pass-through): the paper
describes exactly this use of constant nodes ("if we want the dose value
in Uno in every block, we can define a constant node"), and it is the only
reading under which the stated cardinality 13¹² ≈ 2.3298×10¹³ holds —
C0 then contributes 9 variable nodes and C1 three, with C1's two Add
nodes constant.

The large space has nine cells; each replica cell has one MLP node and
one Connect node whose options are Null, all 15 non-empty input subsets,
all previous cell outputs, and the N0 nodes of all previous replica
cells.
"""

from __future__ import annotations

from itertools import combinations

from ..nodes import ConstantNode, VariableNode
from ..ops import AddOp, ConnectOp, IdentityOp
from ..space import Block, Cell, Structure
from .combo import mlp_ops

__all__ = ["uno_small", "uno_large", "UNO_INPUTS"]

UNO_INPUTS = ["cell_rnaseq", "dose", "drug_descriptors", "drug_fingerprints"]


def _input_cell(scale: float) -> Cell:
    """C0: four feature-encoding blocks; the dose block is constant."""
    c0 = Cell("C0")
    for bname, input_name in (("B0", "cell_rnaseq"), ("B1", "dose"),
                              ("B2", "drug_descriptors"),
                              ("B3", "drug_fingerprints")):
        block = Block(bname, inputs=[input_name])
        if input_name == "dose":
            for i in range(3):
                block.add_node(ConstantNode(f"N{i}", IdentityOp()))
        else:
            for i in range(3):
                block.add_node(VariableNode(f"N{i}", mlp_ops(scale)))
        c0.add_block(block)
    return c0


def uno_small(scale: float = 1.0) -> Structure:
    """The small Uno space: |S| = 13¹² ≈ 2.3298×10¹³."""
    s = Structure("uno-small", UNO_INPUTS, output_sources="last_cell")
    s.add_cell(_input_cell(scale))

    # C1.B0: N0 -> N1 -> N2(Add, +N0) -> N3 -> N4(Add, +N2)
    c1 = Cell("C1")
    b0 = Block("B0", inputs=["C0"])
    b0.add_node(VariableNode("N0", mlp_ops(scale)))
    b0.add_node(VariableNode("N1", mlp_ops(scale)))
    b0.add_node(ConstantNode("N2", AddOp()), extra_inputs=[0])
    b0.add_node(VariableNode("N3", mlp_ops(scale)))
    b0.add_node(ConstantNode("N4", AddOp()), extra_inputs=[2])
    c1.add_block(b0)
    s.add_cell(c1)

    s.validate()
    return s


def uno_large(scale: float = 1.0, replicas: int = 8) -> Structure:
    """The large Uno space: nine cells, skip connections over inputs,
    previous cell outputs, and previous cells' N0 nodes."""
    if replicas < 1:
        raise ValueError("need at least one replica")
    s = Structure("uno-large", UNO_INPUTS, output_sources="last_cell")
    s.add_cell(_input_cell(scale))

    prev = "C0"
    for i in range(1, replicas + 1):
        ci = Cell(f"C{i}")
        b0 = Block("B0", inputs=[prev])
        b0.add_node(VariableNode("N0", mlp_ops(scale)))
        ci.add_block(b0)

        options: list[ConnectOp] = [ConnectOp()]  # Null
        for r in range(1, len(UNO_INPUTS) + 1):   # 15 non-empty input subsets
            for combo in combinations(UNO_INPUTS, r):
                options.append(ConnectOp(*combo))
        options += [ConnectOp(f"C{j}") for j in range(i)]          # prev outputs
        options += [ConnectOp(f"C{j}.B0.N0") for j in range(1, i)]  # prev N0s
        b1 = Block("B1", inputs=[prev])
        b1.add_node(VariableNode("N1", options))
        ci.add_block(b1)
        s.add_cell(ci)
        prev = f"C{i}"

    s.validate()
    return s
