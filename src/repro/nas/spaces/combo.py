"""Combo search spaces (§3.1.1).

Inputs: ``cell_expression`` plus the two drug-descriptor vectors.  The
drug-2 block mirrors the drug-1 block so both drugs share one
feature-encoding submodel — the paper's MirrorNode showcase.

The small space has exactly 13¹²·9 = 209,682,766,102,329 ≈ 2.0968×10¹⁴
architectures, matching the paper.  The large space replicates the middle
cell eight times, extending each replica's Connect options with the
outputs of all previous replicas.
"""

from __future__ import annotations

from ..nodes import ConstantNode, MirrorNode, VariableNode
from ..ops import ConnectOp, DenseOp, DropoutOp, IdentityOp, Operation
from ..space import Block, Cell, Structure

__all__ = ["mlp_ops", "combo_small", "combo_large", "COMBO_INPUTS"]

COMBO_INPUTS = ["cell_expression", "drug1_descriptors", "drug2_descriptors"]


def mlp_ops(scale: float = 1.0) -> list[Operation]:
    """The 13-option MLP_Node set shared by Combo and Uno.

    ``scale`` shrinks the layer widths (e.g. 0.05 turns Dense(1000) into
    Dense(50)) so searches and post-training run at laptop scale without
    changing the space's cardinality or topology.
    """
    def u(units: int) -> int:
        return max(1, round(units * scale))

    ops: list[Operation] = [IdentityOp()]
    for units, drop in ((100, 0.05), (500, 0.1), (1000, 0.2)):
        ops.append(DenseOp(u(units), "relu"))
        ops.append(DenseOp(u(units), "tanh"))
        ops.append(DenseOp(u(units), "sigmoid"))
        ops.append(DropoutOp(drop))
    return ops


def _mlp_chain(block: Block, prefix: str, count: int, scale: float) -> list[VariableNode]:
    nodes = []
    for i in range(count):
        node = VariableNode(f"{prefix}{i}", mlp_ops(scale))
        block.add_node(node)
        nodes.append(node)
    return nodes


def _base_connect_options() -> list[ConnectOp]:
    """The 9 skip-connection options of the small space's C1.B1."""
    ce, d1, d2 = COMBO_INPUTS
    return [
        ConnectOp(),               # Null
        ConnectOp(ce),             # Cell expression
        ConnectOp(d1),             # Drug 1 descriptors
        ConnectOp(d2),             # Drug 2 descriptors
        ConnectOp("C0"),           # previous cell output
        ConnectOp(ce, d1, d2),     # Inputs
        ConnectOp(ce, d1),
        ConnectOp(ce, d2),
        ConnectOp(d1, d2),
    ]


def _input_cell(scale: float) -> Cell:
    """C0: three blocks encoding the three inputs; drug2 mirrors drug1."""
    c0 = Cell("C0")
    b0 = Block("B0", inputs=["cell_expression"])
    _mlp_chain(b0, "N", 3, scale)
    c0.add_block(b0)

    b1 = Block("B1", inputs=["drug1_descriptors"])
    drug_nodes = _mlp_chain(b1, "N", 3, scale)
    c0.add_block(b1)

    b2 = Block("B2", inputs=["drug2_descriptors"])
    for i, target in enumerate(drug_nodes):
        b2.add_node(MirrorNode(f"N{i}", target))
    c0.add_block(b2)
    return c0


def combo_small(scale: float = 1.0) -> Structure:
    """The small Combo space: |S| = 13¹²·9 ≈ 2.0968×10¹⁴."""
    s = Structure("combo-small", COMBO_INPUTS, output_sources="all_cells")
    s.add_cell(_input_cell(scale))

    c1 = Cell("C1")
    b0 = Block("B0", inputs=["C0"])
    _mlp_chain(b0, "N", 3, scale)
    c1.add_block(b0)
    b1 = Block("B1", inputs=["C0"])
    b1.add_node(VariableNode("N0", _base_connect_options()))
    c1.add_block(b1)
    s.add_cell(c1)

    c2 = Cell("C2")
    b0 = Block("B0", inputs=["C1"])
    _mlp_chain(b0, "N", 3, scale)
    c2.add_block(b0)
    s.add_cell(c2)

    s.validate()
    return s


def combo_large(scale: float = 1.0, replicas: int = 8) -> Structure:
    """The large Combo space: C1 replicated ``replicas`` times, each
    replica's Connect options extended with all previous replicas'
    outputs (§3.1.1)."""
    if replicas < 1:
        raise ValueError("need at least one replica")
    s = Structure("combo-large", COMBO_INPUTS, output_sources="all_cells")
    s.add_cell(_input_cell(scale))

    prev = "C0"
    for i in range(1, replicas + 1):
        ci = Cell(f"C{i}")
        b0 = Block("B0", inputs=[prev])
        _mlp_chain(b0, "N", 3, scale)
        ci.add_block(b0)
        options = _base_connect_options()
        # add outputs of C1..C(i-1)
        options += [ConnectOp(f"C{j}") for j in range(1, i)]
        b1 = Block("B1", inputs=[prev])
        b1.add_node(VariableNode("N0", options))
        ci.add_block(b1)
        s.add_cell(ci)
        prev = f"C{i}"

    cf = Cell(f"C{replicas + 1}")
    b0 = Block("B0", inputs=[prev])
    _mlp_chain(b0, "N", 3, scale)
    cf.add_block(b0)
    s.add_cell(cf)

    s.validate()
    return s
