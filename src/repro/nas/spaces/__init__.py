"""Search-space definitions for the three CANDLE benchmarks."""

from ..space import Structure
from .combo import combo_large, combo_small, mlp_ops
from .nt3 import nt3_small
from .uno import uno_large, uno_small

__all__ = ["combo_small", "combo_large", "uno_small", "uno_large",
           "nt3_small", "mlp_ops", "get_space", "SPACES"]

SPACES = {
    "combo-small": combo_small,
    "combo-large": combo_large,
    "uno-small": uno_small,
    "uno-large": uno_large,
    "nt3-small": nt3_small,
}


def get_space(name: str, scale: float = 1.0, **kwargs) -> Structure:
    """Construct a named search space, optionally width-scaled."""
    try:
        factory = SPACES[name]
    except KeyError:
        raise ValueError(f"unknown space {name!r}; choose from {sorted(SPACES)}") from None
    return factory(scale=scale, **kwargs)
