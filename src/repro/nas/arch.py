"""Architecture: an immutable, hashable point of a search space.

Hashability is load-bearing: the paper's evaluator keeps an *agent-local*
cache of evaluated architectures keyed by the action sequence, and A3C's
convergence is detected when every agent only generates cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Architecture"]


@dataclass(frozen=True)
class Architecture:
    """A fully specified architecture: space name + one choice per
    variable node, in the structure's action order."""

    space: str
    choices: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "choices", tuple(int(c) for c in self.choices))

    @property
    def key(self) -> tuple:
        return (self.space, self.choices)

    def to_dict(self) -> dict:
        return {"space": self.space, "choices": list(self.choices)}

    @classmethod
    def from_dict(cls, d: dict) -> "Architecture":
        return cls(d["space"], tuple(d["choices"]))

    def __str__(self) -> str:
        return f"{self.space}[{','.join(map(str, self.choices))}]"
