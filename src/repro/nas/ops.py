"""Search-space operations (the choices of a variable node).

Operations are lightweight descriptors: they know their display name
(matching the paper's ``Dense(100, relu)`` notation), how to infer output
shapes and parameter counts symbolically (so the compiler can count the
trainable parameters of an architecture without allocating any weights),
and how to materialize an actual :mod:`repro.nn` layer.

``ConnectOp`` is the skip-connection operation of §3.1: its payload is a
tuple of tensor references (structure inputs, previous cell outputs, or
individual node outputs); choosing the empty tuple is the paper's *Null*
option.
"""

from __future__ import annotations

import numpy as np

from ..nn.conv import Conv1D, MaxPooling1D
from ..nn.layers import ACTIVATIONS, Activation, Dense, Dropout, Identity, Layer

__all__ = [
    "Operation", "IdentityOp", "DenseOp", "DropoutOp", "ActivationOp",
    "Conv1DOp", "MaxPooling1DOp", "AddOp", "ConnectOp",
]

Shape = tuple[int, ...]


class Operation:
    """Base class for search-space operations."""

    #: whether the materialized layer owns shareable parameters
    shareable = False
    #: whether this op consumes multiple inputs (merge semantics)
    is_merge = False

    @property
    def name(self) -> str:
        raise NotImplementedError

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def param_count(self, in_shape: Shape) -> int:
        return 0

    def requires_flat(self) -> bool:
        """True when the op needs a rank-1 input (auto-Flatten upstream)."""
        return False

    def make_layer(self, name: str, share_from: Layer | None = None) -> Layer:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.__dict__.items()))))


class IdentityOp(Operation):
    """Pass-through; present in every variable node of the paper's spaces."""

    @property
    def name(self) -> str:
        return "Identity"

    def make_layer(self, name: str, share_from: Layer | None = None) -> Layer:
        return Identity(name)


class DenseOp(Operation):
    """``Dense(units, activation)`` — the MLP_Node workhorse."""

    shareable = True

    def __init__(self, units: int, activation: str = "relu") -> None:
        if units <= 0:
            raise ValueError("units must be positive")
        if activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.units = units
        self.activation = activation

    @property
    def name(self) -> str:
        return f"Dense({self.units}, {self.activation})"

    def out_shape(self, in_shape: Shape) -> Shape:
        return (self.units,)

    def param_count(self, in_shape: Shape) -> int:
        return (in_shape[0] + 1) * self.units

    def requires_flat(self) -> bool:
        return True

    def make_layer(self, name: str, share_from: Dense | None = None) -> Dense:
        return Dense(self.units, self.activation, name, share_from=share_from)


class DropoutOp(Operation):
    """``Dropout(rate)``."""

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        self.rate = rate

    @property
    def name(self) -> str:
        return f"Dropout({self.rate:g})"

    def make_layer(self, name: str, share_from: Layer | None = None) -> Dropout:
        return Dropout(self.rate, name)


class ActivationOp(Operation):
    """``Activation(fn)`` — NT3's Act_Node options."""

    def __init__(self, activation: str) -> None:
        if activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.activation = activation

    @property
    def name(self) -> str:
        return f"Activation({self.activation})"

    def make_layer(self, name: str, share_from: Layer | None = None) -> Activation:
        return Activation(self.activation, name)


class Conv1DOp(Operation):
    """``Conv1D(kernel_size)`` with a fixed filter count and stride.

    NT3's Conv_Node varies only the kernel size; the paper fixes filters=8
    and stride=1 for the search space.
    """

    shareable = True

    def __init__(self, kernel_size: int, filters: int = 8, strides: int = 1,
                 activation: str = "linear") -> None:
        if kernel_size <= 0 or filters <= 0 or strides <= 0:
            raise ValueError("kernel_size, filters, strides must be positive")
        self.kernel_size = kernel_size
        self.filters = filters
        self.strides = strides
        self.activation = activation

    @property
    def name(self) -> str:
        return f"Conv1D({self.kernel_size})"

    def out_shape(self, in_shape: Shape) -> Shape:
        if len(in_shape) != 2:
            raise ValueError(f"Conv1D needs (length, channels), got {in_shape}")
        length, _ = in_shape
        if length < self.kernel_size:
            raise ValueError(f"length {length} < kernel {self.kernel_size}")
        return ((length - self.kernel_size) // self.strides + 1, self.filters)

    def param_count(self, in_shape: Shape) -> int:
        return (self.kernel_size * in_shape[1] + 1) * self.filters

    def make_layer(self, name: str, share_from: Conv1D | None = None) -> Conv1D:
        if share_from is not None:
            raise NotImplementedError("Conv1D weight sharing is not used by any space")
        return Conv1D(self.filters, self.kernel_size, self.strides,
                      self.activation, name)


class MaxPooling1DOp(Operation):
    """``MaxPooling1D(pool_size)``."""

    def __init__(self, pool_size: int) -> None:
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size

    @property
    def name(self) -> str:
        return f"MaxPooling1D({self.pool_size})"

    def out_shape(self, in_shape: Shape) -> Shape:
        if len(in_shape) != 2:
            raise ValueError(f"MaxPooling1D needs (length, channels), got {in_shape}")
        length, channels = in_shape
        out_len = length // self.pool_size
        if out_len == 0:
            raise ValueError(f"length {length} < pool size {self.pool_size}")
        return (out_len, channels)

    def make_layer(self, name: str, share_from: Layer | None = None) -> MaxPooling1D:
        return MaxPooling1D(self.pool_size, name)


class AddOp(Operation):
    """Elementwise addition ConstantNode (Uno's residual links)."""

    is_merge = True

    @property
    def name(self) -> str:
        return "Add"

    def requires_flat(self) -> bool:
        return True

    def make_layer(self, name: str, share_from: Layer | None = None):
        from ..nn.merge import Add
        return Add(name)


class ConnectOp(Operation):
    """Skip-connection choice: concatenate the referenced tensors.

    ``refs`` name tensors registered by the compiler: structure input
    names (e.g. ``"cell_expression"``), cell outputs (``"C1"``), or node
    outputs (``"C2.B0.N0"``).  An empty tuple is the *Null* option — the
    owning block then contributes nothing to its cell's output.
    """

    is_merge = True

    def __init__(self, *refs: str) -> None:
        self.refs = tuple(refs)

    @property
    def name(self) -> str:
        return "Connect(" + (", ".join(self.refs) if self.refs else "Null") + ")"

    def make_layer(self, name: str, share_from: Layer | None = None):
        from ..nn.merge import Concatenate
        return Concatenate(name)
