"""Neural-architecture-search core: search-space formalism and compiler.

The paper's primary contribution: a graph search space with multiple
input layers, variable / constant / mirror nodes, and skip-connection
operations, from which architectures decode to runnable models.
"""

from .arch import Architecture
from .builder import (Plan, PlanNode, build_model, compile_architecture,
                      count_parameters)
from .nodes import ConstantNode, MirrorNode, Node, VariableNode
from .plancache import PlanCache, plan_signature
from .ops import (ActivationOp, AddOp, ConnectOp, Conv1DOp, DenseOp,
                  DropoutOp, IdentityOp, MaxPooling1DOp, Operation)
from .space import Block, Cell, Structure
from .visualize import render_plan, render_space

__all__ = [
    "ActivationOp", "AddOp", "Architecture", "Block", "Cell", "ConnectOp",
    "ConstantNode", "Conv1DOp", "DenseOp", "DropoutOp", "IdentityOp",
    "MaxPooling1DOp", "MirrorNode", "Node", "Operation", "Plan", "PlanCache",
    "PlanNode", "Structure", "VariableNode", "build_model",
    "compile_architecture", "count_parameters", "plan_signature",
    "render_plan", "render_space",
]
