"""Text rendering of search spaces and compiled plans.

The paper's software builds Keras models automatically from generated
architectures; inspecting what got built matters in practice.  These
helpers render a search space's decision table and a compiled plan's
layer graph as plain text (no plotting dependency).
"""

from __future__ import annotations

from .builder import Plan
from .nodes import ConstantNode, MirrorNode, VariableNode
from .space import Structure

__all__ = ["render_space", "render_plan"]


def render_space(structure: Structure) -> str:
    """A table of the structure's cells, blocks and node choices."""
    lines = [f"Structure {structure.name!r}",
             f"  inputs: {', '.join(structure.inputs)}",
             f"  cardinality: {structure.size:.4e} "
             f"({structure.num_actions} decisions)"]
    action = 0
    for cell in structure.cells:
        lines.append(f"  {cell.name}:")
        for block in cell.blocks:
            lines.append(f"    {block.name} <- {', '.join(block.inputs)}")
            for idx, node in enumerate(block.nodes):
                extra = block.extra_inputs.get(idx)
                suffix = f" (+ inputs from nodes {extra})" if extra else ""
                if isinstance(node, VariableNode):
                    ops = ", ".join(op.name for op in node.ops[:4])
                    if node.num_ops > 4:
                        ops += f", ... ({node.num_ops} options)"
                    lines.append(f"      [a{action}] {node.name}: "
                                 f"{{{ops}}}{suffix}")
                    action += 1
                elif isinstance(node, ConstantNode):
                    lines.append(f"      {node.name}: {node.op.name} "
                                 f"[constant]{suffix}")
                elif isinstance(node, MirrorNode):
                    lines.append(f"      {node.name}: mirror of "
                                 f"{node.target.name}{suffix}")
    out = structure.output_sources
    lines.append(f"  output: concat({out if isinstance(out, str) else ', '.join(out)})")
    return "\n".join(lines)


def render_plan(plan: Plan) -> str:
    """The compiled layer graph with shapes and parameter counts."""
    lines = [f"Plan for space {plan.space!r}: "
             f"{plan.total_params:,} trainable parameters, "
             f"depth {plan.depth}"]
    for name, shape in plan.input_shapes.items():
        lines.append(f"  input {name:<28} {str(shape):>14}")
    for node in plan.nodes:
        label = node.op.name if node.op is not None else node.kind
        share = f" [shares {node.share_of}]" if node.share_of else ""
        params = f" {node.params:,}p" if node.params else ""
        lines.append(f"  {node.name:<34} {label:<22} "
                     f"{str(node.out_shape):>12}{params}{share}"
                     f"  <- {', '.join(node.inputs)}")
    lines.append(f"  output: {plan.output}")
    return "\n".join(lines)
