"""Search-space graph structure: Block, Cell, Structure (§3.1).

A :class:`Structure` is ``{(I⁰..Iᴾ⁻¹), (C⁰..Cᴷ⁻¹), R_out}``: a tuple of
named inputs, a tuple of cells, and an output rule.  A :class:`Cell`
holds blocks plus its output rule (concatenation of non-empty block
outputs).  A :class:`Block` is a DAG of nodes: sequential feed-forward by
default, with optional extra intra-block edges (used by Uno's residual
Add links).

The structure's ordered list of variable nodes defines the agent's action
sequence; :meth:`Structure.size` is the exact cardinality of the
architecture space (the product of per-node choice counts), which for the
paper's small spaces reproduces §3.1's numbers exactly.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .nodes import ConstantNode, MirrorNode, Node, VariableNode
from .ops import ConnectOp

__all__ = ["Block", "Cell", "Structure"]


class Block:
    """A DAG of nodes; the basic unit of a cell.

    Parameters
    ----------
    name:
        Block identifier, unique within its cell.
    inputs:
        Tensor references this block reads (structure input names, cell
        names, or ``"Ci.Bj.Nk"`` node references).  Multiple references
        are concatenated before the first node.
    """

    def __init__(self, name: str, inputs: list[str]) -> None:
        if not inputs:
            raise ValueError(f"block {name!r} needs at least one input")
        self.name = name
        self.inputs = list(inputs)
        self.nodes: list[Node] = []
        #: extra intra-block edges: node index -> indices of *earlier*
        #: nodes whose outputs are additional inputs (merge nodes only).
        self.extra_inputs: dict[int, list[int]] = {}

    def add_node(self, node: Node, extra_inputs: list[int] | None = None) -> "Block":
        idx = len(self.nodes)
        if extra_inputs:
            for j in extra_inputs:
                if not 0 <= j < idx:
                    raise ValueError(
                        f"extra input {j} of node {idx} must reference an "
                        f"earlier node")
            self.extra_inputs[idx] = list(extra_inputs)
        self.nodes.append(node)
        return self

    def validate(self) -> None:
        for i, node in enumerate(self.nodes):
            if isinstance(node, VariableNode):
                if node.num_ops == 0:
                    raise ValueError(f"variable node {node.name!r} has no ops")
                has_connect = any(isinstance(op, ConnectOp) for op in node.ops)
                if has_connect and (len(self.nodes) > 1):
                    raise ValueError(
                        f"Connect node {node.name!r} must be the only node "
                        f"of its block")
            if i in self.extra_inputs:
                op = node.op if isinstance(node, ConstantNode) else None
                if op is None or not op.is_merge:
                    raise ValueError(
                        f"node {node.name!r} has extra inputs but is not a "
                        f"constant merge node")

    def __repr__(self) -> str:
        return f"Block({self.name!r}, nodes={len(self.nodes)})"


class Cell:
    """A set of blocks whose outputs are concatenated."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: list[Block] = []

    def add_block(self, block: Block) -> "Cell":
        if any(b.name == block.name for b in self.blocks):
            raise ValueError(f"duplicate block name {block.name!r} in {self.name!r}")
        self.blocks.append(block)
        return self

    def __repr__(self) -> str:
        return f"Cell({self.name!r}, blocks={len(self.blocks)})"


class Structure:
    """A complete search space: inputs, cells, and an output rule.

    ``output_sources`` selects what feeds the final output concatenation:
    ``"all_cells"`` (Combo), ``"last_cell"`` (Uno, NT3), or an explicit
    list of tensor references.
    """

    def __init__(self, name: str, inputs: list[str],
                 output_sources: str | list[str] = "last_cell") -> None:
        if not inputs:
            raise ValueError("structure needs at least one input")
        if len(set(inputs)) != len(inputs):
            raise ValueError("duplicate input names")
        self.name = name
        self.inputs = list(inputs)
        self.cells: list[Cell] = []
        self.output_sources = output_sources

    def add_cell(self, cell: Cell) -> "Structure":
        if any(c.name == cell.name for c in self.cells):
            raise ValueError(f"duplicate cell name {cell.name!r}")
        self.cells.append(cell)
        return self

    # ------------------------------------------------------------------
    # action space
    # ------------------------------------------------------------------
    def iter_nodes(self) -> Iterator[tuple[Cell, Block, int, Node]]:
        """All nodes in deterministic (cell, block, position) order."""
        for cell in self.cells:
            for block in cell.blocks:
                for idx, node in enumerate(block.nodes):
                    yield cell, block, idx, node

    @property
    def variable_nodes(self) -> list[VariableNode]:
        """Decision points, in action order."""
        return [n for _, _, _, n in self.iter_nodes()
                if isinstance(n, VariableNode)]

    @property
    def num_actions(self) -> int:
        return len(self.variable_nodes)

    @property
    def action_dims(self) -> list[int]:
        """Choice count per decision, in action order."""
        return [n.num_ops for n in self.variable_nodes]

    @property
    def size(self) -> int:
        """Exact cardinality of the architecture space."""
        total = 1
        for n in self.variable_nodes:
            total *= n.num_ops
        return total

    # ------------------------------------------------------------------
    # architectures
    # ------------------------------------------------------------------
    def validate(self) -> None:
        known = set(self.inputs)
        for cell in self.cells:
            if not cell.blocks:
                raise ValueError(f"cell {cell.name!r} has no blocks")
            for block in cell.blocks:
                block.validate()
                for ref in block.inputs:
                    if ref not in known:
                        raise ValueError(
                            f"block {cell.name}.{block.name} references "
                            f"unknown tensor {ref!r}")
                for idx, node in enumerate(block.nodes):
                    known.add(f"{cell.name}.{block.name}.{node.name}")
            known.add(cell.name)
        if isinstance(self.output_sources, list):
            for ref in self.output_sources:
                if ref not in known:
                    raise ValueError(f"unknown output source {ref!r}")
        # mirror targets must be nodes of this structure
        all_nodes = set(id(n) for _, _, _, n in self.iter_nodes())
        for _, _, _, node in self.iter_nodes():
            if isinstance(node, MirrorNode) and id(node.target) not in all_nodes:
                raise ValueError(
                    f"mirror node {node.name!r} targets a node outside "
                    f"this structure")

    def decode(self, choices) -> "Architecture":
        """Turn an action sequence into an :class:`Architecture`."""
        from .arch import Architecture
        choices = tuple(int(c) for c in choices)
        nodes = self.variable_nodes
        if len(choices) != len(nodes):
            raise ValueError(
                f"expected {len(nodes)} choices, got {len(choices)}")
        for c, n in zip(choices, nodes):
            n.op_at(c)  # raises IndexError when out of range
        return Architecture(self.name, choices)

    def random_architecture(self, rng: np.random.Generator) -> "Architecture":
        return self.decode([rng.integers(n.num_ops)
                            for n in self.variable_nodes])

    def describe(self, choices) -> list[str]:
        """Human-readable list of per-node chosen operations."""
        arch = self.decode(choices)
        out = []
        it = iter(arch.choices)
        for cell, block, _, node in self.iter_nodes():
            path = f"{cell.name}.{block.name}.{node.name}"
            if isinstance(node, VariableNode):
                out.append(f"{path}: {node.op_at(next(it)).name}")
            elif isinstance(node, ConstantNode):
                out.append(f"{path}: {node.op.name} [constant]")
            else:
                out.append(f"{path}: mirror of {node.target.name}")
        return out

    def __repr__(self) -> str:
        return (f"Structure({self.name!r}, inputs={len(self.inputs)}, "
                f"cells={len(self.cells)}, size={self.size:.4g})")
