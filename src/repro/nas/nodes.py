"""Node types of the search-space graph (§3.1).

* :class:`VariableNode` — a set of candidate operations; each variable
  node contributes one action to the agent's decision sequence.
* :class:`ConstantNode` — a fixed operation, excluded from the search
  space but present in the constructed network (domain-knowledge
  encoding, e.g. the Add nodes in Uno or the dose pass-through).
* :class:`MirrorNode` — reuses an existing variable node: it adopts the
  same chosen operation and, when the operation has weights, *shares* the
  target's parameters (Combo's shared drug-descriptor submodel).
"""

from __future__ import annotations

from .ops import Operation

__all__ = ["Node", "VariableNode", "ConstantNode", "MirrorNode"]


class Node:
    """Base search-space node."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("node name must be non-empty")
        self.name = name

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class VariableNode(Node):
    """A decision point with a non-ordinal set of operation choices."""

    def __init__(self, name: str, ops: list[Operation] | None = None) -> None:
        super().__init__(name)
        self.ops: list[Operation] = []
        for op in ops or []:
            self.add_op(op)

    def add_op(self, op: Operation) -> "VariableNode":
        """Append a candidate operation (the paper's ``add_op`` API)."""
        if not isinstance(op, Operation):
            raise TypeError(f"expected Operation, got {type(op).__name__}")
        self.ops.append(op)
        return self

    @property
    def num_ops(self) -> int:
        return len(self.ops)

    def op_at(self, index: int) -> Operation:
        if not 0 <= index < len(self.ops):
            raise IndexError(
                f"choice {index} out of range for node {self.name!r} "
                f"({len(self.ops)} ops)")
        return self.ops[index]


class ConstantNode(Node):
    """A fixed operation outside the search space."""

    def __init__(self, name: str, op: Operation) -> None:
        super().__init__(name)
        if not isinstance(op, Operation):
            raise TypeError(f"expected Operation, got {type(op).__name__}")
        self.op = op


class MirrorNode(Node):
    """Reuses an existing node (its chosen operation and its weights).

    The target is usually a :class:`VariableNode` (Combo's shared drug
    submodel); a :class:`ConstantNode` target is also allowed so that
    fixed reference architectures (the manually designed baselines) can
    express weight sharing too.
    """

    def __init__(self, name: str, target: "VariableNode | ConstantNode") -> None:
        super().__init__(name)
        if not isinstance(target, (VariableNode, ConstantNode)):
            raise TypeError(
                "MirrorNode target must be a VariableNode or ConstantNode")
        self.target = target
