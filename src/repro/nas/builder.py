"""Architecture compiler: search-space structure + choices → network.

Compilation happens in two phases so that trainable-parameter counts (the
paper's P_b/P ratio and the surrogate cost model both need them for
thousands of architectures) never require allocating weights:

1. :func:`compile_architecture` symbolically walks the structure with the
   chosen operations, resolving block wiring, skip connections, mirror
   sharing and automatic flattening, and emits a :class:`Plan` — a list of
   plan nodes with inferred shapes and exact parameter counts.
2. :meth:`Plan.materialize` turns a plan into a runnable
   :class:`~repro.nn.graph.GraphModel`, building layers eagerly so that
   mirror nodes share the target layer's actual weight arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..nn import config
from ..nn.conv import Flatten
from ..nn.graph import GraphModel
from ..nn.merge import Add, Concatenate
from .nodes import ConstantNode, MirrorNode, VariableNode
from .ops import ConnectOp, Operation
from .space import Structure

__all__ = ["PlanNode", "Plan", "compile_architecture", "build_model",
           "count_parameters"]

Shape = tuple[int, ...]


@dataclass
class PlanNode:
    """One node of a compiled plan."""

    name: str
    kind: str                      # "layer" | "concat" | "add" | "flatten"
    inputs: list[str]
    out_shape: Shape
    params: int = 0
    op: Operation | None = None
    share_of: str | None = None    # plan-node whose layer provides weights


@dataclass
class Plan:
    """Symbolic network: inputs + ordered plan nodes + output node."""

    space: str
    input_shapes: dict[str, Shape]
    nodes: list[PlanNode] = field(default_factory=list)
    output: str = ""

    @property
    def total_params(self) -> int:
        """Exact trainable parameter count (shared weights counted once)."""
        return sum(n.params for n in self.nodes)

    @property
    def depth(self) -> int:
        """Number of parameterized layers on the longest input→output path."""
        level: dict[str, int] = {name: 0 for name in self.input_shapes}
        for n in self.nodes:
            base = max(level[i] for i in n.inputs)
            level[n.name] = base + (1 if n.params > 0 or n.share_of else 0)
        return level[self.output]

    @property
    def output_shape(self) -> Shape:
        return next(n.out_shape for n in reversed(self.nodes)
                    if n.name == self.output)

    def subplan(self, output: str) -> "Plan":
        """The ancestor closure of ``output`` as a standalone plan.

        The differential tester's shrinker uses this to cut a failing
        architecture down to the smallest sub-DAG that still disagrees:
        the sub-plan keeps only ``output``, its ancestors, and any
        mirror-share targets those ancestors borrow weights from, with
        unused structure inputs dropped.
        """
        by_name = {n.name: n for n in self.nodes}
        if output not in by_name:
            raise KeyError(f"unknown plan node {output!r}")
        needed: set[str] = set()
        stack = [output]
        while stack:
            name = stack.pop()
            if name in needed or name in self.input_shapes:
                continue
            needed.add(name)
            node = by_name[name]
            stack.extend(node.inputs)
            if node.share_of is not None:
                stack.append(node.share_of)
        nodes = [n for n in self.nodes if n.name in needed]
        used_inputs = {i for n in nodes for i in n.inputs
                       if i in self.input_shapes}
        shapes = {name: shape for name, shape in self.input_shapes.items()
                  if name in used_inputs}
        return Plan(self.space, shapes, nodes, output)

    def materialize(self, rng: np.random.Generator,
                    dtype=None) -> GraphModel:
        """Instantiate the runnable model; weights drawn from ``rng``.

        ``dtype`` fixes the model's compute dtype (default: the
        configured substrate dtype).  Layers are built eagerly inside a
        dtype scope so mirror-shared weights match the model dtype.
        """
        dt = np.dtype(dtype) if dtype is not None else config.get_default_dtype()
        with config.dtype_scope(dt):
            return self._materialize(rng, dt)

    def _materialize(self, rng: np.random.Generator, dt) -> GraphModel:
        model = GraphModel()
        for name, shape in self.input_shapes.items():
            model.add_input(name, shape)
        layers: dict[str, object] = {}
        for pn in self.nodes:
            in_shapes = [self.input_shapes[i] if i in self.input_shapes
                         else layers[i].output_shape for i in pn.inputs]
            if pn.kind == "concat":
                layer = Concatenate(pn.name)
                layer.build_multi(in_shapes, rng)
            elif pn.kind == "add":
                layer = Add(pn.name)
                layer.build_multi(in_shapes, rng)
            elif pn.kind == "flatten":
                layer = Flatten(pn.name)
                layer.build(in_shapes[0], rng)
            else:
                share = layers[pn.share_of] if pn.share_of else None
                layer = pn.op.make_layer(pn.name, share_from=share)
                layer.build(in_shapes[0], rng)
            if tuple(layer.output_shape) != tuple(pn.out_shape):
                raise AssertionError(
                    f"plan/layer shape mismatch at {pn.name}: "
                    f"{pn.out_shape} vs {layer.output_shape}")
            layers[pn.name] = layer
            model.add(pn.name, layer, pn.inputs)
        model.set_output(self.output)
        return model.build(rng, dtype=dt)


class _Compiler:
    def __init__(self, structure: Structure, choices: tuple[int, ...],
                 input_shapes: dict[str, Shape]) -> None:
        self.structure = structure
        self.choices = choices
        self.plan = Plan(structure.name, dict(input_shapes))
        #: tensor reference -> (plan node name, shape)
        self.registry: dict[str, tuple[str, Shape]] = {
            name: (name, tuple(shape)) for name, shape in input_shapes.items()}
        #: VariableNode -> (chosen op, plan node name) for mirror resolution
        self.materialized: dict[int, tuple[Operation, str | None]] = {}
        self._counter = 0

    # -- plan emission -------------------------------------------------
    def _fresh(self, hint: str) -> str:
        self._counter += 1
        return f"{hint}#{self._counter}"

    def emit_layer(self, op: Operation, src: tuple[str, Shape],
                   hint: str, share_of: str | None = None
                   ) -> tuple[str, Shape]:
        src_name, src_shape = src
        if op.requires_flat() and len(src_shape) > 1:
            src_name, src_shape = self.emit_flatten((src_name, src_shape))
        out_shape = op.out_shape(src_shape)
        params = 0 if share_of else op.param_count(src_shape)
        name = self._fresh(hint)
        self.plan.nodes.append(PlanNode(name, "layer", [src_name],
                                        tuple(out_shape), params, op, share_of))
        return name, tuple(out_shape)

    def emit_flatten(self, src: tuple[str, Shape]) -> tuple[str, Shape]:
        src_name, src_shape = src
        name = self._fresh("flatten")
        out = (int(np.prod(src_shape)),)
        self.plan.nodes.append(PlanNode(name, "flatten", [src_name], out))
        return name, out

    def emit_concat(self, srcs: list[tuple[str, Shape]], hint: str
                    ) -> tuple[str, Shape]:
        if len(srcs) == 1:
            return srcs[0]
        flat = []
        for s in srcs:
            flat.append(self.emit_flatten(s) if len(s[1]) > 1 else s)
        name = self._fresh(hint)
        out = (sum(s[1][0] for s in flat),)
        self.plan.nodes.append(
            PlanNode(name, "concat", [s[0] for s in flat], out))
        return name, out

    def emit_add(self, srcs: list[tuple[str, Shape]], hint: str
                 ) -> tuple[str, Shape]:
        flat = []
        for s in srcs:
            flat.append(self.emit_flatten(s) if len(s[1]) > 1 else s)
        name = self._fresh(hint)
        out = (max(s[1][0] for s in flat),)
        self.plan.nodes.append(
            PlanNode(name, "add", [s[0] for s in flat], out))
        return name, out

    def resolve(self, ref: str) -> tuple[str, Shape]:
        try:
            return self.registry[ref]
        except KeyError:
            raise KeyError(
                f"unresolved tensor reference {ref!r} (available: "
                f"{sorted(self.registry)})") from None

    # -- main walk -----------------------------------------------------
    def run(self, head_ops: list[Operation]) -> Plan:
        choice_iter = iter(self.choices)
        for cell in self.structure.cells:
            block_outputs: list[tuple[str, Shape]] = []
            for block in cell.blocks:
                out = self._compile_block(cell, block, choice_iter)
                self.registry[f"{cell.name}.{block.name}"] = out if out else ("", ())
                if out is not None:
                    block_outputs.append(out)
            if not block_outputs:
                raise ValueError(
                    f"cell {cell.name!r} produced no output (all blocks Null)")
            cell_out = self.emit_concat(block_outputs, f"{cell.name}.out")
            self.registry[cell.name] = cell_out

        sources = self.structure.output_sources
        if sources == "all_cells":
            refs = [c.name for c in self.structure.cells]
        elif sources == "last_cell":
            refs = [self.structure.cells[-1].name]
        else:
            refs = list(sources)
        out = self.emit_concat([self.resolve(r) for r in refs], "structure.out")

        for i, op in enumerate(head_ops):
            out = self.emit_layer(op, out, f"head{i}")
        self.plan.output = out[0]
        return self.plan

    def _compile_block(self, cell, block, choice_iter):
        srcs = [self.resolve(r) for r in block.inputs]
        cur: tuple[str, Shape] | None = self.emit_concat(
            srcs, f"{cell.name}.{block.name}.in")
        node_outputs: list[tuple[str, Shape] | None] = []
        for idx, node in enumerate(block.nodes):
            hint = f"{cell.name}.{block.name}.{node.name}"
            if isinstance(node, VariableNode):
                op = node.op_at(next(choice_iter))
                if isinstance(op, ConnectOp):
                    if op.refs:
                        cur = self.emit_concat(
                            [self.resolve(r) for r in op.refs], hint)
                    else:
                        cur = None  # the Null option: block contributes nothing
                    self.materialized[id(node)] = (op, cur[0] if cur else None)
                else:
                    cur = self.emit_layer(op, cur, hint)
                    self.materialized[id(node)] = (op, cur[0])
            elif isinstance(node, MirrorNode):
                try:
                    op, target_plan = self.materialized[id(node.target)]
                except KeyError:
                    raise ValueError(
                        f"mirror node {node.name!r} compiled before its "
                        f"target {node.target.name!r}") from None
                share = target_plan if op.shareable else None
                cur = self.emit_layer(op, cur, hint, share_of=share)
            else:  # ConstantNode
                op = node.op
                if op.is_merge:
                    extra = [node_outputs[j]
                             for j in block.extra_inputs.get(idx, [])]
                    cur = self.emit_add([cur] + extra, hint)
                else:
                    cur = self.emit_layer(op, cur, hint)
                    self.materialized[id(node)] = (op, cur[0])
            node_outputs.append(cur)
            if cur is not None:
                self.registry[f"{cell.name}.{block.name}.{node.name}"] = cur
        return cur


def compile_architecture(structure: Structure, choices,
                         input_shapes: dict[str, Shape],
                         head_ops: list[Operation] | None = None) -> Plan:
    """Compile a choice sequence into a symbolic :class:`Plan`.

    ``input_shapes`` must cover every structure input; ``head_ops`` is the
    problem-specific output head (e.g. ``[DenseOp(1, "linear")]`` for the
    regression benchmarks), applied after the structure's output rule.
    """
    arch = structure.decode(choices)  # validates length and ranges
    missing = set(structure.inputs) - set(input_shapes)
    if missing:
        raise KeyError(f"missing input shapes: {sorted(missing)}")
    shapes = {name: tuple(input_shapes[name]) for name in structure.inputs}
    return _Compiler(structure, arch.choices, shapes).run(head_ops or [])


def build_model(structure: Structure, choices, input_shapes,
                head_ops=None, rng: np.random.Generator | None = None,
                dtype=None) -> GraphModel:
    """Compile and materialize in one call."""
    plan = compile_architecture(structure, choices, input_shapes, head_ops)
    return plan.materialize(rng or np.random.default_rng(0), dtype=dtype)


def count_parameters(structure: Structure, choices, input_shapes,
                     head_ops=None) -> int:
    """Exact trainable-parameter count without allocating weights."""
    return compile_architecture(structure, choices, input_shapes,
                                head_ops).total_params
