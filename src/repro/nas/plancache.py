"""Isomorphism-keyed cache of compiled architecture plans.

At paper scale the same architectures are compiled over and over: every
agent re-derives plans the others already walked (the surrogate's reward
landscape funnels all agents toward the same region), and a converged
search resubmits one architecture thousands of times.  A
:class:`~repro.nas.builder.Plan` is a pure function of (structure,
choices, input shapes, head ops) and is never mutated after compilation
— ``materialize`` draws fresh weights each call — so plans can be shared
freely across agents and iterations.

The cache has two levels:

* an **exact** map from ``(space name, choice tuple)`` to the compiled
  plan — the common fast path (``hits``);
* a **canonical** map from :func:`plan_signature` — a topology hash
  invariant under node renaming — to the first plan compiled with that
  structure (``iso_hits``).  Distinct action sequences can decode to
  structurally identical networks (e.g. variable nodes whose option
  lists repeat an operation, or choices that only differ inside
  dead branches of the plan); the second level makes all of them alias
  one plan object, so downstream memoization and materialization warm
  up once per *structure*, not once per *action sequence*.

Cache state intentionally stays out of checkpoint files: plans are
recomputable, so :meth:`PlanCache.snapshot` captures only the keys and
counters and :meth:`PlanCache.restore` recompiles — bit-identical by
construction.
"""

from __future__ import annotations

import hashlib
import json

from .builder import Plan, compile_architecture
from .ops import Operation
from .space import Structure

__all__ = ["PlanCache", "SignatureResolver", "exact_key", "plan_signature"]

Shape = tuple[int, ...]


def exact_key(arch) -> tuple:
    """The raw ``(space, choices)`` cache key of an architecture.

    Every layer that keys architectures by their action sequence — the
    agent-local :class:`~repro.evaluator.cache.EvalCache`, the exact
    level of :class:`PlanCache`, the bench table's sequence index — goes
    through this one helper, so "what exactly identifies an action
    sequence" is defined in a single place.
    """
    return (arch.space, tuple(int(c) for c in arch.choices))


def _op_token(op: Operation | None) -> str | None:
    """Stable serialization of an operation, mirroring the identity that
    ``Operation.__eq__`` defines: type plus constructor state."""
    if op is None:
        return None
    state = ",".join(f"{k}={v!r}" for k, v in sorted(op.__dict__.items()))
    return f"{type(op).__name__}({state})"


def plan_signature(plan: Plan) -> str:
    """Canonical topology hash of a plan, invariant under node renaming.

    Nodes are renamed by their (topological) emission order and inputs
    by sorted name, so two plans are assigned the same signature exactly
    when they are the same DAG of the same operations over the same
    shapes — regardless of which action sequence produced them.
    """
    rename = {name: f"i{k}" for k, name in enumerate(sorted(plan.input_shapes))}
    for idx, node in enumerate(plan.nodes):
        rename[node.name] = f"n{idx}"
    payload = {
        "inputs": [[rename[name], list(plan.input_shapes[name])]
                   for name in sorted(plan.input_shapes)],
        "nodes": [[n.kind, [rename[i] for i in n.inputs], list(n.out_shape),
                   n.params, _op_token(n.op),
                   rename[n.share_of] if n.share_of else None]
                  for n in plan.nodes],
        "output": rename[plan.output],
    }
    blob = json.dumps(payload, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


class SignatureResolver:
    """Memoized ``architecture -> plan_signature`` mapping for one space.

    The isomorphism signature is the canonical identity of an
    architecture: distinct action sequences that compile to the same DAG
    share one signature.  Both the tabular benchmark
    (:mod:`repro.bench`) and its :class:`~repro.rewards.tabular.
    TabularReward` key their rows by it, so "which table row does this
    architecture belong to" is answered here, once — not re-derived with
    raw ``(space, choices)`` keys in each consumer.

    Compiles go through an optional shared :class:`PlanCache`; resolved
    signatures are memoized per choice tuple, so repeated lookups of the
    same architecture (a converged search hammering one arch) are pure
    dict reads.
    """

    def __init__(self, structure: Structure,
                 input_shapes: dict[str, Shape], head_ops=None,
                 plan_cache: "PlanCache | None" = None) -> None:
        self.structure = structure
        self.input_shapes = dict(input_shapes)
        self.head_ops = None if head_ops is None else list(head_ops)
        self.plan_cache = plan_cache
        self._memo: dict[tuple[int, ...], str] = {}

    def _compile(self, choices) -> Plan:
        if self.plan_cache is not None:
            return self.plan_cache.get_or_compile(
                self.structure, choices, self.input_shapes, self.head_ops)
        return compile_architecture(self.structure, choices,
                                    self.input_shapes, self.head_ops)

    def signature(self, arch) -> str:
        """Canonical signature of ``arch``; raises on an architecture
        that does not compile (invalid in this space)."""
        space, choices = exact_key(arch)
        if space != self.structure.name:
            raise ValueError(
                f"architecture of space {space!r} resolved against "
                f"{self.structure.name!r}")
        sig = self._memo.get(choices)
        if sig is None:
            if len(self._memo) > 500_000:     # bound memory at scale
                self._memo.clear()
            sig = plan_signature(self._compile(choices))
            self._memo[choices] = sig
        return sig

    def try_signature(self, arch) -> str | None:
        """Like :meth:`signature` but ``None`` for architectures that
        fail to compile — the uniform "invalid architecture" signal the
        reward models map to ``FAILURE_REWARD``."""
        try:
            return self.signature(arch)
        except (ValueError, KeyError, FloatingPointError, OverflowError):
            return None


class PlanCache:
    """Shared compile cache; see the module docstring for the design.

    One instance is shared by every agent of a search (plans are
    immutable, so sharing is safe); the search runtime attaches it to
    the reward model via
    :meth:`~repro.rewards.base.RewardModel.set_plan_cache`.
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._plans: dict[tuple, Plan] = {}
        self._by_sig: dict[str, Plan] = {}
        #: exact-key lookups answered without compiling
        self.hits = 0
        #: lookups that had to compile
        self.misses = 0
        #: compiles whose plan turned out isomorphic to a cached one and
        #: was aliased to it (subset of ``misses``)
        self.iso_hits = 0

    def __len__(self) -> int:
        return len(self._plans)

    def stats(self) -> dict[str, int]:
        return {"entries": len(self._plans), "unique_plans": len(self._by_sig),
                "hits": self.hits, "misses": self.misses,
                "iso_hits": self.iso_hits}

    def clear(self) -> None:
        self._plans.clear()
        self._by_sig.clear()

    # -- the one lookup path -------------------------------------------
    def get_or_compile(self, structure: Structure, choices,
                       input_shapes: dict[str, Shape],
                       head_ops=None) -> Plan:
        """The cached equivalent of
        :func:`~repro.nas.builder.compile_architecture`.

        Compile errors (invalid architectures) propagate and are never
        cached, so a failing architecture stays re-attemptable — the
        same rule the evaluation broker applies to failure rewards.
        """
        key = (structure.name, tuple(int(c) for c in choices))
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            return plan
        self.misses += 1
        plan = compile_architecture(structure, choices, input_shapes,
                                    head_ops)
        if len(self._plans) >= self.max_entries:  # bound memory at scale
            self.clear()
        return self._insert(key, plan)

    def _insert(self, key: tuple, plan: Plan) -> Plan:
        sig = plan_signature(plan)
        canonical = self._by_sig.get(sig)
        if canonical is not None:
            plan = canonical
            self.iso_hits += 1
        else:
            self._by_sig[sig] = plan
        self._plans[key] = plan
        return plan

    # -- checkpoint support --------------------------------------------
    def snapshot(self) -> dict:
        """Keys + counters only — plans are recomputable and never enter
        checkpoint files (the v1 wire format stays untouched)."""
        return {"keys": [[space, list(choices)]
                         for space, choices in self._plans],
                "hits": self.hits, "misses": self.misses,
                "iso_hits": self.iso_hits}

    def restore(self, snapshot: dict, structure: Structure,
                input_shapes: dict[str, Shape], head_ops=None) -> None:
        """Rebuild the cache from a :meth:`snapshot` by recompiling.

        Compilation is deterministic, so the restored plans — including
        the isomorphism aliasing — are bit-identical to the originals.
        Keys of other structures (shared cache, multi-space snapshots)
        are skipped; counters are restored exactly as captured.
        """
        self.clear()
        for space_name, choices in snapshot["keys"]:
            if space_name != structure.name:
                continue
            key = (space_name, tuple(int(c) for c in choices))
            plan = compile_architecture(structure, key[1], input_shapes,
                                        head_ops)
            self._insert(key, plan)
        # _insert bumps iso_hits while rebuilding; the captured counters
        # are authoritative
        self.hits = int(snapshot["hits"])
        self.misses = int(snapshot["misses"])
        self.iso_hits = int(snapshot["iso_hits"])
