"""LSTM controller: the agent's policy and value networks.

Per §5, both the policy and value networks are a single-layer LSTM with
32 units.  An architecture is generated token by token: at step *t* the
network consumes an embedding of the previous action, updates its
recurrent state, and emits masked logits over the *t*-th variable node's
choices plus a scalar state-value estimate.  Variable nodes generally
have different choice counts, so logits are computed at the maximum
width and invalid actions are masked to (effectively) −∞.

``forward_train``/``backward_train`` implement full backpropagation
through time for the PPO surrogate; ``sample`` is the cheap no-grad
rollout used to generate architectures.

The hot path is fused end to end: the recurrent state advances through
:class:`~repro.nn.recurrent.FusedLSTM` (one stacked gate GEMM per step,
preallocated state buffers) and the policy and value heads are stacked
into a single ``(H, A+1)`` matrix so each step computes logits and value
with one head GEMM.  ``sample``, ``greedy`` and ``forward_train`` all
run the identical fused step, so a freshly sampled rollout re-evaluated
by ``forward_train`` reproduces its log-probabilities bit for bit (PPO's
first-epoch ratio is exactly 1).  The stacked copies are refreshed at
the start of every pass because the parameter arrays are views into the
flat pack mutated by the optimizer and the parameter-server exchange.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.engine import FlatParameterVector
from ..nn.initializers import glorot_uniform
from ..nn.recurrent import FusedLSTM, LSTMCell
from ..nn.tensor import Parameter

__all__ = ["LSTMPolicy", "Rollout"]

_NEG = -1e9  # mask value: exp(-1e9 - logZ) underflows to exactly 0.0


@dataclass
class Rollout:
    """A batch of sampled action sequences with on-policy statistics."""

    actions: np.ndarray     # (B, T) int
    logprobs: np.ndarray    # (B, T)
    values: np.ndarray      # (B, T)


@dataclass
class _StepCache:
    tokens: np.ndarray      # (B,) input token ids
    h: np.ndarray           # (B, H) — view into the fused pass buffer
    logp_full: np.ndarray   # (B, A) log-probabilities (masked ~ -inf)
    probs: np.ndarray       # (B, A)
    actions: np.ndarray     # (B,)
    entropy: np.ndarray     # (B,)


class LSTMPolicy:
    """Actor-critic controller over a fixed action-dimension sequence."""

    def __init__(self, action_dims: list[int], hidden: int = 32,
                 embed_dim: int = 16, seed: int = 0) -> None:
        if not action_dims:
            raise ValueError("need at least one action")
        if any(d <= 0 for d in action_dims):
            raise ValueError("action dims must be positive")
        self.action_dims = list(action_dims)
        self.horizon = len(action_dims)
        self.max_dim = max(action_dims)
        self.hidden = hidden
        rng = np.random.default_rng(seed)
        # token 0 = <start>, token 1+a = previous action a
        self.embedding = Parameter(
            rng.normal(0.0, 0.1, size=(1 + self.max_dim, embed_dim)),
            "policy.embedding")
        self.lstm = LSTMCell(embed_dim, hidden, rng, "policy.lstm")
        self.w_pi = Parameter(glorot_uniform((hidden, self.max_dim), rng),
                              "policy.w_pi")
        self.b_pi = Parameter(np.zeros(self.max_dim), "policy.b_pi")
        self.w_v = Parameter(glorot_uniform((hidden, 1), rng), "policy.w_v")
        self.b_v = Parameter(np.zeros(1), "policy.b_v")
        # all parameters packed into one contiguous vector; value/grad
        # arrays become views, so flat weight exchange is copy-free
        self.flat = FlatParameterVector(self.parameters())
        self._dtype = self.w_pi.value.dtype
        # per-step mask, built once
        self._mask = np.full((self.horizon, self.max_dim), _NEG,
                             dtype=self._dtype)
        for t, d in enumerate(self.action_dims):
            self._mask[t, :d] = 0.0
        # fused sequence driver + stacked [w_pi | w_v] head, refreshed
        # per pass (the parameter arrays are flat-pack views)
        self._fused = FusedLSTM(self.lstm)
        self._head_w: np.ndarray | None = None
        self._head_b: np.ndarray | None = None
        self._dhv: dict[tuple, np.ndarray] = {}
        # full-sequence tensors of the latest forward_train pass, used
        # by backward_train (which must follow its forward anyway: the
        # recurrent state lives in the fused pass buffers)
        self._seq: dict[str, np.ndarray] | None = None

    # -- parameter plumbing -------------------------------------------
    def parameters(self) -> list[Parameter]:
        return [self.embedding, *self.lstm.parameters(),
                self.w_pi, self.b_pi, self.w_v, self.b_v]

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        self.flat.zero_grad()

    def get_flat(self) -> np.ndarray:
        """All parameters as one vector (for parameter-server exchange).

        Returns a snapshot copy: callers diff it against later states
        (e.g. ``after - before`` update deltas), so it must not alias the
        live parameter pack.
        """
        return self.flat.copy_values()

    def set_flat(self, vec: np.ndarray) -> None:
        self.flat.set_values(vec)

    def add_flat(self, delta: np.ndarray) -> None:
        self.flat.add_values(delta)

    # -- forward passes -------------------------------------------------
    def _begin_pass(self, batch: int) -> None:
        """Bind fused buffers and refresh the stacked weight copies."""
        self._fused.begin(self.horizon, batch)
        a = self.max_dim
        if self._head_w is None:
            self._head_w = np.empty((self.hidden, a + 1), dtype=self._dtype)
            self._head_b = np.empty(a + 1, dtype=self._dtype)
        np.copyto(self._head_w[:, :a], self.w_pi.value)
        self._head_w[:, a] = self.w_v.value[:, 0]
        self._head_b[:a] = self.b_pi.value
        self._head_b[a] = self.b_v.value[0]

    def _fused_step(self, t: int, tokens: np.ndarray):
        """One fused controller step: embedding gather, stacked gate
        GEMM, stacked head GEMM, masked log-softmax.  The single code
        path shared by ``sample``/``greedy``/``forward_train`` — their
        per-step numbers are bit-identical by construction."""
        x = self.embedding.value[tokens]
        h = self._fused.step(t, x)
        hv = h @ self._head_w + self._head_b
        logits = hv[:, :self.max_dim] + self._mask[t]
        z = logits - logits.max(axis=-1, keepdims=True)
        logz = np.log(np.exp(z).sum(axis=-1, keepdims=True))
        logp_full = z - logz
        probs = np.exp(logp_full)
        value = hv[:, self.max_dim]
        return h, logp_full, probs, value

    def sample(self, batch: int, rng: np.random.Generator) -> Rollout:
        """Draw ``batch`` architectures from the current policy."""
        self._begin_pass(batch)
        tokens = np.zeros(batch, dtype=np.intp)
        actions = np.zeros((batch, self.horizon), dtype=np.intp)
        logprobs = np.zeros((batch, self.horizon))
        values = np.zeros((batch, self.horizon))
        for t in range(self.horizon):
            _, logp_full, probs, value = self._fused_step(t, tokens)
            u = rng.random((batch, 1))
            acts = (probs.cumsum(axis=-1) < u).sum(axis=-1)
            acts = np.minimum(acts, self.action_dims[t] - 1)
            actions[:, t] = acts
            logprobs[:, t] = logp_full[np.arange(batch), acts]
            values[:, t] = value
            tokens = acts + 1
        return Rollout(actions, logprobs, values)

    def greedy(self) -> np.ndarray:
        """The argmax action sequence (one architecture)."""
        self._begin_pass(1)
        tokens = np.zeros(1, dtype=np.intp)
        actions = np.zeros(self.horizon, dtype=np.intp)
        for t in range(self.horizon):
            _, logp_full, _, _ = self._fused_step(t, tokens)
            actions[t] = int(logp_full[0].argmax())
            tokens = actions[t:t + 1] + 1
        return actions

    def forward_train(self, actions: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 list[_StepCache]]:
        """Recompute (logprobs, values, entropies) for given actions,
        caching everything ``backward_train`` needs.

        Unlike ``sample``, the whole input sequence is known upfront, so
        only the recurrent carry runs step by step — the head GEMM,
        log-softmax, and entropy are computed for all ``T`` steps at
        once."""
        actions = np.asarray(actions, dtype=np.intp)
        batch, horizon = actions.shape
        if horizon != self.horizon:
            raise ValueError(f"expected horizon {self.horizon}, got {horizon}")
        self._begin_pass(batch)
        a = self.max_dim
        # token t is action t-1 shifted by one; token 0 is <start>
        tokens = np.zeros((horizon, batch), dtype=np.intp)
        tokens[1:] = actions[:, :-1].T + 1
        xs = self.embedding.value[tokens]                   # (T, B, E)
        for t in range(horizon):
            self._fused.step(t, xs[t])
        h_all = self._fused.hidden_states                   # (T, B, H)
        hv = (h_all.reshape(horizon * batch, self.hidden) @ self._head_w
              + self._head_b).reshape(horizon, batch, a + 1)
        logits = hv[:, :, :a] + self._mask[:, None, :]
        z = logits - logits.max(axis=-1, keepdims=True)
        logz = np.log(np.exp(z).sum(axis=-1, keepdims=True))
        logp_full = z - logz                                # (T, B, A)
        probs = np.exp(logp_full)
        with np.errstate(invalid="ignore"):
            plogp = np.where(probs > 0, probs * logp_full, 0.0)
        ent = -plogp.sum(axis=-1)                           # (T, B)
        t_idx = np.arange(horizon)[:, None]
        b_idx = np.arange(batch)[None, :]
        acts = actions.T                                    # (T, B)
        logprobs = logp_full[t_idx, b_idx, acts].T.astype(np.float64)
        values = hv[:, :, a].T.astype(np.float64)
        entropies = ent.T.astype(np.float64)
        self._seq = {"tokens": tokens, "logp_full": logp_full,
                     "probs": probs, "entropy": ent, "actions": acts}
        caches = [_StepCache(tokens[t], h_all[t], logp_full[t], probs[t],
                             actions[:, t], ent[t]) for t in range(horizon)]
        return logprobs, values, entropies, caches

    def backward_train(self, caches: list[_StepCache], d_logp: np.ndarray,
                       d_value: np.ndarray, d_entropy: np.ndarray) -> None:
        """Accumulate parameter gradients for a scalar objective with the
        given partials w.r.t. per-step logprob/value/entropy.

        Must follow the ``forward_train`` pass whose caches it consumes
        (the recurrent state lives in the fused driver's pass buffers).
        """
        dt = self._dtype
        d_logp = np.asarray(d_logp, dtype=dt)
        d_value = np.asarray(d_value, dtype=dt)
        d_entropy = np.asarray(d_entropy, dtype=dt)
        batch = caches[0].tokens.shape[0]
        horizon = len(caches)
        a = self.max_dim
        seq = self._seq
        probs, logp_full = seq["probs"], seq["logp_full"]
        entropy, acts = seq["entropy"], seq["actions"]
        key = (horizon, batch)
        dhv = self._dhv.get(key)
        if dhv is None:
            # per-step head gradients [dlogits | dvalue], accumulated so
            # the head weight gradient is one whole-sequence GEMM
            dhv = self._dhv[key] = np.empty((horizon, batch, a + 1),
                                            dtype=dt)
        # head gradients are step-independent given the forward pass, so
        # compute them for all T steps at once: d logp_a / dlogits_j =
        # 1[j=a] - p_j, dH/dlogits_j = -p_j (log p_j + H)
        dl = d_logp.T[:, :, None]                           # (T, B, 1)
        dlogits = dhv[:, :, :a]
        np.multiply(probs, -dl, out=dlogits)
        t_idx = np.arange(horizon)[:, None]
        b_idx = np.arange(batch)[None, :]
        dlogits[t_idx, b_idx, acts] += d_logp.T
        with np.errstate(invalid="ignore"):
            ent_term = np.where(
                probs > 0, -probs * (logp_full + entropy[:, :, None]), 0.0)
        dlogits += d_entropy.T[:, :, None] * ent_term
        dhv[:, :, a] = d_value.T
        # one GEMM for every step's head contribution to dh; the time
        # loop only carries the recurrent state backwards
        dh_head = (dhv.reshape(horizon * batch, a + 1) @ self._head_w.T
                   ).reshape(horizon, batch, self.hidden)
        dc_next = np.zeros((batch, self.hidden), dtype=dt)
        dh_next = None
        for t in reversed(range(horizon)):
            dh = dh_head[t]
            if dh_next is not None:
                dh += dh_next
            dh_next, dc_next = self._fused.backward_step(t, dh, dc_next)
        self._fused.backward_finish()
        dx = self._fused.input_grads()                      # (T, B, E)
        np.add.at(self.embedding.grad, seq["tokens"].ravel(),
                  dx.reshape(horizon * batch, -1))
        h2 = self._fused.hidden_states.reshape(horizon * batch, self.hidden)
        dhv2 = dhv.reshape(horizon * batch, a + 1)
        ghead = h2.T @ dhv2
        self.w_pi.grad += ghead[:, :a]
        self.w_v.grad += ghead[:, a:]
        dsum = dhv2.sum(axis=0)
        self.b_pi.grad += dsum[:a]
        self.b_v.grad += dsum[a:]
