"""LSTM controller: the agent's policy and value networks.

Per §5, both the policy and value networks are a single-layer LSTM with
32 units.  An architecture is generated token by token: at step *t* the
network consumes an embedding of the previous action, updates its
recurrent state, and emits masked logits over the *t*-th variable node's
choices plus a scalar state-value estimate.  Variable nodes generally
have different choice counts, so logits are computed at the maximum
width and invalid actions are masked to (effectively) −∞.

``forward_train``/``backward_train`` implement full backpropagation
through time for the PPO surrogate; ``sample`` is the cheap no-grad
rollout used to generate architectures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.engine import FlatParameterVector
from ..nn.initializers import glorot_uniform
from ..nn.recurrent import LSTMCell, LSTMStepCache
from ..nn.tensor import Parameter

__all__ = ["LSTMPolicy", "Rollout"]

_NEG = -1e9  # mask value: exp(-1e9 - logZ) underflows to exactly 0.0


@dataclass
class Rollout:
    """A batch of sampled action sequences with on-policy statistics."""

    actions: np.ndarray     # (B, T) int
    logprobs: np.ndarray    # (B, T)
    values: np.ndarray      # (B, T)


@dataclass
class _StepCache:
    lstm: LSTMStepCache
    tokens: np.ndarray      # (B,) input token ids
    h: np.ndarray           # (B, H)
    logp_full: np.ndarray   # (B, A) log-probabilities (masked ~ -inf)
    probs: np.ndarray       # (B, A)
    actions: np.ndarray     # (B,)
    entropy: np.ndarray     # (B,)


class LSTMPolicy:
    """Actor-critic controller over a fixed action-dimension sequence."""

    def __init__(self, action_dims: list[int], hidden: int = 32,
                 embed_dim: int = 16, seed: int = 0) -> None:
        if not action_dims:
            raise ValueError("need at least one action")
        if any(d <= 0 for d in action_dims):
            raise ValueError("action dims must be positive")
        self.action_dims = list(action_dims)
        self.horizon = len(action_dims)
        self.max_dim = max(action_dims)
        self.hidden = hidden
        rng = np.random.default_rng(seed)
        # token 0 = <start>, token 1+a = previous action a
        self.embedding = Parameter(
            rng.normal(0.0, 0.1, size=(1 + self.max_dim, embed_dim)),
            "policy.embedding")
        self.lstm = LSTMCell(embed_dim, hidden, rng, "policy.lstm")
        self.w_pi = Parameter(glorot_uniform((hidden, self.max_dim), rng),
                              "policy.w_pi")
        self.b_pi = Parameter(np.zeros(self.max_dim), "policy.b_pi")
        self.w_v = Parameter(glorot_uniform((hidden, 1), rng), "policy.w_v")
        self.b_v = Parameter(np.zeros(1), "policy.b_v")
        # all parameters packed into one contiguous vector; value/grad
        # arrays become views, so flat weight exchange is copy-free
        self.flat = FlatParameterVector(self.parameters())
        self._dtype = self.w_pi.value.dtype
        # per-step mask, built once
        self._mask = np.full((self.horizon, self.max_dim), _NEG,
                             dtype=self._dtype)
        for t, d in enumerate(self.action_dims):
            self._mask[t, :d] = 0.0

    # -- parameter plumbing -------------------------------------------
    def parameters(self) -> list[Parameter]:
        return [self.embedding, *self.lstm.parameters(),
                self.w_pi, self.b_pi, self.w_v, self.b_v]

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        self.flat.zero_grad()

    def get_flat(self) -> np.ndarray:
        """All parameters as one vector (for parameter-server exchange).

        Returns a snapshot copy: callers diff it against later states
        (e.g. ``after - before`` update deltas), so it must not alias the
        live parameter pack.
        """
        return self.flat.copy_values()

    def set_flat(self, vec: np.ndarray) -> None:
        self.flat.set_values(vec)

    def add_flat(self, delta: np.ndarray) -> None:
        self.flat.add_values(delta)

    # -- forward passes -------------------------------------------------
    def _step_distribution(self, t: int, tokens: np.ndarray,
                           h: np.ndarray, c: np.ndarray):
        x = self.embedding.value[tokens]
        h, c, lstm_cache = self.lstm.step(x, h, c)
        logits = h @ self.w_pi.value + self.b_pi.value + self._mask[t]
        z = logits - logits.max(axis=-1, keepdims=True)
        logz = np.log(np.exp(z).sum(axis=-1, keepdims=True))
        logp_full = z - logz
        probs = np.exp(logp_full)
        value = (h @ self.w_v.value + self.b_v.value)[:, 0]
        return h, c, lstm_cache, logp_full, probs, value

    def sample(self, batch: int, rng: np.random.Generator) -> Rollout:
        """Draw ``batch`` architectures from the current policy."""
        h, c = self.lstm.initial_state(batch)
        tokens = np.zeros(batch, dtype=np.intp)
        actions = np.zeros((batch, self.horizon), dtype=np.intp)
        logprobs = np.zeros((batch, self.horizon))
        values = np.zeros((batch, self.horizon))
        for t in range(self.horizon):
            h, c, _, logp_full, probs, value = self._step_distribution(
                t, tokens, h, c)
            u = rng.random((batch, 1))
            acts = (probs.cumsum(axis=-1) < u).sum(axis=-1)
            acts = np.minimum(acts, self.action_dims[t] - 1)
            actions[:, t] = acts
            logprobs[:, t] = logp_full[np.arange(batch), acts]
            values[:, t] = value
            tokens = acts + 1
        return Rollout(actions, logprobs, values)

    def greedy(self) -> np.ndarray:
        """The argmax action sequence (one architecture)."""
        h, c = self.lstm.initial_state(1)
        tokens = np.zeros(1, dtype=np.intp)
        actions = np.zeros(self.horizon, dtype=np.intp)
        for t in range(self.horizon):
            h, c, _, logp_full, _, _ = self._step_distribution(t, tokens, h, c)
            actions[t] = int(logp_full[0].argmax())
            tokens = actions[t:t + 1] + 1
        return actions

    def forward_train(self, actions: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                 list[_StepCache]]:
        """Recompute (logprobs, values, entropies) for given actions,
        caching everything ``backward_train`` needs."""
        actions = np.asarray(actions, dtype=np.intp)
        batch, horizon = actions.shape
        if horizon != self.horizon:
            raise ValueError(f"expected horizon {self.horizon}, got {horizon}")
        h, c = self.lstm.initial_state(batch)
        tokens = np.zeros(batch, dtype=np.intp)
        logprobs = np.zeros((batch, horizon))
        values = np.zeros((batch, horizon))
        entropies = np.zeros((batch, horizon))
        caches: list[_StepCache] = []
        for t in range(horizon):
            h, c, lstm_cache, logp_full, probs, value = \
                self._step_distribution(t, tokens, h, c)
            acts = actions[:, t]
            logprobs[:, t] = logp_full[np.arange(batch), acts]
            values[:, t] = value
            with np.errstate(invalid="ignore"):
                plogp = np.where(probs > 0, probs * logp_full, 0.0)
            entropy = -plogp.sum(axis=-1)
            entropies[:, t] = entropy
            caches.append(_StepCache(lstm_cache, tokens.copy(), h, logp_full,
                                     probs, acts, entropy))
            tokens = acts + 1
        return logprobs, values, entropies, caches

    def backward_train(self, caches: list[_StepCache], d_logp: np.ndarray,
                       d_value: np.ndarray, d_entropy: np.ndarray) -> None:
        """Accumulate parameter gradients for a scalar objective with the
        given partials w.r.t. per-step logprob/value/entropy."""
        dt = self._dtype
        d_logp = np.asarray(d_logp, dtype=dt)
        d_value = np.asarray(d_value, dtype=dt)
        d_entropy = np.asarray(d_entropy, dtype=dt)
        batch = caches[0].tokens.shape[0]
        dh_next = np.zeros((batch, self.hidden), dtype=dt)
        dc_next = np.zeros((batch, self.hidden), dtype=dt)
        idx = np.arange(batch)
        for t in reversed(range(len(caches))):
            cache = caches[t]
            probs, logp_full = cache.probs, cache.logp_full
            onehot = np.zeros_like(probs)
            onehot[idx, cache.actions] = 1.0
            dlogits = d_logp[:, t, None] * (onehot - probs)
            # dH/dlogits_j = -p_j (log p_j + H)
            with np.errstate(invalid="ignore"):
                ent_term = np.where(probs > 0,
                                    -probs * (logp_full + cache.entropy[:, None]),
                                    0.0)
            dlogits += d_entropy[:, t, None] * ent_term
            self.w_pi.grad += cache.h.T @ dlogits
            self.b_pi.grad += dlogits.sum(axis=0)
            dv = d_value[:, t][:, None]
            self.w_v.grad += cache.h.T @ dv
            self.b_v.grad += dv.sum(axis=0)
            dh = dlogits @ self.w_pi.value.T + dv @ self.w_v.value.T + dh_next
            dx, dh_next, dc_next = self.lstm.backward_step(dh, dc_next,
                                                           cache.lstm)
            np.add.at(self.embedding.grad, cache.tokens, dx)
