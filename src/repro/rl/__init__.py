"""Reinforcement-learning machinery: LSTM controller, PPO, parameter server."""

from .parameter_server import ParameterServer
from .policy import LSTMPolicy, Rollout
from .ppo import PPOConfig, PPOStats, PPOUpdater
from .sharded_ps import ShardedParameterServer

__all__ = ["LSTMPolicy", "PPOConfig", "PPOStats", "PPOUpdater",
           "ParameterServer", "Rollout", "ShardedParameterServer"]
