"""Sharded (multi-)parameter server (§7 future work).

The paper's single parameter server is a scalability bottleneck at high
agent counts: every agent's update serializes through one service.  §7
proposes "developing multiparameter servers to improve scalability".

:class:`ShardedParameterServer` splits the flat parameter vector into
``num_shards`` contiguous shards, each served by an independent
asynchronous server with its own latency and staleness window.  An agent
pushes its update to all shards; shard responses are concatenated.
Because the shards operate independently, their effective latency under
contention is that of one shard rather than the whole vector — the DES
bench `bench_ablations` quantifies the end-to-end effect.

Only the asynchronous (A3C) mode is sharded; the synchronous barrier
already serializes on the slowest agent, not the server.
"""

from __future__ import annotations

import numpy as np

from ..hpc.sim import AllOf, Event, Simulator
from .parameter_server import ParameterServer

__all__ = ["ShardedParameterServer"]


class ShardedParameterServer:
    """A3C-mode parameter exchange over ``num_shards`` servers.

    ``service_time`` is the time ONE server would need for a whole
    vector; each shard serves its slice in ``service_time/num_shards``,
    and shards queue independently — k servers give k× exchange capacity.
    """

    mode = "async"

    def __init__(self, sim: Simulator, num_agents: int, vector_size: int,
                 num_shards: int = 2, staleness_window: int | None = None,
                 service_time: float = 0.0) -> None:
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if vector_size < num_shards:
            raise ValueError("vector_size must be >= num_shards")
        self.sim = sim
        self.num_agents = num_agents
        self.vector_size = vector_size
        self.service_time = service_time
        # contiguous, near-equal shard boundaries
        self.boundaries = np.linspace(0, vector_size, num_shards + 1,
                                      dtype=int)
        self.shards = [
            ParameterServer(sim, num_agents, mode="async",
                            staleness_window=staleness_window,
                            service_time=service_time / num_shards)
            for _ in range(num_shards)]
        self.num_pushes = 0

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def _split(self, delta: np.ndarray) -> list[np.ndarray]:
        delta = np.asarray(delta, dtype=np.float64)
        if delta.shape != (self.vector_size,):
            raise ValueError(
                f"expected vector of size {self.vector_size}, got "
                f"{delta.shape}")
        return [delta[lo:hi] for lo, hi in
                zip(self.boundaries[:-1], self.boundaries[1:])]

    def push_async(self, delta: np.ndarray) -> np.ndarray:
        """Zero-cost push to every shard; concatenated shard averages."""
        self.num_pushes += 1
        return np.concatenate([
            shard.push_async(part)
            for shard, part in zip(self.shards, self._split(delta))])

    def push_async_timed(self, delta: np.ndarray) -> Event:
        """Timed push: shards serve their slices in parallel; the event
        fires with the concatenated average when the slowest finishes."""
        self.num_pushes += 1
        shard_events = [shard.push_async_timed(part)
                        for shard, part in
                        zip(self.shards, self._split(delta))]
        done = self.sim.event()

        def combine():
            parts = yield AllOf(shard_events)
            done.succeed(np.concatenate(parts))

        self.sim.process(combine(), name="sharded-ps")
        return done

    @property
    def queue_delay(self) -> float:
        return max(shard.queue_delay for shard in self.shards)

    def deregister(self, failed: bool = False) -> None:
        for shard in self.shards:
            shard.deregister(failed=failed)

    def register(self, agent_id: int | None = None) -> None:
        """A resurrected agent rejoins every shard (repro.health)."""
        for shard in self.shards:
            shard.register(agent_id)
