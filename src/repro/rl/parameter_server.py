"""Parameter server for multi-agent policy learning (§3.2, Fig. 2).

Agents compute local PPO update directions and exchange them through a
central parameter server:

* **synchronous (A2C)** — the PS waits for all active agents' updates,
  averages them, and releases every agent with the same averaged update.
  All agents start from identical parameters and apply identical
  averages, so their policies stay bit-identical — at the cost of a
  barrier every iteration (the node-idling the paper blames for A2C's
  slower learning and sawtooth utilization).
* **asynchronous (A3C)** — the PS immediately averages the incoming
  update with the most recently received ones (a bounded staleness
  window) and returns; no agent ever waits for another.  Policies drift
  apart but wall-clock progress is continuous.

The server is simulation-aware: synchronous pushes return an event of
the discrete-event kernel that fires when the barrier releases.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..hpc.sim import Event, Simulator

__all__ = ["ParameterServer"]


class ParameterServer:
    def __init__(self, sim: Simulator, num_agents: int, mode: str = "async",
                 staleness_window: int | None = None,
                 latency: float = 0.1, service_time: float = 0.0) -> None:
        if mode not in ("sync", "async"):
            raise ValueError(f"mode must be 'sync' or 'async', got {mode!r}")
        if num_agents <= 0:
            raise ValueError("num_agents must be positive")
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        self.sim = sim
        self.mode = mode
        self.num_agents = num_agents
        self.active_agents = num_agents
        self.latency = latency
        self.service_time = service_time
        self.num_rounds = 0
        self.num_pushes = 0
        # async state: recent updates (default window: half the agents,
        # "a set of recently received gradients")
        window = staleness_window or max(1, num_agents // 2)
        self._recent: deque[np.ndarray] = deque(maxlen=window)
        # sync state; pushes are tagged with their agent id (when given)
        # so checkpoints can attribute in-flight barrier pushes
        self._pending: list[np.ndarray] = []
        self._pending_agents: list[int | None] = []
        self._waiters: list[Event] = []
        self.num_failed_agents = 0
        # timed-service state: the PS node handles one push at a time
        self._busy_until = 0.0

    # -- async (A3C) ------------------------------------------------------
    def push_async(self, delta: np.ndarray) -> np.ndarray:
        """Record an update; return the average of recent updates."""
        if self.mode != "async":
            raise RuntimeError("push_async on a synchronous server")
        self.num_pushes += 1
        self._recent.append(np.asarray(delta, dtype=np.float64))
        return np.mean(self._recent, axis=0)

    def push_async_timed(self, delta: np.ndarray) -> Event:
        """Asynchronous push through a single-server queue.

        The PS node handles one push at a time for ``service_time``
        simulated seconds (proportional, in reality, to the parameter
        vector it must average); the returned event fires with the
        average once this push's service completes.  With many agents, a
        single server queues — the §7 scalability bottleneck the sharded
        server removes.
        """
        if self.mode != "async":
            raise RuntimeError("push_async_timed on a synchronous server")
        ev = self.sim.event()
        start = max(self.sim.now, self._busy_until)
        finish = start + self.service_time
        self._busy_until = finish

        def complete(_value) -> None:
            ev.succeed(self.push_async(delta))

        self.sim._schedule(finish - self.sim.now, complete, None)
        return ev

    @property
    def queue_delay(self) -> float:
        """Current backlog: how long a new push would wait before service."""
        return max(0.0, self._busy_until - self.sim.now)

    # -- sync (A2C) ---------------------------------------------------------
    def push_sync(self, delta: np.ndarray, agent_id: int | None = None
                  ) -> Event:
        """Submit an update; the returned event fires with the round's
        average once every active agent has pushed."""
        if self.mode != "sync":
            raise RuntimeError("push_sync on an asynchronous server")
        self.num_pushes += 1
        ev = self.sim.event()
        self._pending.append(np.asarray(delta, dtype=np.float64))
        self._pending_agents.append(agent_id)
        self._waiters.append(ev)
        self._maybe_release()
        return ev

    def deregister(self, failed: bool = False) -> None:
        """An agent leaves (converged, stopped, or crashed); shrink the
        barrier.  In sync mode the remaining agents' barrier re-checks
        immediately, so an agent that dies mid-round — before or after
        its own push — can never deadlock the others."""
        self.active_agents -= 1
        if self.active_agents < 0:
            raise RuntimeError("more deregistrations than agents")
        if failed:
            self.num_failed_agents += 1
        if self.mode == "sync":
            self._maybe_release()

    def _maybe_release(self) -> None:
        if self._waiters and len(self._pending) >= max(1, self.active_agents):
            avg = np.mean(self._pending, axis=0)
            waiters, self._waiters = self._waiters, []
            self._pending = []
            self._pending_agents = []
            self.num_rounds += 1
            delay = self.latency
            for ev in waiters:
                self.sim._schedule(delay, lambda _v, e=ev: e.succeed(avg), None)

    # -- checkpoint support ------------------------------------------------
    def export_state(self) -> dict:
        """Serializable snapshot for search checkpoints.

        Pushes of the current (unreleased) sync round are *excluded*:
        they belong to in-flight agent iterations that a resumed search
        replays from their iteration boundaries, so they will be pushed
        again.
        """
        return {
            "mode": self.mode,
            "active_agents": self.active_agents,
            "num_rounds": self.num_rounds,
            "num_pushes": self.num_pushes - len(self._pending),
            "num_failed_agents": self.num_failed_agents,
            "recent": [v.tolist() for v in self._recent],
        }

    def restore_state(self, state: dict) -> None:
        if state["mode"] != self.mode:
            raise ValueError(
                f"checkpoint is for a {state['mode']!r} server, "
                f"this one is {self.mode!r}")
        self.active_agents = int(state["active_agents"])
        self.num_rounds = int(state["num_rounds"])
        self.num_pushes = int(state["num_pushes"])
        self.num_failed_agents = int(state.get("num_failed_agents", 0))
        self._recent.clear()
        for vec in state["recent"]:
            self._recent.append(np.asarray(vec, dtype=np.float64))
        self._pending = []
        self._pending_agents = []
        self._waiters = []
