"""Parameter server for multi-agent policy learning (§3.2, Fig. 2).

Agents compute local PPO update directions and exchange them through a
central parameter server:

* **synchronous (A2C)** — the PS waits for all active agents' updates,
  averages them, and releases every agent with the same averaged update.
  All agents start from identical parameters and apply identical
  averages, so their policies stay bit-identical — at the cost of a
  barrier every iteration (the node-idling the paper blames for A2C's
  slower learning and sawtooth utilization).
* **asynchronous (A3C)** — the PS immediately averages the incoming
  update with the most recently received ones (a bounded staleness
  window) and returns; no agent ever waits for another.  Policies drift
  apart but wall-clock progress is continuous.

The server is simulation-aware: synchronous pushes return an event of
the discrete-event kernel that fires when the barrier releases.

Delta hygiene (``docs/robustness.md``): an optional
:class:`~repro.health.recovery.DeltaSanitizer` screens every incoming
update — non-finite or norm-outlier deltas are *rejected* (counted, and
excluded from the averages other agents receive) instead of poisoning
the shared exchange, and ``max_delta_age`` additionally evicts stale
async updates by virtual age.  With no sanitizer configured every push
path is byte-for-byte the unguarded server.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..hpc.sim import Event, Simulator

__all__ = ["ParameterServer"]


class ParameterServer:
    def __init__(self, sim: Simulator, num_agents: int, mode: str = "async",
                 staleness_window: int | None = None,
                 latency: float = 0.1, service_time: float = 0.0,
                 sanitizer=None, max_delta_age: float | None = None) -> None:
        if mode not in ("sync", "async"):
            raise ValueError(f"mode must be 'sync' or 'async', got {mode!r}")
        if num_agents <= 0:
            raise ValueError("num_agents must be positive")
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        if max_delta_age is not None and max_delta_age <= 0:
            raise ValueError("max_delta_age must be positive")
        self.sim = sim
        self.mode = mode
        self.num_agents = num_agents
        self.active_agents = num_agents
        self.latency = latency
        self.service_time = service_time
        self.sanitizer = sanitizer
        self.max_delta_age = max_delta_age
        self.num_rounds = 0
        self.num_pushes = 0
        # async state: recent updates (default window: half the agents,
        # "a set of recently received gradients"); push times recorded in
        # parallel so max_delta_age can evict by virtual age
        window = staleness_window or max(1, num_agents // 2)
        self._recent: deque[np.ndarray] = deque(maxlen=window)
        self._recent_times: deque[float] = deque(maxlen=window)
        # sync state; pushes are tagged with their agent id (when given)
        # so checkpoints can attribute in-flight barrier pushes and a
        # resurrected agent can withdraw its stale push
        self._pending: list[np.ndarray] = []
        self._pending_agents: list[int | None] = []
        self._pending_ok: list[bool] = []
        self._waiters: list[Event] = []
        self.num_failed_agents = 0
        self.num_resurrections = 0
        self.num_stale_evicted = 0
        # timed-service state: the PS node handles one push at a time
        self._busy_until = 0.0

    # -- delta hygiene ----------------------------------------------------
    def _sanitize(self, delta: np.ndarray) -> str | None:
        """Screen one incoming delta; returns the rejection reason or
        ``None`` (always ``None`` with no sanitizer configured)."""
        if self.sanitizer is None:
            return None
        return self.sanitizer.check(delta)

    @property
    def num_rejected_deltas(self) -> int:
        return 0 if self.sanitizer is None else self.sanitizer.num_rejected

    def _evict_stale(self) -> None:
        if self.max_delta_age is None:
            return
        horizon = self.sim.now - self.max_delta_age
        while self._recent_times and self._recent_times[0] < horizon:
            self._recent_times.popleft()
            self._recent.popleft()
            self.num_stale_evicted += 1

    # -- async (A3C) ------------------------------------------------------
    def push_async(self, delta: np.ndarray) -> np.ndarray:
        """Record an update; return the average of recent updates.

        A rejected delta is not recorded: the caller receives the
        average of the surviving recent updates (or a zero vector if
        none exist) so its local poisoned step is replaced rather than
        amplified.
        """
        if self.mode != "async":
            raise RuntimeError("push_async on a synchronous server")
        self.num_pushes += 1
        delta = np.asarray(delta, dtype=np.float64)
        self._evict_stale()
        if self._sanitize(delta) is not None:
            if self._recent:
                return np.mean(self._recent, axis=0)
            return np.zeros_like(delta)
        self._recent.append(delta)
        self._recent_times.append(self.sim.now)
        return np.mean(self._recent, axis=0)

    def push_async_timed(self, delta: np.ndarray) -> Event:
        """Asynchronous push through a single-server queue.

        The PS node handles one push at a time for ``service_time``
        simulated seconds (proportional, in reality, to the parameter
        vector it must average); the returned event fires with the
        average once this push's service completes.  With many agents, a
        single server queues — the §7 scalability bottleneck the sharded
        server removes.
        """
        if self.mode != "async":
            raise RuntimeError("push_async_timed on a synchronous server")
        ev = self.sim.event()
        start = max(self.sim.now, self._busy_until)
        finish = start + self.service_time
        self._busy_until = finish

        def complete(_value) -> None:
            ev.succeed(self.push_async(delta))

        self.sim._schedule(finish - self.sim.now, complete, None)
        return ev

    @property
    def queue_delay(self) -> float:
        """Current backlog: how long a new push would wait before service."""
        return max(0.0, self._busy_until - self.sim.now)

    # -- sync (A2C) ---------------------------------------------------------
    def push_sync(self, delta: np.ndarray, agent_id: int | None = None
                  ) -> Event:
        """Submit an update; the returned event fires with the round's
        average once every active agent has pushed.

        A rejected delta still *counts toward the barrier* (the pushing
        agent receives the round average like everyone else) but is
        excluded from the average itself — barrier liveness and delta
        hygiene are independent concerns.
        """
        if self.mode != "sync":
            raise RuntimeError("push_sync on an asynchronous server")
        self.num_pushes += 1
        delta = np.asarray(delta, dtype=np.float64)
        ev = self.sim.event()
        self._pending.append(delta)
        self._pending_agents.append(agent_id)
        self._pending_ok.append(self._sanitize(delta) is None)
        self._waiters.append(ev)
        self._maybe_release()
        return ev

    def deregister(self, failed: bool = False) -> None:
        """An agent leaves (converged, stopped, or crashed); shrink the
        barrier.  In sync mode the remaining agents' barrier re-checks
        immediately, so an agent that dies mid-round — before or after
        its own push — can never deadlock the others."""
        self.active_agents -= 1
        if self.active_agents < 0:
            raise RuntimeError("more deregistrations than agents")
        if failed:
            self.num_failed_agents += 1
        if self.mode == "sync":
            self._maybe_release()

    def register(self, agent_id: int | None = None) -> None:
        """A resurrected agent rejoins the exchange (see
        ``NasSearch``'s restart path); grows the barrier back.

        Barrier safety: any pending push or waiter still tagged with
        ``agent_id`` belongs to the agent's *crashed* attempt — its
        replayed iteration will push again — so it is withdrawn first.
        Growing the barrier can only raise the release threshold, and
        withdrawal only shrinks the pending set, so re-registration can
        never release (let alone double-release) a round by itself.
        """
        if self.active_agents >= self.num_agents:
            raise RuntimeError("more registrations than agents")
        if agent_id is not None and self.mode == "sync":
            for i in reversed(range(len(self._pending_agents))):
                if self._pending_agents[i] == agent_id:
                    self._pending.pop(i)
                    self._pending_agents.pop(i)
                    self._pending_ok.pop(i)
                    self._waiters.pop(i)
        self.active_agents += 1
        self.num_resurrections += 1

    def _maybe_release(self) -> None:
        if self._waiters and len(self._pending) >= max(1, self.active_agents):
            good = [d for d, ok in zip(self._pending, self._pending_ok) if ok]
            if good:
                avg = np.mean(good, axis=0)
            else:       # every push this round was rejected: no movement
                avg = np.zeros_like(self._pending[0])
            waiters, self._waiters = self._waiters, []
            self._pending = []
            self._pending_agents = []
            self._pending_ok = []
            self.num_rounds += 1
            delay = self.latency
            for ev in waiters:
                self.sim._schedule(delay, lambda _v, e=ev: e.succeed(avg), None)

    # -- checkpoint support ------------------------------------------------
    def export_state(self) -> dict:
        """Serializable snapshot for search checkpoints.

        Pushes of the current (unreleased) sync round are *excluded*:
        they belong to in-flight agent iterations that a resumed search
        replays from their iteration boundaries, so they will be pushed
        again.
        """
        state = {
            "mode": self.mode,
            "active_agents": self.active_agents,
            "num_rounds": self.num_rounds,
            "num_pushes": self.num_pushes - len(self._pending),
            "num_failed_agents": self.num_failed_agents,
            "recent": [v.tolist() for v in self._recent],
        }
        # Health-layer counters ride along only when the layer is in
        # play, so a guard-off checkpoint keeps the pinned v1 schema
        # (tests/test_search_checkpoint_golden.py) byte-for-byte.
        if (self.sanitizer is not None or self.max_delta_age is not None
                or self.num_resurrections or self.num_stale_evicted):
            health: dict = {
                "num_resurrections": self.num_resurrections,
                "num_stale_evicted": self.num_stale_evicted,
            }
            if self.sanitizer is not None:
                health["sanitizer"] = self.sanitizer.export_state()
            if self.max_delta_age is not None:
                health["recent_times"] = list(self._recent_times)
            state["health"] = health
        return state

    def restore_state(self, state: dict) -> None:
        if state["mode"] != self.mode:
            raise ValueError(
                f"checkpoint is for a {state['mode']!r} server, "
                f"this one is {self.mode!r}")
        self.active_agents = int(state["active_agents"])
        self.num_rounds = int(state["num_rounds"])
        self.num_pushes = int(state["num_pushes"])
        self.num_failed_agents = int(state.get("num_failed_agents", 0))
        self._recent.clear()
        self._recent_times.clear()
        for vec in state["recent"]:
            self._recent.append(np.asarray(vec, dtype=np.float64))
        health = state.get("health", {})
        self.num_resurrections = int(health.get("num_resurrections", 0))
        self.num_stale_evicted = int(health.get("num_stale_evicted", 0))
        if self.sanitizer is not None and "sanitizer" in health:
            self.sanitizer.restore_state(health["sanitizer"])
        for t in health.get("recent_times", []):
            self._recent_times.append(float(t))
        # age eviction needs a timestamp per recent entry; a checkpoint
        # written without them treats the survivors as freshly pushed
        while len(self._recent_times) < len(self._recent):
            self._recent_times.append(self.sim.now)
        self._pending = []
        self._pending_agents = []
        self._pending_ok = []
        self._waiters = []
