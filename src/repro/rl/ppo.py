"""Proximal policy optimization (§3.2, Eq. 2).

Each search iteration, an agent samples M architectures, receives their
rewards, and performs a PPO update: the clipped surrogate

    J(θ) = E[min(r(θ)·Â, clip(r(θ), 1−ε, 1+ε)·Â)]

with r(θ) the new/old action-probability ratio, plus a value-function
loss and an entropy bonus, optimized for ``epochs`` passes with Adam —
the paper uses epochs=4, clip=0.2, lr=0.001.

An architecture evaluation yields a single terminal reward; every token
step of that episode receives the episode return, and the advantage at
step *t* is ``R − V(s_t)`` with V from the critic at sampling time
(actor-critic baseline, §3.2).  Advantages are normalized across the
batch, as in OpenAI Baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.optimizers import FlatAdam, clip_global_norm
from .policy import LSTMPolicy, Rollout

__all__ = ["PPOConfig", "PPOStats", "PPOUpdater"]


@dataclass(frozen=True)
class PPOConfig:
    clip: float = 0.2
    epochs: int = 4
    lr: float = 1e-3
    value_coef: float = 0.5
    entropy_coef: float = 0.01
    max_grad_norm: float = 0.5
    normalize_advantages: bool = True
    #: discount and GAE(λ) over the token sequence.  An architecture
    #: episode has a single terminal reward; with the defaults γ=λ=1 the
    #: advantage reduces exactly to R − V(s_t) (the paper's actor-critic
    #: baseline).  Lower values trade bias for variance in credit
    #: assignment across the decision sequence.
    gamma: float = 1.0
    gae_lambda: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.clip < 1.0:
            raise ValueError("clip must be in (0, 1)")
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")
        if not 0.0 < self.gamma <= 1.0 or not 0.0 < self.gae_lambda <= 1.0:
            raise ValueError("gamma and gae_lambda must be in (0, 1]")


@dataclass
class PPOStats:
    policy_loss: float
    value_loss: float
    entropy: float
    clip_fraction: float
    grad_norm: float
    #: divergence statistics read by the health layer's PPO detector
    #: (repro.health): mean (r - 1) - log r estimator of KL(old||new),
    #: and the largest probability ratio of the update
    approx_kl: float = 0.0
    max_ratio: float = 1.0


class PPOUpdater:
    """Applies PPO updates to one agent's policy."""

    def __init__(self, policy: LSTMPolicy, config: PPOConfig | None = None
                 ) -> None:
        self.policy = policy
        self.config = config or PPOConfig()
        # fused Adam over the policy's flat parameter pack; elementwise
        # identical to per-parameter Adam
        self.optimizer = FlatAdam(policy.flat, lr=self.config.lr)

    def prepare_targets(self, rollout: Rollout, rewards: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
        """(advantages, returns) for one rollout and its episode rewards.

        ``rewards`` has one entry per rollout row (terminal reward of the
        generated architecture).  Advantages come back normalized when
        the config asks for it; returns are the raw value targets.
        """
        cfg = self.config
        rewards = np.asarray(rewards, dtype=np.float64)
        if rewards.shape != (rollout.actions.shape[0],):
            raise ValueError(
                f"expected {rollout.actions.shape[0]} rewards, got "
                f"{rewards.shape}")
        advantages = self._gae(rewards, rollout.values)
        returns = advantages + rollout.values  # value-function targets
        if cfg.normalize_advantages:
            std = advantages.std()
            advantages = (advantages - advantages.mean()) / (std + 1e-8)
        return advantages, returns

    def surrogate_loss(self, rollout: Rollout, advantages: np.ndarray,
                       returns: np.ndarray, with_grads: bool = True
                       ) -> tuple[float, PPOStats]:
        """Evaluate L = policy_loss + c_v·value_loss − c_e·entropy at the
        current parameters; with ``with_grads`` also accumulate ∂L/∂θ
        into the policy (after zeroing).

        This is the pure loss/gradient evaluation :meth:`update` iterates
        — no gradient clipping, no optimizer step — which is exactly what
        finite-difference verification needs (``grad_norm`` in the
        returned stats is 0; the caller clips).
        """
        cfg = self.config
        old_logp = rollout.logprobs
        n = old_logp.size
        logp, values, entropies, caches = self.policy.forward_train(
            rollout.actions)
        ratio = np.exp(logp - old_logp)
        clipped = np.clip(ratio, 1.0 - cfg.clip, 1.0 + cfg.clip)
        surr1 = ratio * advantages
        surr2 = clipped * advantages
        use1 = surr1 <= surr2  # min picks the smaller surrogate
        policy_loss = -np.minimum(surr1, surr2).mean()
        value_err = values - returns
        value_loss = 0.5 * np.mean(value_err ** 2)
        entropy = entropies.mean()
        loss = float(policy_loss + cfg.value_coef * value_loss
                     - cfg.entropy_coef * entropy)

        if with_grads:
            # gradients of L = policy_loss + c_v*value_loss - c_e*entropy
            d_logp = np.where(use1, -ratio * advantages / n, 0.0)
            d_value = cfg.value_coef * value_err / n
            d_entropy = np.full_like(logp, -cfg.entropy_coef / n)
            self.policy.zero_grad()
            self.policy.backward_train(caches, d_logp, d_value, d_entropy)

        log_ratio = logp - old_logp
        stats = PPOStats(float(policy_loss), float(value_loss),
                         float(entropy), float(np.mean(ratio != clipped)),
                         0.0,
                         approx_kl=float(np.mean(ratio - 1.0 - log_ratio)),
                         max_ratio=float(np.max(ratio)))
        return loss, stats

    def update(self, rollout: Rollout, rewards: np.ndarray) -> PPOStats:
        """One PPO update from a rollout and its episode rewards."""
        cfg = self.config
        advantages, returns = self.prepare_targets(rollout, rewards)
        stats = PPOStats(0.0, 0.0, 0.0, 0.0, 0.0)
        for _ in range(cfg.epochs):
            _, stats = self.surrogate_loss(rollout, advantages, returns)
            grad_norm = clip_global_norm(
                [p.grad for p in self.policy.parameters()],
                cfg.max_grad_norm)
            self.optimizer.step()
            stats.grad_norm = float(grad_norm)
        return stats

    def _gae(self, rewards: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Generalized advantage estimation over token sequences whose
        only nonzero reward is terminal.  With γ=λ=1 this is exactly
        ``R − V_t`` for every step."""
        gamma, lam = self.config.gamma, self.config.gae_lambda
        batch, horizon = values.shape
        advantages = np.zeros_like(values)
        gae = np.zeros(batch)
        for t in reversed(range(horizon)):
            r_t = rewards if t == horizon - 1 else 0.0
            v_next = values[:, t + 1] if t + 1 < horizon else 0.0
            delta = r_t + gamma * v_next - values[:, t]
            gae = delta + gamma * lam * gae
            advantages[:, t] = gae
        return advantages

    def update_delta(self, rollout: Rollout, rewards: np.ndarray
                     ) -> tuple[np.ndarray, PPOStats]:
        """PPO update returning the parameter delta it produced.

        This is the quantity agents exchange through the parameter
        server: the paper's agents send their PPO gradient estimates to
        the PS and apply the returned average; with multi-epoch PPO the
        natural gradient-estimate analogue is the local update direction
        Δθ = θ_after − θ_before.
        """
        before = self.policy.get_flat()
        stats = self.update(rollout, rewards)
        after = self.policy.get_flat()
        return after - before, stats
