"""Simulated HPC substrate: event kernel, cluster, cost model."""

from .cluster import Cluster, NodeAllocation
from .costmodel import TrainingCostModel
from .faults import FaultConfig, FaultInjector, JobFault
from .monitor import (JobTableStats, job_table_stats, throughput_trace,
                      utilization_from_jobs)
from .sim import AllOf, Event, Interrupt, Process, Simulator, Timeout

__all__ = ["AllOf", "Cluster", "Event", "FaultConfig", "FaultInjector",
           "Interrupt", "JobFault", "JobTableStats",
           "NodeAllocation", "Process", "Simulator", "Timeout",
           "TrainingCostModel", "job_table_stats", "throughput_trace",
           "utilization_from_jobs"]
