"""Discrete-event simulation kernel (SimPy-like, generator coroutines).

The paper's scaling experiments run 256–1,024 Theta nodes for six hours;
here the same orchestration logic (agents, parameter server, Balsam
launcher) runs as coroutine processes over a virtual clock, so a
1,024-node, 360-minute experiment takes seconds of real time while
exercising identical queueing/synchronization code paths.

Processes are Python generators that ``yield`` either

* :class:`Timeout` — resume after a virtual delay,
* :class:`Event` — resume when the event is succeeded,
* another :class:`Process` — resume when that process returns, or
* :class:`AllOf` — resume when every child event has fired.

Determinism: events scheduled for the same instant fire in schedule
order (a monotonically increasing sequence number breaks ties), so runs
are exactly reproducible for a given seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

__all__ = ["Event", "Timeout", "AllOf", "Process", "Simulator",
           "Interrupt"]


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """One-shot condition; processes can wait on it before or after it
    fires (waiting on a fired event resumes immediately)."""

    __slots__ = ("sim", "triggered", "value", "_waiters")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise RuntimeError("event already triggered")
        self.triggered = True
        self.value = value
        for cb in self._waiters:
            self.sim._schedule_callback(cb, value)
        self._waiters.clear()
        return self

    def _add_waiter(self, cb: Callable[[Any], None]) -> None:
        if self.triggered:
            self.sim._schedule_callback(cb, self.value)
        else:
            self._waiters.append(cb)


class Timeout:
    """Yieldable delay."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.delay = float(delay)


class AllOf:
    """Yieldable barrier over several events/processes."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable["Event | Process"]) -> None:
        self.events = list(events)


class Process(Event):
    """A running coroutine; is itself an event that fires on return."""

    __slots__ = ("generator", "name", "_interrupted", "_epoch")

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: str = "") -> None:
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._interrupted: Interrupt | None = None
        #: resume epoch: every parked continuation is tagged with the
        #: epoch it was created in; an interrupt bumps the epoch, so the
        #: abandoned continuation (e.g. the Timeout the process was
        #: sleeping on) becomes stale and is dropped when it fires
        self._epoch = 0

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next resume."""
        if not self.triggered:
            self._interrupted = Interrupt(cause)
            self.sim._schedule_callback(self._resume_interrupt, None)

    def _resume_interrupt(self, _value: Any) -> None:
        if self.triggered or self._interrupted is None:
            return
        exc, self._interrupted = self._interrupted, None
        # invalidate whatever the process was parked on: its callback may
        # still be pending (a Timeout in the heap, an event waiter) and
        # must not resume the generator after the interrupt redirects it
        self._epoch += 1
        try:
            target = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        self.sim._bind(self, target)

    def _continuation(self) -> Callable[[Any], None]:
        """A resume callback valid only for the current epoch."""
        epoch = self._epoch

        def resume(value: Any) -> None:
            if self._epoch == epoch:
                self._step(value)

        return resume

    def _step(self, value: Any) -> None:
        if self.triggered:
            return
        try:
            target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        self.sim._bind(self, target)


class Simulator:
    """The virtual clock and event loop."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable, Any]] = []
        self._seq = 0

    # -- scheduling ------------------------------------------------------
    def _schedule(self, delay: float, cb: Callable, value: Any = None) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, cb, value))

    def _schedule_callback(self, cb: Callable, value: Any) -> None:
        self._schedule(0.0, cb, value)

    def event(self) -> Event:
        return Event(self)

    def timeout_event(self, delay: float, value: Any = None) -> Event:
        """An event that fires after ``delay`` (waitable by many)."""
        ev = Event(self)
        self._schedule(delay, lambda _v: ev.succeed(value), None)
        return ev

    def process(self, generator: Generator, name: str = "") -> Process:
        proc = Process(self, generator, name)
        self._schedule(0.0, proc._continuation(), None)
        return proc

    def _bind(self, proc: Process, target: Any) -> None:
        """Attach a yielded target to the process's continuation.

        The continuation is epoch-tagged: if the process is interrupted
        while parked here, this binding goes stale and firing it later
        is a no-op (see :meth:`Process._continuation`).
        """
        cont = proc._continuation()
        if isinstance(target, Timeout):
            self._schedule(target.delay, cont, None)
        elif isinstance(target, AllOf):
            pending = len(target.events)
            if pending == 0:
                self._schedule(0.0, cont, [])
                return
            results: list[Any] = [None] * pending
            remaining = [pending]

            def make_cb(i: int):
                def cb(value: Any) -> None:
                    results[i] = value
                    remaining[0] -= 1
                    if remaining[0] == 0:
                        cont(results)
                return cb

            for i, ev in enumerate(target.events):
                ev._add_waiter(make_cb(i))
        elif isinstance(target, Event):
            target._add_waiter(cont)
        else:
            raise TypeError(
                f"process {proc.name!r} yielded {type(target).__name__}; "
                f"expected Timeout, Event, Process or AllOf")

    # -- running ----------------------------------------------------------
    def run(self, until: float | None = None,
            stop: "Callable[[], bool] | None" = None) -> None:
        """Run until the heap drains or the clock reaches ``until``.

        Like SimPy, the clock is *not* advanced to ``until`` when all
        events complete earlier — ``now`` stays at the last event time,
        which is how an early-converged search reports its true end.

        ``stop`` is polled before every callback; when it returns True
        the loop returns immediately with the heap (and every parked
        process) intact — the clock stays at the last executed event.
        This is the preemption seam: a signal handler flips a flag, and
        the search stops at the next event boundary, where its state is
        checkpoint-consistent.
        """
        while self._heap:
            if stop is not None and stop():
                return
            t, _, cb, value = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            if t < self.now - 1e-12:
                raise AssertionError("time went backwards")
            self.now = t
            cb(value)

    def peek(self) -> float:
        """Time of the next scheduled callback (inf when idle)."""
        return self._heap[0][0] if self._heap else float("inf")
