"""Deterministic fault injection for the simulated HPC substrate.

The paper's headline claim is scalability, and it leans on Balsam
precisely because the workflow service "tracks job states and restarts
failed tasks" while the agents keep searching.  A faithful reproduction
therefore needs a cluster where nodes *can* die: this module drives

* **node failures and repairs** — per-node MTBF-exponential failures
  that preempt the running pilot job (via the kernel's ``Interrupt``)
  and shrink cluster capacity until an exponential repair completes;
* **per-job crashes** — a seeded per-(job, attempt) crash probability,
  modelling segfaulting training tasks;
* **stragglers** — a per-(job, attempt) probability of running at a
  slowdown multiple of the modelled duration;
* **service outage windows** — intervals during which the Balsam
  service is unreachable and job submissions stall.

Everything is driven by seeded, *stream-separated* RNGs: node events
draw from one stream, and each (job, attempt) derives its own generator
from ``(seed, job_id, attempt)``, so fault decisions are independent of
the order in which jobs happen to be submitted.  Two runs with the same
seed see exactly the same fault schedule.

When no :class:`FaultConfig` is supplied anywhere, the fault layer is
fully inert: the cluster, service, and search behave bit-identically to
a build without this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sim import Interrupt, Process, Simulator, Timeout

__all__ = ["FaultConfig", "JobFault", "NumericFault", "FaultInjector"]

# RNG stream tags: keep node-event, per-job and numeric draws independent
_NODE_STREAM = 0xFA01
_JOB_STREAM = 0xFA02
_NUMERIC_STREAM = 0xFA03


@dataclass(frozen=True)
class FaultConfig:
    """Knobs of the fault model.  All rates default to zero (inert).

    Parameters
    ----------
    node_mtbf:
        Mean time between failures of a single worker node, in virtual
        seconds (exponential).  ``0`` disables node failures.
    node_repair_time:
        Mean repair time of a failed node, in virtual seconds
        (exponential).
    job_crash_prob:
        Probability that one attempt of a job crashes partway through
        its run (the task dies; the node survives).
    straggler_prob:
        Probability that one attempt runs ``straggler_factor`` times
        slower than modelled.
    straggler_factor:
        Slowdown multiplier applied to straggler attempts.
    outages:
        ``(start, end)`` windows of virtual time during which the
        workflow service is unreachable and submissions stall.
    min_worker_nodes:
        Node failures never take the in-service capacity below this.
    nan_grad_prob:
        Probability that one (agent, iteration) PPO update is poisoned
        with NaNs — modelling a hardware bit-flip or fused-kernel bug
        corrupting a gradient buffer.
    exploding_loss_prob:
        Probability that one (agent, iteration) update direction is
        scaled by ``exploding_factor`` — a diverged local policy.
    exploding_factor:
        Magnitude multiplier for exploding-loss faults.
    corrupt_delta_prob:
        Probability that the copy of the delta *sent to the parameter
        server* for one (agent, iteration) is corrupted in flight; the
        local update stays healthy.
    seed:
        Seeds every fault decision; same seed, same fault schedule.
    """

    node_mtbf: float = 0.0
    node_repair_time: float = 300.0
    job_crash_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_factor: float = 3.0
    outages: tuple[tuple[float, float], ...] = ()
    min_worker_nodes: int = 1
    nan_grad_prob: float = 0.0
    exploding_loss_prob: float = 0.0
    exploding_factor: float = 1e6
    corrupt_delta_prob: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.node_mtbf < 0 or self.node_repair_time <= 0:
            raise ValueError("node_mtbf must be >= 0 and repair time > 0")
        for p in (self.job_crash_prob, self.straggler_prob,
                  self.nan_grad_prob, self.exploding_loss_prob,
                  self.corrupt_delta_prob):
            if not 0.0 <= p <= 1.0:
                raise ValueError("probabilities must be in [0, 1]")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.exploding_factor <= 1.0:
            raise ValueError("exploding_factor must be > 1")
        if self.min_worker_nodes < 1:
            raise ValueError("min_worker_nodes must be >= 1")
        for start, end in self.outages:
            if end <= start or start < 0:
                raise ValueError(f"bad outage window ({start}, {end})")

    @property
    def numeric_enabled(self) -> bool:
        """Any numerical fault (repro.health's chaos counterpart) armed?"""
        return (self.nan_grad_prob > 0 or self.exploding_loss_prob > 0
                or self.corrupt_delta_prob > 0)

    @property
    def enabled(self) -> bool:
        return (self.node_mtbf > 0 or self.job_crash_prob > 0
                or self.straggler_prob > 0 or bool(self.outages)
                or self.numeric_enabled)


@dataclass(frozen=True)
class JobFault:
    """Fault decisions for one attempt of one job."""

    crashes: bool = False
    crash_frac: float = 0.5      # fraction of the run completed at crash
    slowdown: float = 1.0


@dataclass(frozen=True)
class NumericFault:
    """Numerical fault decisions for one (agent, iteration).

    At most one kind fires per iteration (they model distinct root
    causes); ``none`` is True when the iteration is healthy.
    """

    nan_grad: bool = False
    exploding_loss: bool = False
    corrupt_delta: bool = False

    @property
    def none(self) -> bool:
        return not (self.nan_grad or self.exploding_loss
                    or self.corrupt_delta)


class FaultInjector:
    """Drives the fault schedule of one simulation.

    Construct with a :class:`FaultConfig`, then :meth:`attach` a cluster
    to start the node failure/repair process.  Per-job decisions are
    pure functions of ``(seed, job_id, attempt)`` and can be queried by
    the Balsam service at any time.
    """

    def __init__(self, sim: Simulator, config: FaultConfig) -> None:
        self.sim = sim
        self.config = config
        self._node_rng = np.random.default_rng(
            (config.seed, _NODE_STREAM))
        self._procs: list[Process] = []
        self._stopped = False
        self.num_node_failures = 0
        self.num_node_repairs = 0
        self.num_job_crashes = 0
        self.num_numeric_faults = 0

    # -- node failures -------------------------------------------------
    def attach(self, cluster) -> None:
        """Start injecting node failures into ``cluster``."""
        if self.config.node_mtbf > 0:
            self._procs.append(self.sim.process(
                self._node_faults(cluster), name="fault.nodes"))

    def _node_faults(self, cluster):
        cfg = self.config
        rng = self._node_rng
        try:
            while True:
                up = cluster.worker_nodes
                if up <= cfg.min_worker_nodes:
                    # everything that can fail has; wait out a repair
                    yield Timeout(cfg.node_repair_time)
                    continue
                # aggregate failure rate of `up` independent nodes
                yield Timeout(rng.exponential(cfg.node_mtbf / up))
                if cluster.worker_nodes <= cfg.min_worker_nodes:
                    continue
                # the failed node is uniform over in-service nodes: it
                # preempts a pilot with probability busy/capacity.  After
                # an idle-kill, surplus leases can outnumber worker_nodes,
                # so draw over whichever is larger or some running pilots
                # would be unreachable by preemption
                holders = cluster.holders
                capacity = max(cluster.worker_nodes, len(holders))
                idx = int(rng.integers(0, capacity))
                victim = holders[idx] if idx < len(holders) else None
                if cluster.fail_node(victim):
                    self.num_node_failures += 1
                    delay = rng.exponential(cfg.node_repair_time)
                    self._procs.append(self.sim.process(
                        self._repair(cluster, delay), name="fault.repair"))
        except Interrupt:
            return

    def _repair(self, cluster, delay: float):
        try:
            yield Timeout(delay)
        except Interrupt:
            pass  # injector stopped: repair immediately so counts balance
        cluster.repair_node()
        self.num_node_repairs += 1

    def stop(self) -> None:
        """Interrupt all injector processes (search finished)."""
        self._stopped = True
        for proc in self._procs:
            proc.interrupt("injector stopped")

    # -- per-job faults ------------------------------------------------
    def job_fault(self, job_id: int, attempt: int) -> JobFault | None:
        """Fault decisions for attempt ``attempt`` of job ``job_id``.

        A pure function of ``(seed, job_id, attempt)``, independent of
        submission order and safe to query repeatedly — the caller that
        actually takes the crash path bumps :attr:`num_job_crashes`.
        Returns ``None`` when job-level faults are disabled.
        """
        cfg = self.config
        if cfg.job_crash_prob <= 0 and cfg.straggler_prob <= 0:
            return None
        rng = np.random.default_rng(
            (cfg.seed, _JOB_STREAM, job_id, attempt))
        crashes = bool(rng.random() < cfg.job_crash_prob)
        crash_frac = float(rng.uniform(0.05, 0.95))
        slowdown = (cfg.straggler_factor
                    if rng.random() < cfg.straggler_prob else 1.0)
        return JobFault(crashes, crash_frac, slowdown)

    # -- numerical faults ----------------------------------------------
    def numeric_fault(self, agent_id: int, iteration: int,
                      attempt: int = 0) -> NumericFault | None:
        """Numerical fault decisions for one agent iteration.

        A pure function of ``(seed, agent_id, iteration, attempt)`` on
        its own RNG stream — independent of per-job and node draws, of
        agent scheduling order, and of how many times it is queried.
        ``attempt`` is the agent's lifetime number (restarts so far):
        these faults model *transient* corruption, so a resurrected
        agent replaying the same iteration draws fresh — a permanent
        same-draw fault would deterministically kill every restart.
        The caller that applies a fault bumps :attr:`num_numeric_faults`.
        Returns ``None`` when numerical faults are disabled.
        """
        cfg = self.config
        if not cfg.numeric_enabled:
            return None
        rng = np.random.default_rng(
            (cfg.seed, _NUMERIC_STREAM, agent_id, iteration, attempt))
        draw = float(rng.random())
        # one draw, disjoint intervals: at most one fault kind fires
        if draw < cfg.nan_grad_prob:
            return NumericFault(nan_grad=True)
        draw -= cfg.nan_grad_prob
        if draw < cfg.exploding_loss_prob:
            return NumericFault(exploding_loss=True)
        draw -= cfg.exploding_loss_prob
        if draw < cfg.corrupt_delta_prob:
            return NumericFault(corrupt_delta=True)
        return NumericFault()

    # -- service outages ------------------------------------------------
    def outage_delay(self, now: float) -> float:
        """Seconds until the service is reachable again (0 if up)."""
        for start, end in self.config.outages:
            if start <= now < end:
                return end - now
        return 0.0
