"""Simulated HPC cluster: node accounting à la Theta allocations.

The paper's runs partition an allocation into agent nodes, worker nodes,
one Balsam service node and unused remainder (e.g. 256 = 21 agents + 231
workers + 1 Balsam + 3 unused).  :class:`NodeAllocation` captures that
arithmetic; :class:`Cluster` tracks worker-node occupancy over virtual
time and produces the utilization traces of Figs. 5/6/9 ("fraction of
allocated compute nodes actively running evaluation tasks").
"""

from __future__ import annotations

from dataclasses import dataclass

from .sim import Event, Simulator

__all__ = ["NodeAllocation", "Cluster"]


@dataclass(frozen=True)
class NodeAllocation:
    """How a job's node count is split (paper §5, footnote 2)."""

    total_nodes: int
    num_agents: int
    workers_per_agent: int
    service_nodes: int = 1

    def __post_init__(self) -> None:
        if self.total_nodes <= 0 or self.num_agents <= 0 \
                or self.workers_per_agent <= 0:
            raise ValueError("node counts must be positive")
        if self.used_nodes > self.total_nodes:
            raise ValueError(
                f"{self.used_nodes} nodes needed but only "
                f"{self.total_nodes} allocated")

    @property
    def worker_nodes(self) -> int:
        return self.num_agents * self.workers_per_agent

    @property
    def used_nodes(self) -> int:
        return self.num_agents + self.worker_nodes + self.service_nodes

    @property
    def unused_nodes(self) -> int:
        return self.total_nodes - self.used_nodes

    @classmethod
    def paper_256(cls) -> "NodeAllocation":
        """The reference 256-node configuration: 21 agents × 11 workers."""
        return cls(256, 21, 11)

    @classmethod
    def paper_scaling(cls, total_nodes: int, mode: str) -> "NodeAllocation":
        """The §5.3 scaling configurations.

        ``mode="workers"`` fixes 21 agents and grows workers per agent
        (23 at 512, 47 at 1,024); ``mode="agents"`` fixes 11 workers per
        agent and grows agents (42 at 512, 85 at 1,024).
        """
        table = {
            ("workers", 512): cls(512, 21, 23),
            ("workers", 1024): cls(1024, 21, 47),
            ("agents", 512): cls(512, 42, 11),
            ("agents", 1024): cls(1024, 85, 11),
            ("workers", 256): cls.paper_256(),
            ("agents", 256): cls.paper_256(),
        }
        try:
            return table[(mode, total_nodes)]
        except KeyError:
            raise ValueError(
                f"no paper configuration for {total_nodes} nodes / "
                f"{mode!r} scaling") from None


class Cluster:
    """Worker-node pool with occupancy tracking.

    ``acquire``/``release`` manage single-node leases; waiters queue
    FIFO.  Every occupancy change appends a ``(time, busy)`` sample, so
    utilization can be integrated exactly after the run.
    """

    def __init__(self, sim: Simulator, worker_nodes: int) -> None:
        if worker_nodes <= 0:
            raise ValueError("worker_nodes must be positive")
        self.sim = sim
        self.worker_nodes = worker_nodes
        self.busy = 0
        self._wait_queue: list[Event] = []
        self.samples: list[tuple[float, int]] = [(0.0, 0)]

    @property
    def idle(self) -> int:
        return self.worker_nodes - self.busy

    def _record(self) -> None:
        self.samples.append((self.sim.now, self.busy))

    def try_acquire(self) -> bool:
        """Take a node if one is idle; non-blocking."""
        if self.busy < self.worker_nodes:
            self.busy += 1
            self._record()
            return True
        return False

    def acquire(self) -> Event:
        """Yieldable: fires when a node has been granted to the caller."""
        ev = self.sim.event()
        if self.busy < self.worker_nodes:
            self.busy += 1
            self._record()
            ev.succeed()
        else:
            self._wait_queue.append(ev)
        return ev

    def release(self) -> None:
        if self.busy <= 0:
            raise RuntimeError("release without matching acquire")
        if self._wait_queue:
            # hand the node directly to the next waiter: occupancy unchanged
            self._wait_queue.pop(0).succeed()
        else:
            self.busy -= 1
            self._record()

    # -- utilization --------------------------------------------------
    def utilization_trace(self, end_time: float, bin_width: float = 1.0
                          ) -> list[tuple[float, float]]:
        """Mean utilization per time bin, as plotted in Figs. 5/6/9."""
        if end_time <= 0:
            raise ValueError("end_time must be positive")
        samples = self.samples + [(end_time, self.busy)]
        trace: list[tuple[float, float]] = []
        idx = 0
        t = 0.0
        busy = 0
        while t < end_time:
            t_next = min(t + bin_width, end_time)
            area = 0.0
            cur = t
            while idx < len(samples) and samples[idx][0] <= t_next:
                st, sb = samples[idx]
                if st > cur:
                    area += busy * (st - cur)
                    cur = st
                busy = sb
                idx += 1
            area += busy * (t_next - cur)
            trace.append((t_next, area / ((t_next - t) * self.worker_nodes)))
            t = t_next
        return trace

    def mean_utilization(self, end_time: float) -> float:
        """Exact time-averaged utilization over [0, end_time]."""
        samples = self.samples + [(end_time, self.busy)]
        area = 0.0
        prev_t, prev_b = samples[0]
        for t, b in samples[1:]:
            t = min(t, end_time)
            if t > prev_t:
                area += prev_b * (t - prev_t)
            prev_t, prev_b = t, b
        return area / (end_time * self.worker_nodes)
