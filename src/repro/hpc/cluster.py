"""Simulated HPC cluster: node accounting à la Theta allocations.

The paper's runs partition an allocation into agent nodes, worker nodes,
one Balsam service node and unused remainder (e.g. 256 = 21 agents + 231
workers + 1 Balsam + 3 unused).  :class:`NodeAllocation` captures that
arithmetic; :class:`Cluster` tracks worker-node occupancy over virtual
time and produces the utilization traces of Figs. 5/6/9 ("fraction of
allocated compute nodes actively running evaluation tasks").
"""

from __future__ import annotations

from dataclasses import dataclass

from .sim import Event, Process, Simulator

__all__ = ["NodeAllocation", "Cluster"]


@dataclass(frozen=True)
class NodeAllocation:
    """How a job's node count is split (paper §5, footnote 2)."""

    total_nodes: int
    num_agents: int
    workers_per_agent: int
    service_nodes: int = 1

    def __post_init__(self) -> None:
        if self.total_nodes <= 0 or self.num_agents <= 0 \
                or self.workers_per_agent <= 0:
            raise ValueError("node counts must be positive")
        if self.used_nodes > self.total_nodes:
            raise ValueError(
                f"{self.used_nodes} nodes needed but only "
                f"{self.total_nodes} allocated")

    @property
    def worker_nodes(self) -> int:
        return self.num_agents * self.workers_per_agent

    @property
    def used_nodes(self) -> int:
        return self.num_agents + self.worker_nodes + self.service_nodes

    @property
    def unused_nodes(self) -> int:
        return self.total_nodes - self.used_nodes

    @classmethod
    def paper_256(cls) -> "NodeAllocation":
        """The reference 256-node configuration: 21 agents × 11 workers."""
        return cls(256, 21, 11)

    @classmethod
    def paper_scaling(cls, total_nodes: int, mode: str) -> "NodeAllocation":
        """The §5.3 scaling configurations.

        ``mode="workers"`` fixes 21 agents and grows workers per agent
        (23 at 512, 47 at 1,024); ``mode="agents"`` fixes 11 workers per
        agent and grows agents (42 at 512, 85 at 1,024).
        """
        table = {
            ("workers", 512): cls(512, 21, 23),
            ("workers", 1024): cls(1024, 21, 47),
            ("agents", 512): cls(512, 42, 11),
            ("agents", 1024): cls(1024, 85, 11),
            ("workers", 256): cls.paper_256(),
            ("agents", 256): cls.paper_256(),
        }
        try:
            return table[(mode, total_nodes)]
        except KeyError:
            raise ValueError(
                f"no paper configuration for {total_nodes} nodes / "
                f"{mode!r} scaling") from None


class Cluster:
    """Worker-node pool with occupancy tracking and node failures.

    ``acquire``/``release`` manage single-node leases; waiters queue
    FIFO.  Every occupancy change appends a ``(time, busy)`` sample, so
    utilization can be integrated exactly after the run.

    A lease holder may register its :class:`~repro.hpc.sim.Process` on
    ``acquire`` so that :meth:`fail_node` can preempt it: the failed
    node's pilot receives an ``Interrupt`` and its lease is revoked
    (the pilot must *not* release).  ``fail_node``/``repair_node``
    shrink and grow the in-service capacity; failure events are recorded
    in the utilization samples and in :attr:`fault_events`.  With no
    failures injected, the holder machinery is inert and behavior is
    identical to a failure-free pool.
    """

    def __init__(self, sim: Simulator, worker_nodes: int) -> None:
        if worker_nodes <= 0:
            raise ValueError("worker_nodes must be positive")
        self.sim = sim
        self.worker_nodes = worker_nodes
        #: allocation-time capacity; utilization is normalized by this
        #: fixed denominator even while failures shrink ``worker_nodes``
        self.nominal_worker_nodes = worker_nodes
        self.busy = 0
        self._wait_queue: list[tuple[Event, Process | None]] = []
        self._holders: list[Process] = []
        self.samples: list[tuple[float, int]] = [(0.0, 0)]
        #: (time, "fail" | "repair") log of capacity changes
        self.fault_events: list[tuple[float, str]] = []
        self.num_failures = 0
        self.num_repairs = 0

    @property
    def idle(self) -> int:
        return max(0, self.worker_nodes - self.busy)

    @property
    def holders(self) -> tuple[Process, ...]:
        """Processes currently holding a node lease (registered only)."""
        return tuple(self._holders)

    def _record(self) -> None:
        self.samples.append((self.sim.now, self.busy))

    def _grant(self, holder: Process | None) -> None:
        if holder is not None:
            self._holders.append(holder)

    def try_acquire(self, holder: Process | None = None) -> bool:
        """Take a node if one is idle; non-blocking."""
        if self.busy < self.worker_nodes:
            self.busy += 1
            self._grant(holder)
            self._record()
            return True
        return False

    def acquire(self, holder: Process | None = None) -> Event:
        """Yieldable: fires when a node has been granted to the caller.

        ``holder`` (optional) registers the acquiring process for
        preemption by :meth:`fail_node`.
        """
        ev = self.sim.event()
        if self.busy < self.worker_nodes:
            self.busy += 1
            self._grant(holder)
            self._record()
            ev.succeed()
        else:
            self._wait_queue.append((ev, holder))
        return ev

    def release(self, holder: Process | None = None) -> None:
        if self.busy <= 0:
            raise RuntimeError("release without matching acquire")
        if holder is not None:
            try:
                self._holders.remove(holder)
            except ValueError:
                pass
        if self._wait_queue and self.busy <= self.worker_nodes:
            # hand the node directly to the next waiter: occupancy unchanged
            ev, next_holder = self._wait_queue.pop(0)
            self._grant(next_holder)
            ev.succeed()
        else:
            # no waiter — or capacity shrank below occupancy and this
            # lease must be shed rather than handed over
            self.busy -= 1
            self._record()

    # -- failures -------------------------------------------------------
    def fail_node(self, victim: Process | None = None) -> bool:
        """Take one node out of service.

        ``victim``, when given, must be a registered lease holder: its
        lease is revoked and it receives an ``Interrupt`` (the running
        pilot is preempted).  With no victim, an idle node is removed —
        or, if none is idle, capacity simply drops below occupancy and
        the next release sheds the surplus lease.  Returns ``False``
        when capacity is already zero.
        """
        if self.worker_nodes <= 0:
            return False
        self.worker_nodes -= 1
        self.num_failures += 1
        self.fault_events.append((self.sim.now, "fail"))
        if victim is not None:
            try:
                self._holders.remove(victim)
            except ValueError:
                victim = None       # lease already gone; treat as idle kill
            else:
                self.busy -= 1
                victim.interrupt("node_failure")
        self._record()
        return True

    def repair_node(self) -> None:
        """Return one node to service; grant it to the oldest waiter."""
        self.worker_nodes += 1
        self.num_repairs += 1
        self.fault_events.append((self.sim.now, "repair"))
        if self._wait_queue and self.busy < self.worker_nodes:
            ev, holder = self._wait_queue.pop(0)
            self.busy += 1
            self._grant(holder)
            ev.succeed()
        self._record()

    # -- utilization --------------------------------------------------
    def utilization_trace(self, end_time: float, bin_width: float = 1.0
                          ) -> list[tuple[float, float]]:
        """Mean utilization per time bin, as plotted in Figs. 5/6/9."""
        if end_time <= 0:
            raise ValueError("end_time must be positive")
        samples = self.samples + [(end_time, self.busy)]
        trace: list[tuple[float, float]] = []
        idx = 0
        t = 0.0
        busy = 0
        while t < end_time:
            t_next = min(t + bin_width, end_time)
            area = 0.0
            cur = t
            while idx < len(samples) and samples[idx][0] <= t_next:
                st, sb = samples[idx]
                if st > cur:
                    area += busy * (st - cur)
                    cur = st
                busy = sb
                idx += 1
            area += busy * (t_next - cur)
            trace.append((t_next,
                          area / ((t_next - t) * self.nominal_worker_nodes)))
            t = t_next
        return trace

    def mean_utilization(self, end_time: float) -> float:
        """Exact time-averaged utilization over [0, end_time].

        Samples past ``end_time`` (e.g. retries draining after the
        search stopped) are clamped and contribute nothing.
        """
        samples = self.samples + [(end_time, self.busy)]
        area = 0.0
        prev_t, prev_b = samples[0]
        for t, b in samples[1:]:
            t = min(t, end_time)
            if t > prev_t:
                area += prev_b * (t - prev_t)
            prev_t, prev_b = t, b
        return area / (end_time * self.nominal_worker_nodes)
