"""Training-time cost model for reward-estimation tasks.

On Theta, a reward estimation trains the generated network on one KNL
node for ``epochs`` epochs on a fraction of the training data, with a
10-minute timeout.  The dominant cost of the dense cancer networks is the
matrix work, which is linear in the trainable-parameter count per sample:
forward + backward ≈ 6·P flops/sample.  The model therefore is

    duration = startup + 6 · P · n_samples · fraction · epochs / node_flops
               (+ validation term)

with a default effective node throughput calibrated so that paper-scale
architectures (2–20M parameters at Combo's 248,650 training samples)
land in the paper's observed 1–10-minute reward-estimation range at 10%
data, and routinely exceed the 10-minute timeout at 40% — the regime
transition §5.4 studies.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TrainingCostModel"]


@dataclass(frozen=True)
class TrainingCostModel:
    """Seconds of single-node wall time to train/validate a network."""

    samples_per_epoch: int
    val_samples: int = 0
    flops_per_param: float = 6.0
    node_flops: float = 5e9
    startup: float = 30.0

    def __post_init__(self) -> None:
        if self.samples_per_epoch <= 0:
            raise ValueError("samples_per_epoch must be positive")
        if self.node_flops <= 0:
            raise ValueError("node_flops must be positive")

    def duration(self, params: int, epochs: int = 1,
                 train_fraction: float = 1.0) -> float:
        """Untruncated wall time; the evaluator applies any timeout."""
        if params < 0:
            raise ValueError("params must be non-negative")
        if not 0.0 < train_fraction <= 1.0:
            raise ValueError("train_fraction must be in (0, 1]")
        train = (self.flops_per_param * params * self.samples_per_epoch
                 * train_fraction * epochs) / self.node_flops
        val = (2.0 * params * self.val_samples) / self.node_flops
        return self.startup + train + val

    @classmethod
    def combo_paper(cls) -> "TrainingCostModel":
        """Combo at paper scale: 248,650 train / 62,164 val samples.

        Throughput is calibrated so that at 10% training data the small
        space rarely times out (median ≈ 2.5 min), the large space's
        median sits just under the 10-minute timeout, and at 40% data
        most large-space architectures exceed it — the §5.4 regimes."""
        return cls(samples_per_epoch=248_650, val_samples=62_164,
                   node_flops=1.5e10)

    @classmethod
    def uno_paper(cls) -> "TrainingCostModel":
        """Uno at paper scale: 9,588 train / 2,397 val samples.  The much
        smaller sample count is why randomly sampled Uno networks have a
        smaller variance of reward-estimation time (§5.1)."""
        return cls(samples_per_epoch=9_588, val_samples=2_397)

    @classmethod
    def nt3_paper(cls) -> "TrainingCostModel":
        """NT3 at paper scale: 1,120 train / 280 val samples.  The lower
        effective throughput reflects the conv layers' weight reuse
        (flops per parameter are much higher than for dense layers)."""
        return cls(samples_per_epoch=1_120, val_samples=280,
                   node_flops=2e8)
