"""Balsam-style performance monitoring (§4).

The paper infers utilization "as the fraction of allocated compute nodes
actively running evaluation tasks at any given time" from Balsam's job
database.  This module reproduces that workflow: it derives utilization,
throughput, and queue-wait statistics *from the job table itself*
(rather than from the cluster's internal occupancy counters), which is
exactly what an external monitoring service can observe.

The cluster-counter and job-table views must agree; the test suite
cross-checks them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..evaluator.balsam import BalsamJob, BalsamService

__all__ = ["JobTableStats", "utilization_from_jobs", "job_table_stats",
           "throughput_trace"]


@dataclass(frozen=True)
class JobTableStats:
    """Aggregates over a Balsam job table."""

    num_jobs: int
    num_finished: int
    mean_queue_wait: float       # submit -> start, seconds
    p95_queue_wait: float
    mean_run_time: float         # start -> end, seconds
    total_node_seconds: float    # sum of run times (1 node per job)

    def as_dict(self) -> dict:
        return {
            "num_jobs": self.num_jobs,
            "num_finished": self.num_finished,
            "mean_queue_wait": self.mean_queue_wait,
            "p95_queue_wait": self.p95_queue_wait,
            "mean_run_time": self.mean_run_time,
            "total_node_seconds": self.total_node_seconds,
        }


def _finished(jobs: list[BalsamJob]) -> list[BalsamJob]:
    return [j for j in jobs if j.state == "FINISHED"]


def utilization_from_jobs(service: BalsamService, end_time: float,
                          bin_width: float = 60.0
                          ) -> list[tuple[float, float]]:
    """Utilization trace computed purely from job (start, end) intervals.

    Sweep-line over the interval endpoints, integrated per bin and
    normalized by the cluster's worker-node count — the external
    monitor's view of Figs. 5/6/9.
    """
    if end_time <= 0:
        raise ValueError("end_time must be positive")
    events: list[tuple[float, int]] = []
    for job in service.jobs:
        if job.start_time < 0:
            continue
        start = job.start_time
        stop = job.end_time if job.end_time >= 0 else end_time
        events.append((start, +1))
        events.append((min(stop, end_time), -1))
    events.sort()

    nodes = service.cluster.worker_nodes
    trace: list[tuple[float, float]] = []
    busy = 0
    idx = 0
    t = 0.0
    while t < end_time:
        t_next = min(t + bin_width, end_time)
        area = 0.0
        cur = t
        while idx < len(events) and events[idx][0] <= t_next:
            et, delta = events[idx]
            if et > cur:
                area += busy * (et - cur)
                cur = et
            busy += delta
            idx += 1
        area += busy * (t_next - cur)
        trace.append((t_next, area / ((t_next - t) * nodes)))
        t = t_next
    return trace


def job_table_stats(service: BalsamService) -> JobTableStats:
    """Queue-wait / run-time aggregates over finished jobs."""
    finished = _finished(service.jobs)
    if not finished:
        return JobTableStats(len(service.jobs), 0, float("nan"),
                             float("nan"), float("nan"), 0.0)
    waits = np.array([j.start_time - j.submit_time for j in finished])
    runs = np.array([j.end_time - j.start_time for j in finished])
    return JobTableStats(
        num_jobs=len(service.jobs),
        num_finished=len(finished),
        mean_queue_wait=float(waits.mean()),
        p95_queue_wait=float(np.percentile(waits, 95)),
        mean_run_time=float(runs.mean()),
        total_node_seconds=float(runs.sum()))


def throughput_trace(service: BalsamService, end_time: float,
                     bin_width: float = 600.0
                     ) -> list[tuple[float, float]]:
    """Completed evaluations per second, per time bin."""
    if end_time <= 0:
        raise ValueError("end_time must be positive")
    ends = sorted(j.end_time for j in _finished(service.jobs)
                  if j.end_time <= end_time)
    trace: list[tuple[float, float]] = []
    idx = 0
    t = 0.0
    while t < end_time:
        t_next = min(t + bin_width, end_time)
        count = 0
        while idx < len(ends) and ends[idx] <= t_next:
            count += 1
            idx += 1
        trace.append((t_next, count / (t_next - t)))
        t = t_next
    return trace
