"""Multi-input merge layers: Concatenate and Add.

These implement the paper's cell/structure output rules (``Concatenate``)
and the ``Add`` ConstantNode used in the Uno search space.  Unlike
single-input layers they take a *list* of input arrays.

``Add`` follows the residual-connection convention used by NAS systems for
heterogeneous tensors: when operand widths differ, shorter operands are
zero-padded to the widest width before summation (a projection-free
alignment that keeps the operation parameter-free, which matters because
``Add`` nodes are excluded from the trainable search space).

Both layers are dtype-preserving (the merged output keeps the promoted
dtype of the operands rather than forcing float64) and write into pooled
buffers when the execution plan marks their output as reusable.
"""

from __future__ import annotations

import numpy as np

from .layers import Layer

__all__ = ["MergeLayer", "Concatenate", "Add"]


class MergeLayer(Layer):
    """Base class for layers combining several inputs."""

    def build_multi(self, input_shapes: list[tuple[int, ...]],
                    rng: np.random.Generator) -> tuple[int, ...]:
        raise NotImplementedError

    def forward_multi(self, xs: list[np.ndarray], training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward_multi(self, grad_out: np.ndarray) -> list[np.ndarray]:
        raise NotImplementedError

    # single-input protocol degenerates to the multi-input one
    def build(self, input_shape, rng):
        return self.build_multi([input_shape], rng)

    def forward(self, x, training=False):
        return self.forward_multi([x], training)

    def backward(self, grad_out):
        return self.backward_multi(grad_out)[0]


class Concatenate(MergeLayer):
    """Concatenate flat feature vectors along the feature axis."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self._widths: list[int] = []

    def build_multi(self, input_shapes, rng):
        for s in input_shapes:
            if len(s) != 1:
                raise ValueError(f"Concatenate expects flat inputs, got {s}")
        self._widths = [s[0] for s in input_shapes]
        self.built = True
        self.input_shape = tuple(input_shapes[0])
        self.output_shape = (sum(self._widths),)
        return self.output_shape

    def forward_multi(self, xs, training=False):
        if len(xs) == 1:
            return xs[0]
        if self._pool is not None and self._reuse_out:
            dt = np.result_type(*[x.dtype for x in xs])
            if all(x.dtype == dt for x in xs):
                out = self._scratch(
                    "out", (xs[0].shape[0], sum(x.shape[-1] for x in xs)), dt)
                return np.concatenate(xs, axis=-1, out=out)
        return np.concatenate(xs, axis=-1)

    def backward_multi(self, grad_out):
        if len(self._widths) == 1:
            return [grad_out]
        splits = np.cumsum(self._widths[:-1])
        return list(np.split(grad_out, splits, axis=-1))


class Add(MergeLayer):
    """Elementwise addition with zero-padding width alignment."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self._widths: list[int] = []
        self._out_width = 0

    def build_multi(self, input_shapes, rng):
        for s in input_shapes:
            if len(s) != 1:
                raise ValueError(f"Add expects flat inputs, got {s}")
        self._widths = [s[0] for s in input_shapes]
        self._out_width = max(self._widths)
        self.built = True
        self.input_shape = tuple(input_shapes[0])
        self.output_shape = (self._out_width,)
        return self.output_shape

    def forward_multi(self, xs, training=False):
        dt = np.result_type(*[x.dtype for x in xs])
        if self._pool is not None and self._reuse_out:
            out = self._scratch("out", (xs[0].shape[0], self._out_width), dt,
                                zero=True)
        else:
            out = np.zeros((xs[0].shape[0], self._out_width), dtype=dt)
        for x in xs:
            out[:, :x.shape[-1]] += x
        return out

    def backward_multi(self, grad_out):
        return [grad_out[:, :w] for w in self._widths]
