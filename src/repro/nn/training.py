"""Mini-batch training loop with the paper's reward-estimation controls.

Reward estimation in the paper trains each generated architecture with
``epochs=1``, a 10-minute timeout, and (for Combo) a 10–40% subset of the
training data; post-training uses 20 epochs, no timeout, full data.  The
:class:`Trainer` here exposes exactly those knobs: ``epochs``,
``timeout``, ``train_fraction`` and a pluggable clock so timeout behaviour
is testable without waiting.

Hot-path notes: the shuffled epoch subset is gathered into contiguous
arrays **once per epoch** (paying any dtype cast at the same time), so
each batch is a zero-copy slice instead of a per-batch fancy-index copy;
and the default optimizer is the fused :class:`~repro.nn.optimizers.FlatAdam`
over the model's packed parameter vector.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..health.guards import (GuardConfig, LossSpikeDetector, NumericalAnomaly,
                             all_finite)
from .graph import GraphModel
from .losses import Loss, get_loss
from .metrics import get_metric
from .optimizers import FlatAdam, Optimizer

__all__ = ["History", "Trainer", "train_model"]


@dataclass
class History:
    """Record of one training run."""

    epoch_losses: list[float] = field(default_factory=list)
    val_metric: float = float("nan")
    train_time: float = 0.0
    timed_out: bool = False
    batches_seen: int = 0
    #: structured numerical-failure outcome (repro.health): training
    #: aborted early because a guard detected non-finite state or a loss
    #: spike.  ``anomaly`` carries ``"kind:what"`` for diagnostics.  The
    #: reward layer maps this to FAILURE_REWARD instead of letting the
    #: raw exception unwind through the evaluation pipeline.
    nonfinite: bool = False
    anomaly: str | None = None

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


class Trainer:
    """Trains a :class:`~repro.nn.graph.GraphModel` on a multi-input dataset.

    Parameters
    ----------
    loss:
        Loss name (``"mse"``, ``"categorical_crossentropy"``) or instance.
    metric:
        Validation metric name (``"r2"`` or ``"accuracy"``).
    batch_size, epochs, lr:
        Standard knobs; defaults follow the paper (Adam, lr=0.001).
    timeout:
        Wall-clock budget in seconds; training stops mid-epoch once
        exceeded and the history is flagged ``timed_out``.
    train_fraction:
        Fraction of the training set actually used (the paper's
        low-fidelity lever, §5.4).
    clock:
        Injectable monotonic clock, for tests and for the discrete-event
        simulation.
    guard:
        Optional :class:`~repro.health.guards.GuardConfig`.  When its
        mode is not ``"off"``, each batch's activations, loss, gradients
        and parameters are scanned for NaN/Inf and the loss stream runs
        through an EWMA spike detector; a detection aborts training
        early with ``History.nonfinite`` set (a structured outcome, not
        an exception).  Guards only observe — with no anomaly the run is
        bit-identical to an unguarded one.
    """

    def __init__(self, loss: str | Loss = "mse", metric: str = "r2",
                 batch_size: int = 32, epochs: int = 1, lr: float = 1e-3,
                 timeout: float | None = None, train_fraction: float = 1.0,
                 seed: int = 0,
                 clock: Callable[[], float] = time.monotonic,
                 guard: GuardConfig | None = None) -> None:
        if not 0.0 < train_fraction <= 1.0:
            raise ValueError("train_fraction must be in (0, 1]")
        if batch_size <= 0 or epochs <= 0:
            raise ValueError("batch_size and epochs must be positive")
        self.loss = get_loss(loss) if isinstance(loss, str) else loss
        self.metric = get_metric(metric)
        self.batch_size = batch_size
        self.epochs = epochs
        self.lr = lr
        self.timeout = timeout
        self.train_fraction = train_fraction
        self.seed = seed
        self.clock = clock
        self.guard = guard

    def fit(self, model: GraphModel,
            x_train: dict[str, np.ndarray], y_train: np.ndarray,
            x_val: dict[str, np.ndarray] | None = None,
            y_val: np.ndarray | None = None,
            optimizer: Optimizer | None = None) -> History:
        rng = np.random.default_rng(self.seed)
        opt = optimizer or FlatAdam(model.flatten_parameters(), lr=self.lr)
        dt = model.dtype
        n = len(y_train)
        n_used = max(1, int(round(n * self.train_fraction)))
        history = History()
        start = self.clock()
        subset = rng.permutation(n)[:n_used]

        guarded = self.guard is not None and self.guard.enabled
        spike = flat = None
        plan = model._plan
        prev_check = plan.check_finite if plan is not None else False
        if guarded:
            spike = LossSpikeDetector(self.guard.loss_spike_zscore,
                                      self.guard.loss_ewma_alpha,
                                      self.guard.loss_warmup)
            flat = getattr(opt, "flat", None)
            if plan is not None:
                plan.check_finite = True

        try:
            for _ in range(self.epochs):
                order = rng.permutation(n_used)
                perm = subset[order]
                # one contiguous gather (and dtype cast) per epoch;
                # batches below are zero-copy slices of these arrays
                x_epoch = {k: np.ascontiguousarray(v[perm], dtype=dt)
                           for k, v in x_train.items()}
                y_epoch = y_train[perm]
                epoch_loss = 0.0
                batches = 0
                for lo in range(0, n_used, self.batch_size):
                    hi = lo + self.batch_size
                    xb = {k: v[lo:hi] for k, v in x_epoch.items()}
                    yb = y_epoch[lo:hi]
                    try:
                        pred = model.forward(xb, training=True)
                        loss_val = self.loss.value(pred, yb)
                        if guarded and not np.isfinite(loss_val):
                            raise NumericalAnomaly(
                                "nonfinite", "loss", f"loss={loss_val!r}")
                        model.zero_grad()
                        model.backward(self.loss.grad(pred, yb))
                        if guarded and flat is not None \
                                and not all_finite(flat.grads):
                            raise NumericalAnomaly(
                                "nonfinite", "gradients",
                                "non-finite parameter gradients")
                        opt.step()
                        if guarded and flat is not None \
                                and not all_finite(flat.values):
                            raise NumericalAnomaly(
                                "nonfinite", "parameters",
                                "non-finite parameters after step")
                        if guarded and spike.observe(loss_val):
                            raise NumericalAnomaly(
                                "loss_spike", "loss",
                                f"loss={loss_val!r} spiked over the "
                                f"EWMA baseline")
                    except NumericalAnomaly as exc:
                        history.nonfinite = True
                        history.anomaly = f"{exc.kind}:{exc.what}"
                        break
                    epoch_loss += loss_val
                    batches += 1
                    history.batches_seen += 1
                    if self.timeout is not None \
                            and self.clock() - start > self.timeout:
                        history.timed_out = True
                        break
                if batches:
                    history.epoch_losses.append(epoch_loss / batches)
                if history.timed_out or history.nonfinite:
                    break
        finally:
            if plan is not None:
                plan.check_finite = prev_check

        history.train_time = self.clock() - start
        if x_val is not None and y_val is not None and not history.nonfinite:
            history.val_metric = self.evaluate(model, x_val, y_val)
        return history

    def evaluate(self, model: GraphModel, x: dict[str, np.ndarray],
                 y: np.ndarray, batch_size: int = 1024) -> float:
        if model.dtype is not None:
            # cast once; per-batch slices below are then views
            x = {k: np.asarray(v, dtype=model.dtype) for k, v in x.items()}
        preds = []
        n = len(y)
        for lo in range(0, n, batch_size):
            xb = {k: v[lo:lo + batch_size] for k, v in x.items()}
            preds.append(model.forward(xb, training=False))
        return self.metric(np.concatenate(preds, axis=0), y)


def train_model(model: GraphModel, x_train, y_train, x_val=None, y_val=None,
                **trainer_kwargs) -> History:
    """Convenience wrapper: build a Trainer and fit in one call."""
    return Trainer(**trainer_kwargs).fit(model, x_train, y_train, x_val, y_val)
