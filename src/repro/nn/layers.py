"""Core layers: Dense, Activation, Dropout, Identity.

Every layer follows the same protocol:

* ``build(input_shape, rng)`` — allocate parameters given the per-sample
  input shape (batch dimension excluded) and return the output shape;
* ``forward(x, training)`` — compute the output for a batch, caching what
  ``backward`` needs;
* ``backward(grad_out)`` — accumulate parameter gradients and return the
  gradient with respect to the input;
* ``parameters()`` — the list of :class:`~repro.nn.tensor.Parameter`
  objects owned by the layer (shared parameters appear in several layers'
  lists; the model deduplicates by identity).

Layers are stateful across a single forward/backward pair, mirroring the
explicit staged execution used by the graph model.

When a layer runs under a compiled
:class:`~repro.nn.engine.ExecutionPlan`, the plan attaches a
:class:`~repro.nn.engine.BufferPool` (``self._pool``) and marks whether
the layer's output may be written into a reused buffer
(``self._reuse_out``; false for the model output and anything aliasing
it).  Standalone layers (``self._pool is None``) allocate fresh arrays
every call, exactly like the seed implementation.
"""

from __future__ import annotations

import numpy as np

from .initializers import glorot_uniform
from .tensor import Parameter

__all__ = ["Layer", "Dense", "Activation", "Dropout", "Identity", "ACTIVATIONS"]


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _relu_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(x.dtype)


def _tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def _tanh_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return 1.0 - y * y


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _sigmoid_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return y * (1.0 - y)


def _linear(x: np.ndarray) -> np.ndarray:
    return x


def _linear_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


def _softmax(x: np.ndarray) -> np.ndarray:
    z = x - x.max(axis=-1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=-1, keepdims=True)


#: name -> (function, gradient-as-function-of-(input, output)).  ``softmax``
#: is special-cased in :meth:`Activation.backward` because its Jacobian is
#: not elementwise.
ACTIVATIONS = {
    "relu": (_relu, _relu_grad),
    "tanh": (_tanh, _tanh_grad),
    "sigmoid": (_sigmoid, _sigmoid_grad),
    "linear": (_linear, _linear_grad),
    "softmax": (_softmax, None),
}


def _forward_activation(layer: "Layer", pre: np.ndarray) -> np.ndarray:
    """Apply ``layer.activation`` to a pre-activation batch.

    Shared by :class:`Dense` and :class:`~repro.nn.conv.Conv1D`.  relu and
    tanh write into the layer's pooled output buffer when the execution
    plan allows output reuse; everything else allocates as before.
    """
    act = layer.activation
    if act == "linear":
        return pre
    if layer._pool is not None and layer._reuse_out and act in ("relu", "tanh"):
        out = layer._scratch("act_out", pre.shape, pre.dtype)
        if act == "relu":
            np.maximum(pre, 0.0, out=out)
        else:
            np.tanh(pre, out=out)
        return out
    return ACTIVATIONS[act][0](pre)


def _backward_activation(layer: "Layer", grad_out: np.ndarray) -> np.ndarray:
    """Gradient w.r.t. the pre-activation, from the layer's caches.

    The returned array may be a pooled scratch buffer (or, for linear,
    ``grad_out`` itself); callers only read it within the current
    backward pass.
    """
    act = layer.activation
    if act == "softmax":
        s = layer._out
        dot = (grad_out * s).sum(axis=-1, keepdims=True)
        return s * (grad_out - dot)
    if act == "linear":
        return grad_out
    _, gfn = ACTIVATIONS[act]
    if layer._pool is not None:
        buf = layer._scratch("act_bwd", grad_out.shape, grad_out.dtype)
        if act == "relu":
            np.multiply(grad_out, layer._pre > 0.0, out=buf)
        else:
            np.multiply(grad_out, gfn(layer._pre, layer._out), out=buf)
        return buf
    return grad_out * gfn(layer._pre, layer._out)


class Layer:
    """Base class; see module docstring for the protocol."""

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self.built = False
        self.input_shape: tuple[int, ...] | None = None
        self.output_shape: tuple[int, ...] | None = None
        #: attached by ExecutionPlan; None for standalone layers
        self._pool = None
        #: True when the plan proved this layer's output never aliases
        #: the model output, so it may live in a reused buffer
        self._reuse_out = False

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        self.built = True
        self.input_shape = tuple(input_shape)
        self.output_shape = tuple(input_shape)
        return self.output_shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def parameters(self) -> list[Parameter]:
        return []

    def _scratch(self, role: str, shape: tuple[int, ...], dtype,
                 zero: bool = False) -> np.ndarray:
        """A scratch array: pooled under a plan, freshly allocated otherwise."""
        if self._pool is None:
            return np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
        return self._pool.get(id(self), role, shape, dtype, zero)

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.parameters())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class Identity(Layer):
    """Pass-through layer; the ``Identity`` option of every variable node."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


class Dense(Layer):
    """Fully connected layer ``y = act(x @ W + b)``.

    ``units`` and ``activation`` mirror the paper's ``Dense(x, y)`` search
    space option.  A flat input is required; use
    :class:`~repro.nn.conv.Flatten` upstream for rank-2 features.

    Weight sharing (MirrorNode semantics) is achieved by passing the
    ``weights`` of a previously built Dense layer via ``share_from``.
    """

    def __init__(self, units: int, activation: str = "linear", name: str = "",
                 share_from: "Dense | None" = None) -> None:
        super().__init__(name)
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        if activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.units = units
        self.activation = activation
        self.share_from = share_from
        self.w: Parameter | None = None
        self.b: Parameter | None = None
        self._x: np.ndarray | None = None
        self._pre: np.ndarray | None = None
        self._out: np.ndarray | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        if len(input_shape) != 1:
            raise ValueError(f"Dense expects flat input, got shape {input_shape}")
        d = input_shape[0]
        if self.share_from is not None:
            src = self.share_from
            if not src.built:
                raise RuntimeError("share_from layer must be built first")
            if src.w.shape != (d, self.units):
                raise ValueError(
                    f"shared weights shape {src.w.shape} incompatible with "
                    f"({d}, {self.units})")
            self.w, self.b = src.w, src.b
        else:
            self.w = Parameter(glorot_uniform((d, self.units), rng), f"{self.name}.w")
            self.b = Parameter(np.zeros(self.units), f"{self.name}.b")
        self.built = True
        self.input_shape = tuple(input_shape)
        self.output_shape = (self.units,)
        return self.output_shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        w, b = self.w.value, self.b.value
        # matmul into a reused buffer when the plan allows it; with a
        # linear activation the pre-activation IS the output, so reuse is
        # additionally gated on _reuse_out
        if (self._pool is not None and x.dtype == w.dtype and x.ndim == 2
                and (self.activation != "linear" or self._reuse_out)):
            pre = self._scratch("pre", (x.shape[0], self.units), w.dtype)
            np.matmul(x, w, out=pre)
            pre += b
        else:
            pre = x @ w + b
        self._pre = pre
        self._out = _forward_activation(self, pre)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_pre = _backward_activation(self, grad_out)
        self.w.grad += self._x.T @ grad_pre
        self.b.grad += grad_pre.sum(axis=0)
        return grad_pre @ self.w.value.T

    def parameters(self) -> list[Parameter]:
        return [self.w, self.b] if self.w is not None else []


class Activation(Layer):
    """Standalone activation layer (the NT3 search space's ``Act_Node``)."""

    def __init__(self, activation: str, name: str = "") -> None:
        super().__init__(name)
        if activation not in ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.activation = activation
        self._x: np.ndarray | None = None
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._x = x
        fn, _ = ACTIVATIONS[self.activation]
        self._out = fn(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self.activation == "softmax":
            s = self._out
            dot = (grad_out * s).sum(axis=-1, keepdims=True)
            return s * (grad_out - dot)
        _, gfn = ACTIVATIONS[self.activation]
        return grad_out * gfn(self._x, self._out)


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time.

    The mask RNG is owned by the layer so that training runs are
    reproducible under an agent-specific seed, as required by the paper's
    reward-estimation protocol.
    """

    def __init__(self, rate: float, name: str = "") -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng: np.random.Generator | None = None
        self._mask: np.ndarray | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        self._rng = np.random.default_rng(rng.integers(2**63))
        return super().build(input_shape, rng)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        # mask kept in x's dtype so float32 batches stay float32
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype)
        mask /= np.asarray(keep, dtype=x.dtype)
        self._mask = mask
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask
