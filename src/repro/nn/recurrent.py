"""LSTM cell with explicit backpropagation through time.

The paper's controller is a single-layer LSTM with 32 units driving both
the policy head and the value head.  Because PPO needs gradients of a
clipped surrogate objective through the whole action sequence, the cell
exposes stateless ``step``/``backward_step`` functions operating on
explicit carry and cache values; the policy network owns the time loop and
stores one cache per step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .initializers import glorot_uniform, orthogonal
from .tensor import Parameter

__all__ = ["LSTMCell", "LSTMStepCache"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


@dataclass
class LSTMStepCache:
    """Intermediates of one time step needed by ``backward_step``."""

    x: np.ndarray
    h_prev: np.ndarray
    c_prev: np.ndarray
    i: np.ndarray
    f: np.ndarray
    g: np.ndarray
    o: np.ndarray
    c: np.ndarray
    tanh_c: np.ndarray


class LSTMCell:
    """Standard LSTM cell; gate order is (input, forget, cell, output)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, name: str = "lstm") -> None:
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        self.wx = Parameter(glorot_uniform((input_size, 4 * h), rng), f"{name}.wx")
        self.wh = Parameter(orthogonal((h, 4 * h), rng), f"{name}.wh")
        bias = np.zeros(4 * h)
        bias[h:2 * h] = 1.0  # unit forget-gate bias, the standard stabilizer
        self.b = Parameter(bias, f"{name}.b")

    def parameters(self) -> list[Parameter]:
        return [self.wx, self.wh, self.b]

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.parameters())

    def initial_state(self, batch: int) -> tuple[np.ndarray, np.ndarray]:
        h = np.zeros((batch, self.hidden_size), dtype=self.wx.value.dtype)
        return h, h.copy()

    def step(self, x: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
             ) -> tuple[np.ndarray, np.ndarray, LSTMStepCache]:
        """One forward step; returns (h, c, cache)."""
        hsz = self.hidden_size
        z = x @ self.wx.value + h_prev @ self.wh.value + self.b.value
        i = _sigmoid(z[:, :hsz])
        f = _sigmoid(z[:, hsz:2 * hsz])
        g = np.tanh(z[:, 2 * hsz:3 * hsz])
        o = _sigmoid(z[:, 3 * hsz:])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        return h, c, LSTMStepCache(x, h_prev, c_prev, i, f, g, o, c, tanh_c)

    def backward_step(self, dh: np.ndarray, dc: np.ndarray,
                      cache: LSTMStepCache
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward through one step.

        ``dh``/``dc`` are gradients flowing into this step's outputs (from
        the loss at this step plus from the next step).  Accumulates
        parameter gradients and returns ``(dx, dh_prev, dc_prev)``.
        """
        i, f, g, o = cache.i, cache.f, cache.g, cache.o
        dc_total = dc + dh * o * (1.0 - cache.tanh_c ** 2)
        do = dh * cache.tanh_c
        di = dc_total * g
        df = dc_total * cache.c_prev
        dg = dc_total * i
        dz = np.concatenate([
            di * i * (1.0 - i),
            df * f * (1.0 - f),
            dg * (1.0 - g * g),
            do * o * (1.0 - o),
        ], axis=-1)
        self.wx.grad += cache.x.T @ dz
        self.wh.grad += cache.h_prev.T @ dz
        self.b.grad += dz.sum(axis=0)
        dx = dz @ self.wx.value.T
        dh_prev = dz @ self.wh.value.T
        dc_prev = dc_total * f
        return dx, dh_prev, dc_prev
