"""LSTM cell with explicit backpropagation through time.

The paper's controller is a single-layer LSTM with 32 units driving both
the policy head and the value head.  Because PPO needs gradients of a
clipped surrogate objective through the whole action sequence, the cell
exposes stateless ``step``/``backward_step`` functions operating on
explicit carry and cache values; the policy network owns the time loop and
stores one cache per step.

:class:`FusedLSTM` is the hot-path driver over the same cell: one stacked
gate GEMM per timestep over the concatenated ``[x, h]`` block, per-step
intermediates in preallocated ``(T, B, ·)`` buffers reused across
same-shape passes, and the whole-sequence weight gradient folded into a
single GEMM.  The reference ``step``/``backward_step`` pair stays as the
unfused ground truth the fused path is tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .initializers import glorot_uniform, orthogonal
from .tensor import Parameter

__all__ = ["LSTMCell", "LSTMStepCache", "FusedLSTM"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def _sigmoid_(x: np.ndarray) -> np.ndarray:
    """In-place sigmoid via the identity σ(x) = (tanh(x/2) + 1)/2 —
    numerically stable for any magnitude and allocation-free."""
    x *= 0.5
    np.tanh(x, out=x)
    x += 1.0
    x *= 0.5
    return x


@dataclass
class LSTMStepCache:
    """Intermediates of one time step needed by ``backward_step``."""

    x: np.ndarray
    h_prev: np.ndarray
    c_prev: np.ndarray
    i: np.ndarray
    f: np.ndarray
    g: np.ndarray
    o: np.ndarray
    c: np.ndarray
    tanh_c: np.ndarray


class LSTMCell:
    """Standard LSTM cell; gate order is (input, forget, cell, output)."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: np.random.Generator, name: str = "lstm") -> None:
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("input_size and hidden_size must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        self.wx = Parameter(glorot_uniform((input_size, 4 * h), rng), f"{name}.wx")
        self.wh = Parameter(orthogonal((h, 4 * h), rng), f"{name}.wh")
        bias = np.zeros(4 * h)
        bias[h:2 * h] = 1.0  # unit forget-gate bias, the standard stabilizer
        self.b = Parameter(bias, f"{name}.b")

    def parameters(self) -> list[Parameter]:
        return [self.wx, self.wh, self.b]

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.parameters())

    def initial_state(self, batch: int) -> tuple[np.ndarray, np.ndarray]:
        h = np.zeros((batch, self.hidden_size), dtype=self.wx.value.dtype)
        return h, h.copy()

    def step(self, x: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray
             ) -> tuple[np.ndarray, np.ndarray, LSTMStepCache]:
        """One forward step; returns (h, c, cache)."""
        hsz = self.hidden_size
        z = x @ self.wx.value + h_prev @ self.wh.value + self.b.value
        i = _sigmoid(z[:, :hsz])
        f = _sigmoid(z[:, hsz:2 * hsz])
        g = np.tanh(z[:, 2 * hsz:3 * hsz])
        o = _sigmoid(z[:, 3 * hsz:])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h = o * tanh_c
        return h, c, LSTMStepCache(x, h_prev, c_prev, i, f, g, o, c, tanh_c)

    def backward_step(self, dh: np.ndarray, dc: np.ndarray,
                      cache: LSTMStepCache
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backward through one step.

        ``dh``/``dc`` are gradients flowing into this step's outputs (from
        the loss at this step plus from the next step).  Accumulates
        parameter gradients and returns ``(dx, dh_prev, dc_prev)``.
        """
        i, f, g, o = cache.i, cache.f, cache.g, cache.o
        dc_total = dc + dh * o * (1.0 - cache.tanh_c ** 2)
        do = dh * cache.tanh_c
        di = dc_total * g
        df = dc_total * cache.c_prev
        dg = dc_total * i
        dz = np.concatenate([
            di * i * (1.0 - i),
            df * f * (1.0 - f),
            dg * (1.0 - g * g),
            do * o * (1.0 - o),
        ], axis=-1)
        self.wx.grad += cache.x.T @ dz
        self.wh.grad += cache.h_prev.T @ dz
        self.b.grad += dz.sum(axis=0)
        dx = dz @ self.wx.value.T
        dh_prev = dz @ self.wh.value.T
        dc_prev = dc_total * f
        return dx, dh_prev, dc_prev


class FusedLSTM:
    """Fused sequence driver over an :class:`LSTMCell`.

    Forward: one stacked gate GEMM per timestep over the concatenated
    ``[x, h_prev]`` row block (instead of separate input and recurrent
    GEMMs), with gates activated in place inside preallocated
    ``(T, B, ·)`` state buffers that are reused across passes of the
    same shape.  Backward: one GEMM per step for the carried gradient,
    then a single whole-sequence GEMM for the weight gradients in
    :meth:`backward_finish`.

    The stacked weight copy is refreshed on every :meth:`begin` because
    the cell's parameter arrays are views into a flat parameter pack
    that is mutated externally (fused Adam, parameter-server exchange,
    checkpoint restore).

    The driver assumes the standard pass discipline (forward over all T
    steps, then at most one backward over the same pass); ``h_0`` and
    ``c_0`` are the zero initial state, as in the controller.
    """

    def __init__(self, cell: LSTMCell) -> None:
        self.cell = cell
        self._bufs: dict[tuple, dict[str, np.ndarray]] = {}
        self._w: np.ndarray | None = None
        self._cur: dict[str, np.ndarray] | None = None

    @property
    def hidden_states(self) -> np.ndarray:
        """The current pass's ``(T, B, H)`` hidden-state buffer."""
        return self._cur["h"]

    def begin(self, horizon: int, batch: int) -> None:
        """Start a pass: bind (or allocate) the ``(horizon, batch)``
        buffers and refresh the stacked ``[wx; wh]`` weight copy."""
        cell = self.cell
        e, hsz = cell.input_size, cell.hidden_size
        dt = cell.wx.value.dtype
        key = (horizon, batch, dt)
        bufs = self._bufs.get(key)
        if bufs is None:
            shapes = {"xh": (horizon, batch, e + hsz),
                      "gates": (horizon, batch, 4 * hsz),
                      "dz": (horizon, batch, 4 * hsz),
                      "h": (horizon, batch, hsz),
                      "c": (horizon, batch, hsz),
                      "tanh_c": (horizon, batch, hsz),
                      "dh_prev": (batch, hsz),
                      "dc_prev": (batch, hsz),
                      "tmp": (batch, hsz),
                      "tmp2": (batch, hsz)}
            bufs = {name: np.empty(shape, dtype=dt)
                    for name, shape in shapes.items()}
            self._bufs[key] = bufs
        if self._w is None or self._w.shape != (e + hsz, 4 * hsz) \
                or self._w.dtype != dt:
            self._w = np.empty((e + hsz, 4 * hsz), dtype=dt)
        np.copyto(self._w[:e], cell.wx.value)
        np.copyto(self._w[e:], cell.wh.value)
        self._cur = bufs

    def step(self, t: int, x: np.ndarray) -> np.ndarray:
        """Advance one step on input ``x`` (B, E); returns ``h_t`` as a
        view into the pass buffer."""
        cell, bufs = self.cell, self._cur
        e, hsz = cell.input_size, cell.hidden_size
        xh = bufs["xh"][t]
        xh[:, :e] = x
        if t == 0:
            xh[:, e:] = 0.0
        else:
            xh[:, e:] = bufs["h"][t - 1]
        z = bufs["gates"][t]
        np.matmul(xh, self._w, out=z)
        z += cell.b.value
        i, f = z[:, :hsz], z[:, hsz:2 * hsz]
        g, o = z[:, 2 * hsz:3 * hsz], z[:, 3 * hsz:]
        _sigmoid_(z[:, :2 * hsz])  # i and f are adjacent: one fused pass
        np.tanh(g, out=g)
        _sigmoid_(o)
        c = bufs["c"][t]
        np.multiply(i, g, out=c)
        if t > 0:
            tmp = bufs["tmp"]
            np.multiply(f, bufs["c"][t - 1], out=tmp)
            c += tmp
        tanh_c = bufs["tanh_c"][t]
        np.tanh(c, out=tanh_c)
        h = bufs["h"][t]
        np.multiply(o, tanh_c, out=h)
        return h

    def backward_step(self, t: int, dh: np.ndarray, dc: np.ndarray
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Backward through step ``t``; returns ``(dh_prev, dc_prev)``.

        Only the recurrent carry is propagated here; the pre-activation
        gate gradient is stored so :meth:`backward_finish` can fold the
        weight gradients into one whole-sequence GEMM and
        :meth:`input_grads` can recover every step's ``dx`` the same
        way.  ``dh_prev`` is a view into a scratch buffer overwritten by
        the next call — consume it before stepping again.
        """
        cell, bufs = self.cell, self._cur
        hsz = cell.hidden_size
        z = bufs["gates"][t]
        i, f = z[:, :hsz], z[:, hsz:2 * hsz]
        g, o = z[:, 2 * hsz:3 * hsz], z[:, 3 * hsz:]
        tanh_c = bufs["tanh_c"][t]
        dz = bufs["dz"][t]
        dzi, dzf = dz[:, :hsz], dz[:, hsz:2 * hsz]
        dzg, dzo = dz[:, 2 * hsz:3 * hsz], dz[:, 3 * hsz:]
        tmp, tmp2 = bufs["tmp"], bufs["tmp2"]
        # dc_total = dc + dh * o * (1 - tanh_c²), built in tmp — the
        # caller's dc is bufs["dc_prev"] (or the initial zeros), never
        # tmp itself
        np.multiply(tanh_c, tanh_c, out=tmp)
        np.subtract(1.0, tmp, out=tmp)
        tmp *= o
        tmp *= dh
        tmp += dc
        dc_total = tmp
        # dzo = dh tanh_c · o(1-o)
        np.multiply(dh, tanh_c, out=dzo)
        dzo *= o
        np.subtract(1.0, o, out=tmp2)
        dzo *= tmp2
        # dzi = dc_total g · i(1-i)
        np.multiply(dc_total, g, out=dzi)
        dzi *= i
        np.subtract(1.0, i, out=tmp2)
        dzi *= tmp2
        # dzg = dc_total i · (1-g²)
        np.multiply(dc_total, i, out=dzg)
        np.multiply(g, g, out=tmp2)
        np.subtract(1.0, tmp2, out=tmp2)
        dzg *= tmp2
        # dzf = dc_total c_prev · f(1-f); c_0 == 0 kills it at t == 0
        if t > 0:
            np.multiply(dc_total, bufs["c"][t - 1], out=dzf)
            dzf *= f
            np.subtract(1.0, f, out=tmp2)
            dzf *= tmp2
        else:
            dzf[...] = 0.0
        e = cell.input_size
        dh_prev = bufs["dh_prev"]
        np.matmul(dz, self._w[e:].T, out=dh_prev)
        dc_prev = bufs["dc_prev"]
        np.multiply(dc_total, f, out=dc_prev)
        return dh_prev, dc_prev

    def backward_finish(self) -> None:
        """Fold the stored gate gradients into the cell's parameter
        gradients: one GEMM over all ``T × B`` rows."""
        cell, bufs = self.cell, self._cur
        e = cell.input_size
        horizon, batch, _ = bufs["dz"].shape
        dz2 = bufs["dz"].reshape(horizon * batch, -1)
        gw = bufs["xh"].reshape(horizon * batch, -1).T @ dz2
        cell.wx.grad += gw[:e]
        cell.wh.grad += gw[e:]
        cell.b.grad += dz2.sum(axis=0)

    def input_grads(self) -> np.ndarray:
        """Every step's input gradient ``dx`` in one whole-sequence GEMM
        over the stored gate gradients; ``(T, B, E)``, freshly
        allocated.  Valid after the pass's last :meth:`backward_step`."""
        cell, bufs = self.cell, self._cur
        e = cell.input_size
        horizon, batch, _ = bufs["dz"].shape
        dz2 = bufs["dz"].reshape(horizon * batch, -1)
        return (dz2 @ self._w[:e].T).reshape(horizon, batch, e)
