"""Gradient-descent optimizers.

Adam uses the same defaults as the paper's experiments (learning rate
0.001), for both reward estimation and post-training.  Optimizers operate
on lists of :class:`~repro.nn.tensor.Parameter` objects and keep their
moment state keyed by parameter identity, so shared (mirrored) parameters
are updated once per step even though they appear in multiple layers.
"""

from __future__ import annotations

import numpy as np

from .tensor import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "get_optimizer", "clip_global_norm"]


def clip_global_norm(grads: list[np.ndarray], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= max_norm.

    Returns the pre-clip norm.  Used by the PPO update (OpenAI Baselines
    clips policy gradients at 0.5 by default).
    """
    total = float(np.sqrt(sum(float(np.sum(g * g)) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


class Optimizer:
    def __init__(self, params: list[Parameter]) -> None:
        self.params = list(params)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity = {id(p): np.zeros_like(p.value) for p in self.params}

    def step(self) -> None:
        for p in self.params:
            if self.momentum:
                v = self._velocity[id(p)]
                v *= self.momentum
                v -= self.lr * p.grad
                p.value += v
            else:
                p.value -= self.lr * p.grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(self, params: list[Parameter], lr: float = 0.001,
                 beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.t = 0
        self._m = {id(p): np.zeros_like(p.value) for p in self.params}
        self._v = {id(p): np.zeros_like(p.value) for p in self.params}

    def step(self) -> None:
        self.t += 1
        b1t = 1.0 - self.beta1 ** self.t
        b2t = 1.0 - self.beta2 ** self.t
        for p in self.params:
            m = self._m[id(p)]
            v = self._v[id(p)]
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad * p.grad
            p.value -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)


_OPTIMIZERS = {"sgd": SGD, "adam": Adam}


def get_optimizer(name: str, params: list[Parameter], **kwargs) -> Optimizer:
    try:
        cls = _OPTIMIZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; choose from {sorted(_OPTIMIZERS)}") from None
    return cls(params, **kwargs)
