"""Gradient-descent optimizers.

Adam uses the same defaults as the paper's experiments (learning rate
0.001), for both reward estimation and post-training.  Two families are
provided:

* :class:`SGD`/:class:`Adam` — operate on lists of
  :class:`~repro.nn.tensor.Parameter` objects, moment state keyed by
  parameter identity so shared (mirrored) parameters are updated once per
  step even though they appear in multiple layers.
* :class:`FlatSGD`/:class:`FlatAdam` — fused variants over a
  :class:`~repro.nn.engine.FlatParameterVector`: the whole model updates
  with a handful of whole-vector vectorized ops instead of a Python loop
  over parameters.  Elementwise the math is identical to the per-parameter
  classes (same ops in the same order per element), so results are
  bit-identical at equal dtype.
"""

from __future__ import annotations

import numpy as np

from .engine import FlatParameterVector
from .tensor import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "FlatOptimizer", "FlatSGD",
           "FlatAdam", "get_optimizer", "clip_global_norm"]


def clip_global_norm(grads: list[np.ndarray], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= max_norm.

    Returns the pre-clip norm.  Used by the PPO update (OpenAI Baselines
    clips policy gradients at 0.5 by default).
    """
    total = float(np.sqrt(sum(float(np.sum(g * g)) for g in grads)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


class Optimizer:
    def __init__(self, params: list[Parameter]) -> None:
        self.params = list(params)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float = 0.01,
                 momentum: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity = {id(p): np.zeros_like(p.value) for p in self.params}

    def step(self) -> None:
        for p in self.params:
            if self.momentum:
                v = self._velocity[id(p)]
                v *= self.momentum
                v -= self.lr * p.grad
                p.value += v
            else:
                p.value -= self.lr * p.grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(self, params: list[Parameter], lr: float = 0.001,
                 beta1: float = 0.9, beta2: float = 0.999,
                 eps: float = 1e-8) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.t = 0
        self._m = {id(p): np.zeros_like(p.value) for p in self.params}
        self._v = {id(p): np.zeros_like(p.value) for p in self.params}

    def step(self) -> None:
        self.t += 1
        b1t = 1.0 - self.beta1 ** self.t
        b2t = 1.0 - self.beta2 ** self.t
        for p in self.params:
            m = self._m[id(p)]
            v = self._v[id(p)]
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad * p.grad
            p.value -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)


class FlatOptimizer:
    """Base for fused optimizers over one contiguous parameter vector.

    Accepts either a prepared :class:`FlatParameterVector` (e.g. from
    :meth:`GraphModel.flatten_parameters`) or a plain parameter list,
    which is packed (deduplicated by identity) on the spot.
    """

    def __init__(self, params) -> None:
        if isinstance(params, FlatParameterVector):
            self.flat = params
        else:
            self.flat = FlatParameterVector(list(params))

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        self.flat.zero_grad()


class FlatSGD(FlatOptimizer):
    """Fused SGD: the whole model steps as one vector op."""

    def __init__(self, params, lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self._velocity = np.zeros_like(self.flat.values)

    def step(self) -> None:
        g = self.flat.grads
        if self.momentum:
            v = self._velocity
            v *= self.momentum
            v -= self.lr * g
            self.flat.values += v
        else:
            self.flat.values -= self.lr * g


class FlatAdam(FlatOptimizer):
    """Fused Adam: whole-vector moments, bit-identical to :class:`Adam`."""

    def __init__(self, params, lr: float = 0.001, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.t = 0
        self._m = np.zeros_like(self.flat.values)
        self._v = np.zeros_like(self.flat.values)

    def step(self) -> None:
        self.t += 1
        b1t = 1.0 - self.beta1 ** self.t
        b2t = 1.0 - self.beta2 ** self.t
        g = self.flat.grads
        m, v = self._m, self._v
        m *= self.beta1
        m += (1.0 - self.beta1) * g
        v *= self.beta2
        v += (1.0 - self.beta2) * g * g
        self.flat.values -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)

    # -- checkpoint support -------------------------------------------
    def export_state(self) -> dict:
        """Copy of the moment state (search checkpoints must restore it:
        resuming with zeroed moments changes every subsequent update)."""
        return {"t": self.t, "m": self._m.copy(), "v": self._v.copy()}

    def restore_state(self, state: dict) -> None:
        self.t = int(state["t"])
        self._m[:] = np.asarray(state["m"], dtype=self._m.dtype)
        self._v[:] = np.asarray(state["v"], dtype=self._v.dtype)


_OPTIMIZERS = {"sgd": SGD, "adam": Adam, "flat_sgd": FlatSGD,
               "flat_adam": FlatAdam}


def get_optimizer(name: str, params, **kwargs):
    """Look up an optimizer by name (``sgd``/``adam``/``flat_sgd``/``flat_adam``)."""
    try:
        cls = _OPTIMIZERS[name]
    except KeyError:
        raise ValueError(
            f"unknown optimizer {name!r}; choose from {sorted(_OPTIMIZERS)}") from None
    return cls(params, **kwargs)
