"""Evaluation metrics used as NAS rewards.

The paper uses the validation R² as the reward for the Combo and Uno
regression benchmarks and classification accuracy (ACC) for NT3.
"""

from __future__ import annotations

import numpy as np

__all__ = ["r2_score", "accuracy", "get_metric"]


def r2_score(pred: np.ndarray, target: np.ndarray) -> float:
    """Coefficient of determination, 1 - SS_res / SS_tot.

    Returns a value in (-inf, 1]; a constant predictor at the target mean
    scores 0.  A degenerate constant *target* yields 0 rather than a
    division error.
    """
    pred = np.asarray(pred, dtype=np.float64).ravel()
    target = np.asarray(target, dtype=np.float64).ravel()
    ss_res = float(np.sum((target - pred) ** 2))
    ss_tot = float(np.sum((target - target.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0
    return 1.0 - ss_res / ss_tot


def accuracy(pred: np.ndarray, target: np.ndarray) -> float:
    """Classification accuracy over class-probability (or one-hot) arrays."""
    pred = np.asarray(pred)
    target = np.asarray(target)
    pred_cls = pred.argmax(axis=-1) if pred.ndim > 1 else pred
    target_cls = target.argmax(axis=-1) if target.ndim > 1 else target
    return float(np.mean(pred_cls == target_cls))


_METRICS = {"r2": r2_score, "accuracy": accuracy}


def get_metric(name: str):
    try:
        return _METRICS[name]
    except KeyError:
        raise ValueError(f"unknown metric {name!r}; choose from {sorted(_METRICS)}") from None
