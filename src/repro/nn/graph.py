"""DAG model container.

The paper's architectures are multi-input directed acyclic graphs (three
input layers for Combo, four for Uno, skip connections everywhere), so the
substrate's model class is graph-first rather than sequential: named nodes
hold layers, edges carry activations, and forward/backward execute a
compiled :class:`~repro.nn.engine.ExecutionPlan` frozen at build time —
index-based slot lists instead of per-step dict lookups, pooled
activation/gradient buffers instead of per-batch allocations.

Parameters are deduplicated *by identity* when collected, which is what
makes MirrorNode weight sharing count shared submodels once — exactly the
accounting the paper's trainable-parameter ratios rely on.  The
deduplicated list is cached at build time (the graph is immutable once
built — ``add``/``add_input`` raise), so ``parameters()``/``zero_grad()``
are O(1) lookups per call rather than per-batch graph re-walks.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Iterable

import numpy as np

from . import config
from .engine import ExecutionPlan, FlatParameterVector
from .layers import Layer
from .merge import MergeLayer
from .tensor import Parameter

__all__ = ["GraphModel", "InputSpec"]


class InputSpec:
    """A placeholder node carrying a per-sample input shape."""

    __slots__ = ("name", "shape")

    def __init__(self, name: str, shape: tuple[int, ...]) -> None:
        self.name = name
        self.shape = tuple(shape)


class GraphModel:
    """A DAG of layers with explicit forward/backward execution.

    Usage::

        m = GraphModel()
        m.add_input("x", shape=(16,))
        m.add("h", Dense(32, "relu"), inputs=["x"])
        m.add("y", Dense(1), inputs=["h"])
        m.set_output("y")
        m.build(np.random.default_rng(0))
        pred = m.forward({"x": batch})
    """

    def __init__(self) -> None:
        self.inputs: dict[str, InputSpec] = {}
        self.layers: dict[str, Layer] = {}
        self.node_inputs: dict[str, list[str]] = {}
        self.output_name: str | None = None
        self.built = False
        self.dtype: np.dtype | None = None
        self._order: list[str] = []
        self._consumers: dict[str, list[str]] = {}
        self._plan: ExecutionPlan | None = None
        self._params: list[Parameter] | None = None
        self._flat: FlatParameterVector | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str, shape: Iterable[int]) -> None:
        self._check_fresh(name)
        self.inputs[name] = InputSpec(name, tuple(shape))

    def add(self, name: str, layer: Layer, inputs: list[str]) -> None:
        self._check_fresh(name)
        if not inputs:
            raise ValueError(f"node {name!r} must have at least one input")
        if len(inputs) > 1 and not isinstance(layer, MergeLayer):
            raise ValueError(
                f"node {name!r}: layer {type(layer).__name__} accepts one "
                f"input but {len(inputs)} were given")
        for src in inputs:
            if src not in self.inputs and src not in self.layers:
                raise KeyError(f"node {name!r} references unknown input {src!r}")
        self.layers[name] = layer
        self.node_inputs[name] = list(inputs)

    def set_output(self, name: str) -> None:
        if name not in self.layers and name not in self.inputs:
            raise KeyError(f"unknown output node {name!r}")
        self.output_name = name

    def _check_fresh(self, name: str) -> None:
        if name in self.inputs or name in self.layers:
            raise ValueError(f"duplicate node name {name!r}")
        if self.built:
            raise RuntimeError("cannot add nodes to a built model")

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def build(self, rng: np.random.Generator, dtype=None) -> "GraphModel":
        """Build layers, then compile the execution plan.

        ``dtype`` fixes the model's compute dtype (weights created here
        and input/gradient casts); it defaults to the configured
        substrate dtype (:func:`repro.nn.config.get_default_dtype`).
        """
        if self.output_name is None:
            raise RuntimeError("set_output must be called before build")
        dt = np.dtype(dtype) if dtype is not None else config.get_default_dtype()
        self._order = self._topological_order()
        shapes: dict[str, tuple[int, ...]] = {
            name: spec.shape for name, spec in self.inputs.items()}
        with config.dtype_scope(dt):
            for name in self._order:
                layer = self.layers[name]
                if layer.built:
                    # Pre-built layers (e.g. by the NAS compiler, which builds
                    # eagerly to share mirror-node weights) keep their state.
                    shapes[name] = layer.output_shape
                    continue
                in_shapes = [shapes[s] for s in self.node_inputs[name]]
                if isinstance(layer, MergeLayer):
                    shapes[name] = layer.build_multi(in_shapes, rng)
                else:
                    shapes[name] = layer.build(in_shapes[0], rng)
        self._consumers = {n: [] for n in list(self.inputs) + list(self.layers)}
        for name, srcs in self.node_inputs.items():
            for s in srcs:
                self._consumers[s].append(name)
        self.built = True
        self.dtype = dt
        self.output_shape = shapes[self.output_name]
        # freeze: deduplicated parameter list, then the compiled plan.
        # The graph cannot be mutated once built (add() raises), so both
        # stay valid for the model's lifetime.
        self._params = self._collect_parameters()
        self._plan = ExecutionPlan(self)
        self._flat = None
        return self

    def _topological_order(self) -> list[str]:
        indeg = {n: len(srcs) - sum(s in self.inputs for s in srcs)
                 for n, srcs in self.node_inputs.items()}
        layer_consumers: dict[str, list[str]] = {n: [] for n in self.layers}
        for n, srcs in self.node_inputs.items():
            for s in srcs:
                if s in self.layers:
                    layer_consumers[s].append(n)
        ready = deque(sorted(n for n, d in indeg.items() if d == 0))
        order: list[str] = []
        while ready:
            n = ready.popleft()
            order.append(n)
            for c in layer_consumers[n]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        if len(order) != len(self.layers):
            raise ValueError("graph contains a cycle")
        return order

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def forward(self, inputs: dict[str, np.ndarray], training: bool = False) -> np.ndarray:
        if not self.built:
            raise RuntimeError("model is not built")
        missing = set(self.inputs) - set(inputs)
        if missing:
            raise KeyError(f"missing inputs: {sorted(missing)}")
        return self._plan.run_forward(inputs, training)

    def backward(self, grad_output: np.ndarray) -> dict[str, np.ndarray]:
        """Backpropagate; returns gradients w.r.t. each model input."""
        return self._plan.run_backward(grad_output)

    # ------------------------------------------------------------------
    # eager reference execution (repro.verify's differential oracle)
    # ------------------------------------------------------------------
    @contextmanager
    def _eager_scope(self):
        """Temporarily detach every layer from the compiled plan's buffer
        pool so execution allocates fresh arrays, exactly like the seed's
        interpreted graph walk."""
        saved = [(layer, layer._pool, layer._reuse_out)
                 for layer in self.layers.values()]
        for layer, _, _ in saved:
            layer._pool = None
            layer._reuse_out = False
        try:
            yield
        finally:
            for layer, pool, reuse in saved:
                layer._pool = pool
                layer._reuse_out = reuse

    def forward_eager(self, inputs: dict[str, np.ndarray],
                      training: bool = False) -> np.ndarray:
        """Dict-based interpreted forward pass (no plan, no buffer reuse).

        Semantically equivalent to :meth:`forward` but structurally
        independent of the compiled engine: the topological walk resolves
        node inputs by name and every layer allocates fresh output
        arrays.  Activations are kept in :attr:`eager_values` so the
        differential tester can compare them node by node against
        :meth:`node_values`.
        """
        if not self.built:
            raise RuntimeError("model is not built")
        missing = set(self.inputs) - set(inputs)
        if missing:
            raise KeyError(f"missing inputs: {sorted(missing)}")
        dt = self.dtype
        values: dict[str, np.ndarray] = {
            name: np.asarray(inputs[name], dtype=dt) for name in self.inputs}
        with self._eager_scope():
            for name in self._order:
                layer = self.layers[name]
                srcs = self.node_inputs[name]
                if isinstance(layer, MergeLayer):
                    values[name] = layer.forward_multi(
                        [values[s] for s in srcs], training)
                else:
                    values[name] = layer.forward(values[srcs[0]], training)
        self._eager_values = values
        return values[self.output_name]

    def backward_eager(self, grad_output: np.ndarray) -> dict[str, np.ndarray]:
        """Interpreted backward pass matching :meth:`forward_eager`.

        Must follow a :meth:`forward_eager` call (layer caches carry the
        forward intermediates).  Returns gradients w.r.t. each input.
        """
        dt = self.dtype
        grads: dict[str, np.ndarray] = {
            self.output_name: np.asarray(grad_output, dtype=dt)}
        with self._eager_scope():
            for name in reversed(self._order):
                g = grads.pop(name, None)
                if g is None:
                    continue  # node not on a path to the output
                layer = self.layers[name]
                srcs = self.node_inputs[name]
                if isinstance(layer, MergeLayer):
                    in_grads = layer.backward_multi(g)
                else:
                    in_grads = [layer.backward(g)]
                for src, ig in zip(srcs, in_grads):
                    if src in grads:
                        grads[src] = grads[src] + ig
                    else:
                        grads[src] = ig
        out: dict[str, np.ndarray] = {}
        for name, spec in self.inputs.items():
            g = grads.get(name)
            if g is None:
                g = np.zeros((1,) + spec.shape, dtype=dt)
            out[name] = g
        return out

    @property
    def eager_values(self) -> dict[str, np.ndarray]:
        """Node activations of the most recent :meth:`forward_eager`."""
        values = getattr(self, "_eager_values", None)
        if values is None:
            raise RuntimeError("no eager forward pass has been run")
        return values

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def _collect_parameters(self) -> list[Parameter]:
        seen: dict[int, Parameter] = {}
        for name in self._order or self.layers:
            for p in self.layers[name].parameters():
                seen.setdefault(id(p), p)
        return list(seen.values())

    def parameters(self) -> list[Parameter]:
        """All trainable parameters, shared ones counted once.

        After ``build()`` this returns a copy of the cached deduplicated
        list (no per-call graph walk); before build it re-walks layers.
        """
        if self._params is not None:
            return list(self._params)
        return self._collect_parameters()

    def flatten_parameters(self) -> FlatParameterVector:
        """Pack all parameters into one contiguous vector (cached).

        Parameter ``value``/``grad`` arrays become views of the pack; see
        :class:`~repro.nn.engine.FlatParameterVector`.  Used by the fused
        optimizers and by parameter-server weight exchange.
        """
        if not self.built:
            raise RuntimeError("model must be built before flattening")
        if self._flat is None:
            self._flat = FlatParameterVector(self._params)
        return self._flat

    @property
    def num_params(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        if self._flat is not None:
            self._flat.zero_grad()
            return
        for p in (self._params if self._params is not None
                  else self._collect_parameters()):
            p.zero_grad()

    def node_value(self, name: str) -> np.ndarray:
        """Activation of a node from the most recent forward pass.

        With the compiled engine, interior activations live in reused
        buffers: the returned array is valid until the next forward call.
        """
        if self._plan is None:
            raise RuntimeError("model is not built")
        return self._plan.value_of(name)

    def node_values(self) -> dict[str, np.ndarray]:
        """Copies of every node activation from the most recent forward.

        Unlike :meth:`node_value` the arrays are snapshots, safe to keep
        across later forward calls; the differential tester diffs them
        against :attr:`eager_values`.
        """
        if self._plan is None:
            raise RuntimeError("model is not built")
        return self._plan.snapshot_values()

    def summary(self) -> str:
        lines = [f"{'node':<28}{'layer':<18}{'params':>10}"]
        for name in self.inputs:
            lines.append(f"{name:<28}{'Input':<18}{0:>10}")
        for name in (self._order or self.layers):
            layer = self.layers[name]
            lines.append(f"{name:<28}{type(layer).__name__:<18}{layer.num_params:>10}")
        lines.append(f"total trainable parameters: {self.num_params}")
        return "\n".join(lines)
