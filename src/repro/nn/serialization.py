"""Model weight persistence.

Saves/loads a :class:`~repro.nn.graph.GraphModel`'s parameters to ``.npz``
keyed by parameter name, deduplicating shared (mirrored) parameters.
Loading requires a structurally identical model (same parameter names and
shapes), which the NAS pipeline guarantees by rebuilding from the same
architecture choices.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .graph import GraphModel

__all__ = ["save_weights", "load_weights"]


def _named_params(model: GraphModel):
    params = model.parameters()
    names = [p.name or f"param{i}" for i, p in enumerate(params)]
    if len(set(names)) != len(names):
        # disambiguate anonymous/shared names deterministically
        seen: dict[str, int] = {}
        unique = []
        for n in names:
            seen[n] = seen.get(n, 0) + 1
            unique.append(n if seen[n] == 1 else f"{n}#{seen[n]}")
        names = unique
    return list(zip(names, params))


def save_weights(model: GraphModel, path: str | Path) -> None:
    """Write all trainable parameters (shared ones once) to ``path``."""
    if not model.built:
        raise ValueError("model must be built before saving")
    arrays = {name: p.value for name, p in _named_params(model)}
    np.savez(Path(path), **arrays)


def load_weights(model: GraphModel, path: str | Path) -> None:
    """Load parameters saved by :func:`save_weights` into ``model``."""
    if not model.built:
        raise ValueError("model must be built before loading")
    with np.load(Path(path)) as data:
        pairs = _named_params(model)
        missing = [n for n, _ in pairs if n not in data.files]
        if missing:
            raise KeyError(f"checkpoint lacks parameters: {missing[:5]}")
        for name, p in pairs:
            value = data[name]
            if value.shape != p.value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: checkpoint "
                    f"{value.shape} vs model {p.value.shape}")
            p.value[...] = value
