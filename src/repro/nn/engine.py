"""Compiled execution engine: plans, buffer pools, flat parameter packs.

Three pieces turn the interpreted graph walk of the seed substrate into a
compiled hot path:

* :class:`ExecutionPlan` — frozen at :meth:`GraphModel.build` time.  The
  topological order is lowered to index-based *slots* (integer positions
  in a reused activation list) so forward/backward never perform dict
  lookups or ``isinstance(MergeLayer)`` checks per node, and every layer
  is handed the shared :class:`BufferPool` so its scratch arrays are
  reused across batches instead of reallocated.
* :class:`BufferPool` — scratch arrays keyed by (owner, role, shape,
  dtype).  The shape key includes the batch dimension, so alternating
  between the common batch size and a smaller final partial batch keeps
  both buffers cached instead of thrashing.
* :class:`FlatParameterVector` — every deduplicated parameter packed
  into one contiguous vector, with each :class:`Parameter`'s ``value``
  and ``grad`` rebound to *views* of the pack.  Whole-model optimizer
  steps and parameter-server exchange then operate on a single array;
  flatten/unflatten is a no-copy reshape.

Aliasing contract: with a plan active, arrays returned by
``forward``/``backward`` for *interior* nodes may be overwritten by the
next forward/backward call (they live in the pool).  The model's final
output is always freshly allocated — nodes whose value can reach the
output through pass-through layers (Identity, Flatten, Dropout,
Activation, single-input Concatenate) are excluded from output-buffer
reuse — so collecting predictions across batches, as
:meth:`Trainer.evaluate` does, stays safe.
"""

from __future__ import annotations

import numpy as np

from . import config
from ..health.guards import NumericalAnomaly, all_finite
from .conv import Flatten
from .layers import Activation, Dropout, Identity
from .merge import Concatenate, MergeLayer
from .tensor import Parameter

__all__ = ["BufferPool", "ExecutionPlan", "FlatParameterVector"]

#: Layers that may return (a view of) their input unchanged.  Any node
#: that reaches the model output exclusively through these aliases the
#: returned prediction and must not write into a reused buffer.
_PASS_THROUGH = (Identity, Flatten, Dropout, Activation, Concatenate)


class BufferPool:
    """Reusable scratch arrays for one model's forward/backward passes."""

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs: dict[tuple, np.ndarray] = {}

    def get(self, owner: int, role: str, shape: tuple[int, ...],
            dtype, zero: bool = False) -> np.ndarray:
        """Fetch (allocating on first use) the buffer for ``owner``/``role``.

        ``zero=True`` returns the buffer zero-filled; reused buffers are
        re-zeroed in place, which is cheaper than a fresh ``np.zeros``.
        """
        key = (owner, role, shape, np.dtype(dtype))
        buf = self._bufs.get(key)
        if buf is None:
            buf = np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
            self._bufs[key] = buf
        elif zero:
            buf.fill(0)
        return buf

    def clear(self) -> None:
        self._bufs.clear()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by pooled buffers."""
        return sum(b.nbytes for b in self._bufs.values())


class _Step:
    """One lowered node: a layer plus integer input/output slots."""

    __slots__ = ("layer", "multi", "in_slots", "out_slot")

    def __init__(self, layer, multi: bool, in_slots: tuple[int, ...],
                 out_slot: int) -> None:
        self.layer = layer
        self.multi = multi
        self.in_slots = in_slots
        self.out_slot = out_slot


class ExecutionPlan:
    """Index-based forward/backward program compiled from a built model."""

    def __init__(self, model) -> None:
        names = list(model.inputs) + list(model._order)
        self.slot_of = {n: i for i, n in enumerate(names)}
        self.n_slots = len(names)
        self.input_slots = [(name, self.slot_of[name])
                            for name in model.inputs]
        self.input_shapes = {name: spec.shape
                             for name, spec in model.inputs.items()}
        self.out_slot = self.slot_of[model.output_name]
        self.dtype = model.dtype
        self.pool = BufferPool()

        #: opt-in numerical guard (repro.health): when set, every forward
        #: scans the pass's activations and every backward scans the
        #: produced input gradients for NaN/Inf, raising NumericalAnomaly
        #: naming the offending node.  Off by default — the hot loops are
        #: untouched; the scans run after them, outside the step loop.
        self.check_finite = False
        self.step_names = list(model._order)

        escaping = self._escaping_nodes(model)
        self.steps: list[_Step] = []
        for name in model._order:
            layer = model.layers[name]
            layer._pool = self.pool
            layer._reuse_out = name not in escaping
            self.steps.append(_Step(
                layer, isinstance(layer, MergeLayer),
                tuple(self.slot_of[s] for s in model.node_inputs[name]),
                self.slot_of[name]))
        # slot lists reused across calls; entries are rebound, not resized
        self._values: list[np.ndarray | None] = [None] * self.n_slots
        self._grads: list[np.ndarray | None] = [None] * self.n_slots

    @staticmethod
    def _escaping_nodes(model) -> set[str]:
        """Nodes whose activation may alias the model output."""
        escaping: set[str] = set()
        stack = [model.output_name]
        while stack:
            name = stack.pop()
            if name in escaping or name in model.inputs:
                continue
            escaping.add(name)
            if isinstance(model.layers[name], _PASS_THROUGH):
                stack.extend(model.node_inputs[name])
        return escaping

    # -- execution ------------------------------------------------------
    def run_forward(self, inputs: dict[str, np.ndarray],
                    training: bool) -> np.ndarray:
        dt = self.dtype
        values = self._values
        for name, slot in self.input_slots:
            values[slot] = np.asarray(inputs[name], dtype=dt)
        for step in self.steps:
            if step.multi:
                values[step.out_slot] = step.layer.forward_multi(
                    [values[i] for i in step.in_slots], training)
            else:
                values[step.out_slot] = step.layer.forward(
                    values[step.in_slots[0]], training)
        if self.check_finite:
            # the pass just completed, so every activation (including the
            # pooled interior ones) is still this pass's value
            for step, name in zip(self.steps, self.step_names):
                v = values[step.out_slot]
                if v is not None and not all_finite(v):
                    raise NumericalAnomaly(
                        "nonfinite", f"activation:{name}",
                        "non-finite values in forward pass")
        return values[self.out_slot]

    def run_backward(self, grad_output: np.ndarray) -> dict[str, np.ndarray]:
        grads = self._grads
        for i in range(self.n_slots):
            grads[i] = None
        grads[self.out_slot] = np.asarray(grad_output, dtype=self.dtype)
        for step in reversed(self.steps):
            g = grads[step.out_slot]
            if g is None:
                continue  # node not on a path to the output
            grads[step.out_slot] = None
            if step.multi:
                in_grads = step.layer.backward_multi(g)
            else:
                in_grads = (step.layer.backward(g),)
            for slot, ig in zip(step.in_slots, in_grads):
                if grads[slot] is None:
                    grads[slot] = ig
                else:
                    grads[slot] = grads[slot] + ig
        out: dict[str, np.ndarray] = {}
        for name, slot in self.input_slots:
            g = grads[slot]
            if g is None:
                g = np.zeros((1,) + self.input_shapes[name], dtype=self.dtype)
            if self.check_finite and not all_finite(g):
                raise NumericalAnomaly(
                    "nonfinite", f"input_grad:{name}",
                    "non-finite values in backward pass")
            out[name] = g
            grads[slot] = None
        return out

    def value_of(self, name: str) -> np.ndarray:
        """Activation of ``name`` from the most recent forward pass."""
        value = self._values[self.slot_of[name]]
        if value is None:
            raise KeyError(f"no activation recorded for node {name!r}")
        return value

    def snapshot_values(self) -> dict[str, np.ndarray]:
        """Copies of all recorded activations (interior activations live
        in reused buffers, so diffing tools must snapshot them before the
        next forward call)."""
        return {name: self._values[slot].copy()
                for name, slot in self.slot_of.items()
                if self._values[slot] is not None}


class FlatParameterVector:
    """Parameters packed into one contiguous vector with live views back.

    Construction deduplicates by identity (shared/mirrored parameters are
    packed once), copies current values/grads into two flat arrays, and
    rebinds each :class:`Parameter`'s ``value`` and ``grad`` to reshaped
    views of them.  From then on per-parameter and whole-vector access
    observe the same storage: a fused optimizer updates ``values`` with a
    handful of vectorized ops, and parameter-server exchange reads or
    writes the vector without any flatten/unflatten copies.
    """

    __slots__ = ("params", "values", "grads", "slices", "size")

    def __init__(self, params: list[Parameter]) -> None:
        seen: dict[int, Parameter] = {}
        for p in params:
            seen.setdefault(id(p), p)
        self.params = list(seen.values())
        if self.params:
            dtype = np.result_type(*[p.value.dtype for p in self.params])
        else:
            dtype = config.get_default_dtype()
        sizes = [p.size for p in self.params]
        offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(int)
        self.size = int(offsets[-1])
        self.values = np.empty(self.size, dtype)
        self.grads = np.zeros(self.size, dtype)
        self.slices: list[tuple[int, int]] = []
        for p, lo, hi in zip(self.params, offsets[:-1], offsets[1:]):
            shape = p.value.shape
            self.values[lo:hi] = p.value.reshape(-1)
            self.grads[lo:hi] = p.grad.reshape(-1)
            p.value = self.values[lo:hi].reshape(shape)
            p.grad = self.grads[lo:hi].reshape(shape)
            self.slices.append((int(lo), int(hi)))

    def __len__(self) -> int:
        return self.size

    def zero_grad(self) -> None:
        self.grads.fill(0)

    def copy_values(self) -> np.ndarray:
        """Snapshot of the packed values (safe to keep across updates)."""
        return self.values.copy()

    def set_values(self, vec: np.ndarray) -> None:
        vec = np.asarray(vec)
        if vec.shape != (self.size,):
            raise ValueError(
                f"expected {self.size} entries, got {vec.size}")
        self.values[...] = vec

    def add_values(self, delta: np.ndarray) -> None:
        delta = np.asarray(delta)
        if delta.shape != (self.size,):
            raise ValueError(
                f"expected {self.size} entries, got {delta.size}")
        self.values += delta

    def grad_norm(self) -> float:
        """Global L2 norm of the packed gradients (one vectorized pass)."""
        return float(np.sqrt(np.dot(self.grads, self.grads)))
