"""numpy-only neural-network substrate.

A minimal Keras-like framework sufficient to express every architecture in
the paper's search spaces and baselines: dense / conv1d / pooling /
dropout layers, DAG models with multi-input merge layers, weight sharing,
Adam, and a training loop with the paper's low-fidelity controls (epoch
budget, timeout, training-data fraction).

Models execute through a compiled engine (:mod:`repro.nn.engine`): at
``build()`` time the DAG is lowered to an index-based execution plan with
pooled, reused activation/gradient buffers, and all parameters can be
packed into one contiguous vector for the fused optimizers.  The compute
dtype is configurable (:mod:`repro.nn.config`): float32 by default,
float64 opt-in for numerics-sensitive work.
"""

from .config import dtype_scope, get_default_dtype, set_default_dtype
from .conv import Conv1D, Flatten, MaxPooling1D
from .engine import BufferPool, ExecutionPlan, FlatParameterVector
from .graph import GraphModel, InputSpec
from .layers import ACTIVATIONS, Activation, Dense, Dropout, Identity, Layer
from .losses import CategoricalCrossentropy, Loss, MeanSquaredError, get_loss
from .merge import Add, Concatenate, MergeLayer
from .metrics import accuracy, get_metric, r2_score
from .optimizers import (SGD, Adam, FlatAdam, FlatOptimizer, FlatSGD,
                         Optimizer, clip_global_norm, get_optimizer)
from .recurrent import LSTMCell
from .tensor import Parameter
from .training import History, Trainer, train_model

__all__ = [
    "ACTIVATIONS", "Activation", "Adam", "Add", "BufferPool",
    "CategoricalCrossentropy", "Concatenate", "Conv1D", "Dense", "Dropout",
    "ExecutionPlan", "FlatAdam", "FlatOptimizer", "FlatParameterVector",
    "FlatSGD", "Flatten", "GraphModel", "History", "Identity", "InputSpec",
    "LSTMCell", "Layer", "Loss", "MaxPooling1D", "MeanSquaredError",
    "MergeLayer", "Optimizer", "Parameter", "SGD", "Trainer", "accuracy",
    "clip_global_norm", "dtype_scope", "get_default_dtype", "get_loss",
    "get_metric", "get_optimizer", "r2_score", "set_default_dtype",
    "train_model",
]
