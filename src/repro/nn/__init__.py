"""numpy-only neural-network substrate.

A minimal Keras-like framework sufficient to express every architecture in
the paper's search spaces and baselines: dense / conv1d / pooling /
dropout layers, DAG models with multi-input merge layers, weight sharing,
Adam, and a training loop with the paper's low-fidelity controls (epoch
budget, timeout, training-data fraction).
"""

from .conv import Conv1D, Flatten, MaxPooling1D
from .graph import GraphModel, InputSpec
from .layers import ACTIVATIONS, Activation, Dense, Dropout, Identity, Layer
from .losses import CategoricalCrossentropy, Loss, MeanSquaredError, get_loss
from .merge import Add, Concatenate, MergeLayer
from .metrics import accuracy, get_metric, r2_score
from .optimizers import SGD, Adam, Optimizer, clip_global_norm, get_optimizer
from .recurrent import LSTMCell
from .tensor import Parameter
from .training import History, Trainer, train_model

__all__ = [
    "ACTIVATIONS", "Activation", "Adam", "Add", "CategoricalCrossentropy",
    "Concatenate", "Conv1D", "Dense", "Dropout", "Flatten", "GraphModel",
    "History", "Identity", "InputSpec", "LSTMCell", "Layer", "Loss",
    "MaxPooling1D", "MeanSquaredError", "MergeLayer", "Optimizer",
    "Parameter", "SGD", "Trainer", "accuracy", "clip_global_norm",
    "get_loss", "get_metric", "get_optimizer", "r2_score", "train_model",
]
