"""1-D convolutional layers for the NT3 search space.

The paper's NT3 benchmark traverses long RNA-seq gene-expression vectors
(d = 60,483) with ``Conv1D`` + ``MaxPooling1D`` stacks; the search space's
``Conv_Node`` options vary the kernel size with 8 filters and stride 1.

Per-sample feature shapes are ``(length, channels)``.  Convolution uses
``valid`` padding, matching the Keras default the paper's software relied
on.  The implementation is an im2col/GEMM formulation: the strided
windows from :func:`numpy.lib.stride_tricks.sliding_window_view` are
copied once into a pooled contiguous ``(B·L', K·C)`` column matrix laid
out so the weight tensor reshapes to ``(K·C, F)`` with no transpose.
Each pass is then a single matmul — forward ``cols @ w``, weight gradient
``colsᵀ @ g``, and the input gradient one matmul ``g @ wᵀ`` back to
per-window tap gradients followed by K strided in-place adds (no per-tap
GEMM or temporaries, O(kernel_size) Python regardless of data size).

Scratch arrays (columns, gradients) are allocated in the operand dtype
(so a float32 model stays float32 end to end) and are pooled and reused
across batches when the layer runs under an execution plan; the pool
keys on the full shape, so a smaller final batch gets its own buffers
instead of corrupting the steady-state ones.
"""

from __future__ import annotations

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from .initializers import glorot_uniform
from .layers import Layer, _backward_activation, _forward_activation
from .tensor import Parameter

__all__ = ["Conv1D", "MaxPooling1D", "Flatten"]


class Conv1D(Layer):
    """1-D convolution, ``valid`` padding.

    Parameters
    ----------
    filters: number of output channels.
    kernel_size: receptive field length.
    strides: step between windows.
    activation: applied elementwise after the convolution.
    """

    def __init__(self, filters: int, kernel_size: int, strides: int = 1,
                 activation: str = "linear", name: str = "") -> None:
        super().__init__(name)
        if filters <= 0 or kernel_size <= 0 or strides <= 0:
            raise ValueError("filters, kernel_size and strides must be positive")
        self.filters = filters
        self.kernel_size = kernel_size
        self.strides = strides
        self.activation = activation
        self.w: Parameter | None = None
        self.b: Parameter | None = None
        self._cols: np.ndarray | None = None
        self._pre: np.ndarray | None = None
        self._out: np.ndarray | None = None
        self._in_len = 0

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        if len(input_shape) != 2:
            raise ValueError(f"Conv1D expects (length, channels) input, got {input_shape}")
        length, channels = input_shape
        if length < self.kernel_size:
            raise ValueError(
                f"input length {length} shorter than kernel {self.kernel_size}")
        self.w = Parameter(
            glorot_uniform((self.kernel_size, channels, self.filters), rng),
            f"{self.name}.w")
        self.b = Parameter(np.zeros(self.filters), f"{self.name}.b")
        out_len = (length - self.kernel_size) // self.strides + 1
        self.built = True
        self.input_shape = tuple(input_shape)
        self.output_shape = (out_len, self.filters)
        return self.output_shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._in_len = x.shape[1]
        win = sliding_window_view(x, self.kernel_size, axis=1)  # (B, L', C, K)
        if self.strides > 1:
            win = win[:, ::self.strides]
        w, b = self.w.value, self.b.value
        batch, out_len = x.shape[0], win.shape[1]
        ksz, channels, filters = self.kernel_size, w.shape[1], self.filters
        # im2col: one contiguous copy in (K, C) minor order, so the
        # weight tensor reshapes to (K*C, F) without a transpose
        cols = self._scratch("cols", (batch, out_len, ksz, channels), x.dtype)
        np.copyto(cols, win.transpose(0, 1, 3, 2))
        self._cols = cols
        cols2d = cols.reshape(batch * out_len, ksz * channels)
        w2d = w.reshape(ksz * channels, filters)
        if (self._pool is not None and x.dtype == w.dtype
                and (self.activation != "linear" or self._reuse_out)):
            pre = self._scratch("pre", (batch, out_len, filters), w.dtype)
            np.matmul(cols2d, w2d, out=pre.reshape(batch * out_len, filters))
            pre += b
        else:
            pre = (cols2d @ w2d).reshape(batch, out_len, filters) + b
        self._pre = pre
        self._out = _forward_activation(self, pre)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        grad_pre = _backward_activation(self, grad_out)
        batch, out_len, filters = grad_pre.shape
        ksz, channels = self.kernel_size, self.w.shape[1]
        cols2d = self._cols.reshape(batch * out_len, ksz * channels)
        g2d = grad_pre.reshape(batch * out_len, filters)
        self.w.grad += (cols2d.T @ g2d).reshape(ksz, channels, filters)
        self.b.grad += g2d.sum(axis=0)
        # input gradient: one GEMM back to per-window tap gradients...
        w2d = self.w.value.reshape(ksz * channels, filters)
        if grad_pre.dtype == w2d.dtype:
            dcols = self._scratch("dcols", (batch, out_len, ksz, channels),
                                  grad_pre.dtype)
            np.matmul(g2d, w2d.T,
                      out=dcols.reshape(batch * out_len, ksz * channels))
        else:
            dcols = (g2d @ w2d.T).reshape(batch, out_len, ksz, channels)
        # ...then K strided in-place adds (window l covers input k + s*l)
        grad_in = self._scratch("grad_in", (batch, self._in_len, channels),
                                grad_pre.dtype, zero=True)
        s = self.strides
        for k in range(ksz):
            grad_in[:, k:k + s * out_len:s, :] += dcols[:, :, k, :]
        return grad_in

    def parameters(self) -> list[Parameter]:
        return [self.w, self.b] if self.w is not None else []


class MaxPooling1D(Layer):
    """Max pooling with stride equal to the pool size (Keras default).

    A trailing remainder shorter than ``pool_size`` is dropped, matching
    ``valid`` padding.

    ``pool_size == 2`` (the NT3 search space's configuration) takes a
    branchless fast path: the max is one elementwise ``maximum`` over the
    even/odd slices and the backward routing mask is recomputed from the
    saved input with ``>=`` — which routes ties to the first window
    element, exactly like the general ``argmax`` path.
    """

    def __init__(self, pool_size: int, name: str = "") -> None:
        super().__init__(name)
        if pool_size <= 0:
            raise ValueError("pool_size must be positive")
        self.pool_size = pool_size
        self._argmax: np.ndarray | None = None
        self._x: np.ndarray | None = None
        self._in_shape: tuple[int, ...] | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        if len(input_shape) != 2:
            raise ValueError(f"MaxPooling1D expects (length, channels), got {input_shape}")
        length, channels = input_shape
        out_len = length // self.pool_size
        if out_len == 0:
            raise ValueError(
                f"input length {length} shorter than pool size {self.pool_size}")
        self.built = True
        self.input_shape = tuple(input_shape)
        self.output_shape = (out_len, channels)
        return self.output_shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        batch, length, channels = x.shape
        p = self.pool_size
        out_len = length // p
        self._in_shape = x.shape
        if p == 2:
            self._x = x
            if self._pool is not None and self._reuse_out:
                out = self._scratch("out", (batch, out_len, channels), x.dtype)
            else:
                out = np.empty((batch, out_len, channels), dtype=x.dtype)
            np.maximum(x[:, 0:out_len * 2:2], x[:, 1:out_len * 2:2], out=out)
            return out
        xr = x[:, :out_len * p].reshape(batch, out_len, p, channels)
        self._argmax = xr.argmax(axis=2)
        return xr.max(axis=2)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        batch, length, channels = self._in_shape
        p = self.pool_size
        out_len = length // p
        grad_r = self._scratch("grad_r", (batch, out_len, p, channels),
                               grad_out.dtype, zero=p != 2)
        if p == 2:
            # first-element winners (>= routes ties left, like argmax)
            mask = self._x[:, 0:out_len * 2:2] >= self._x[:, 1:out_len * 2:2]
            np.multiply(grad_out, mask, out=grad_r[:, :, 0, :])
            np.subtract(grad_out, grad_r[:, :, 0, :], out=grad_r[:, :, 1, :])
        else:
            b_idx, l_idx, c_idx = np.ogrid[:batch, :out_len, :channels]
            grad_r[b_idx, l_idx, self._argmax, c_idx] = grad_out
        grad_in = self._scratch("grad_in", (batch, length, channels),
                                grad_out.dtype)
        grad_in[:, :out_len * p] = grad_r.reshape(batch, out_len * p, channels)
        if out_len * p < length:
            grad_in[:, out_len * p:] = 0.0
        return grad_in

    def parameters(self) -> list[Parameter]:
        return []


class Flatten(Layer):
    """Flatten ``(length, channels)`` features to a vector."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self._in_shape: tuple[int, ...] | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> tuple[int, ...]:
        self.built = True
        self.input_shape = tuple(input_shape)
        self.output_shape = (int(np.prod(input_shape)),)
        return self.output_shape

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out.reshape(self._in_shape)
