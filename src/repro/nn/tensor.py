"""Trainable parameter container for the numpy neural-network substrate.

The framework performs reverse-mode differentiation explicitly layer by
layer (no tape): every layer implements ``forward`` and ``backward`` and
accumulates gradients into :class:`Parameter` objects.  Keeping parameters
as first-class objects (rather than raw arrays) is what makes the paper's
*MirrorNode* weight sharing trivial: two layers holding the same
:class:`Parameter` instance share both value and gradient accumulator.
"""

from __future__ import annotations

import numpy as np

from . import config

__all__ = ["Parameter"]


class Parameter:
    """A trainable array with a gradient accumulator.

    Parameters
    ----------
    value:
        Initial value.  Stored in the substrate's configured floating
        dtype (:func:`repro.nn.config.get_default_dtype` — float32 by
        default; use float64 for numerically robust gradient checks).
    name:
        Optional human-readable identifier, used in error messages and
        analytics output.
    dtype:
        Explicit storage dtype, overriding the configured default.

    When a model's parameters are packed by
    :class:`~repro.nn.engine.FlatParameterVector`, ``value`` and ``grad``
    are rebound to views of the flat pack; all Parameter-level reads and
    in-place writes keep working unchanged.
    """

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "",
                 dtype=None) -> None:
        self.value = np.asarray(
            value, dtype=dtype if dtype is not None else config.get_default_dtype())
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def dtype(self) -> np.dtype:
        return self.value.dtype

    @property
    def size(self) -> int:
        """Number of scalar entries (trainable parameter count)."""
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"
