"""Trainable parameter container for the numpy neural-network substrate.

The framework performs reverse-mode differentiation explicitly layer by
layer (no tape): every layer implements ``forward`` and ``backward`` and
accumulates gradients into :class:`Parameter` objects.  Keeping parameters
as first-class objects (rather than raw arrays) is what makes the paper's
*MirrorNode* weight sharing trivial: two layers holding the same
:class:`Parameter` instance share both value and gradient accumulator.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Parameter"]


class Parameter:
    """A trainable array with a gradient accumulator.

    Parameters
    ----------
    value:
        Initial value.  Stored as ``float64`` for numerically robust
        gradient checks; the training workloads in this repository are
        small enough that the extra width is irrelevant.
    name:
        Optional human-readable identifier, used in error messages and
        analytics output.
    """

    __slots__ = ("value", "grad", "name")

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        """Number of scalar entries (trainable parameter count)."""
        return int(self.value.size)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.value.shape})"
