"""Substrate-wide numeric configuration: the default floating dtype.

The seed substrate computed everything in float64.  That is twice the
memory traffic the cancer benchmarks need and forfeits the wider SIMD
lanes BLAS uses for float32 — and NAS throughput is bounded by how fast
candidate networks train (the paper's core premise).  The default is
therefore **float32**; float64 remains a one-line opt-in for gradient
checks and for bit-reproducing the seed numerics:

* process-wide: ``set_default_dtype(np.float64)`` or the
  ``REPRO_NN_DTYPE=float64`` environment variable (read once at import);
* scoped: ``with dtype_scope(np.float64): ...`` (used by the test suite
  and by :meth:`repro.nas.builder.Plan.materialize`'s ``dtype`` argument).

The configured dtype is consulted when parameters are *created* and when
a :class:`~repro.nn.graph.GraphModel` is *built* (the model freezes the
dtype into its execution plan); changing it later does not retroactively
convert existing models.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

__all__ = ["get_default_dtype", "set_default_dtype", "dtype_scope"]

_ALLOWED = (np.float32, np.float64)


def _validate(dtype) -> np.dtype:
    dt = np.dtype(dtype)
    if dt not in (np.dtype(d) for d in _ALLOWED):
        raise ValueError(
            f"unsupported dtype {dtype!r}; choose float32 or float64")
    return dt


_DTYPE: np.dtype = _validate(os.environ.get("REPRO_NN_DTYPE", "float32"))


def get_default_dtype() -> np.dtype:
    """The dtype new parameters and newly built models will use."""
    return _DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the process-wide default dtype; returns the previous one."""
    global _DTYPE
    previous = _DTYPE
    _DTYPE = _validate(dtype)
    return previous


@contextmanager
def dtype_scope(dtype):
    """Temporarily override the default dtype within a ``with`` block."""
    previous = set_default_dtype(dtype)
    try:
        yield np.dtype(dtype)
    finally:
        set_default_dtype(previous)
