"""Loss functions.

Each loss exposes ``value(pred, target)`` and ``grad(pred, target)``; the
gradient is with respect to the prediction and already averaged over the
batch, so optimizer steps are batch-size independent.

Losses are dtype-preserving: ``grad`` returns an array in the
prediction's dtype (so a float32 backward pass stays float32), while
scalar ``value`` reductions always accumulate in float64 for stable
epoch-loss reporting.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "MeanSquaredError", "CategoricalCrossentropy", "get_loss"]

_EPS = 1e-12


class Loss:
    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def grad(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class MeanSquaredError(Loss):
    """MSE for the Combo / Uno regression benchmarks."""

    def value(self, pred, target):
        pred = np.asarray(pred)
        target = np.asarray(target, dtype=pred.dtype)
        return float(np.mean(np.square(pred - target), dtype=np.float64))

    def grad(self, pred, target):
        pred = np.asarray(pred)
        target = np.asarray(target, dtype=pred.dtype)
        return 2.0 * (pred - target) / pred.size

class CategoricalCrossentropy(Loss):
    """Cross-entropy over probability outputs (softmax applied upstream).

    Targets are one-hot ``(batch, classes)`` arrays, as produced by
    :func:`repro.problems.datasets.one_hot`.
    """

    def value(self, pred, target):
        p = np.clip(np.asarray(pred), _EPS, 1.0)
        target = np.asarray(target, dtype=p.dtype)
        return float(-np.mean(np.sum(target * np.log(p), axis=-1),
                              dtype=np.float64))

    def grad(self, pred, target):
        p = np.clip(np.asarray(pred), _EPS, 1.0)
        target = np.asarray(target, dtype=p.dtype)
        return -(target / p) / pred.shape[0]


_LOSSES = {
    "mse": MeanSquaredError,
    "categorical_crossentropy": CategoricalCrossentropy,
}


def get_loss(name: str) -> Loss:
    """Look up a loss by its Keras-style name."""
    try:
        return _LOSSES[name]()
    except KeyError:
        raise ValueError(f"unknown loss {name!r}; choose from {sorted(_LOSSES)}") from None
