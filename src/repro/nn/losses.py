"""Loss functions.

Each loss exposes ``value(pred, target)`` and ``grad(pred, target)``; the
gradient is with respect to the prediction and already averaged over the
batch, so optimizer steps are batch-size independent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Loss", "MeanSquaredError", "CategoricalCrossentropy", "get_loss"]

_EPS = 1e-12


class Loss:
    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def grad(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class MeanSquaredError(Loss):
    """MSE for the Combo / Uno regression benchmarks."""

    def value(self, pred, target):
        pred = np.asarray(pred, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        return float(np.mean((pred - target) ** 2))

    def grad(self, pred, target):
        pred = np.asarray(pred, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        return 2.0 * (pred - target) / pred.size


class CategoricalCrossentropy(Loss):
    """Cross-entropy over probability outputs (softmax applied upstream).

    Targets are one-hot ``(batch, classes)`` arrays, as produced by
    :func:`repro.problems.datasets.one_hot`.
    """

    def value(self, pred, target):
        p = np.clip(np.asarray(pred, dtype=np.float64), _EPS, 1.0)
        return float(-np.mean(np.sum(target * np.log(p), axis=-1)))

    def grad(self, pred, target):
        p = np.clip(np.asarray(pred, dtype=np.float64), _EPS, 1.0)
        return -(np.asarray(target, dtype=np.float64) / p) / pred.shape[0]


_LOSSES = {
    "mse": MeanSquaredError,
    "categorical_crossentropy": CategoricalCrossentropy,
}


def get_loss(name: str) -> Loss:
    """Look up a loss by its Keras-style name."""
    try:
        return _LOSSES[name]()
    except KeyError:
        raise ValueError(f"unknown loss {name!r}; choose from {sorted(_LOSSES)}") from None
