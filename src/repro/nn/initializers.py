"""Weight initialization schemes.

The paper relies on *agent-specific random weight initialization* during
reward estimation ("different agents generating the same architecture can
have different rewards"), so all initializers take an explicit
:class:`numpy.random.Generator` — global RNG state is never used.
"""

from __future__ import annotations

import numpy as np

__all__ = ["glorot_uniform", "he_uniform", "orthogonal", "zeros"]


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization (Keras ``Dense`` default)."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialization, suited to relu activations."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def orthogonal(shape: tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialization (Keras LSTM recurrent-kernel default)."""
    rows, cols = shape
    a = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q = q * np.sign(np.diag(r))  # make the decomposition unique
    return q[:rows, :cols] if rows >= cols else q[:cols, :rows].T


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Conv kernels: (kernel, in_channels, out_channels)
    receptive = int(np.prod(shape[:-2]))
    return shape[-2] * receptive, shape[-1] * receptive
