"""Weight initialization schemes.

The paper relies on *agent-specific random weight initialization* during
reward estimation ("different agents generating the same architecture can
have different rewards"), so all initializers take an explicit
:class:`numpy.random.Generator` — global RNG state is never used.

Each initializer accepts an optional ``dtype``; when omitted, values are
returned in the substrate's configured default dtype
(:func:`repro.nn.config.get_default_dtype`).  Sampling itself happens in
float64 for a dtype-independent random stream — a float32 model built
from the same seed gets the (rounded) same initial weights as a float64
one, which is what the float32-vs-float64 equivalence tests rely on.
"""

from __future__ import annotations

import numpy as np

from . import config

__all__ = ["glorot_uniform", "he_uniform", "orthogonal", "zeros"]


def _cast(arr: np.ndarray, dtype) -> np.ndarray:
    return arr.astype(dtype if dtype is not None else config.get_default_dtype(),
                      copy=False)


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                   dtype=None) -> np.ndarray:
    """Glorot/Xavier uniform initialization (Keras ``Dense`` default)."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _cast(rng.uniform(-limit, limit, size=shape), dtype)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator,
               dtype=None) -> np.ndarray:
    """He uniform initialization, suited to relu activations."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return _cast(rng.uniform(-limit, limit, size=shape), dtype)


def orthogonal(shape: tuple[int, int], rng: np.random.Generator,
               dtype=None) -> np.ndarray:
    """Orthogonal initialization (Keras LSTM recurrent-kernel default)."""
    rows, cols = shape
    a = rng.standard_normal((max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(a)
    q = q * np.sign(np.diag(r))  # make the decomposition unique
    return _cast(q[:rows, :cols] if rows >= cols else q[:cols, :rows].T, dtype)


def zeros(shape: tuple[int, ...], rng: np.random.Generator | None = None,
          dtype=None) -> np.ndarray:
    return np.zeros(shape,
                    dtype=dtype if dtype is not None else config.get_default_dtype())


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    # Conv kernels: (kernel, in_channels, out_channels)
    receptive = int(np.prod(shape[:-2]))
    return shape[-2] * receptive, shape[-1] * receptive
