"""Post-training of the best search architectures (§5, Figs. 7/8/10/12).

After a search, the paper selects the top 50 architectures by estimated
reward and retrains them for 20 epochs on the full training data without
a timeout, then compares each against the manually designed network via
three ratios:

* **accuracy ratio** ``R²/R²_b`` (or ``ACC/ACC_b``) — > 1 means the
  NAS-generated architecture beats the manual one;
* **trainable-parameters ratio** ``P_b/P`` — > 1 means it is smaller;
* **training-time ratio** ``T_b/T`` — > 1 means it trains faster.

Here post-training really trains the numpy models on the synthetic
datasets; training time is measured wall time (the paper's was a single
K80 GPU), so the *ratios* are the meaningful quantity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from .nas.arch import Architecture
from .nn.training import Trainer
from .problems.base import Problem
from .rewards.training import arch_seed

__all__ = ["PostTrainEntry", "PostTrainReport", "post_train"]


@dataclass(frozen=True)
class PostTrainEntry:
    """One post-trained architecture with its ratios vs the baseline."""

    arch: Architecture
    metric: float            # final validation R² or accuracy
    params: int
    train_time: float        # seconds
    accuracy_ratio: float    # metric / baseline metric
    params_ratio: float      # baseline params / params
    time_ratio: float        # baseline time / time


@dataclass
class PostTrainReport:
    problem: str
    baseline_metric: float
    baseline_params: int
    baseline_time: float
    entries: list[PostTrainEntry]

    @property
    def num_outperforming(self) -> int:
        """Architectures with accuracy ratio > 1 (beat the baseline)."""
        return sum(1 for e in self.entries if e.accuracy_ratio > 1.0)

    def num_competitive(self, threshold: float = 0.98) -> int:
        return sum(1 for e in self.entries if e.accuracy_ratio > threshold)

    @property
    def num_smaller(self) -> int:
        return sum(1 for e in self.entries if e.params_ratio > 1.0)

    @property
    def num_faster(self) -> int:
        return sum(1 for e in self.entries if e.time_ratio > 1.0)

    def best(self) -> PostTrainEntry:
        if not self.entries:
            raise ValueError("no entries")
        return max(self.entries, key=lambda e: e.metric)

    def summary_rows(self) -> list[dict]:
        """Table-1-style rows: baseline plus the best NAS architecture."""
        best = self.best()
        return [
            {"network": "manually designed", "params": self.baseline_params,
             "train_time_s": round(self.baseline_time, 2),
             "metric": round(self.baseline_metric, 4)},
            {"network": "A3C-best", "params": best.params,
             "train_time_s": round(best.train_time, 2),
             "metric": round(best.metric, 4)},
        ]


def post_train(problem: Problem, archs: list[Architecture],
               epochs: int = 20, seed: int = 0,
               time_model=None,
               clock=time.monotonic) -> PostTrainReport:
    """Retrain ``archs`` and the baseline; return the ratio report.

    Matches the paper's post-training protocol: full training data, no
    timeout, Adam lr=0.001, the benchmark's batch size, ``epochs`` epochs
    (paper uses 20).

    ``time_model`` (a :class:`~repro.hpc.costmodel.TrainingCostModel`)
    makes training times deterministic functions of parameter count
    instead of measured wall time; at reduced working scale, measured
    times are dominated by per-batch overhead, so the cost model is what
    preserves the paper's T_b/T phenomenology.
    """
    ds = problem.dataset

    def train_seconds(measured: float, params: int) -> float:
        if time_model is None:
            return max(measured, 1e-9)
        return time_model.duration(params, epochs=epochs)

    trainer = Trainer(loss=problem.loss, metric=problem.metric,
                      batch_size=problem.batch_size, epochs=epochs,
                      seed=seed, clock=clock)

    model_b = problem.build_baseline(np.random.default_rng(seed))
    t0 = clock()
    hist_b = trainer.fit(model_b, ds.x_train, ds.y_train, ds.x_val, ds.y_val)
    baseline_params = model_b.num_params
    baseline_time = train_seconds(clock() - t0, baseline_params)
    baseline_metric = hist_b.val_metric

    entries: list[PostTrainEntry] = []
    for arch in archs:
        rng = np.random.default_rng(arch_seed(seed, 0, arch))
        model = problem.build_model(arch.choices, rng)
        t0 = clock()
        hist = trainer.fit(model, ds.x_train, ds.y_train, ds.x_val, ds.y_val)
        train_time = train_seconds(clock() - t0, model.num_params)
        metric = float(hist.val_metric)
        entries.append(PostTrainEntry(
            arch=arch, metric=metric, params=model.num_params,
            train_time=train_time,
            accuracy_ratio=metric / baseline_metric
            if baseline_metric else float("nan"),
            params_ratio=baseline_params / max(model.num_params, 1),
            time_ratio=baseline_time / train_time))
    return PostTrainReport(problem.name, baseline_metric, baseline_params,
                           baseline_time, entries)
