"""Universal finite-difference gradient checker.

Validates every analytic backward pass in the substrate against central
finite differences of a scalar probe objective

    L = sum(proj * forward(x))

with a fixed random projection ``proj``.  The checker introspects the
layer protocol, so one implementation covers single-input layers
(Dense, Conv1D, MaxPooling1D, Dropout-in-eval, Activation, Identity,
Flatten), multi-input merge layers (Concatenate, Add), the losses
(gradient of ``value`` vs. ``grad``), the LSTM policy with action
masking (through ``forward_train``/``backward_train``), and the full
PPO surrogate objective.

All checks run in float64 (central differences with eps ~1e-6 do not
resolve in single precision).  Exposed as the ``gradcheck`` pytest
fixture and through ``python -m repro.verify grad``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..nn.config import dtype_scope
from ..nn.conv import Conv1D, Flatten, MaxPooling1D
from ..nn.layers import Activation, Dense, Dropout, Identity
from ..nn.losses import CategoricalCrossentropy, Loss, MeanSquaredError
from ..nn.merge import Add, Concatenate, MergeLayer

__all__ = ["GradCheckResult", "check_layer", "check_loss", "check_policy",
           "check_ppo_objective", "default_checks", "run_all"]

#: documented default tolerances for float64 central differences
EPS = 1e-6
RTOL = 1e-5
ATOL = 1e-7


@dataclass
class GradCheckResult:
    """Outcome of one gradient check."""

    name: str
    n_checked: int
    max_err: float        # worst |analytic - numeric| over atol + rtol*|numeric|
    worst: str            # entry where the worst error occurred
    ok: bool

    def assert_ok(self) -> "GradCheckResult":
        assert self.ok, (
            f"gradient check {self.name!r} failed: worst relative error "
            f"{self.max_err:.3g} at {self.worst} "
            f"({self.n_checked} entries checked)")
        return self


class _ErrorTracker:
    def __init__(self, name: str, rtol: float, atol: float) -> None:
        self.name = name
        self.rtol = rtol
        self.atol = atol
        self.n = 0
        self.max_err = 0.0
        self.worst = ""

    def record(self, label: str, numeric: float, analytic: float) -> None:
        self.n += 1
        err = abs(analytic - numeric) / (self.atol + self.rtol * abs(numeric))
        if err > self.max_err:
            self.max_err = err
            self.worst = f"{label} (numeric {numeric:.6g}, analytic {analytic:.6g})"

    def result(self) -> GradCheckResult:
        return GradCheckResult(self.name, self.n, self.max_err,
                               self.worst, self.max_err <= 1.0)


def _indices(rng: np.random.Generator, shape: tuple[int, ...],
             max_entries: int | None):
    size = int(np.prod(shape)) if shape else 1
    if max_entries is None or size <= max_entries:
        flat = np.arange(size)
    else:
        flat = rng.choice(size, size=max_entries, replace=False)
    return [np.unravel_index(int(i), shape) for i in flat]


def _central_diff(objective: Callable[[], float], arr: np.ndarray,
                  idx, eps: float) -> float:
    old = arr[idx]
    arr[idx] = old + eps
    fp = objective()
    arr[idx] = old - eps
    fm = objective()
    arr[idx] = old
    return (fp - fm) / (2.0 * eps)


def check_layer(layer, input_shapes, *, batch: int = 3,
                training: bool = False, seed: int = 0, eps: float = EPS,
                rtol: float = RTOL, atol: float = ATOL,
                max_entries: int | None = 64,
                name: str | None = None) -> GradCheckResult:
    """Finite-difference check of one layer's backward pass.

    ``input_shapes`` is one per-sample shape for single-input layers or a
    list of shapes for :class:`~repro.nn.merge.MergeLayer` subclasses.
    Checks the gradients w.r.t. every parameter and every input against
    central differences of a random-projection objective.
    """
    multi = isinstance(layer, MergeLayer)
    if not multi and input_shapes and isinstance(input_shapes[0], (tuple, list)):
        input_shapes = input_shapes[0]
    shapes = ([tuple(s) for s in input_shapes] if multi
              else [tuple(input_shapes)])
    rng = np.random.default_rng(seed)
    with dtype_scope(np.float64):
        if multi:
            layer.build_multi(shapes, rng)
        else:
            layer.build(shapes[0], rng)
    xs = [rng.standard_normal((batch,) + s) for s in shapes]
    out_shape = (batch,) + tuple(layer.output_shape)
    proj = rng.standard_normal(out_shape)

    def forward():
        if multi:
            return layer.forward_multi(xs, training)
        return layer.forward(xs[0], training)

    def objective() -> float:
        return float(np.sum(proj * forward(), dtype=np.float64))

    out = forward()
    if out.shape != out_shape:
        raise AssertionError(
            f"{type(layer).__name__}: declared output shape "
            f"{layer.output_shape} but forward produced {out.shape[1:]}")
    for p in layer.parameters():
        p.zero_grad()
    if multi:
        in_grads = layer.backward_multi(proj)
    else:
        in_grads = [layer.backward(proj)]

    label = name or f"{type(layer).__name__}{shapes}"
    tracker = _ErrorTracker(label, rtol, atol)
    for p in layer.parameters():
        for idx in _indices(rng, p.value.shape, max_entries):
            num = _central_diff(objective, p.value, idx, eps)
            tracker.record(f"{p.name}[{idx}]", num, float(p.grad[idx]))
    for k, (x, g) in enumerate(zip(xs, in_grads)):
        for idx in _indices(rng, x.shape, max_entries):
            num = _central_diff(objective, x, idx, eps)
            tracker.record(f"input{k}[{idx}]", num, float(g[idx]))
    return tracker.result()


def check_loss(loss: Loss, pred: np.ndarray, target: np.ndarray, *,
               seed: int = 0, eps: float = EPS, rtol: float = RTOL,
               atol: float = ATOL, max_entries: int | None = 64,
               name: str | None = None) -> GradCheckResult:
    """Check ``loss.grad`` against central differences of ``loss.value``."""
    pred = np.asarray(pred, dtype=np.float64).copy()
    target = np.asarray(target, dtype=np.float64)
    rng = np.random.default_rng(seed)
    analytic = loss.grad(pred, target)
    tracker = _ErrorTracker(name or type(loss).__name__, rtol, atol)
    for idx in _indices(rng, pred.shape, max_entries):
        num = _central_diff(lambda: loss.value(pred, target), pred, idx, eps)
        tracker.record(f"pred[{idx}]", num, float(analytic[idx]))
    return tracker.result()


def check_policy(action_dims, *, batch: int = 2, hidden: int = 8,
                 embed_dim: int = 5, seed: int = 0, eps: float = EPS,
                 rtol: float = 1e-4, atol: float = ATOL,
                 max_entries: int | None = 200,
                 name: str | None = None) -> GradCheckResult:
    """Check the LSTM policy's BPTT gradients (with action masking).

    Probes ``L = Σ w_l·logp + Σ w_v·value + Σ w_e·entropy`` through
    ``forward_train``/``backward_train``; parameters are perturbed via
    the policy's flat pack, whose per-parameter views keep the network
    live.  ``action_dims=[k]`` exercises the sequence-length-1 path.
    """
    from ..rl.policy import LSTMPolicy

    with dtype_scope(np.float64):
        policy = LSTMPolicy(list(action_dims), hidden=hidden,
                            embed_dim=embed_dim, seed=seed)
    rng = np.random.default_rng(seed + 1)
    horizon = len(action_dims)
    actions = np.stack([rng.integers(0, d, size=batch)
                        for d in action_dims], axis=1)
    w_l = rng.standard_normal((batch, horizon))
    w_v = rng.standard_normal((batch, horizon))
    w_e = rng.standard_normal((batch, horizon))

    def objective() -> float:
        logp, values, entropies, _ = policy.forward_train(actions)
        return float((w_l * logp).sum() + (w_v * values).sum()
                     + (w_e * entropies).sum())

    policy.zero_grad()
    _, _, _, caches = policy.forward_train(actions)
    policy.backward_train(caches, w_l, w_v, w_e)

    flat = policy.flat
    tracker = _ErrorTracker(
        name or f"LSTMPolicy(dims={list(action_dims)})", rtol, atol)
    for idx in _indices(rng, (flat.size,), max_entries):
        num = _central_diff(objective, flat.values, idx, eps)
        tracker.record(f"flat[{idx[0]}]", num, float(flat.grads[idx]))
    return tracker.result()


def check_ppo_objective(action_dims=(3, 4, 2), *, batch: int = 4,
                        seed: int = 0, eps: float = EPS, rtol: float = 1e-4,
                        atol: float = ATOL,
                        max_entries: int | None = 200) -> GradCheckResult:
    """Check the PPO clipped-surrogate gradients end to end.

    Uses :meth:`~repro.rl.ppo.PPOUpdater.surrogate_loss` — the pure
    loss/gradient evaluation ``update`` iterates — so no optimizer step
    perturbs the comparison.
    """
    from ..rl.policy import LSTMPolicy
    from ..rl.ppo import PPOConfig, PPOUpdater

    with dtype_scope(np.float64):
        policy = LSTMPolicy(list(action_dims), hidden=8, embed_dim=5,
                            seed=seed)
    updater = PPOUpdater(policy, PPOConfig(epochs=1))
    rng = np.random.default_rng(seed + 2)
    rollout = policy.sample(batch, rng)
    rewards = rng.random(batch)
    advantages, returns = updater.prepare_targets(rollout, rewards)

    def objective() -> float:
        loss, _ = updater.surrogate_loss(rollout, advantages, returns,
                                         with_grads=False)
        return loss

    policy.zero_grad()
    updater.surrogate_loss(rollout, advantages, returns, with_grads=True)
    flat = policy.flat
    tracker = _ErrorTracker("PPO surrogate", rtol, atol)
    for idx in _indices(rng, (flat.size,), max_entries):
        num = _central_diff(objective, flat.values, idx, eps)
        tracker.record(f"flat[{idx[0]}]", num, float(flat.grads[idx]))
    return tracker.result()


# ----------------------------------------------------------------------
# the default suite: every public layer and loss, plus edge shapes
# ----------------------------------------------------------------------
def default_checks() -> list[tuple[str, Callable[[], GradCheckResult]]]:
    """(name, thunk) for every check ``run_all``/the CLI executes.

    Includes the untested edge shapes: Conv1D feeding a pool whose size
    does not divide the input length, LSTM at sequence length 1, and
    batch size 1 for every layer family.
    """
    checks: list[tuple[str, Callable[[], GradCheckResult]]] = []

    def add(name, thunk):
        checks.append((name, thunk))

    for act in ("relu", "tanh", "sigmoid", "linear", "softmax"):
        add(f"dense-{act}",
            lambda act=act: check_layer(Dense(6, act), (5,)))
    add("dense-batch1", lambda: check_layer(Dense(4, "relu"), (5,), batch=1))
    add("conv1d", lambda: check_layer(Conv1D(3, 4, activation="tanh"),
                                      (17, 2)))
    add("conv1d-strided", lambda: check_layer(Conv1D(2, 3, strides=2),
                                              (16, 2)))
    add("conv1d-batch1", lambda: check_layer(Conv1D(2, 3), (11, 1), batch=1))
    add("maxpool", lambda: check_layer(MaxPooling1D(3), (12, 2)))
    # remainder path: length 14 is not divisible by pool size 4
    add("maxpool-remainder", lambda: check_layer(MaxPooling1D(4), (14, 2)))
    add("maxpool-batch1",
        lambda: check_layer(MaxPooling1D(3), (10, 2), batch=1))
    add("dropout-eval",
        lambda: check_layer(Dropout(0.4), (7,), training=False))
    for act in ("relu", "tanh", "sigmoid", "softmax"):
        add(f"activation-{act}",
            lambda act=act: check_layer(Activation(act), (6,)))
    add("identity", lambda: check_layer(Identity(), (5,)))
    add("flatten", lambda: check_layer(Flatten(), (4, 3)))
    add("concatenate",
        lambda: check_layer(Concatenate(), [(4,), (3,), (5,)]))
    add("add-aligned", lambda: check_layer(Add(), [(4,), (4,)]))
    # zero-padding width alignment path
    add("add-padded", lambda: check_layer(Add(), [(6,), (3,), (4,)]))
    add("add-batch1", lambda: check_layer(Add(), [(4,), (2,)], batch=1))
    add("mse", lambda: check_loss(
        MeanSquaredError(),
        np.random.default_rng(0).standard_normal((5, 3)),
        np.random.default_rng(1).standard_normal((5, 3))))
    add("crossentropy", lambda: _crossentropy_check())
    add("lstm-policy", lambda: check_policy([3, 4, 2]))
    # sequence length 1 and batch size 1 edge paths
    add("lstm-policy-len1", lambda: check_policy([5], batch=2))
    add("lstm-policy-batch1", lambda: check_policy([3, 2], batch=1))
    add("ppo-surrogate", lambda: check_ppo_objective())
    return checks


def _crossentropy_check() -> GradCheckResult:
    rng = np.random.default_rng(0)
    logits = rng.standard_normal((5, 4))
    e = np.exp(logits - logits.max(axis=-1, keepdims=True))
    pred = e / e.sum(axis=-1, keepdims=True)
    target = np.eye(4)[rng.integers(0, 4, size=5)]
    return check_loss(CategoricalCrossentropy(), pred, target,
                      name="CategoricalCrossentropy")


def run_all(verbose: bool = True) -> list[GradCheckResult]:
    """Run the full default suite; returns one result per check."""
    results = []
    for name, thunk in default_checks():
        res = thunk()
        results.append(res)
        if verbose:
            status = "ok" if res.ok else "FAIL"
            print(f"{name:24s} {status:4s} max_err={res.max_err:9.3e} "
                  f"entries={res.n_checked}")
    return results
