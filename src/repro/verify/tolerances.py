"""ULP-aware comparison tolerances for the differential tester.

The eager and compiled execution paths run the same arithmetic through
different buffer strategies (fresh allocations vs. pooled ``out=``
kernels), so their results are usually bit-identical — but numpy is free
to pick different SIMD reduction orders for in-place and out-of-place
variants of the same op.  Comparisons therefore allow a small, per-op
budget of ULPs (units in the last place) scaled by

* the dtype's machine epsilon (so the same table serves float32 and
  float64), and
* the op's reduction length for contracting ops (a ``Dense`` over
  ``d`` features accumulates ``d`` products; rounding error grows like
  ``sqrt(d)`` for random data).

``BACKWARD_SLACK`` widens the budget for gradient comparisons, which
traverse the op twice (forward cache + backward contraction).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["op_ulps", "per_op_tolerance", "ulp_distance", "agree",
           "max_abs_diff", "DEFAULT_ULPS", "BACKWARD_SLACK"]

#: baseline ULP budgets per layer kind (before reduction scaling)
_BASE_ULPS = {
    "Identity": 0.0,
    "Flatten": 0.0,
    "Dropout": 4.0,
    "Activation": 8.0,
    "Concatenate": 0.0,
    "Add": 8.0,
    "MaxPooling1D": 0.0,
    "Dense": 16.0,
    "Conv1D": 32.0,
    "LSTMCell": 64.0,
}

#: fallback for unknown ops
DEFAULT_ULPS = 64.0

#: gradient comparisons accumulate error from both passes
BACKWARD_SLACK = 4.0


def op_ulps(layer) -> float:
    """ULP budget for one layer, scaled by its reduction length."""
    kind = type(layer).__name__
    ulps = _BASE_ULPS.get(kind, DEFAULT_ULPS)
    if kind == "Dense" and layer.input_shape:
        ulps *= max(1.0, math.sqrt(layer.input_shape[0]))
    elif kind == "Conv1D" and layer.input_shape:
        ulps *= max(1.0, math.sqrt(layer.kernel_size * layer.input_shape[1]))
    return ulps


def per_op_tolerance(layer, dtype, backward: bool = False
                     ) -> tuple[float, float]:
    """(rtol, atol) for comparing one layer's eager vs. compiled output.

    A zero ULP budget still gets one epsilon of slack so pure data-copy
    ops tolerate dtype-identical round trips.
    """
    eps = float(np.finfo(np.dtype(dtype)).eps)
    ulps = max(op_ulps(layer), 1.0)
    if backward:
        ulps *= BACKWARD_SLACK
    return ulps * eps, ulps * eps


def max_abs_diff(a: np.ndarray, b: np.ndarray) -> float:
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        return float("inf")
    if a.size == 0:
        return 0.0
    return float(np.max(np.abs(a - b)))


def ulp_distance(a: np.ndarray, b: np.ndarray, dtype) -> float:
    """Largest elementwise |a − b| expressed in ULPs of ``dtype`` at b's
    magnitude — the scale-free error measure the reports print."""
    eps = float(np.finfo(np.dtype(dtype)).eps)
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        return float("inf")
    if a.size == 0:
        return 0.0
    scale = np.maximum(np.abs(b), 1.0)
    return float(np.max(np.abs(a - b) / (eps * scale)))


def agree(a: np.ndarray, b: np.ndarray, rtol: float, atol: float) -> bool:
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    return bool(np.allclose(a, b, rtol=rtol, atol=atol))
