"""Differential tester: eager GraphModel walk vs. compiled ExecutionPlan.

Every architecture the search can emit must produce the same forward
activations, input gradients, and parameter gradients under both
execution paths.  The tester samples random action sequences from the
Combo/Uno/NT3 spaces, compiles each into a plan, materializes it twice
with the same weight seed — one copy runs the compiled
:class:`~repro.nn.engine.ExecutionPlan`, the other the interpreted
:meth:`~repro.nn.graph.GraphModel.forward_eager` walk — and compares the
two node by node under per-op ULP-aware tolerances
(:mod:`repro.verify.tolerances`).

When a pair disagrees, :func:`shrink_failure` bisects the plan's
topological order for the earliest prefix whose ancestor-closure
sub-DAG already disagrees, reporting the smallest failing sub-plan.

Entry points: :func:`diff_plan` (one architecture),
:func:`run_space_diffs` (N sampled architectures of one space),
:func:`verify_report` (the full matrix ``make smoke``/``make verify``
record into ``VERIFY_report.json``).
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..nas.builder import Plan, compile_architecture
from ..nas.spaces import get_space
from . import tolerances as tol

__all__ = ["DiffMismatch", "DiffReport", "ShrunkFailure", "diff_plan",
           "run_space_diffs", "verify_report", "write_verify_report",
           "SMALL_SHAPES", "SPACE_NAMES"]

#: working-scale input shapes for differential testing: large enough to
#: exercise every op (NT3 needs length >= 71 for the worst-case conv/pool
#: chain), small enough that hundreds of models build in seconds.  The
#: two drug inputs must share a width (Combo's MirrorNode weight sharing).
SMALL_SHAPES: dict[str, dict[str, tuple[int, ...]]] = {
    "combo": {"cell_expression": (24,), "drug1_descriptors": (30,),
              "drug2_descriptors": (30,)},
    "uno": {"cell_rnaseq": (24,), "dose": (1,), "drug_descriptors": (30,),
            "drug_fingerprints": (16,)},
    "nt3": {"rnaseq_expression": (96, 1)},
}

#: search space evaluated for each problem key
SPACE_NAMES = {"combo": "combo-small", "uno": "uno-small",
               "nt3": "nt3-small"}

#: width scale for the sampled spaces (keeps Dense(1000) at Dense(50))
_SPACE_SCALE = 0.05


def _head_ops(problem: str):
    if problem == "combo":
        from ..problems.combo import combo_head
        return combo_head()
    if problem == "uno":
        from ..problems.uno import uno_head
        return uno_head()
    if problem == "nt3":
        from ..problems.nt3 import nt3_head
        return nt3_head()
    raise ValueError(f"unknown problem {problem!r}")


@dataclass
class DiffMismatch:
    """One disagreeing quantity between the eager and compiled paths."""

    section: str          # "forward" | "input_grad" | "param_grad"
    name: str             # node, input, or parameter name
    max_abs: float
    max_ulp: float
    rtol: float
    atol: float

    def __str__(self) -> str:
        return (f"{self.section}:{self.name} |diff|={self.max_abs:.3e} "
                f"({self.max_ulp:.1f} ulp, rtol={self.rtol:.1e})")


@dataclass
class ShrunkFailure:
    """Smallest disagreeing sub-DAG of a failing architecture."""

    output: str           # plan node the sub-DAG ends at
    num_nodes: int        # plan nodes in the sub-DAG
    total_nodes: int      # plan nodes in the full architecture
    plan: Plan


@dataclass
class DiffReport:
    """Result of one eager-vs-compiled comparison."""

    space: str
    choices: tuple[int, ...]
    dtype: str
    agreed: bool
    mismatches: list[DiffMismatch] = field(default_factory=list)
    shrunk: ShrunkFailure | None = None

    def summary(self) -> str:
        if self.agreed:
            return f"{self.space} {list(self.choices)}: OK"
        worst = max(self.mismatches, key=lambda m: m.max_ulp)
        msg = (f"{self.space} {list(self.choices)} [{self.dtype}]: "
               f"{len(self.mismatches)} mismatch(es); worst {worst}")
        if self.shrunk is not None:
            msg += (f"; shrunk to {self.shrunk.num_nodes}/"
                    f"{self.shrunk.total_nodes} nodes ending at "
                    f"{self.shrunk.output!r}")
        return msg


def _compare_models(plan: Plan, dtype, data_seed: int, model_seed: int,
                    batch: int, training: bool) -> list[DiffMismatch]:
    """Materialize twice from one seed, run both paths, diff everything."""
    dt = np.dtype(dtype)
    compiled = plan.materialize(np.random.default_rng(model_seed), dtype=dt)
    eager = plan.materialize(np.random.default_rng(model_seed), dtype=dt)

    data_rng = np.random.default_rng(data_seed)
    inputs = {name: data_rng.standard_normal((batch,) + shape).astype(dt)
              for name, shape in plan.input_shapes.items()}

    out_c = compiled.forward(inputs, training=training)
    node_vals = compiled.node_values()
    grad_out = (data_rng.standard_normal(out_c.shape) / out_c.size).astype(dt)
    compiled.zero_grad()
    in_grads_c = compiled.backward(grad_out)

    eager.forward_eager(inputs, training=training)
    eager_vals = eager.eager_values
    eager.zero_grad()
    in_grads_e = eager.backward_eager(grad_out)

    mismatches: list[DiffMismatch] = []

    # forward activations, node by node in plan order
    for pn in plan.nodes:
        layer = eager.layers[pn.name]
        rtol, atol = tol.per_op_tolerance(layer, dt)
        a, b = eager_vals[pn.name], node_vals[pn.name]
        if not tol.agree(a, b, rtol, atol):
            mismatches.append(DiffMismatch(
                "forward", pn.name, tol.max_abs_diff(a, b),
                tol.ulp_distance(a, b, dt), rtol, atol))

    # input gradients
    grtol = gatol = tol.BACKWARD_SLACK * tol.DEFAULT_ULPS \
        * float(np.finfo(dt).eps)
    for name in plan.input_shapes:
        a, b = in_grads_e[name], in_grads_c[name]
        if not tol.agree(a, b, grtol, gatol):
            mismatches.append(DiffMismatch(
                "input_grad", name, tol.max_abs_diff(a, b),
                tol.ulp_distance(a, b, dt), grtol, gatol))

    # parameter gradients (same plan => same parameter order)
    for pc, pe in zip(compiled.parameters(), eager.parameters()):
        a, b = pe.grad, pc.grad
        if not tol.agree(a, b, grtol, gatol):
            mismatches.append(DiffMismatch(
                "param_grad", pc.name, tol.max_abs_diff(a, b),
                tol.ulp_distance(a, b, dt), grtol, gatol))
    return mismatches


def shrink_failure(plan: Plan, dtype, data_seed: int, model_seed: int,
                   batch: int, training: bool) -> ShrunkFailure | None:
    """Minimize a failing architecture to its smallest disagreeing sub-DAG.

    Bisects the plan's topological order for the earliest node whose
    ancestor-closure sub-plan already disagrees, then linearly confirms
    the prefix (bisection alone can overshoot when a probed node's
    closure bypasses the divergent op entirely).
    """
    order = [n.name for n in plan.nodes]

    def disagrees(name: str) -> bool:
        sub = plan.subplan(name)
        return bool(_compare_models(sub, dtype, data_seed, model_seed,
                                    batch, training))

    lo, hi = 0, len(order) - 1
    if not disagrees(order[hi]):
        return None  # full plan no longer fails under the sub-run protocol
    while lo < hi:
        mid = (lo + hi) // 2
        if disagrees(order[mid]):
            hi = mid
        else:
            lo = mid + 1
    # bisection assumes "node k's closure disagrees" is monotone in k,
    # which side branches that bypass the divergent node break; a forward
    # confirmation scan over the surviving prefix (which ends at a
    # disagreeing node, so next() always yields) pins the earliest one
    lo = next(i for i in range(lo + 1) if disagrees(order[i]))
    sub = plan.subplan(order[lo])
    return ShrunkFailure(order[lo], len(sub.nodes), len(plan.nodes), sub)


def diff_plan(plan: Plan, *, dtype=np.float32, data_seed: int = 0,
              model_seed: int = 0, batch: int = 4, training: bool = False,
              shrink: bool = True) -> DiffReport:
    """Differential-test one compiled architecture plan."""
    mismatches = _compare_models(plan, dtype, data_seed, model_seed,
                                 batch, training)
    shrunk = None
    if mismatches and shrink:
        shrunk = shrink_failure(plan, dtype, data_seed, model_seed,
                                batch, training)
    return DiffReport(plan.space, tuple(), str(np.dtype(dtype)),
                      not mismatches, mismatches, shrunk)


def run_space_diffs(problem: str, n: int, *, dtype=np.float32,
                    seed: int = 0, batch: int = 4, training: bool = False,
                    shrink: bool = True) -> list[DiffReport]:
    """Sample ``n`` random architectures from one space and diff each."""
    space = get_space(SPACE_NAMES[problem], scale=_SPACE_SCALE)
    shapes = SMALL_SHAPES[problem]
    head = _head_ops(problem)
    arch_rng = np.random.default_rng((seed, sorted(SPACE_NAMES).index(problem)))
    reports = []
    for i in range(n):
        arch = space.random_architecture(arch_rng)
        plan = compile_architecture(space, arch.choices, shapes, head)
        report = diff_plan(plan, dtype=dtype, data_seed=seed + i,
                           model_seed=seed + 1000 + i, batch=batch,
                           training=training, shrink=shrink)
        report.choices = tuple(arch.choices)
        reports.append(report)
    return reports


def verify_report(per_space: int = 8, *, seed: int = 0,
                  dtypes: tuple[str, ...] = ("float32", "float64"),
                  batch: int = 4) -> dict:
    """The smoke matrix: N archs per space per dtype, summarized as JSON."""
    spaces: dict[str, dict] = {}
    ok = True
    for problem in sorted(SPACE_NAMES):
        per_dtype: dict[str, dict] = {}
        for dtype in dtypes:
            reports = run_space_diffs(problem, per_space, dtype=dtype,
                                      seed=seed, batch=batch)
            failures = [r.summary() for r in reports if not r.agreed]
            ok = ok and not failures
            per_dtype[dtype] = {
                "sampled": len(reports),
                "disagreements": len(failures),
                "failures": failures,
            }
        spaces[problem] = per_dtype
    return {"ok": ok, "per_space": per_space, "seed": seed,
            "spaces": spaces}


def write_verify_report(path: str | Path, report: dict) -> None:
    """Append one timestamped report to a JSON file (list of runs),
    mirroring the ``BENCH_substrate.json`` trend-tracking format."""
    path = Path(path)
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "report": report,
    }
    runs = []
    if path.exists():
        try:
            runs = json.loads(path.read_text())
        except (ValueError, OSError):
            runs = []
        if not isinstance(runs, list):
            runs = [runs]
    runs.append(record)
    path.write_text(json.dumps(runs, indent=2) + "\n")
    print(f"wrote {path} ({len(runs)} run{'s' if len(runs) != 1 else ''})")
