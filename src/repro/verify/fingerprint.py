"""Determinism fingerprints for search trajectories.

A fingerprint is a canonical SHA-256 hash over everything a search run
decided: per-agent rolling digests chain the sampled actions, the
rewards received, and a digest of the policy parameters after every
iteration, and the global record stream is hashed as a sorted canonical
multiset (record *content*, not arrival order — resumed runs may
interleave same-instant completions differently while producing the
same records).

Two runs with the same seed must produce bit-identical fingerprints;
a checkpoint/resume run must produce the fingerprint of the
uninterrupted run.  The digests are cheap (one SHA-256 per agent
iteration) and thread through :class:`~repro.search.base.SearchResult`
and the checkpoint layer, so "did these two runs do the same thing?"
is a string comparison.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["agent_genesis", "chain_step", "param_digest", "record_digest",
           "trajectory_fingerprint"]


def _h(*chunks: bytes) -> str:
    h = hashlib.sha256()
    for c in chunks:
        h.update(c)
    return h.hexdigest()


def agent_genesis(seed: int, agent_id: int) -> str:
    """Digest an agent's chain starts from (before its first iteration)."""
    return _h(b"repro.agent.genesis",
              np.int64([seed, agent_id]).tobytes())


def param_digest(flat: np.ndarray | None) -> str:
    """Canonical digest of a packed parameter vector ('' for RDM)."""
    if flat is None:
        return ""
    return _h(b"repro.params",
              np.ascontiguousarray(flat, dtype=np.float64).tobytes())


def chain_step(prev: str, actions: np.ndarray, rewards: np.ndarray,
               policy_flat: np.ndarray | None = None) -> str:
    """Advance an agent's rolling digest by one search iteration.

    Hashes the previous digest, the (B, T) sampled action matrix, the
    per-row rewards, and the post-update policy parameters (skipped for
    RDM agents).  Every run that makes the same decisions in the same
    per-agent order produces the same chain, independent of how agents
    interleave globally.
    """
    chunks = [prev.encode("ascii"),
              np.ascontiguousarray(actions, dtype=np.int64).tobytes(),
              np.ascontiguousarray(rewards, dtype=np.float64).tobytes()]
    if policy_flat is not None:
        chunks.append(
            np.ascontiguousarray(policy_flat, dtype=np.float64).tobytes())
    return _h(b"repro.agent.step", *chunks)


def _record_bytes(rec) -> bytes:
    space, choices = rec.arch.key
    return b"|".join([
        np.float64([rec.time, rec.reward, rec.duration]).tobytes(),
        np.int64([rec.agent_id, rec.params,
                  int(rec.cached), int(rec.timed_out)]).tobytes(),
        space.encode("utf-8"),
        np.int64(list(choices)).tobytes(),
    ])


def record_digest(records) -> str:
    """Order-independent digest of a reward-record stream.

    Records are serialized canonically and hashed in sorted order, so
    two runs agree iff they produced the same multiset of records —
    arrival interleaving (which legitimately differs across
    checkpoint/resume for same-instant completions) does not matter.
    """
    h = hashlib.sha256(b"repro.records")
    for blob in sorted(_record_bytes(r) for r in records):
        h.update(blob)
    return h.hexdigest()


def trajectory_fingerprint(records, agent_digests: dict[int, str], *,
                           method: str, seed: int) -> str:
    """The run-level fingerprint: method + seed + record multiset +
    every agent's final chain digest (sorted by agent id)."""
    chunks = [method.encode("utf-8"), np.int64([seed]).tobytes(),
              record_digest(records).encode("ascii")]
    for agent_id in sorted(agent_digests):
        chunks.append(np.int64([agent_id]).tobytes())
        chunks.append(agent_digests[agent_id].encode("ascii"))
    return _h(b"repro.trajectory", *chunks)
