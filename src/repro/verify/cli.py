"""``python -m repro.verify`` — the correctness-verification battery.

Subcommands
-----------
``diff``
    Differential-test N sampled architectures per space: eager
    interpreted walk vs. compiled execution plan, forward + backward.
``grad``
    Finite-difference check every public layer, loss, the LSTM policy
    and the PPO surrogate.
``determinism``
    Run same-seed search pairs for each method and compare trajectory
    fingerprints (bit-identical or fail).
``report``
    The ``diff`` matrix summarized as JSON, appended to
    ``VERIFY_report.json`` (BENCH-style trend tracking).
``all``
    Everything above, in order; nonzero exit on any failure.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]


def _cmd_diff(args) -> int:
    from .diff import SPACE_NAMES, run_space_diffs

    dtypes = (("float32", "float64") if args.dtype == "both"
              else (args.dtype,))
    failed = 0
    for problem in sorted(SPACE_NAMES):
        for dtype in dtypes:
            reports = run_space_diffs(problem, args.per_space, dtype=dtype,
                                      seed=args.seed, batch=args.batch,
                                      training=args.training)
            bad = [r for r in reports if not r.agreed]
            failed += len(bad)
            print(f"diff {problem:6s} {dtype:8s} "
                  f"{len(reports) - len(bad)}/{len(reports)} agreed")
            for r in bad:
                print(f"  FAIL {r.summary()}")
    if failed:
        print(f"diff: {failed} architecture(s) disagreed")
        return 1
    print("diff: eager and compiled paths agree")
    return 0


def _cmd_grad(args) -> int:
    from .gradcheck import run_all

    results = run_all(verbose=not args.quiet)
    bad = [r for r in results if not r.ok]
    if bad:
        for r in bad:
            print(f"grad: FAIL {r.name}: worst {r.worst}")
        return 1
    print(f"grad: all {len(results)} checks passed")
    return 0


def _cmd_determinism(args) -> int:
    from ..hpc import NodeAllocation, TrainingCostModel
    from ..nas.spaces import get_space
    from ..problems.combo import COMBO_PAPER_SHAPES, combo_head
    from ..rewards import SurrogateReward
    from ..search import SearchConfig, run_search

    space = get_space("combo-small", scale=0.05)
    reward = SurrogateReward(space, COMBO_PAPER_SHAPES, combo_head(),
                             TrainingCostModel.combo_paper(),
                             epochs=1, train_fraction=0.1, timeout=600.0,
                             seed=7)
    failed = 0
    for method in ("a3c", "a2c", "rdm"):
        cfg = SearchConfig(method=method,
                           allocation=NodeAllocation(32, 4, 3),
                           wall_time=args.minutes * 60.0, seed=args.seed)
        fps = [run_search(space, reward, cfg).fingerprint()
               for _ in range(2)]
        same = fps[0] == fps[1]
        failed += 0 if same else 1
        print(f"determinism {method:4s} seed={args.seed} "
              f"{'ok' if same else 'FAIL'} {fps[0][:16]}…")
    if failed:
        print(f"determinism: {failed} method(s) not reproducible")
        return 1
    print("determinism: same seed => same fingerprint for all methods")
    return 0


def _cmd_report(args) -> int:
    from .diff import verify_report, write_verify_report

    report = verify_report(args.per_space, seed=args.seed, batch=args.batch)
    for problem, per_dtype in report["spaces"].items():
        for dtype, row in per_dtype.items():
            print(f"report {problem:6s} {dtype:8s} "
                  f"{row['sampled'] - row['disagreements']}/"
                  f"{row['sampled']} agreed")
    if args.output:
        write_verify_report(args.output, report)
    return 0 if report["ok"] else 1


def _cmd_all(args) -> int:
    code = _cmd_diff(args)
    code = _cmd_grad(args) or code
    code = _cmd_determinism(args) or code
    code = _cmd_report(args) or code
    print("verify: " + ("ALL OK" if code == 0 else "FAILURES"))
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="correctness verification: differential testing, "
                    "gradient checking, determinism fingerprints")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, per_space_default=8):
        p.add_argument("--per-space", type=int, default=per_space_default,
                       help="sampled architectures per space")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--batch", type=int, default=4)

    p = sub.add_parser("diff", help="eager vs. compiled differential test")
    common(p)
    p.add_argument("--dtype", choices=("float32", "float64", "both"),
                   default="both")
    p.add_argument("--training", action="store_true",
                   help="compare in training mode (live dropout)")
    p.set_defaults(fn=_cmd_diff)

    p = sub.add_parser("grad", help="finite-difference gradient checks")
    p.add_argument("--quiet", action="store_true")
    p.set_defaults(fn=_cmd_grad)

    p = sub.add_parser("determinism",
                       help="same-seed searches => same fingerprints")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--minutes", type=float, default=20.0,
                   help="simulated minutes per search run")
    p.set_defaults(fn=_cmd_determinism)

    p = sub.add_parser("report",
                       help="diff matrix as JSON (VERIFY_report.json)")
    common(p)
    p.add_argument("--output", default=None, metavar="PATH",
                   help="append the report to this JSON file")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("all", help="run the whole battery")
    common(p, per_space_default=4)
    p.add_argument("--dtype", choices=("float32", "float64", "both"),
                   default="both")
    p.add_argument("--training", action="store_true")
    p.add_argument("--quiet", action="store_true")
    p.add_argument("--minutes", type=float, default=20.0)
    p.add_argument("--output", default=None, metavar="PATH")
    p.set_defaults(fn=_cmd_all)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
