"""Correctness tooling: differential testing, gradient checking,
determinism fingerprints.

Three pillars, one question each:

* :mod:`~repro.verify.diff` — do the eager and compiled execution paths
  compute the same thing, for every architecture the search can emit?
* :mod:`~repro.verify.gradcheck` — does every analytic backward pass
  match finite differences?
* :mod:`~repro.verify.fingerprint` — did two search runs make the same
  decisions?

Run the whole battery with ``python -m repro.verify all`` (or
``make verify``); individual pillars via the ``diff`` / ``grad`` /
``determinism`` subcommands.
"""

from .diff import (DiffReport, diff_plan, run_space_diffs, verify_report,
                   write_verify_report)
from .fingerprint import (agent_genesis, chain_step, param_digest,
                          record_digest, trajectory_fingerprint)
from .gradcheck import (GradCheckResult, check_layer, check_loss,
                        check_policy, check_ppo_objective, default_checks,
                        run_all)

__all__ = [
    "DiffReport", "diff_plan", "run_space_diffs", "verify_report",
    "write_verify_report",
    "agent_genesis", "chain_step", "param_digest", "record_digest",
    "trajectory_fingerprint",
    "GradCheckResult", "check_layer", "check_loss", "check_policy",
    "check_ppo_objective", "default_checks", "run_all",
]
