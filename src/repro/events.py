"""Structured search-event stream.

Every layer of the search runtime — the evaluation broker, the exchange
strategies, the lifecycle hooks, and the runner itself — emits typed
:class:`SearchEvent` records to a pluggable sink.  The stream is the
observability substrate for tracing/metrics work, and it is how tests
assert cross-layer ordering (submit → eval-done → push → barrier)
without reaching into private runner state.

Emission is strictly passive: sinks observe, they never feed back into
the search, so attaching (or detaching) a sink cannot perturb a run's
determinism fingerprint.  With no sink configured nothing is even
constructed — :func:`emit` is a no-op on ``sink=None``.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field

from .util.atomicio import FsyncPolicy

__all__ = [
    "SUBMIT", "BATCH_STATS", "EVAL_DONE", "CACHE_HIT", "PUSH", "BARRIER",
    "ROLLBACK", "RESTART", "CHECKPOINT", "CRASH", "AGENT_DONE",
    "WORKER_SPAWN", "WORKER_CRASH", "WORKER_RESPAWN", "WORKER_TIMEOUT",
    "QUARANTINE", "PREEMPT",
    "EVENT_KINDS", "SearchEvent", "EventSink", "NullSink", "RecordingSink",
    "CallbackSink", "TeeSink", "JsonlSink", "EventLog", "emit",
    "read_events",
]

_log = logging.getLogger("repro.events")

#: a batch of architectures entered the evaluation broker
SUBMIT = "submit"
#: the broker gathered a batch against the shared plan cache; payload
#: carries the batch size, distinct-architecture count, and the plan
#: hit / miss / isomorphism-hit deltas of the gather
BATCH_STATS = "batch-stats"
#: one evaluation finished (real or failed — see ``payload["failed"]``)
EVAL_DONE = "eval-done"
#: an architecture was answered from the agent-local cache
CACHE_HIT = "cache-hit"
#: an agent handed its delta to the exchange strategy
PUSH = "push"
#: a synchronous exchange round released its barrier
BARRIER = "barrier"
#: a health guard rolled an agent's policy back to its last snapshot
ROLLBACK = "rollback"
#: a crashed agent was resurrected from its iteration boundary
RESTART = "restart"
#: the search captured a resumable checkpoint
CHECKPOINT = "checkpoint"
#: an agent died permanently (restarts exhausted or none configured)
CRASH = "crash"
#: an agent finished (converged, wall-time, or post-crash accounting)
AGENT_DONE = "agent-done"
#: a process-pool worker was started (initial pool fill)
WORKER_SPAWN = "worker-spawn"
#: a worker died unexpectedly (crash, external kill, lost heartbeat)
WORKER_CRASH = "worker-crash"
#: a replacement worker was spawned after a death (restart budget spent)
WORKER_RESPAWN = "worker-respawn"
#: a worker was killed because its job exceeded the wall-clock deadline
WORKER_TIMEOUT = "worker-timeout"
#: an architecture was quarantined after killing too many workers
QUARANTINE = "quarantine"
#: the search was preempted (SIGTERM/SIGINT) and stopped at a
#: checkpointable boundary
PREEMPT = "preempt"

EVENT_KINDS = (SUBMIT, BATCH_STATS, EVAL_DONE, CACHE_HIT, PUSH, BARRIER,
               ROLLBACK, RESTART, CHECKPOINT, CRASH, AGENT_DONE,
               WORKER_SPAWN, WORKER_CRASH, WORKER_RESPAWN, WORKER_TIMEOUT,
               QUARANTINE, PREEMPT)


@dataclass(frozen=True)
class SearchEvent:
    """One timestamped record of the search-event stream.

    ``time`` is the emitting layer's clock — virtual seconds for the
    simulated Balsam stack, wall seconds for serial/thread backends.
    ``payload`` carries kind-specific detail (reward, round number,
    anomaly kind, ...); it is deliberately a plain dict so new layers
    can annotate events without schema churn.
    """

    kind: str
    time: float
    agent_id: int | None = None
    iteration: int | None = None
    payload: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "time": self.time,
                "agent_id": self.agent_id, "iteration": self.iteration,
                "payload": dict(self.payload)}


class EventSink:
    """Receiver contract: ``emit`` one event; ``close`` when done."""

    def emit(self, event: SearchEvent) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass


class NullSink(EventSink):
    """Discards everything (explicit stand-in for "no sink")."""

    def emit(self, event: SearchEvent) -> None:
        pass


class RecordingSink(EventSink):
    """Accumulates events in order — the test-facing sink."""

    def __init__(self) -> None:
        self.events: list[SearchEvent] = []

    def emit(self, event: SearchEvent) -> None:
        self.events.append(event)

    def of_kind(self, *kinds: str) -> list[SearchEvent]:
        return [e for e in self.events if e.kind in kinds]

    def kinds(self) -> list[str]:
        return [e.kind for e in self.events]

    def __len__(self) -> int:
        return len(self.events)


class CallbackSink(EventSink):
    """Adapts a plain callable into a sink."""

    def __init__(self, fn) -> None:
        self.fn = fn

    def emit(self, event: SearchEvent) -> None:
        self.fn(event)


class TeeSink(EventSink):
    """Fans every event out to several sinks."""

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks = [s for s in sinks if s is not None]

    def emit(self, event: SearchEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class JsonlSink(EventSink):
    """Streams events to a JSONL file, one flushed line per event.

    Unlike buffering events in memory and dumping them at the end of the
    run, every record hits the OS the moment it is emitted (``flush``),
    so a *process* crash — or a SIGKILLed run — loses at most the event
    being written.  Durability against a *host* crash is the fsync
    policy's job: ``fsync=True`` forces every record to stable storage
    (the old boolean knob), ``fsync_every=N`` does so after every Nth
    record — the same :class:`~repro.util.atomicio.FsyncPolicy` the
    search journal uses.  :func:`read_events` tolerates the torn
    trailing line a crash can leave behind, and skips (with a counter)
    interior corruption.
    """

    def __init__(self, path, fsync: bool = False,
                 fsync_every: int | None = None) -> None:
        self.path = os.fspath(path)
        if fsync and fsync_every is None:
            fsync_every = 1
        self.fsync = fsync_every == 1
        self._policy = FsyncPolicy(fsync_every)
        self._fh = open(self.path, "w", encoding="utf-8")
        self.num_written = 0

    def emit(self, event: SearchEvent) -> None:
        if self._fh is None:
            return
        self._fh.write(json.dumps(event.to_dict()) + "\n")
        self._fh.flush()
        self._policy.tick(self._fh.fileno())
        self.num_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EventLog(list):
    """A list of :class:`SearchEvent` records that also reports how many
    unreadable lines the reader had to skip (``num_skipped``) — list
    subclass so every existing ``read_events`` caller keeps working."""

    def __init__(self, events=(), num_skipped: int = 0) -> None:
        super().__init__(events)
        self.num_skipped = num_skipped


def read_events(path) -> EventLog:
    """Read a JSONL event stream back into :class:`SearchEvent` records.

    Recovery is total: a torn trailing line — the partial record a crash
    mid-``write`` leaves behind — is silently dropped, and a malformed
    line anywhere *else* (bit rot, a concurrent writer's torn append) is
    skipped with a logged warning rather than sinking the whole stream.
    The returned :class:`EventLog` carries the interior-skip count in
    ``num_skipped`` (the torn tail is not counted: it is the expected
    residue of a crash, not corruption).
    """
    events: list[SearchEvent] = []
    skipped = 0
    with open(os.fspath(path), encoding="utf-8") as fh:
        lines = fh.read().split("\n")
    if lines and lines[-1] == "":
        lines.pop()     # trailing newline of a complete file
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
            event = SearchEvent(rec["kind"], rec["time"],
                                rec.get("agent_id"), rec.get("iteration"),
                                rec.get("payload") or {})
        except (json.JSONDecodeError, KeyError, TypeError):
            if i == len(lines) - 1:
                break   # torn trailing line from a crash mid-write
            skipped += 1
            _log.warning("%s: skipping malformed event record at line %d",
                         path, i + 1)
            continue
        events.append(event)
    return EventLog(events, num_skipped=skipped)


def emit(sink: EventSink | None, kind: str, time: float,
         agent_id: int | None = None, iteration: int | None = None,
         **payload) -> None:
    """Emit one event, or do nothing at all when ``sink`` is None.

    The event object is only constructed when a sink is attached, so
    un-observed runs pay nothing on the hot path.
    """
    if sink is not None:
        sink.emit(SearchEvent(kind, time, agent_id, iteration, payload))
