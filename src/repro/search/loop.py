"""The agent loop (§3.2): one agent's propose → evaluate → observe
cycle, composed from the runtime seams.

:class:`AgentLoop` is a coroutine over the discrete-event kernel.  It
knows *nothing* about how architectures are chosen or learned from (the
:class:`~repro.search.proposer.Proposer` does — RL methods pair a
policy proposer with an :class:`~repro.search.exchange.ExchangeStrategy`
behind that seam), nothing about cache or failure bookkeeping (the
:class:`~repro.evaluator.broker.EvalBroker` does), and nothing about
checkpoints, chaos, or health guards (the
:class:`~repro.search.hooks.LifecycleHooks` stack does).  One instance
drives one agent *lifetime*; the runner builds a fresh loop when it
resurrects a crashed agent or resumes from a checkpoint, handing it the
recorded :class:`~repro.search.checkpoint.AgentBoundary` as ``resume``.

Determinism: the loop reproduces the pre-refactor iteration byte for
byte — same RNG draws, same simulator yields, same digest chaining —
which is what keeps search fingerprints bit-identical across the
refactor.  For shared-history proposers the boundary's
``proposer_seen`` watermark pins the history prefix the restarted
iteration's proposal may read, so resume re-proposes the in-flight
batch exactly.
"""

from __future__ import annotations

import copy

import numpy as np

from ..hpc.sim import Timeout
from ..verify.fingerprint import agent_genesis, chain_step
from .base import RewardRecord

__all__ = ["AgentLoop"]


class AgentLoop:
    """One agent lifetime over simulator ``sim``.

    The loop appends to the runner-owned ``records`` list and
    ``digests`` dict in place, preserving the global interleaving that
    the trajectory fingerprint hashes.
    """

    def __init__(self, *, sim, space, config, agent_id, evaluator, policy,
                 updater, proposer, hooks, records, digests,
                 resume=None) -> None:
        self.sim = sim
        self.space = space
        self.config = config
        self.agent_id = agent_id
        self.evaluator = evaluator
        self.policy = policy
        self.updater = updater
        self.proposer = proposer
        self.hooks = hooks
        self.records = records
        self.digests = digests
        self.resume = resume
        self.batch = config.allocation.workers_per_agent
        # live per-lifetime state (hooks read these)
        self.rng: np.random.Generator | None = None
        self.iteration = 0
        self.consecutive_cached = 0
        self.num_records = 0
        self.digest: str | None = None
        self.converged = False
        # history watermark for the first post-resume proposal only
        self._resume_seen: int | None = None

    # ------------------------------------------------------------------
    def run(self):
        """The agent coroutine; returns True iff the agent converged."""
        cfg = self.config
        yield from self._startup()
        while self.sim.now < cfg.wall_time and \
                (cfg.max_iterations is None
                 or self.iteration < cfg.max_iterations):
            self.hooks.on_iteration_start(self)
            actions = self._sample()
            rewards = yield from self._evaluate(actions)
            yield from self.proposer.observe(self, actions, rewards)
            self._advance(actions, rewards)
            if self.converged:
                break
        return self.converged

    # ------------------------------------------------------------------
    def _startup(self):
        """Seed the lifetime's RNG and take the initial timeout."""
        cfg, resume = self.config, self.resume
        if resume is not None:
            # restart at the recorded iteration boundary: restored RNG,
            # policy, and history watermark re-generate the in-flight
            # batch exactly.  For checkpoint resume sim.now is 0 and
            # this sleeps to the boundary time; for in-run resurrection
            # the boundary is in the past and the agent restarts
            # immediately.
            rng = np.random.default_rng(0)
            rng.bit_generator.state = copy.deepcopy(resume.rng_state)
            self.rng = rng
            self.consecutive_cached = resume.consecutive_cached
            self.iteration = resume.iteration
            self.num_records = resume.num_records
            self._resume_seen = resume.proposer_seen
            self.digest = (resume.traj_digest
                           or agent_genesis(cfg.seed, self.agent_id))
            self.digests[self.agent_id] = self.digest
            yield Timeout(max(0.0, resume.time - self.sim.now))
        else:
            self.rng = np.random.default_rng((cfg.seed, self.agent_id,
                                              0xA6E))
            self.digest = agent_genesis(cfg.seed, self.agent_id)
            self.digests[self.agent_id] = self.digest
            # stagger startup slightly so same-instant submissions don't
            # all carry identical timestamps (and to model ramp-up)
            yield Timeout(self.rng.uniform(0.0, 2.0))

    def _sample(self):
        """Draw this iteration's batch of architecture action rows."""
        seen, self._resume_seen = self._resume_seen, None
        return self.proposer.propose(self, seen)

    def _evaluate(self, actions):
        """Submit the batch, wait for it, and log aligned rewards."""
        archs = [self.space.decode(row) for row in actions]
        batch_done = self.evaluator.add_eval_batch(archs)
        if batch_done is None:
            # real backend (serial/thread/process): completion is a
            # blocking wait in host time, then a zero-length sim step so
            # the kernel sees a yield (it rejects bare None) and the
            # scheduler keeps interleaving agents at this boundary
            self.evaluator.wait_all()
            batch_done = Timeout(0.0)
        yield batch_done
        recs = self.evaluator.get_finished_evals()
        # align rewards with the rollout's row order
        by_key: dict[tuple, list] = {}
        for rec in recs:
            by_key.setdefault(rec.arch.key, []).append(rec)
        rewards = np.empty(len(archs))
        for i, arch in enumerate(archs):
            rec = by_key[arch.key].pop(0)
            rewards[i] = rec.reward
            self.records.append(RewardRecord(
                rec.end_time, self.agent_id, rec.arch, rec.reward,
                rec.result.params, rec.result.duration, rec.cached,
                rec.result.timed_out))
            self.num_records += 1
        return rewards

    def _advance(self, actions, rewards):
        """Chain the digest, track convergence, close the iteration."""
        self.digest = chain_step(self.digest, actions, rewards,
                                 None if self.policy is None
                                 else self.policy.get_flat())
        self.digests[self.agent_id] = self.digest
        if self.evaluator.last_batch_all_cached:
            self.consecutive_cached += 1
        else:
            self.consecutive_cached = 0
        self.iteration += 1
        self.hooks.on_iteration_end(self)
        if self.consecutive_cached >= self.config.convergence_patience:
            self.converged = True
