"""Search run configuration and result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..health.guards import GuardConfig
from ..hpc.cluster import Cluster, NodeAllocation
from ..hpc.faults import FaultConfig
from ..nas.arch import Architecture

if TYPE_CHECKING:   # annotation only — no runtime evaluator dependency
    from ..evaluator.process import ProcConfig

__all__ = ["SearchConfig", "RewardRecord", "SearchResult"]


@dataclass(frozen=True)
class SearchConfig:
    """Configuration of one NAS run.

    Defaults mirror the paper's reference setup: 256 nodes split into 21
    agents × 11 workers, 360 minutes of wall time, M = workers-per-agent
    architectures per agent iteration, LSTM(32) controller, PPO with
    epochs=4 / clip=0.2 / lr=0.001.
    """

    method: str = "a3c"       # any name in repro.search.methods.SEARCH_METHODS
    allocation: NodeAllocation = field(
        default_factory=NodeAllocation.paper_256)
    wall_time: float = 360.0 * 60.0       # seconds of (virtual) wall clock
    hidden: int = 32
    embed_dim: int = 16
    ppo_epochs: int = 4
    ppo_clip: float = 0.2
    #: controller learning rate.  The paper trains the LSTM with
    #: lr=0.001 under TensorFlow's loss scaling; with this numpy PPO the
    #: equivalent per-round movement calibrates to 4e-3 (see
    #: EXPERIMENTS.md, calibration note).
    lr: float = 6e-3
    entropy_coef: float = 0.002
    seed: int = 0
    #: identical policy init across agents (§3.2: "all N agents start
    #: with the same policy network")
    shared_policy_init: bool = True
    #: consecutive all-cache-hit iterations (per agent) before an agent
    #: declares convergence; the search stops when all agents have
    #: (§5.1: the search "could not proceed in a meaningful way")
    convergence_patience: int = 3
    #: agent-local evaluation cache (§4); disable for ablations
    use_cache: bool = True
    #: shared isomorphism-keyed compile cache
    #: (:class:`~repro.nas.plancache.PlanCache`): plans amortize across
    #: agents and iterations, and the broker batch-gathers each
    #: submission against it.  Plans are immutable, so this never
    #: perturbs the determinism fingerprint; disable for ablations
    plan_cache: bool = True
    #: A3C parameter-server staleness window (None = num_agents // 2,
    #: "a set of recently received gradients")
    staleness_window: int | None = None
    #: simulated seconds the parameter server needs to process one full
    #: update vector (0 = free exchange); makes PS contention visible
    ps_service_time: float = 0.0
    #: shard the A3C parameter server across this many independent
    #: servers (§7's "multiparameter servers"); each serves its slice in
    #: ps_service_time / ps_shards
    ps_shards: int = 1
    #: fault model driving node failures, job crashes, stragglers and
    #: service outages (None = fault layer fully inert)
    faults: FaultConfig | None = None
    #: abandon any evaluation still unfinished this many virtual seconds
    #: after batch submission, so the per-agent barrier always releases
    #: (None = wait forever; safe only with a fault-free service)
    batch_deadline: float | None = None
    #: Balsam restart policy: max restarts per job, then the base and
    #: cap of the capped-exponential retry backoff (virtual seconds)
    max_eval_retries: int = 3
    retry_backoff: float = 5.0
    retry_backoff_cap: float = 120.0
    #: capture a resumable search checkpoint every this many virtual
    #: seconds (None = checkpointing off)
    checkpoint_interval: float | None = None
    #: also write the most recent checkpoint to this JSON file
    checkpoint_path: str | None = None
    #: numerical-health guards (repro.health): None or mode "off" leaves
    #: every guarded code path bit-identical to the unguarded build;
    #: "check" detects and crashes the offending agent; "recover" rolls
    #: back to the last good snapshot with learning-rate backoff first
    guard: GuardConfig | None = None
    #: restart crashed (or guard-escalated) agents from their last
    #: iteration boundary up to this many times per agent (0 = crashed
    #: agents stay down, the pre-health behaviour)
    max_restarts: int = 0
    #: evaluation backend: "balsam" (simulated service over the virtual
    #: cluster, the default), or one of the real in-host backends —
    #: "serial", "thread", "process" (supervised worker pool,
    #: :mod:`repro.evaluator.process`).  Real backends complete batches
    #: in zero *virtual* time, so they require ``max_iterations``
    backend: str = "balsam"
    #: supervision policy of the "process" backend (None = defaults)
    proc: "ProcConfig | None" = None
    #: stop every agent after this many iterations (required for real
    #: backends, where virtual wall time never advances; optional for
    #: balsam)
    max_iterations: int | None = None
    #: install SIGTERM/SIGINT handlers for the duration of ``run()``:
    #: on signal the search stops at the next event boundary, captures a
    #: resumable checkpoint, and returns with ``SearchResult.preempted``
    preemptible: bool = False
    #: write-ahead search journal + checkpoint generations live under
    #: this directory (:mod:`repro.search.journal`); None = durability
    #: layer fully off
    journal_dir: str | None = None
    #: fsync the journal after every Nth record (None = never fsync —
    #: flush-only, survives process crashes but not host crashes)
    journal_fsync_every: int | None = None
    #: additionally capture a checkpoint every time this many new reward
    #: records have accumulated since the last capture (None = off);
    #: fires at iteration boundaries, so resumed runs stay bit-identical
    checkpoint_every_records: int | None = None
    #: method="evolution": aging-population window and tournament draw
    #: (defaults follow Real et al., 2018)
    population_size: int = 50
    tournament_size: int = 10
    #: method="ambs": observations required before the surrogate takes
    #: over from random proposals
    ambs_warmup: int = 10
    #: method="ambs": acquisition candidate-pool size per batch slot
    ambs_candidates: int = 128
    #: method="ambs": UCB exploration weight (mean + kappa * std); 1.0
    #: calibrates to the bootstrap ridge ensemble's spread, which runs
    #: wide on small fit sets (1.96 over-explores)
    ambs_kappa: float = 1.0
    #: method="ambs": constant-liar reward for in-flight batch slots —
    #: "min" | "mean" | "max" of the observed rewards
    ambs_liar: str = "min"
    #: method="ambs": bootstrap ridge-ensemble members
    ambs_ensemble: int = 8

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.backend not in ("balsam", "serial", "thread", "process"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.backend != "balsam" and self.max_iterations is None:
            raise ValueError(
                f"backend {self.backend!r} runs in real time, where the "
                f"virtual wall clock never advances — set max_iterations "
                f"to bound the run")
        if self.max_iterations is not None and self.max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        if self.proc is not None and self.backend != "process":
            raise ValueError("proc config requires backend='process'")
        # validated against the method registry, so a registered
        # proposer/exchange pairing is all a new method name needs
        # (imported lazily: methods pulls in the rl/health stacks)
        from .methods import SEARCH_METHODS
        if self.method not in SEARCH_METHODS:
            raise ValueError(
                f"unknown method {self.method!r}; registered methods: "
                f"{', '.join(sorted(SEARCH_METHODS))}")
        if self.population_size <= 1:
            raise ValueError("population_size must be > 1")
        if not 1 <= self.tournament_size <= self.population_size:
            raise ValueError(
                "tournament_size must be in [1, population_size]")
        if self.ambs_warmup < 1:
            raise ValueError("ambs_warmup must be positive")
        if self.ambs_candidates < 1:
            raise ValueError("ambs_candidates must be positive")
        if self.ambs_kappa < 0:
            raise ValueError("ambs_kappa must be non-negative")
        if self.ambs_liar not in ("min", "mean", "max"):
            raise ValueError(
                f"ambs_liar must be 'min', 'mean' or 'max', "
                f"got {self.ambs_liar!r}")
        if self.ambs_ensemble < 2:
            raise ValueError("ambs_ensemble must be >= 2 (the ensemble "
                             "spread is the uncertainty estimate)")
        if self.wall_time <= 0:
            raise ValueError("wall_time must be positive")
        if self.batch_deadline is not None and self.batch_deadline <= 0:
            raise ValueError("batch_deadline must be positive")
        if self.checkpoint_interval is not None \
                and self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        if self.max_eval_retries < 0:
            raise ValueError("max_eval_retries must be non-negative")
        if self.journal_fsync_every is not None \
                and self.journal_fsync_every <= 0:
            raise ValueError("journal_fsync_every must be positive")
        if self.journal_fsync_every is not None and self.journal_dir is None:
            raise ValueError("journal_fsync_every requires journal_dir")
        if self.checkpoint_every_records is not None \
                and self.checkpoint_every_records <= 0:
            raise ValueError("checkpoint_every_records must be positive")


@dataclass(frozen=True)
class RewardRecord:
    """One reward estimation, as logged for the analytics module."""

    time: float              # virtual seconds at completion
    agent_id: int
    arch: Architecture
    reward: float
    params: int
    duration: float
    cached: bool
    timed_out: bool


@dataclass
class SearchResult:
    """Everything a finished search run produced."""

    config: SearchConfig
    records: list[RewardRecord]
    cluster: Cluster
    end_time: float                  # virtual seconds when the run stopped
    converged: bool                  # stopped early on full-cache convergence
    unique_architectures: int
    #: (agent_id, reason) for agents that crashed rather than finishing;
    #: crashed agents deregister cleanly and never deadlock the rest
    failed_agents: list = field(default_factory=list)
    #: evaluations surfaced as FAILURE_REWARD (retries exhausted,
    #: batch-deadline abandonment) across all agents
    num_failed_evals: int = 0
    #: per-agent rolling trajectory digests (actions, rewards, and
    #: post-update policy parameters chained per iteration); see
    #: :mod:`repro.verify.fingerprint`
    agent_digests: dict = field(default_factory=dict)
    #: health-layer bookkeeping (repro.health): how often each agent was
    #: resurrected from its iteration boundary, and how often each
    #: agent's policy was rolled back to a known-good snapshot.  Both
    #: stay empty when the health layer is off.
    agent_restarts: dict = field(default_factory=dict)
    agent_rollbacks: dict = field(default_factory=dict)
    #: the run was preempted (SIGTERM/SIGINT under ``preemptible``, or
    #: an explicit ``request_preemption``) and stopped at an event
    #: boundary after capturing a resumable checkpoint
    preempted: bool = False
    #: process-backend supervision counters aggregated across agents
    #: (worker_spawns / worker_crashes / worker_timeouts / respawns /
    #: quarantined / inline_evals); empty for other backends
    worker_stats: dict = field(default_factory=dict)

    @property
    def num_evaluations(self) -> int:
        return len(self.records)

    @property
    def num_restarts(self) -> int:
        return sum(self.agent_restarts.values())

    @property
    def num_rollbacks(self) -> int:
        return sum(self.agent_rollbacks.values())

    def fingerprint(self) -> str:
        """Canonical determinism fingerprint of this run's trajectory.

        Same seed + same config ⇒ same fingerprint; a checkpoint/resume
        run fingerprints identically to the uninterrupted run.
        """
        from ..verify.fingerprint import trajectory_fingerprint
        return trajectory_fingerprint(self.records, self.agent_digests,
                                      method=self.config.method,
                                      seed=self.config.seed)

    @staticmethod
    def _rank_key(rec: RewardRecord) -> float:
        """Reward as a ranking key with NaN pinned to -inf, so a NaN
        reward (guards off, metric diverged) can never outrank — or,
        via comparison-is-always-False, squat above — a finite one."""
        r = rec.reward
        return float("-inf") if np.isnan(r) else r

    def best(self) -> RewardRecord:
        if not self.records:
            raise ValueError("no evaluations recorded")
        return max(self.records, key=self._rank_key)

    def top_k(self, k: int = 50) -> list[RewardRecord]:
        """Best-reward record per distinct architecture, best first (the
        paper selects the top 50 for post-training)."""
        best_by_arch: dict[tuple, RewardRecord] = {}
        for rec in self.records:
            cur = best_by_arch.get(rec.arch.key)
            if cur is None or self._rank_key(rec) > self._rank_key(cur):
                best_by_arch[rec.arch.key] = rec
        ranked = sorted(best_by_arch.values(),
                        key=lambda r: -self._rank_key(r))
        return ranked[:k]

    def reward_trajectory(self) -> np.ndarray:
        """(time_minutes, best_reward_so_far) rows, one per evaluation."""
        out = np.zeros((len(self.records), 2))
        best = -np.inf
        for i, rec in enumerate(sorted(self.records, key=lambda r: r.time)):
            if not np.isnan(rec.reward):
                best = max(best, rec.reward)
            out[i] = (rec.time / 60.0, best)
        return out

    def regret_trajectory(self, optimum: float) -> np.ndarray:
        """(minutes, exact regret of best-so-far) rows against a known
        global optimum — e.g. ``table.optimum().reward`` of the bench
        table the run replayed (:mod:`repro.bench`)."""
        from ..analytics.regret import regret_trajectory
        return regret_trajectory(self.records, optimum)

    def fraction_of_optimum(self, optimum: float,
                            floor: float = -1.0) -> np.ndarray:
        """(minutes, best-so-far normalized over [floor, optimum]) rows;
        1.0 means the exact optimum was found (floor defaults to the
        failure reward)."""
        from ..analytics.regret import fraction_of_optimum_trajectory
        return fraction_of_optimum_trajectory(self.records, optimum,
                                              floor=floor)

    def utilization_trace(self, bin_minutes: float = 5.0
                          ) -> list[tuple[float, float]]:
        """(minutes, utilization) bins over the run."""
        trace = self.cluster.utilization_trace(
            max(self.end_time, 1e-9), bin_minutes * 60.0)
        return [(t / 60.0, u) for t, u in trace]
